"""Unit tests for validation helpers."""

import numpy as np
import pytest

from repro.util.validation import (
    check_finite,
    check_index_array,
    check_matrix,
    check_positive,
    check_probability,
    check_shape,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0.0)

    def test_accepts_zero_when_not_strict(self):
        assert check_positive("x", 0.0, strict=False) == 0.0

    def test_rejects_negative_always(self):
        with pytest.raises(ValueError):
            check_positive("x", -1.0, strict=False)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_probability("p", value)


class TestCheckMatrix:
    def test_coerces_lists(self):
        out = check_matrix("m", [[1, 2], [3, 4]])
        assert out.dtype == float
        assert out.shape == (2, 2)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_matrix("m", np.zeros(3))

    def test_rejects_empty_by_default(self):
        with pytest.raises(ValueError, match="empty"):
            check_matrix("m", np.zeros((0, 3)))

    def test_allows_empty_when_asked(self):
        out = check_matrix("m", np.zeros((0, 3)), allow_empty=True)
        assert out.shape == (0, 3)


class TestCheckFinite:
    def test_accepts_finite(self):
        arr = np.array([1.0, 2.0])
        assert check_finite("a", arr) is arr

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ValueError, match="non-finite"):
            check_finite("a", np.array([1.0, bad]))


class TestCheckShape:
    def test_exact_match(self):
        arr = np.zeros((2, 3))
        assert check_shape("a", arr, (2, 3)) is arr

    def test_wildcard(self):
        arr = np.zeros((5, 3))
        assert check_shape("a", arr, (None, 3)) is arr

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError, match="axis 1"):
            check_shape("a", np.zeros((2, 4)), (2, 3))

    def test_rejects_ndim_mismatch(self):
        with pytest.raises(ValueError, match="dimensions"):
            check_shape("a", np.zeros(4), (2, 2))


class TestCheckIndexArray:
    def test_valid_indices(self):
        out = check_index_array("i", [0, 2, 4], upper=5)
        np.testing.assert_array_equal(out, [0, 2, 4])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="must lie in"):
            check_index_array("i", [0, 5], upper=5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_index_array("i", [-1, 2], upper=5)

    def test_rejects_duplicates_by_default(self):
        with pytest.raises(ValueError, match="duplicate"):
            check_index_array("i", [1, 1], upper=5)

    def test_allows_duplicates_when_asked(self):
        out = check_index_array("i", [1, 1], upper=5, allow_duplicates=True)
        assert list(out) == [1, 1]

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            check_index_array("i", np.zeros((2, 2), dtype=int), upper=5)
