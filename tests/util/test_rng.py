"""Unit tests for RNG plumbing."""

import numpy as np
import pytest

from repro.util.rng import (
    as_generator,
    counter_stream,
    derive_seed,
    hash_label,
    permutation_without_replacement,
    spawn_children,
    task_key,
    zipf_sample,
    zipf_weights,
)


class TestAsGenerator:
    def test_int_seed_reproducible(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)


class TestSpawnChildren:
    def test_children_reproducible(self):
        first = [g.random() for g in spawn_children(5, 3)]
        second = [g.random() for g in spawn_children(5, 3)]
        assert first == second

    def test_children_independent(self):
        children = spawn_children(5, 2)
        a = children[0].random(100)
        b = children[1].random(100)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.3

    def test_prefix_stability(self):
        """Child i is the same regardless of how many siblings exist."""
        few = spawn_children(9, 2)
        many = spawn_children(9, 5)
        assert few[0].random() == many[0].random()
        assert few[1].random() == many[1].random()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_children(0, -1)

    def test_zero_count_ok(self):
        assert list(spawn_children(0, 0)) == []


class TestDeriveSeed:
    def test_label_sensitivity(self):
        a = np.random.default_rng(derive_seed(1, "noise")).random()
        b = np.random.default_rng(derive_seed(1, "drift")).random()
        assert a != b

    def test_reproducible(self):
        a = np.random.default_rng(derive_seed(1, "x", 3)).random()
        b = np.random.default_rng(derive_seed(1, "x", 3)).random()
        assert a == b


class TestHashLabel:
    def test_stable_known_value(self):
        # FNV-1a is a published algorithm; pin one value to catch regressions.
        assert hash_label("") == 2166136261

    def test_distinct_labels_distinct_hashes(self):
        assert hash_label("link-0") != hash_label("link-1")


class TestZipf:
    def test_weights_normalized_and_monotone(self):
        w = zipf_weights(100, 1.1)
        assert w.shape == (100,)
        assert abs(w.sum() - 1.0) < 1e-12
        assert np.all(np.diff(w) < 0)

    def test_zero_exponent_is_uniform(self):
        w = zipf_weights(8, 0.0)
        np.testing.assert_allclose(w, np.full(8, 1.0 / 8))

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(5, -0.5)
        rng = counter_stream(task_key(1, "zipf"))
        with pytest.raises(ValueError):
            zipf_sample(rng, 5, 1.0, -1)

    def test_same_counter_stream_bit_identical(self):
        key = task_key(2016, "loadgen", "sites")
        a = zipf_sample(counter_stream(key), 500, 1.2, 1000)
        b = zipf_sample(counter_stream(key), 500, 1.2, 1000)
        np.testing.assert_array_equal(a, b)
        assert a.dtype == np.int64

    def test_ranks_in_range_and_skewed(self):
        key = task_key(7, "zipf-skew")
        draws = zipf_sample(counter_stream(key), 50, 1.5, 5000)
        assert draws.min() >= 0
        assert draws.max() < 50
        # Rank 0 must dominate any mid-tail rank under strong skew.
        counts = np.bincount(draws, minlength=50)
        assert counts[0] > counts[10] > 0

    def test_empty_draw(self):
        key = task_key(7, "zipf-empty")
        assert zipf_sample(counter_stream(key), 10, 1.0, 0).shape == (0,)


class TestPermutation:
    def test_size_and_uniqueness(self):
        rng = np.random.default_rng(3)
        picks = permutation_without_replacement(rng, 10, 4)
        assert len(picks) == 4
        assert len(set(picks.tolist())) == 4

    def test_full_permutation_default(self):
        rng = np.random.default_rng(3)
        picks = permutation_without_replacement(rng, 6)
        assert sorted(picks.tolist()) == list(range(6))

    def test_oversample_rejected(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            permutation_without_replacement(rng, 3, 4)
