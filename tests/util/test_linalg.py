"""Unit tests for the linear-algebra helpers."""

import numpy as np
import pytest

from repro.util.linalg import (
    balanced_factors,
    conjugate_gradient,
    effective_rank,
    first_difference_matrix,
    nuclear_norm,
    soft_threshold,
    stable_rank,
    svd_shrink,
    truncated_svd,
)


class TestConjugateGradient:
    def test_solves_spd_system(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((8, 8))
        spd = a @ a.T + 8 * np.eye(8)
        x_true = rng.standard_normal(8)
        rhs = spd @ x_true
        result = conjugate_gradient(lambda v: spd @ v, rhs, tol=1e-12)
        assert result.converged
        np.testing.assert_allclose(result.solution, x_true, atol=1e-8)

    def test_matrix_valued_unknown(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((6, 6))
        spd = a @ a.T + 6 * np.eye(6)
        x_true = rng.standard_normal((6, 3))
        rhs = spd @ x_true
        result = conjugate_gradient(lambda v: spd @ v, rhs, tol=1e-12)
        assert result.converged
        np.testing.assert_allclose(result.solution, x_true, atol=1e-8)

    def test_warm_start_accepted(self):
        spd = 4.0 * np.eye(5)
        rhs = np.ones(5)
        result = conjugate_gradient(lambda v: spd @ v, rhs, x0=np.full(5, 0.25))
        assert result.converged
        assert result.iterations <= 1
        np.testing.assert_allclose(result.solution, np.full(5, 0.25))

    def test_zero_rhs_returns_zero(self):
        result = conjugate_gradient(lambda v: 2.0 * v, np.zeros(4))
        np.testing.assert_array_equal(result.solution, np.zeros(4))
        assert result.converged

    def test_iteration_cap_reported(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((30, 30))
        spd = a @ a.T + 1e-3 * np.eye(30)
        rhs = rng.standard_normal(30)
        result = conjugate_gradient(lambda v: spd @ v, rhs, tol=1e-14, max_iter=2)
        assert not result.converged
        assert result.iterations == 2

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="x0 shape"):
            conjugate_gradient(lambda v: v, np.ones(3), x0=np.ones(4))

    def test_monotone_residual_on_psd(self):
        """CG residual norms are not guaranteed monotone but the solution
        error in the A-norm is; check the final residual beats the start."""
        rng = np.random.default_rng(3)
        a = rng.standard_normal((12, 4))
        psd = a @ a.T  # rank-deficient PSD
        rhs = psd @ rng.standard_normal(12)
        result = conjugate_gradient(lambda v: psd @ v, rhs, max_iter=50)
        assert result.residual_norm <= np.linalg.norm(rhs)


class TestShrinkage:
    def test_soft_threshold_basic(self):
        values = np.array([-3.0, -0.5, 0.0, 0.5, 3.0])
        out = soft_threshold(values, 1.0)
        np.testing.assert_allclose(out, [-2.0, 0.0, 0.0, 0.0, 2.0])

    def test_soft_threshold_zero_is_identity(self):
        values = np.array([1.0, -2.0])
        np.testing.assert_array_equal(soft_threshold(values, 0.0), values)

    def test_soft_threshold_negative_rejected(self):
        with pytest.raises(ValueError):
            soft_threshold(np.ones(2), -0.1)

    def test_svd_shrink_reduces_rank(self):
        rng = np.random.default_rng(4)
        low = rng.standard_normal((10, 3)) @ rng.standard_normal((3, 8))
        noisy = low + 0.01 * rng.standard_normal((10, 8))
        shrunk, rank = svd_shrink(noisy, 0.5)
        assert rank <= 3
        assert np.linalg.matrix_rank(shrunk, tol=1e-9) == rank

    def test_svd_shrink_huge_threshold_gives_zero(self):
        matrix = np.eye(4)
        shrunk, rank = svd_shrink(matrix, 10.0)
        assert rank == 0
        np.testing.assert_array_equal(shrunk, np.zeros((4, 4)))


class TestFactorizations:
    def test_truncated_svd_reconstructs_low_rank(self):
        rng = np.random.default_rng(5)
        exact = rng.standard_normal((7, 4)) @ rng.standard_normal((4, 9))
        u, s, vt = truncated_svd(exact, 4)
        np.testing.assert_allclose((u * s) @ vt, exact, atol=1e-10)

    def test_truncated_svd_clips_rank(self):
        u, s, vt = truncated_svd(np.eye(3), 10)
        assert len(s) == 3

    def test_truncated_svd_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            truncated_svd(np.eye(3), 0)

    def test_balanced_factors_product(self):
        rng = np.random.default_rng(6)
        exact = rng.standard_normal((6, 3)) @ rng.standard_normal((3, 5))
        left, right = balanced_factors(exact, 3)
        np.testing.assert_allclose(left @ right.T, exact, atol=1e-10)

    def test_balanced_factors_are_balanced(self):
        rng = np.random.default_rng(7)
        exact = rng.standard_normal((6, 3)) @ rng.standard_normal((3, 5))
        left, right = balanced_factors(exact, 3)
        assert np.linalg.norm(left) == pytest.approx(np.linalg.norm(right), rel=1e-9)


class TestRankMeasures:
    def test_nuclear_norm_of_identity(self):
        assert nuclear_norm(np.eye(5)) == pytest.approx(5.0)

    def test_stable_rank_bounds(self):
        rng = np.random.default_rng(8)
        matrix = rng.standard_normal((10, 10))
        sr = stable_rank(matrix)
        assert 1.0 <= sr <= 10.0

    def test_stable_rank_zero_matrix(self):
        assert stable_rank(np.zeros((3, 3))) == 0.0

    def test_effective_rank_exact_low_rank(self):
        rng = np.random.default_rng(9)
        exact = rng.standard_normal((12, 2)) @ rng.standard_normal((2, 15))
        assert effective_rank(exact, 0.999) <= 2

    def test_effective_rank_full(self):
        assert effective_rank(np.eye(6), 1.0) == 6

    def test_effective_rank_rejects_bad_energy(self):
        with pytest.raises(ValueError):
            effective_rank(np.eye(2), 0.0)


class TestFirstDifference:
    def test_shape_and_action(self):
        d = first_difference_matrix(5)
        assert d.shape == (4, 5)
        x = np.array([1.0, 3.0, 6.0, 10.0, 15.0])
        np.testing.assert_allclose(d @ x, [2.0, 3.0, 4.0, 5.0])

    def test_constant_in_null_space(self):
        d = first_difference_matrix(7)
        np.testing.assert_allclose(d @ np.full(7, 3.3), np.zeros(6), atol=1e-12)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            first_difference_matrix(1)
