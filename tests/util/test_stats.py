"""Unit tests for the shared latency-statistics helpers."""

import numpy as np
import pytest

from repro.util.stats import (
    LatencyHistogram,
    latency_summary,
    merge_histograms,
    timed_singles,
)


class TestLatencySummary:
    def test_empty(self):
        assert latency_summary([]) == {"count": 0}

    def test_keys_and_units(self):
        summary = latency_summary([0.001, 0.002, 0.003])
        assert set(summary) == {
            "count",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "max_ms",
            "mean_ms",
        }
        assert summary["count"] == 3
        assert summary["p50_ms"] == pytest.approx(2.0)
        assert summary["max_ms"] == pytest.approx(3.0)
        assert summary["mean_ms"] == pytest.approx(2.0)

    def test_p999_opt_in(self):
        summary = latency_summary([0.001] * 10, p999=True)
        assert "p999_ms" in summary
        assert summary["p999_ms"] == pytest.approx(1.0)


class TestLatencyHistogram:
    def test_empty_summary(self):
        assert LatencyHistogram().summary() == {"count": 0}
        assert LatencyHistogram().percentile(99.0) == 0.0

    def test_percentile_accuracy_bounded_by_bucket_width(self):
        # Log-spaced samples spanning the histogram range: bucketed
        # percentiles must land within one bucket growth factor of exact.
        rng = np.random.default_rng(0)
        samples = 10 ** rng.uniform(-4, 0, size=20_000)  # 0.1 ms .. 1 s
        hist = LatencyHistogram(buckets_per_decade=40)
        hist.record_many(samples)
        rel_bound = 10 ** (1 / 40) - 1  # ≈ 5.9%
        for q in (50.0, 95.0, 99.0, 99.9):
            exact = float(np.percentile(samples, q))
            approx = hist.percentile(q)
            assert abs(approx - exact) / exact < 2 * rel_bound

    def test_record_matches_record_many(self):
        values = [1e-4, 5e-4, 2e-3, 7e-3, 0.1, 2.0]
        one = LatencyHistogram()
        many = LatencyHistogram()
        for v in values:
            one.record(v)
        many.record_many(values)
        np.testing.assert_array_equal(one.counts(), many.counts())
        assert one.summary() == many.summary()

    def test_merge_equals_single_pass(self):
        rng = np.random.default_rng(1)
        samples = rng.exponential(0.002, size=4000)
        whole = LatencyHistogram()
        whole.record_many(samples)
        parts = [LatencyHistogram() for _ in range(4)]
        for i, part in enumerate(parts):
            part.record_many(samples[i::4])
        merged = merge_histograms(parts)
        np.testing.assert_array_equal(whole.counts(), merged.counts())
        whole_summary = whole.summary()
        merged_summary = merged.summary()
        # Identical counts give identical percentiles; the mean differs
        # only by float summation order.
        for key, value in whole_summary.items():
            if key == "mean_ms":
                assert merged_summary[key] == pytest.approx(value)
            else:
                assert merged_summary[key] == value

    def test_merge_layout_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().merge(LatencyHistogram(buckets_per_decade=10))

    def test_merge_empty_list(self):
        assert merge_histograms([]) is None

    def test_out_of_range_samples_counted(self):
        hist = LatencyHistogram(min_s=1e-3, max_s=1.0)
        hist.record(1e-6)  # underflow
        hist.record(50.0)  # overflow
        assert hist.count == 2
        assert hist.percentile(100.0) == pytest.approx(50.0)
        assert hist.max_seconds == pytest.approx(50.0)

    def test_summary_has_four_nines(self):
        hist = LatencyHistogram()
        hist.record_many([0.001] * 100)
        summary = hist.summary()
        assert set(summary) == {
            "count",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "p999_ms",
            "max_ms",
            "mean_ms",
        }
        assert summary["count"] == 100

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram(min_s=0.0)
        with pytest.raises(ValueError):
            LatencyHistogram(min_s=2.0, max_s=1.0)
        with pytest.raises(ValueError):
            LatencyHistogram(buckets_per_decade=0)
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.percentile(101.0)


class TestTimedSingles:
    def test_calls_every_frame_and_returns_positive_times(self):
        seen = []
        latencies = timed_singles(seen.append, ["a", "b", "c"])
        assert seen == ["a", "b", "c"]
        assert len(latencies) == 3
        assert all(t >= 0 for t in latencies)
