"""CLI contract: exit codes, JSON report, and the real-tree gate."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis.__main__ import main

REPO_ROOT = Path(__file__).resolve().parents[2]

VIOLATION_TREE = {
    "model.py": """
    import numpy as np

    def draw():
        return np.random.default_rng()
    """,
    "sim/clock.py": """
    import time

    def stamp():
        return time.time()
    """,
}

CLEAN_TREE = {
    "model.py": """
    import numpy as np

    def draw(seed):
        return np.random.default_rng(seed)
    """,
}


def _write_tree(root: Path, files: dict) -> Path:
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return root


class TestMainInProcess:
    def test_violation_tree_exits_one(self, tmp_path, capsys):
        root = _write_tree(tmp_path / "pkg", VIOLATION_TREE)
        code = main(["--root", str(root), "--baseline", "none"])
        out = capsys.readouterr().out
        assert code == 1
        assert "RL-D01" in out
        assert "RL-D02" in out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = _write_tree(tmp_path / "pkg", CLEAN_TREE)
        code = main(["--root", str(root), "--baseline", "none"])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        root = _write_tree(tmp_path / "pkg", CLEAN_TREE)
        code = main(
            ["--root", str(root), "--baseline", "none", "--rule", "RL-ZZ99"]
        )
        assert code == 2

    def test_missing_root_exits_two(self, tmp_path):
        code = main(["--root", str(tmp_path / "nope"), "--baseline", "none"])
        assert code == 2

    def test_json_report_written_to_out(self, tmp_path, capsys):
        root = _write_tree(tmp_path / "pkg", VIOLATION_TREE)
        out_path = tmp_path / "report.json"
        code = main(
            [
                "--root",
                str(root),
                "--baseline",
                "none",
                "--out",
                str(out_path),
                "--format",
                "json",
            ]
        )
        assert code == 1
        report = json.loads(out_path.read_text())
        assert report["ok"] is False
        rules = {f["rule"] for f in report["findings"]}
        assert {"RL-D01", "RL-D02"} <= rules

    def test_rule_filter_limits_findings(self, tmp_path, capsys):
        root = _write_tree(tmp_path / "pkg", VIOLATION_TREE)
        code = main(
            [
                "--root",
                str(root),
                "--baseline",
                "none",
                "--rule",
                "RL-D02",
                "--format",
                "json",
            ]
        )
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in report["findings"]} == {"RL-D02"}

    def test_write_baseline_then_rerun_is_clean(self, tmp_path, capsys):
        root = _write_tree(tmp_path / "pkg", VIOLATION_TREE)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"version": 1, "entries": []}))
        code = main(
            [
                "--root",
                str(root),
                "--baseline",
                str(baseline),
                "--write-baseline",
                "bootstrap for test",
            ]
        )
        assert code == 0
        payload = json.loads(baseline.read_text())
        assert payload["entries"], "bootstrap wrote no entries"
        assert all(e["reason"] for e in payload["entries"])
        code = main(["--root", str(root), "--baseline", str(baseline)])
        assert code == 0
        assert "baselined" in capsys.readouterr().out

    def test_list_rules_names_every_family(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "RL-D01",
            "RL-D02",
            "RL-D03",
            "RL-C01",
            "RL-C02",
            "RL-C03",
            "RL-W01",
            "RL-W02",
        ):
            assert rule_id in out


class TestSubprocessGate:
    """The `make analyze` contract, driven exactly as CI drives it."""

    def _run(self, *argv: str) -> subprocess.CompletedProcess:
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *argv],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(REPO_ROOT),
            timeout=120,
        )

    def test_seeded_violation_fails_the_gate(self, tmp_path):
        root = _write_tree(tmp_path / "pkg", VIOLATION_TREE)
        proc = self._run("--root", str(root), "--baseline", "none")
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "RL-D01" in proc.stdout

    def test_repo_tree_passes_with_committed_baseline(self):
        proc = self._run(
            "--root",
            str(REPO_ROOT / "src" / "repro"),
            "--baseline",
            str(REPO_ROOT / "analysis-baseline.json"),
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout
