"""RL-W* wire-contract rules: trigger and pass fixtures for each."""

from tests.analysis.conftest import findings_for

GOOD_PROTOCOL = """
METHODS = ("query", "stats")


def _handle_query(backend, params):
    \"\"\"Answer one localization query.

    Errors: 400, 404.
    \"\"\"
    if "site" not in params:
        raise ValueError("site is required")
    if params["site"] == "nowhere":
        raise KeyError("unknown site")
    return {"cell": 0}


def _handle_stats(backend, params):
    \"\"\"Serving counters.

    Errors: none.
    \"\"\"
    return {"served": 0}


_HANDLERS = {"query": _handle_query, "stats": _handle_stats}
"""


class TestHandlerErrorContract:
    RULE = "RL-W01"

    def test_conforming_protocol_passes(self):
        files = {"serve/protocol.py": GOOD_PROTOCOL}
        assert findings_for(files, self.RULE) == []

    def test_method_without_handler_flagged(self):
        findings = findings_for(
            {
                "serve/protocol.py": """
                METHODS = ("query", "stats")


                def _handle_query(backend, params):
                    \"\"\"Query.

                    Errors: none.
                    \"\"\"
                    return {}


                _HANDLERS = {"query": _handle_query}
                """
            },
            self.RULE,
        )
        assert [f.key for f in findings] == ["missing-handler:stats"]

    def test_handler_not_in_methods_flagged(self):
        findings = findings_for(
            {
                "serve/protocol.py": """
                METHODS = ("query",)


                def _handle_query(backend, params):
                    \"\"\"Query.

                    Errors: none.
                    \"\"\"
                    return {}


                def _handle_extra(backend, params):
                    \"\"\"Extra.

                    Errors: none.
                    \"\"\"
                    return {}


                _HANDLERS = {"query": _handle_query, "extra": _handle_extra}
                """
            },
            self.RULE,
        )
        assert [f.key for f in findings] == ["unlisted-method:extra"]

    def test_missing_errors_line_flagged(self):
        findings = findings_for(
            {
                "serve/protocol.py": """
                METHODS = ("query",)


                def _handle_query(backend, params):
                    \"\"\"Query with no declared contract.\"\"\"
                    return {}


                _HANDLERS = {"query": _handle_query}
                """
            },
            self.RULE,
        )
        assert [f.key for f in findings] == ["undeclared:query"]

    def test_status_outside_contract_table_flagged(self):
        findings = findings_for(
            {
                "serve/protocol.py": """
                METHODS = ("query",)


                def _handle_query(backend, params):
                    \"\"\"Query.

                    Errors: 400, 418.
                    \"\"\"
                    return {}


                _HANDLERS = {"query": _handle_query}
                """
            },
            self.RULE,
        )
        assert [f.key for f in findings] == ["bad-status:query"]

    def test_raise_without_declared_status_flagged(self):
        findings = findings_for(
            {
                "serve/protocol.py": """
                METHODS = ("query",)


                def _handle_query(backend, params):
                    \"\"\"Query.

                    Errors: 400.
                    \"\"\"
                    raise KeyError("unknown site")


                _HANDLERS = {"query": _handle_query}
                """
            },
            self.RULE,
        )
        assert [f.key for f in findings] == ["undeclared-status:query:404"]

    def test_raise_outside_contract_types_flagged(self):
        findings = findings_for(
            {
                "serve/protocol.py": """
                METHODS = ("query",)


                def _handle_query(backend, params):
                    \"\"\"Query.

                    Errors: 400.
                    \"\"\"
                    raise OSError("disk on fire")


                _HANDLERS = {"query": _handle_query}
                """
            },
            self.RULE,
        )
        assert [f.key for f in findings] == ["off-contract:query:OSError"]

    def test_helper_raises_are_expanded_one_level(self):
        findings = findings_for(
            {
                "serve/protocol.py": """
                METHODS = ("query",)


                def _require_site(params):
                    if "site" not in params:
                        raise KeyError("unknown site")
                    return params["site"]


                def _handle_query(backend, params):
                    \"\"\"Query.

                    Errors: 400.
                    \"\"\"
                    return {"site": _require_site(params)}


                _HANDLERS = {"query": _handle_query}
                """
            },
            self.RULE,
        )
        assert [f.key for f in findings] == ["undeclared-status:query:404"]


class TestClientSurfaceParity:
    RULE = "RL-W02"

    def test_full_parity_passes(self):
        files = {
            "serve/protocol.py": GOOD_PROTOCOL,
            "serve/frontend.py": """
            class ServiceClient:
                def query(self, site, rss, day):
                    pass

                def stats(self):
                    pass
            """,
            "serve/aio.py": """
            class AsyncServiceClient:
                async def query(self, site, rss, day):
                    pass

                async def stats(self):
                    pass
            """,
        }
        assert findings_for(files, self.RULE) == []

    def test_missing_wrapper_flagged_per_client(self):
        files = {
            "serve/protocol.py": GOOD_PROTOCOL,
            "serve/frontend.py": """
            class ServiceClient:
                def query(self, site, rss, day):
                    pass
            """,
            "serve/aio.py": """
            class AsyncServiceClient:
                async def query(self, site, rss, day):
                    pass
            """,
        }
        keys = {f.key for f in findings_for(files, self.RULE)}
        assert keys == {
            "AsyncServiceClient:stats",
            "ServiceClient:stats",
        }

    def test_wire_exempt_tuple_passes(self):
        files = {
            "serve/protocol.py": GOOD_PROTOCOL,
            "serve/frontend.py": """
            class ServiceClient:
                _WIRE_EXEMPT = ("stats",)

                def query(self, site, rss, day):
                    pass
            """,
        }
        assert findings_for(files, self.RULE) == []

    def test_stale_exempt_entry_flagged(self):
        files = {
            "serve/protocol.py": GOOD_PROTOCOL,
            "serve/frontend.py": """
            class ServiceClient:
                _WIRE_EXEMPT = ("stats",)

                def query(self, site, rss, day):
                    pass

                def stats(self):
                    pass
            """,
        }
        keys = [f.key for f in findings_for(files, self.RULE)]
        assert keys == ["ServiceClient:stale-exempt:stats"]
