"""RL-C* concurrency rules: trigger and pass fixtures for each."""

from tests.analysis.conftest import findings_for


class TestLockOrderDiscipline:
    RULE = "RL-C01"

    def test_nested_locks_without_declared_order_flagged(self):
        findings = findings_for(
            {
                "serve/fleet.py": """
                import threading

                class Fleet:
                    def __init__(self):
                        self._resize_lock = threading.Lock()
                        self.lock = threading.Lock()

                    def resize(self):
                        with self._resize_lock:
                            with self.lock:
                                pass
                """
            },
            self.RULE,
        )
        assert len(findings) == 1
        assert "_LOCK_ORDER" in findings[0].message
        assert findings[0].key == "Fleet:no-order"

    def test_declared_order_respected_passes(self):
        files = {
            "serve/fleet.py": """
            import threading

            class Fleet:
                _LOCK_ORDER = ("_resize_lock", "lock")

                def __init__(self):
                    self._resize_lock = threading.Lock()
                    self.lock = threading.Lock()

                def resize(self):
                    with self._resize_lock:
                        with self.lock:
                            pass
            """
        }
        assert findings_for(files, self.RULE) == []

    def test_acquisition_against_declared_order_flagged(self):
        findings = findings_for(
            {
                "serve/fleet.py": """
                import threading

                class Fleet:
                    _LOCK_ORDER = ("lock", "_resize_lock")

                    def __init__(self):
                        self._resize_lock = threading.Lock()
                        self.lock = threading.Lock()

                    def resize(self):
                        with self._resize_lock:
                            with self.lock:
                                pass
                """
            },
            self.RULE,
        )
        assert len(findings) == 1
        assert "against the declared" in findings[0].message
        assert findings[0].key == "Fleet:_resize_lock->lock"

    def test_indirect_acquisition_through_self_call_flagged(self):
        # resize() never touches shard locks directly; the edge only
        # exists through one level of self-method expansion.
        findings = findings_for(
            {
                "serve/fleet.py": """
                import threading

                class Fleet:
                    _LOCK_ORDER = ("lock", "_resize_lock")

                    def __init__(self):
                        self._resize_lock = threading.Lock()
                        self.lock = threading.Lock()

                    def resize(self):
                        with self._resize_lock:
                            self._drain()

                    def _drain(self):
                        with self.lock:
                            pass
                """
            },
            self.RULE,
        )
        assert len(findings) == 1
        assert findings[0].key == "Fleet:_resize_lock->lock"

    def test_same_name_nesting_flagged_for_explicit_suppression(self):
        findings = findings_for(
            {
                "serve/fleet.py": """
                class Fleet:
                    _LOCK_ORDER = ("lock",)

                    def swap(self, a, b):
                        with a.lock:
                            with b.lock:
                                pass
                """
            },
            self.RULE,
        )
        assert len(findings) == 1
        assert "same lock name" in findings[0].message

    def test_non_serve_files_out_of_scope(self):
        files = {
            "core/solver.py": """
            import threading

            class Solver:
                def run(self):
                    with self.a_lock:
                        with self.b_lock:
                            pass
            """
        }
        assert findings_for(files, self.RULE) == []


class TestBlockingCallOnEventLoop:
    RULE = "RL-C02"

    def test_time_sleep_in_coroutine_flagged(self):
        findings = findings_for(
            {
                "serve/aio.py": """
                import time

                async def handler(request):
                    time.sleep(0.1)
                    return request
                """
            },
            self.RULE,
        )
        assert len(findings) == 1
        assert "time.sleep" in findings[0].message

    def test_run_in_executor_passes(self):
        files = {
            "serve/aio.py": """
            import asyncio
            import time

            async def handler(loop, request):
                await loop.run_in_executor(None, time.sleep, 0.1)
                return request
            """
        }
        assert findings_for(files, self.RULE) == []

    def test_nested_sync_def_is_exempt(self):
        # The nested def is the executor target; it runs off-loop.
        files = {
            "serve/aio.py": """
            import subprocess

            async def handler(loop):
                def work():
                    return subprocess.run(["true"])
                return await loop.run_in_executor(None, work)
            """
        }
        assert findings_for(files, self.RULE) == []

    def test_subprocess_in_coroutine_flagged(self):
        findings = findings_for(
            {
                "serve/aio.py": """
                import subprocess

                async def handler():
                    return subprocess.run(["true"])
                """
            },
            self.RULE,
        )
        assert len(findings) == 1


class TestThreadAccounting:
    RULE = "RL-C03"

    def test_anonymous_undisposed_thread_flagged_twice(self):
        findings = findings_for(
            {
                "serve/manager.py": """
                import threading

                def start(fn):
                    t = threading.Thread(target=fn)
                    t.start()
                    return t
                """
            },
            self.RULE,
        )
        keys = {f.key for f in findings}
        assert len(findings) == 2
        assert any(k.endswith(":name") for k in keys)
        assert any(k.endswith(":daemon-or-join") for k in keys)

    def test_named_daemon_thread_passes(self):
        files = {
            "serve/manager.py": """
            import threading

            def start(fn):
                t = threading.Thread(target=fn, name="worker", daemon=True)
                t.start()
                return t
            """
        }
        assert findings_for(files, self.RULE) == []

    def test_named_joined_thread_passes(self):
        files = {
            "serve/manager.py": """
            import threading

            def run(fn):
                t = threading.Thread(target=fn, name="worker")
                t.start()
                t.join()
            """
        }
        assert findings_for(files, self.RULE) == []

    def test_daemon_assigned_after_construction_passes(self):
        files = {
            "serve/manager.py": """
            import threading

            def start(fn):
                t = threading.Thread(target=fn, name="worker")
                t.daemon = True
                t.start()
                return t
            """
        }
        assert findings_for(files, self.RULE) == []

    def test_thread_import_alias_is_tracked(self):
        findings = findings_for(
            {
                "serve/manager.py": """
                from threading import Thread as T

                def start(fn):
                    t = T(target=fn)
                    t.start()
                    return t
                """
            },
            self.RULE,
        )
        assert len(findings) == 2
