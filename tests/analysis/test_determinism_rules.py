"""RL-D* determinism rules: trigger and pass fixtures for each."""

from tests.analysis.conftest import findings_for


class TestUnseededRandomness:
    RULE = "RL-D01"

    def test_unseeded_default_rng_flagged(self):
        findings = findings_for(
            {
                "core/model.py": """
                import numpy as np

                def draw():
                    rng = np.random.default_rng()
                    return rng.normal()
                """
            },
            self.RULE,
        )
        assert len(findings) == 1
        assert findings[0].rule == self.RULE
        assert "default_rng" in findings[0].message
        assert findings[0].key.startswith("draw:")

    def test_seeded_default_rng_passes(self):
        files = {
            "core/model.py": """
            import numpy as np

            def draw(seed):
                a = np.random.default_rng(seed)
                b = np.random.default_rng(seed=seed)
                return a, b
            """
        }
        assert findings_for(files, self.RULE) == []

    def test_legacy_global_numpy_draw_flagged(self):
        findings = findings_for(
            {
                "core/model.py": """
                import numpy as np

                def draw():
                    return np.random.normal(size=3)
                """
            },
            self.RULE,
        )
        assert len(findings) == 1
        assert "np.random.normal" in findings[0].message

    def test_stdlib_random_global_flagged(self):
        findings = findings_for(
            {
                "serve/util.py": """
                import random

                def jitter():
                    return random.uniform(0.5, 1.0)
                """
            },
            self.RULE,
        )
        assert len(findings) == 1
        assert "random.uniform" in findings[0].message

    def test_seeded_private_random_instance_passes(self):
        files = {
            "serve/util.py": """
            import random

            def jitter(seed):
                return random.Random(seed).uniform(0.5, 1.0)
            """
        }
        assert findings_for(files, self.RULE) == []

    def test_unseeded_random_instance_flagged(self):
        findings = findings_for(
            {
                "serve/util.py": """
                import random

                def jitter():
                    return random.Random().uniform(0.5, 1.0)
                """
            },
            self.RULE,
        )
        assert len(findings) == 1

    def test_bare_module_as_generator_flagged(self):
        findings = findings_for(
            {
                "core/model.py": """
                import random

                def shuffled(items, shuffle):
                    shuffle(items, random)
                    return items
                """
            },
            self.RULE,
        )
        assert len(findings) == 1
        assert "bare 'random' module" in findings[0].message

    def test_rng_module_is_exempt(self):
        files = {
            "util/rng.py": """
            import numpy as np

            def entropy_generator():
                return np.random.default_rng()
            """
        }
        assert findings_for(files, self.RULE) == []


class TestWallClockInDeterministicModule:
    RULE = "RL-D02"

    def test_time_call_in_sim_flagged(self):
        findings = findings_for(
            {
                "sim/collector.py": """
                import time

                def stamp():
                    return time.time()
                """
            },
            self.RULE,
        )
        assert len(findings) == 1
        assert "time.time" in findings[0].message

    def test_from_import_alias_flagged(self):
        findings = findings_for(
            {
                "core/solver.py": """
                from time import perf_counter

                def solve():
                    start = perf_counter()
                    return start
                """
            },
            self.RULE,
        )
        assert len(findings) == 1

    def test_datetime_now_flagged(self):
        findings = findings_for(
            {
                "eval/engine.py": """
                import datetime

                def stamp():
                    return datetime.datetime.now()
                """
            },
            self.RULE,
        )
        assert len(findings) == 1

    def test_serve_layer_out_of_scope(self):
        files = {
            "serve/frontend.py": """
            import time

            def deadline():
                return time.monotonic() + 5.0
            """
        }
        assert findings_for(files, self.RULE) == []


class TestSetIterationAccumulation:
    RULE = "RL-D03"

    def test_for_over_set_literal_accumulating_flagged(self):
        findings = findings_for(
            {
                "core/scores.py": """
                def total(values):
                    acc = 0.0
                    for v in {1.0, 2.0, 3.0}:
                        acc += v
                    return acc
                """
            },
            self.RULE,
        )
        assert len(findings) == 1

    def test_sum_over_set_call_flagged(self):
        findings = findings_for(
            {
                "core/scores.py": """
                def total(values):
                    return sum(set(values))
                """
            },
            self.RULE,
        )
        assert len(findings) == 1

    def test_sum_comprehension_over_set_flagged(self):
        findings = findings_for(
            {
                "core/scores.py": """
                def total(values):
                    return sum(v * v for v in set(values))
                """
            },
            self.RULE,
        )
        assert len(findings) == 1

    def test_sorted_iteration_passes(self):
        files = {
            "core/scores.py": """
            def total(values):
                acc = 0.0
                for v in sorted(set(values)):
                    acc += v
                return acc + sum(sorted(set(values)))
            """
        }
        assert findings_for(files, self.RULE) == []

    def test_non_numeric_set_loop_passes(self):
        files = {
            "core/scores.py": """
            def collect(values):
                out = []
                for v in set(values):
                    out.append(v)
                return out
            """
        }
        assert findings_for(files, self.RULE) == []
