"""Engine policy: suppression comments, RL-S00, and the baseline cycle."""

import json

import pytest

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.engine import SUPPRESSION_RULE_ID, Engine
from tests.analysis.conftest import make_project, run_rules

VIOLATION = """
import numpy as np

def draw():
    return np.random.default_rng()
"""


class TestSuppressions:
    def test_same_line_suppression_silences_finding(self):
        report = run_rules(
            {
                "core/model.py": (
                    "import numpy as np\n"
                    "\n"
                    "def draw():\n"
                    "    return np.random.default_rng()"
                    "  # repro-lint: disable=RL-D01 entropy probe only\n"
                )
            },
            "RL-D01",
        )
        assert report.ok
        assert len(report.suppressed) == 1
        assert report.suppressed[0].rule == "RL-D01"

    def test_standalone_comment_covers_next_line(self):
        report = run_rules(
            {
                "core/model.py": (
                    "import numpy as np\n"
                    "\n"
                    "def draw():\n"
                    "    # repro-lint: disable=RL-D01 entropy probe only\n"
                    "    return np.random.default_rng()\n"
                )
            },
            "RL-D01",
        )
        assert report.ok
        assert len(report.suppressed) == 1

    def test_suppression_only_covers_named_rule(self):
        report = run_rules(
            {
                "core/model.py": (
                    "import numpy as np\n"
                    "\n"
                    "def draw():\n"
                    "    # repro-lint: disable=RL-D03 wrong rule id\n"
                    "    return np.random.default_rng()\n"
                )
            },
            "RL-D01",
        )
        assert not report.ok
        assert report.suppressed == []

    def test_bare_suppression_is_itself_a_finding(self):
        report = run_rules(
            {
                "core/model.py": (
                    "X = 1  # repro-lint: disable=\n"
                )
            },
            "RL-D01",
        )
        assert [f.rule for f in report.findings] == [SUPPRESSION_RULE_ID]

    def test_suppression_without_reason_is_a_finding(self):
        report = run_rules(
            {
                "core/model.py": (
                    "X = 1  # repro-lint: disable=RL-D01\n"
                )
            },
            "RL-D01",
        )
        assert [f.rule for f in report.findings] == [SUPPRESSION_RULE_ID]

    def test_malformed_directive_is_a_finding(self):
        report = run_rules(
            {
                "core/model.py": (
                    "X = 1  # repro-lint: enable=RL-D01 nope\n"
                )
            },
            "RL-D01",
        )
        assert [f.rule for f in report.findings] == [SUPPRESSION_RULE_ID]
        assert "malformed" in report.findings[0].message

    def test_prose_mentioning_repro_lint_is_not_a_directive(self):
        report = run_rules(
            {
                "core/model.py": (
                    "# The repro-lint engine checks this module.\n"
                    "X = 1\n"
                )
            },
            "RL-D01",
        )
        assert report.ok
        assert report.findings == []


class TestBaseline:
    def test_round_trip_covers_findings(self, tmp_path):
        project = make_project({"core/model.py": VIOLATION})
        engine = Engine()
        first = engine.run(project, baseline=None, only=["RL-D01"])
        assert len(first.findings) == 1

        baseline = Baseline.from_findings(
            first.findings, reason="grandfathered for the round-trip test"
        )
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)

        second = engine.run(project, baseline=loaded, only=["RL-D01"])
        assert second.ok
        assert len(second.baselined) == 1
        assert second.stale_baseline == []

    def test_fixed_finding_reports_stale_entry(self, tmp_path):
        project = make_project({"core/model.py": VIOLATION})
        engine = Engine()
        first = engine.run(project, baseline=None, only=["RL-D01"])
        baseline = Baseline.from_findings(
            first.findings, reason="grandfathered"
        )

        fixed = make_project(
            {
                "core/model.py": """
                import numpy as np

                def draw(seed):
                    return np.random.default_rng(seed)
                """
            }
        )
        report = engine.run(fixed, baseline=baseline, only=["RL-D01"])
        assert report.ok
        assert len(report.stale_baseline) == 1
        assert report.stale_baseline[0].rule == "RL-D01"

    def test_baseline_fingerprint_is_line_independent(self, tmp_path):
        project = make_project({"core/model.py": VIOLATION})
        engine = Engine()
        first = engine.run(project, baseline=None, only=["RL-D01"])
        baseline = Baseline.from_findings(first.findings, reason="pinned")

        shifted = make_project(
            {"core/model.py": "\n\n\n\n" + VIOLATION}
        )
        report = engine.run(shifted, baseline=baseline, only=["RL-D01"])
        assert report.ok
        assert len(report.baselined) == 1

    def test_load_rejects_entry_without_reason(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "rule": "RL-D01",
                            "path": "core/model.py",
                            "key": "draw:np.random.default_rng",
                            "reason": "",
                        }
                    ],
                }
            )
        )
        with pytest.raises(BaselineError):
            Baseline.load(path)
