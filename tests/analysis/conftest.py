"""Helpers for exercising repro-lint rules against in-memory snippets."""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import Dict, List

from repro.analysis.engine import Engine, Project, Report, load_source
from repro.analysis.findings import Finding


def make_project(files: Dict[str, str]) -> Project:
    """Build a :class:`Project` from ``{relpath: source}`` without disk I/O."""
    project = Project(root=Path("/virtual"))
    for rel, text in files.items():
        source = textwrap.dedent(text)
        project.files[rel] = load_source(rel, Path("/virtual") / rel, source)
    return project


def run_rules(files: Dict[str, str], *rule_ids: str) -> Report:
    """Run only ``rule_ids`` (plus load-time findings) over ``files``."""
    project = make_project(files)
    return Engine().run(project, baseline=None, only=list(rule_ids))


def findings_for(files: Dict[str, str], rule_id: str) -> List[Finding]:
    return run_rules(files, rule_id).findings
