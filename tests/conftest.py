"""Shared fixtures: small, fast scenario variants for unit tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fingerprint import FingerprintMatrix
from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.deployment import Deployment, build_paper_deployment
from repro.sim.scenario import Scenario, build_paper_scenario


@pytest.fixture(scope="session")
def paper_deployment() -> Deployment:
    """The Fig. 2 deployment (10 links, 96 cells)."""
    return build_paper_deployment()


@pytest.fixture(scope="session")
def paper_scenario() -> Scenario:
    """One frozen realization of the paper testbed."""
    return build_paper_scenario(seed=1234)


@pytest.fixture()
def fast_protocol() -> CollectionProtocol:
    """Few samples per cell: keeps survey-heavy tests quick."""
    return CollectionProtocol(samples_per_cell=5, empty_room_samples=10)


@pytest.fixture()
def collector(paper_scenario, fast_protocol) -> RssCollector:
    return RssCollector(paper_scenario, fast_protocol, seed=7)


@pytest.fixture(scope="session")
def surveyed_fingerprint(paper_scenario) -> FingerprintMatrix:
    """A day-0 full survey of the paper scenario (session-cached)."""
    coll = RssCollector(
        paper_scenario,
        CollectionProtocol(samples_per_cell=5, empty_room_samples=10),
        seed=99,
    )
    result = coll.collect_full_survey(0.0)
    return FingerprintMatrix(
        values=result.survey.matrix,
        empty_rss=result.survey.empty_rss,
        day=0.0,
        source="survey",
    )


def assert_deterministic(first: np.ndarray, second: np.ndarray) -> None:
    """Helper used by reproducibility tests."""
    np.testing.assert_array_equal(first, second)
