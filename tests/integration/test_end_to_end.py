"""Integration tests: the whole system working together across modules."""

import numpy as np
import pytest

from repro.baselines.rass import RassLocalizer
from repro.baselines.rti import RtiLocalizer
from repro.core.matching import ProbabilisticMatcher
from repro.core.pipeline import TafLoc, TafLocConfig
from repro.core.tracking import ParticleFilterTracker, TrackerConfig
from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.geometry import Point
from repro.sim.scenario import StructuralEvent, build_paper_scenario


@pytest.fixture(scope="module")
def scenario():
    return build_paper_scenario(seed=900)


@pytest.fixture(scope="module")
def commissioned(scenario):
    protocol = CollectionProtocol(samples_per_cell=5, empty_room_samples=10)
    system = TafLoc(RssCollector(scenario, protocol, seed=1), TafLocConfig(), seed=2)
    system.commission(0.0)
    return system


class TestFullLifecycle:
    def test_commission_update_localize_cycle(self, scenario, commissioned):
        """Commission at day 0, update at 30/60/90, localize after each."""
        for day in (30.0, 60.0, 90.0):
            report = commissioned.update(day)
            assert report.savings_factor > 5.0
            trace = RssCollector(scenario, seed=int(day)).live_trace(
                day, [8, 40, 77]
            )
            errors = commissioned.localization_errors(trace)
            assert np.all(errors < 8.0)  # never absurd
        assert commissioned.database.epoch_count == 4

    def test_update_cheaper_than_commission(self, scenario):
        protocol = CollectionProtocol(samples_per_cell=5, empty_room_samples=10)
        collector = RssCollector(scenario, protocol, seed=3)
        system = TafLoc(collector, TafLocConfig(), seed=4)
        before = collector.samples_taken
        system.commission(0.0)
        commission_cost = collector.samples_taken - before
        before = collector.samples_taken
        system.update(10.0)
        update_cost = collector.samples_taken - before
        assert update_cost < commission_cost / 5


class TestCrossSystemComparison:
    def test_same_trace_feeds_all_systems(self, scenario, commissioned):
        """All localizers consume identical frames (the Fig. 5 setup)."""
        day = 60.0
        report = commissioned.update(day)
        reconstructed = report.reconstruction.fingerprint
        stale = commissioned.database.initial()
        trace = RssCollector(scenario, seed=61).live_trace(
            day, list(range(0, 96, 6))
        )

        rti = RtiLocalizer(scenario.deployment, reconstructed.empty_rss)
        rass_fresh = RassLocalizer(
            scenario.deployment,
            reconstructed,
            live_empty_rss=reconstructed.empty_rss,
        )
        rass_stale = RassLocalizer(scenario.deployment, stale)

        taf = np.median(commissioned.localization_errors(trace))
        results = {
            "rti": np.median(rti.errors(trace)),
            "rass_fresh": np.median(rass_fresh.errors(trace)),
            "rass_stale": np.median(rass_stale.errors(trace)),
        }
        # Reconstruction must help RASS, and TafLoc must beat stale RASS.
        assert results["rass_fresh"] < results["rass_stale"]
        assert taf < results["rass_stale"]


class TestTrackingIntegration:
    def test_track_walk_through_room(self, scenario, commissioned):
        """Particle filter follows a walking target using reconstructed
        fingerprints."""
        day = 30.0
        commissioned.update(day)
        fingerprint = commissioned.database.at(day)
        matcher = ProbabilisticMatcher(
            fingerprint, scenario.deployment.grid, sigma_db=3.0
        )
        tracker = ParticleFilterTracker(
            matcher,
            scenario.deployment.room,
            TrackerConfig(process_sigma_m=0.5),
            seed=5,
        )
        # An interior path: the perimeter-link geometry (like any DfL
        # testbed) has weak coverage within half a cell of the walls.
        walk = RssCollector(scenario, seed=31).walk_trace(
            day,
            [
                Point(1.2, 1.2),
                Point(6.0, 1.2),
                Point(6.0, 3.6),
                Point(1.8, 3.6),
            ],
            step_m=0.4,
        )
        estimates = tracker.run(walk.rss)
        errors = [
            est.distance_to(Point(float(x), float(y)))
            for est, (x, y) in zip(estimates, walk.true_positions)
        ]
        # Skip the filter's burn-in frames, then demand decent tracking.
        settled = np.array(errors[5:])
        assert np.median(settled) < 2.0


class TestStructuralEvents:
    def test_event_degrades_then_update_recovers(self):
        """A furniture move mid-deployment hurts stale fingerprints; a TafLoc
        update afterwards restores accuracy (the 'changes in environment'
        story of the paper's introduction)."""
        scenario = build_paper_scenario(seed=901)
        rng = np.random.default_rng(0)
        offsets = rng.normal(0.0, 3.0, size=scenario.deployment.link_count)
        scenario.add_event(
            StructuralEvent(day=20.0, link_offsets_db=offsets, label="sofa moved")
        )
        protocol = CollectionProtocol(samples_per_cell=5, empty_room_samples=10)
        system = TafLoc(
            RssCollector(scenario, protocol, seed=6), TafLocConfig(), seed=7
        )
        system.commission(0.0)

        cells = list(range(0, 96, 4))
        trace = RssCollector(scenario, seed=21).live_trace(25.0, cells)
        stale_errors = np.median(system.localization_errors(trace))
        system.update(25.0)
        updated_errors = np.median(system.localization_errors(trace))
        assert updated_errors < stale_errors


class TestReproducibility:
    def test_full_pipeline_bitwise_reproducible(self, scenario):
        def run():
            protocol = CollectionProtocol(samples_per_cell=3, empty_room_samples=5)
            system = TafLoc(
                RssCollector(scenario, protocol, seed=8), TafLocConfig(), seed=9
            )
            system.commission(0.0)
            report = system.update(15.0)
            return report.reconstruction.fingerprint.values

        np.testing.assert_array_equal(run(), run())
