"""Unit tests for planar geometry primitives."""

import math

import numpy as np
import pytest

from repro.sim.geometry import Grid, Link, Point, Room, pairwise_distances


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_as_array(self):
        np.testing.assert_array_equal(Point(1.5, -2.0).as_array(), [1.5, -2.0])

    def test_translated(self):
        moved = Point(1, 2).translated(0.5, -1.0)
        assert moved == Point(1.5, 1.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 1.0


class TestLink:
    @pytest.fixture()
    def link(self):
        return Link(index=0, tx=Point(0, 0), rx=Point(10, 0))

    def test_length_and_midpoint(self, link):
        assert link.length == pytest.approx(10.0)
        assert link.midpoint == Point(5.0, 0.0)

    def test_distance_from_path_on_segment(self, link):
        assert link.distance_from_path(Point(5, 2)) == pytest.approx(2.0)

    def test_distance_from_path_beyond_endpoint(self, link):
        # Past the RX the distance is to the endpoint, not the infinite line.
        assert link.distance_from_path(Point(13, 4)) == pytest.approx(5.0)

    def test_excess_zero_on_path(self, link):
        assert link.excess_path_length(Point(4, 0)) == pytest.approx(0.0)

    def test_excess_positive_off_path(self, link):
        excess = link.excess_path_length(Point(5, 1))
        expected = 2 * math.hypot(5, 1) - 10
        assert excess == pytest.approx(expected)

    def test_excess_grows_with_offset(self, link):
        near = link.excess_path_length(Point(5, 0.5))
        far = link.excess_path_length(Point(5, 2.0))
        assert far > near

    def test_projection_parameter(self, link):
        assert link.projection_parameter(Point(0, 3)) == pytest.approx(0.0)
        assert link.projection_parameter(Point(5, 3)) == pytest.approx(0.5)
        assert link.projection_parameter(Point(20, 3)) == pytest.approx(1.0)

    def test_degenerate_link(self):
        dot = Link(index=0, tx=Point(1, 1), rx=Point(1, 1))
        assert dot.length == 0.0
        assert dot.distance_from_path(Point(4, 5)) == pytest.approx(5.0)
        assert dot.projection_parameter(Point(0, 0)) == 0.0


class TestRoom:
    def test_area_and_center(self):
        room = Room(4.0, 6.0)
        assert room.area == pytest.approx(24.0)
        assert room.center == Point(2.0, 3.0)

    def test_contains(self):
        room = Room(4.0, 6.0)
        assert room.contains(Point(0, 0))
        assert room.contains(Point(4, 6))
        assert not room.contains(Point(4.1, 3))

    @pytest.mark.parametrize("w,d", [(0, 1), (1, 0), (-1, 1)])
    def test_invalid_dimensions(self, w, d):
        with pytest.raises(ValueError):
            Room(w, d)


class TestGrid:
    @pytest.fixture()
    def grid(self):
        return Grid(Room(3.0, 1.8), 0.6)

    def test_dimensions(self, grid):
        assert grid.columns == 5
        assert grid.rows == 3
        assert grid.cell_count == 15

    def test_float_artifact_resistant(self):
        # 7.2 / 0.6 is not exactly 12 in floating point.
        grid = Grid(Room(7.2, 4.8), 0.6)
        assert grid.columns == 12
        assert grid.rows == 8

    def test_center_roundtrip(self, grid):
        for cell in range(grid.cell_count):
            assert grid.cell_at(grid.center_of(cell)) == cell

    def test_center_of_first_cell(self, grid):
        assert grid.center_of(0) == Point(0.3, 0.3)

    def test_center_out_of_range(self, grid):
        with pytest.raises(IndexError):
            grid.center_of(15)
        with pytest.raises(IndexError):
            grid.center_of(-1)

    def test_cell_at_clamps_outside(self, grid):
        assert grid.cell_at(Point(-1.0, -1.0)) == 0
        assert grid.cell_at(Point(99.0, 99.0)) == grid.cell_count - 1

    def test_neighbors_interior(self, grid):
        # Cell 7 is at column 2, row 1 — fully interior in a 5x3 grid.
        assert sorted(grid.neighbors_of(7)) == [2, 6, 8, 12]

    def test_neighbors_corner(self, grid):
        assert sorted(grid.neighbors_of(0)) == [1, 5]

    def test_centers_count(self, grid):
        assert len(grid.centers()) == grid.cell_count

    def test_iter_cells(self, grid):
        items = list(grid.iter_cells())
        assert items[0][0] == 0
        assert items[-1][0] == grid.cell_count - 1

    def test_cell_too_large(self):
        with pytest.raises(ValueError):
            Grid(Room(1.0, 1.0), 2.0)


class TestPairwiseDistances:
    def test_symmetry_and_zero_diagonal(self):
        points = [Point(0, 0), Point(3, 4), Point(-1, 1)]
        d = pairwise_distances(points)
        assert d.shape == (3, 3)
        np.testing.assert_allclose(d, d.T)
        np.testing.assert_allclose(np.diag(d), 0.0)
        assert d[0, 1] == pytest.approx(5.0)

    def test_empty(self):
        assert pairwise_distances([]).shape == (0, 0)
