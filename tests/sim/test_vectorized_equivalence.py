"""Vectorized-vs-loop equivalence for the simulation hot paths.

The collector pre-draws all randomness in a canonical order and then runs
either the broadcasted batch physics or the reference per-cell loop over the
scalar APIs; both must produce the same measurements bit for bit. The same
discipline applies one layer down (vectorized geometry and shadowing versus
their scalar counterparts) and to the counter-based RNG streams.
"""

import numpy as np
import pytest

from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.geometry import (
    Grid,
    Point,
    Room,
    excess_path_lengths,
    projection_parameters,
)
from repro.sim.interference import BurstyInterferenceModel
from repro.sim.scenario import build_paper_scenario
from repro.util.rng import counter_stream, stream_key


@pytest.fixture()
def scenario():
    return build_paper_scenario(seed=2024)


def make_pair(scenario, *, seed=31, interference=False):
    protocol = CollectionProtocol(samples_per_cell=4, empty_room_samples=6)
    def build(vectorized):
        interf = (
            BurstyInterferenceModel(
                links=scenario.deployment.link_count,
                burst_probability=0.25,
                seed=9,
            )
            if interference
            else None
        )
        return RssCollector(
            scenario, protocol, seed=seed, vectorized=vectorized, interference=interf
        )
    return build(True), build(False)


class TestCollectorEquivalence:
    @pytest.mark.parametrize("interference", [False, True])
    def test_survey_identical(self, scenario, interference):
        batch, loop = make_pair(scenario, interference=interference)
        a = batch.collect_full_survey(0.0)
        b = loop.collect_full_survey(0.0)
        np.testing.assert_array_equal(a.survey.matrix, b.survey.matrix)
        np.testing.assert_array_equal(a.survey.empty_rss, b.survey.empty_rss)
        assert batch.samples_taken == loop.samples_taken

    def test_partial_survey_identical(self, scenario):
        batch, loop = make_pair(scenario)
        cells = [3, 40, 77]
        np.testing.assert_array_equal(
            batch.collect_survey(5.0, cells).survey.matrix,
            loop.collect_survey(5.0, cells).survey.matrix,
        )

    @pytest.mark.parametrize("interference", [False, True])
    def test_walk_trace_identical(self, scenario, interference):
        batch, loop = make_pair(scenario, interference=interference)
        waypoints = [Point(0.5, 0.5), Point(5.0, 4.0), Point(1.0, 3.5)]
        a = batch.walk_trace(10.0, waypoints, step_m=0.4, averaging=2)
        b = loop.walk_trace(10.0, waypoints, step_m=0.4, averaging=2)
        np.testing.assert_array_equal(a.rss, b.rss)
        np.testing.assert_array_equal(a.true_cells, b.true_cells)
        np.testing.assert_array_equal(a.true_positions, b.true_positions)

    def test_live_trace_identical(self, scenario):
        batch, loop = make_pair(scenario)
        cells = [1, 50, 50, 93]
        a = batch.live_trace(7.0, cells, averaging=3)
        b = loop.live_trace(7.0, cells, averaging=3)
        np.testing.assert_array_equal(a.rss, b.rss)
        np.testing.assert_array_equal(a.true_positions, b.true_positions)

    def test_live_vector_multi_identical(self, scenario):
        batch, loop = make_pair(scenario)
        np.testing.assert_array_equal(
            batch.live_vector_multi(3.0, [10, 60], averaging=2),
            loop.live_vector_multi(3.0, [10, 60], averaging=2),
        )

    def test_vectorized_replays_per_seed(self, scenario):
        protocol = CollectionProtocol(samples_per_cell=3, empty_room_samples=5)
        a = RssCollector(scenario, protocol, seed=5).collect_full_survey(0.0)
        b = RssCollector(scenario, protocol, seed=5).collect_full_survey(0.0)
        np.testing.assert_array_equal(a.survey.matrix, b.survey.matrix)


class TestChannelBatch:
    def test_sample_batch_matches_sequential_samples(self, scenario):
        shadow = np.linspace(0.0, 3.0, scenario.deployment.link_count)
        drift = np.linspace(-1.0, 1.0, scenario.deployment.link_count)
        batch = scenario.channel.sample_batch(
            7, shadow_db=shadow, drift_db=drift, rng=np.random.default_rng(3)
        )
        rng = np.random.default_rng(3)
        singles = np.vstack(
            [
                scenario.channel.sample(shadow_db=shadow, drift_db=drift, rng=rng)
                for _ in range(7)
            ]
        )
        np.testing.assert_array_equal(batch, singles)

    def test_count_validated(self, scenario):
        with pytest.raises(ValueError, match="count"):
            scenario.channel.sample_batch(0)


class TestShadowingMatrix:
    def test_matrix_matches_vector_loop(self, scenario):
        links = scenario.deployment.links
        points = np.random.default_rng(0).uniform(0.0, 6.0, size=(25, 2))
        matrix = scenario.shadowing.attenuation_matrix(links, points)
        loop = np.vstack(
            [
                scenario.shadowing.attenuation_vector(links, Point(*p))
                for p in points
            ]
        )
        np.testing.assert_allclose(matrix, loop, rtol=1e-12, atol=1e-12)

    def test_base_class_fallback_used_by_custom_models(self, scenario):
        from repro.sim.shadowing import ShadowingModel

        class Constant(ShadowingModel):
            def attenuation(self, link, target):
                return 2.0

        matrix = Constant().attenuation_matrix(
            scenario.deployment.links, np.zeros((3, 2))
        )
        np.testing.assert_array_equal(
            matrix, np.full((3, scenario.deployment.link_count), 2.0)
        )


class TestVectorizedGeometry:
    def test_excess_path_lengths(self, scenario):
        links = scenario.deployment.links
        points = np.random.default_rng(1).uniform(-1.0, 7.0, size=(17, 2))
        matrix = excess_path_lengths(links, points)
        for i, point in enumerate(points):
            for j, link in enumerate(links):
                assert matrix[i, j] == pytest.approx(
                    link.excess_path_length(Point(*point)), abs=1e-12
                )

    def test_projection_parameters(self, scenario):
        links = scenario.deployment.links
        points = np.random.default_rng(2).uniform(-1.0, 7.0, size=(9, 2))
        matrix = projection_parameters(links, points)
        for i, point in enumerate(points):
            for j, link in enumerate(links):
                assert matrix[i, j] == pytest.approx(
                    link.projection_parameter(Point(*point)), abs=1e-12
                )

    def test_grid_cells_at_matches_scalar(self):
        grid = Grid(Room(4.2, 3.0), 0.6)
        points = np.random.default_rng(3).uniform(-0.5, 4.5, size=(50, 2))
        vector = grid.cells_at(points)
        for point, cell in zip(points, vector):
            assert cell == grid.cell_at(Point(*point))
        with pytest.raises(ValueError, match=r"\(n, 2\)"):
            grid.cells_at(points[:, 0])

    def test_grid_centers_array_matches_scalar(self):
        grid = Grid(Room(4.2, 3.0), 0.6)
        centers = grid.centers_array()
        assert centers.shape == (grid.cell_count, 2)
        for j in range(grid.cell_count):
            center = grid.center_of(j)
            np.testing.assert_array_equal(centers[j], [center.x, center.y])


class TestCounterStreams:
    def test_same_counters_same_stream(self):
        a = counter_stream(123, 4, 5).normal(size=8)
        b = counter_stream(123, 4, 5).normal(size=8)
        np.testing.assert_array_equal(a, b)

    def test_distinct_counters_distinct_streams(self):
        a = counter_stream(123, 4, 5).normal(size=8)
        b = counter_stream(123, 4, 6).normal(size=8)
        c = counter_stream(124, 4, 5).normal(size=8)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_batched_draws_match_looped_draws(self):
        batch = counter_stream(7, 0).normal(size=(4, 3))
        loop_rng = counter_stream(7, 0)
        loop = np.vstack([loop_rng.normal(size=3) for _ in range(4)])
        np.testing.assert_array_equal(batch, loop)

    def test_stream_key_stability(self):
        assert stream_key(99) == stream_key(99)
        assert stream_key(None) == 0
        gen_key = stream_key(np.random.default_rng(0))
        assert isinstance(gen_key, int)

    def test_stream_key_distinguishes_seed_sequences(self):
        root = np.random.SeedSequence(42)
        child_a, child_b = root.spawn(2)
        keys = {stream_key(root), stream_key(child_a), stream_key(child_b)}
        assert len(keys) == 3
        assert stream_key(np.random.SeedSequence([1, 2, 3])) != stream_key(
            np.random.SeedSequence([9, 9, 9])
        )


class TestInterferenceBatch:
    def test_batch_shape_and_distribution_flags(self):
        model = BurstyInterferenceModel(
            links=6, burst_probability=1.0, magnitude_db=(2.0, 2.0), seed=0
        )
        offsets = model.sample_offsets_batch(5)
        assert offsets.shape == (5, 6)
        np.testing.assert_allclose(offsets, -2.0)

    def test_count_validated(self):
        model = BurstyInterferenceModel(links=3, seed=0)
        with pytest.raises(ValueError, match="count"):
            model.sample_offsets_batch(0)
