"""Unit tests for the Scenario composition layer."""

import numpy as np
import pytest

from repro.sim.channel import ChannelModel
from repro.sim.deployment import build_paper_deployment
from repro.sim.drift import EntryFieldDrift, LinearDrift
from repro.sim.geometry import Point
from repro.sim.scenario import Scenario, StructuralEvent, build_paper_scenario
from repro.sim.shadowing import KnifeEdgeShadowingModel


@pytest.fixture()
def simple_scenario():
    deployment = build_paper_deployment()
    return Scenario(
        deployment=deployment,
        channel=ChannelModel(deployment.links, seed=0),
        shadowing=KnifeEdgeShadowingModel(),
        drift=LinearDrift(links=deployment.link_count, slope_db_per_day=0.1),
    )


class TestScenarioConstruction:
    def test_drift_link_mismatch_rejected(self):
        deployment = build_paper_deployment()
        with pytest.raises(ValueError, match="drift covers"):
            Scenario(
                deployment=deployment,
                channel=ChannelModel(deployment.links, seed=0),
                shadowing=KnifeEdgeShadowingModel(),
                drift=LinearDrift(links=3),
            )

    def test_entry_drift_shape_mismatch_rejected(self):
        deployment = build_paper_deployment()
        with pytest.raises(ValueError, match="entry_drift shape"):
            Scenario(
                deployment=deployment,
                channel=ChannelModel(deployment.links, seed=0),
                shadowing=KnifeEdgeShadowingModel(),
                drift=LinearDrift(links=deployment.link_count),
                entry_drift=EntryFieldDrift(links=2, cells=5),
            )

    def test_event_shape_validated(self, simple_scenario):
        with pytest.raises(ValueError):
            simple_scenario.add_event(
                StructuralEvent(day=1.0, link_offsets_db=np.zeros(3))
            )


class TestEnvironmentOffsets:
    def test_linear_drift_passthrough(self, simple_scenario):
        np.testing.assert_allclose(
            simple_scenario.environment_offsets(10.0),
            np.full(simple_scenario.deployment.link_count, 1.0),
        )

    def test_event_applies_from_its_day(self, simple_scenario):
        links = simple_scenario.deployment.link_count
        offsets = np.zeros(links)
        offsets[0] = -3.0
        simple_scenario.add_event(
            StructuralEvent(day=5.0, link_offsets_db=offsets, label="sofa")
        )
        before = simple_scenario.environment_offsets(4.9)
        after = simple_scenario.environment_offsets(5.1)
        assert after[0] - before[0] == pytest.approx(-3.0, abs=0.05)

    def test_negative_event_day_rejected(self):
        with pytest.raises(ValueError):
            StructuralEvent(day=-1.0, link_offsets_db=np.zeros(2))


class TestShadowQueries:
    def test_cell_and_point_agree_at_center(self, simple_scenario):
        grid = simple_scenario.deployment.grid
        cell = 17
        np.testing.assert_allclose(
            simple_scenario.shadow_at_cell(cell),
            simple_scenario.shadow_at_point(grid.center_of(cell)),
        )

    def test_true_rss_rejects_both_cell_and_point(self, simple_scenario):
        with pytest.raises(ValueError, match="at most one"):
            simple_scenario.true_rss(0.0, cell=0, point=Point(1, 1))

    def test_target_presence_changes_rss(self, simple_scenario):
        empty = simple_scenario.true_rss(0.0)
        occupied = simple_scenario.true_rss(0.0, cell=40)
        assert not np.allclose(empty, occupied)


class TestEntryDriftIntegration:
    def test_no_entry_drift_returns_zero(self, simple_scenario):
        np.testing.assert_array_equal(
            simple_scenario.entry_drift_at(10.0, 3),
            np.zeros(simple_scenario.deployment.link_count),
        )

    def test_weights_bounded(self):
        scenario = build_paper_scenario(seed=0)
        weights = scenario.entry_drift_weights()
        assert weights.shape == (
            scenario.deployment.link_count,
            scenario.deployment.cell_count,
        )
        assert np.all(weights >= 0.15 - 1e-9)
        assert np.all(weights <= 1.0 + 1e-9)

    def test_strong_interaction_gets_higher_weight(self):
        scenario = build_paper_scenario(seed=0)
        weights = scenario.entry_drift_weights()
        dips = np.abs(
            np.column_stack(
                [
                    scenario.shadow_at_cell(j)
                    for j in range(scenario.deployment.cell_count)
                ]
            )
        )
        strongest = np.unravel_index(np.argmax(dips), dips.shape)
        weakest = np.unravel_index(np.argmin(dips), dips.shape)
        assert weights[strongest] > weights[weakest]


class TestTrueFingerprintMatrix:
    def test_shape_and_determinism(self, simple_scenario):
        matrix = simple_scenario.true_fingerprint_matrix(0.0)
        assert matrix.shape == (
            simple_scenario.deployment.link_count,
            simple_scenario.deployment.cell_count,
        )
        np.testing.assert_array_equal(
            matrix, simple_scenario.true_fingerprint_matrix(0.0)
        )

    def test_columns_match_per_cell_queries(self, simple_scenario):
        matrix = simple_scenario.true_fingerprint_matrix(2.0)
        for cell in (0, 13, 95):
            np.testing.assert_allclose(
                matrix[:, cell], simple_scenario.true_rss(2.0, cell=cell)
            )


class TestBuildPaperScenario:
    def test_reproducible(self):
        a = build_paper_scenario(seed=5)
        b = build_paper_scenario(seed=5)
        np.testing.assert_array_equal(
            a.true_fingerprint_matrix(10.0), b.true_fingerprint_matrix(10.0)
        )

    def test_seeds_differ(self):
        a = build_paper_scenario(seed=5)
        b = build_paper_scenario(seed=6)
        assert not np.array_equal(
            a.true_fingerprint_matrix(10.0), b.true_fingerprint_matrix(10.0)
        )

    def test_default_geometry_is_papers(self):
        scenario = build_paper_scenario(seed=0)
        assert scenario.deployment.link_count == 10
        assert scenario.deployment.cell_count == 96
