"""Unit tests for target-shadowing models."""

import numpy as np
import pytest

from repro.sim.geometry import Link, Point
from repro.sim.shadowing import (
    CompositeShadowingModel,
    EllipseShadowingModel,
    HeterogeneousBlockingModel,
    KnifeEdgeShadowingModel,
    ScatteringModel,
)


@pytest.fixture()
def link():
    return Link(index=0, tx=Point(0, 0), rx=Point(6, 0))


@pytest.fixture()
def links():
    return [
        Link(index=0, tx=Point(0, 0), rx=Point(6, 0)),
        Link(index=1, tx=Point(0, 1), rx=Point(6, 1)),
    ]


class TestKnifeEdge:
    def test_peak_at_midpath(self, link):
        model = KnifeEdgeShadowingModel(peak_db=9.0, endpoint_taper=0.0)
        assert model.attenuation(link, Point(3, 0)) == pytest.approx(9.0)

    def test_decays_off_path(self, link):
        model = KnifeEdgeShadowingModel(endpoint_taper=0.0)
        on = model.attenuation(link, Point(3, 0))
        near = model.attenuation(link, Point(3, 0.5))
        far = model.attenuation(link, Point(3, 2.0))
        assert on > near > far >= 0

    def test_endpoint_taper_reduces_edges(self, link):
        model = KnifeEdgeShadowingModel(endpoint_taper=1.0)
        mid = model.attenuation(link, Point(3, 0))
        edge = model.attenuation(link, Point(0.01, 0))
        assert edge < 0.1 * mid

    def test_non_negative_everywhere(self, link):
        model = KnifeEdgeShadowingModel()
        rng = np.random.default_rng(0)
        for _ in range(50):
            p = Point(rng.uniform(-2, 8), rng.uniform(-3, 3))
            assert model.attenuation(link, p) >= 0

    def test_attenuation_vector(self, links):
        model = KnifeEdgeShadowingModel()
        vec = model.attenuation_vector(links, Point(3, 0))
        assert vec.shape == (2,)
        assert vec[0] > vec[1]  # target on link 0's path

    @pytest.mark.parametrize("kwargs", [
        {"peak_db": 0.0},
        {"decay_m": 0.0},
        {"endpoint_taper": 1.5},
    ])
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            KnifeEdgeShadowingModel(**kwargs)


class TestEllipse:
    def test_inside_is_peak(self, link):
        model = EllipseShadowingModel(peak_db=8.0, lambda_m=0.3)
        assert model.attenuation(link, Point(3, 0)) == pytest.approx(8.0)

    def test_outside_rolloff_is_zero(self, link):
        model = EllipseShadowingModel(lambda_m=0.2, rolloff_m=0.1)
        assert model.attenuation(link, Point(3, 3)) == 0.0

    def test_hard_edge_when_no_rolloff(self, link):
        model = EllipseShadowingModel(lambda_m=0.2, rolloff_m=0.0)
        values = {model.attenuation(link, Point(3, y)) for y in (0.0, 3.0)}
        assert values == {model.peak_db, 0.0}

    def test_rolloff_is_linear_band(self, link):
        model = EllipseShadowingModel(peak_db=8.0, lambda_m=0.2, rolloff_m=1.0)
        inside = model.attenuation(link, Point(3, 0))
        # A point whose excess length falls inside the rolloff band.
        band = model.attenuation(link, Point(3, 1.0))
        assert 0.0 < band < inside


class TestHeterogeneousBlocking:
    def test_peaks_within_range(self, links):
        model = HeterogeneousBlockingModel(links, peak_range_db=(4, 12), seed=0)
        for link in links:
            assert 4.0 <= model.peak_for(link) <= 12.0

    def test_peaks_differ_between_links(self):
        many = [
            Link(index=i, tx=Point(0, i), rx=Point(6, i)) for i in range(8)
        ]
        model = HeterogeneousBlockingModel(many, seed=0)
        peaks = {model.peak_for(l) for l in many}
        assert len(peaks) > 1

    def test_deterministic_per_seed(self, links):
        a = HeterogeneousBlockingModel(links, seed=3)
        b = HeterogeneousBlockingModel(links, seed=3)
        for link in links:
            assert a.peak_for(link) == b.peak_for(link)

    def test_unknown_link_rejected(self, links):
        model = HeterogeneousBlockingModel(links, seed=0)
        stranger = Link(index=99, tx=Point(0, 0), rx=Point(1, 1))
        with pytest.raises(ValueError, match="not part"):
            model.attenuation(stranger, Point(0, 0))

    def test_invalid_range(self, links):
        with pytest.raises(ValueError):
            HeterogeneousBlockingModel(links, peak_range_db=(5, 3), seed=0)


class TestScattering:
    def test_signed_output(self, links):
        model = ScatteringModel(links, amplitude_db=3.0, seed=0)
        values = [
            model.attenuation(links[0], Point(x, 0.2))
            for x in np.linspace(0.5, 5.5, 40)
        ]
        assert min(values) < 0 < max(values)

    def test_deterministic(self, links):
        a = ScatteringModel(links, seed=4)
        b = ScatteringModel(links, seed=4)
        p = Point(2.3, 0.7)
        assert a.attenuation(links[0], p) == b.attenuation(links[0], p)

    def test_decay_with_excess_path(self, links):
        model = ScatteringModel(links, amplitude_db=3.0, decay_m=0.3, seed=0)
        near = abs(model.attenuation(links[0], Point(3, 0.1)))
        far = abs(model.attenuation(links[0], Point(3, 4.0)))
        # The envelope must suppress the far value strongly (field values
        # vary, so compare against the theoretical envelope bound).
        assert far <= 3.0 * np.exp(-links[0].excess_path_length(Point(3, 4.0)) / 0.3) + 1e-9
        assert near <= 3.0 + 1e-9

    def test_amplitude_bound(self, links):
        model = ScatteringModel(links, amplitude_db=2.0, components=3, seed=1)
        rng = np.random.default_rng(0)
        for _ in range(100):
            p = Point(rng.uniform(0, 6), rng.uniform(-1, 2))
            value = model.attenuation(links[0], p)
            # |sum of sines| <= sum |amplitudes| <= sqrt(2 * components) after
            # RMS normalization.
            assert abs(value) <= 2.0 * np.sqrt(2 * 3) + 1e-9

    def test_unknown_link_rejected(self, links):
        model = ScatteringModel(links, seed=0)
        stranger = Link(index=42, tx=Point(0, 0), rx=Point(1, 0))
        with pytest.raises(ValueError, match="not part"):
            model.attenuation(stranger, Point(0, 0))

    def test_zero_amplitude(self, links):
        model = ScatteringModel(links, amplitude_db=0.0, seed=0)
        assert model.attenuation(links[0], Point(3, 0)) == 0.0


class TestComposite:
    def test_sums_components(self, link):
        base = KnifeEdgeShadowingModel(peak_db=5.0, endpoint_taper=0.0)
        double = CompositeShadowingModel(components=(base, base))
        p = Point(3, 0.2)
        assert double.attenuation(link, p) == pytest.approx(
            2 * base.attenuation(link, p)
        )

    def test_requires_components(self):
        with pytest.raises(ValueError):
            CompositeShadowingModel(components=())
