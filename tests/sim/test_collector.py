"""Unit tests for the RSS collector and its protocol accounting."""

import numpy as np
import pytest

from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.geometry import Point


class TestProtocol:
    def test_defaults_are_papers(self):
        protocol = CollectionProtocol()
        assert protocol.samples_per_cell == 100
        assert protocol.sample_period_s == 1.0

    def test_survey_seconds_matches_paper_example(self):
        """Paper: 100 samples at 1 Hz for (6/0.6)^2 = 100 grids ≈ 2.78 h."""
        protocol = CollectionProtocol()
        hours = protocol.survey_seconds(100) / 3600.0
        assert hours == pytest.approx(2.78, abs=0.01)

    @pytest.mark.parametrize("kwargs", [
        {"samples_per_cell": 0},
        {"sample_period_s": 0.0},
        {"empty_room_samples": 0},
        {"survey_jitter": 1.5},
        {"live_jitter": -0.1},
    ])
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            CollectionProtocol(**kwargs)


class TestEmptyRoom:
    def test_vector_shape(self, collector, paper_scenario):
        empty = collector.collect_empty_room(0.0)
        assert empty.shape == (paper_scenario.deployment.link_count,)

    def test_close_to_true_empty_rss(self, collector, paper_scenario):
        empty = collector.collect_empty_room(0.0)
        truth = paper_scenario.true_rss(0.0)
        np.testing.assert_allclose(empty, truth, atol=1.5)


class TestSurveys:
    def test_full_survey_shape(self, collector, paper_scenario):
        result = collector.collect_full_survey(0.0)
        assert result.survey.matrix.shape == (
            paper_scenario.deployment.link_count,
            paper_scenario.deployment.cell_count,
        )

    def test_survey_cost_accounting(self, collector, paper_scenario, fast_protocol):
        result = collector.collect_full_survey(0.0)
        cells = paper_scenario.deployment.cell_count
        assert result.samples_taken == cells * fast_protocol.samples_per_cell
        assert result.seconds_spent == pytest.approx(
            cells * fast_protocol.samples_per_cell * fast_protocol.sample_period_s
        )

    def test_partial_survey(self, collector):
        result = collector.collect_survey(0.0, [3, 17, 42])
        assert result.survey.matrix.shape[1] == 3
        np.testing.assert_array_equal(result.survey.cells, [3, 17, 42])

    def test_partial_survey_cheaper(self, collector):
        partial = collector.collect_survey(0.0, [0, 1])
        full = collector.collect_full_survey(0.0)
        assert partial.seconds_spent < full.seconds_spent

    def test_survey_columns_near_truth(self, paper_scenario, fast_protocol):
        collector = RssCollector(paper_scenario, fast_protocol, seed=0)
        result = collector.collect_survey(0.0, [40])
        truth = paper_scenario.true_rss(0.0, cell=40)
        # Stance jitter + noise allow a few dB; structure must match.
        np.testing.assert_allclose(result.survey.matrix[:, 0], truth, atol=5.0)

    def test_invalid_cells_rejected(self, collector):
        with pytest.raises(ValueError):
            collector.collect_survey(0.0, [0, 9999])

    def test_samples_taken_accumulates(self, collector):
        before = collector.samples_taken
        collector.collect_survey(0.0, [0])
        assert collector.samples_taken > before


class TestLiveMeasurement:
    def test_live_vector_shape(self, collector, paper_scenario):
        vector = collector.live_vector(0.0, cell=10)
        assert vector.shape == (paper_scenario.deployment.link_count,)

    def test_live_vector_point(self, collector):
        vector = collector.live_vector(0.0, point=Point(1.0, 1.0))
        assert np.all(np.isfinite(vector))

    def test_averaging_reduces_noise(self, paper_scenario):
        protocol = CollectionProtocol(samples_per_cell=5, live_jitter=0.0)
        single, averaged = [], []
        truth = paper_scenario.true_rss(0.0, cell=20)
        for seed in range(30):
            coll = RssCollector(paper_scenario, protocol, seed=seed)
            single.append(np.abs(coll.live_vector(0.0, cell=20) - truth).mean())
            coll2 = RssCollector(paper_scenario, protocol, seed=1000 + seed)
            averaged.append(
                np.abs(coll2.live_vector(0.0, cell=20, averaging=25) - truth).mean()
            )
        assert np.mean(averaged) < np.mean(single)

    def test_invalid_averaging(self, collector):
        with pytest.raises(ValueError):
            collector.live_vector(0.0, cell=0, averaging=0)

    def test_cell_and_point_mutually_exclusive(self, collector):
        with pytest.raises(ValueError, match="at most one"):
            collector.live_vector(0.0, cell=0, point=Point(0, 0))


class TestTraces:
    def test_live_trace_fields(self, collector):
        trace = collector.live_trace(0.0, [1, 2, 3, 2])
        assert trace.frame_count == 4
        np.testing.assert_array_equal(trace.true_cells, [1, 2, 3, 2])
        assert trace.true_positions.shape == (4, 2)

    def test_live_trace_positions_inside_cells(self, collector, paper_scenario):
        grid = paper_scenario.deployment.grid
        trace = collector.live_trace(0.0, list(range(10)))
        for cell, (x, y) in zip(trace.true_cells, trace.true_positions):
            assert grid.cell_at(Point(float(x), float(y))) == cell

    def test_walk_trace(self, collector, paper_scenario):
        room = paper_scenario.deployment.room
        waypoints = [Point(0.5, 0.5), Point(room.width - 0.5, room.depth - 0.5)]
        trace = collector.walk_trace(0.0, waypoints, step_m=0.5)
        assert trace.frame_count >= 2
        # Path endpoints respected.
        np.testing.assert_allclose(trace.true_positions[0], [0.5, 0.5])
        np.testing.assert_allclose(
            trace.true_positions[-1], [room.width - 0.5, room.depth - 0.5]
        )

    def test_walk_requires_two_waypoints(self, collector):
        with pytest.raises(ValueError, match="two waypoints"):
            collector.walk_trace(0.0, [Point(0, 0)])

    def test_walk_step_validated(self, collector):
        with pytest.raises(ValueError):
            collector.walk_trace(0.0, [Point(0, 0), Point(1, 1)], step_m=0.0)


class TestDeterminism:
    def test_same_seed_same_survey(self, paper_scenario, fast_protocol):
        a = RssCollector(paper_scenario, fast_protocol, seed=11)
        b = RssCollector(paper_scenario, fast_protocol, seed=11)
        np.testing.assert_array_equal(
            a.collect_full_survey(0.0).survey.matrix,
            b.collect_full_survey(0.0).survey.matrix,
        )

    def test_different_seed_different_survey(self, paper_scenario, fast_protocol):
        a = RssCollector(paper_scenario, fast_protocol, seed=11)
        b = RssCollector(paper_scenario, fast_protocol, seed=12)
        assert not np.array_equal(
            a.collect_full_survey(0.0).survey.matrix,
            b.collect_full_survey(0.0).survey.matrix,
        )
