"""Unit tests for deployment builders."""

import numpy as np
import pytest

from repro.sim.deployment import (
    Deployment,
    build_paper_deployment,
    build_square_deployment,
)
from repro.sim.geometry import Grid, Link, Point, Room


class TestPaperDeployment:
    @pytest.fixture(scope="class")
    def deployment(self):
        return build_paper_deployment()

    def test_paper_counts(self, deployment):
        """Fig. 2: 10 links, 96 grids of 0.6 m x 0.6 m."""
        assert deployment.link_count == 10
        assert deployment.cell_count == 96
        assert deployment.grid.cell_size == pytest.approx(0.6)

    def test_grid_dimensions(self, deployment):
        assert deployment.grid.columns == 12
        assert deployment.grid.rows == 8

    def test_links_span_monitored_region(self, deployment):
        room = deployment.room
        for link in deployment.links:
            assert room.contains(link.tx)
            assert room.contains(link.rx)
            assert link.length > 0

    def test_crossing_orientations(self, deployment):
        """Both horizontal and vertical links exist (2-D resolution)."""
        horizontals = [
            l for l in deployment.links if abs(l.tx.y - l.rx.y) < 1e-9
        ]
        verticals = [
            l for l in deployment.links if abs(l.tx.x - l.rx.x) < 1e-9
        ]
        assert len(horizontals) == 5
        assert len(verticals) == 5

    def test_link_indices_sequential(self, deployment):
        assert [l.index for l in deployment.links] == list(range(10))

    def test_adjacent_pairs_same_orientation(self, deployment):
        pairs = deployment.adjacent_link_pairs()
        assert len(pairs) == 8  # 4 within each 5-link orientation group
        for a, b in pairs:
            la, lb = deployment.links[a], deployment.links[b]
            a_horizontal = abs(la.tx.y - la.rx.y) < 1e-9
            b_horizontal = abs(lb.tx.y - lb.rx.y) < 1e-9
            assert a_horizontal == b_horizontal

    def test_link_lengths_vector(self, deployment):
        lengths = deployment.link_lengths()
        assert lengths.shape == (10,)
        assert np.all(lengths > 0)

    def test_ascii_floor_plan_renders(self, deployment):
        plan = deployment.ascii_floor_plan()
        assert "L" in plan
        assert "." in plan
        assert plan.startswith("+")

    def test_monitored_region_must_fit(self):
        with pytest.raises(ValueError, match="does not fit"):
            build_paper_deployment(room_width=3.0, monitored_columns=12)


class TestSquareDeployment:
    def test_cell_count_scales_with_edge(self):
        small = build_square_deployment(6.0)
        large = build_square_deployment(12.0)
        assert small.cell_count == 100  # (6 / 0.6)^2
        assert large.cell_count == 400

    def test_link_count_scales(self):
        small = build_square_deployment(6.0)
        large = build_square_deployment(24.0)
        assert large.link_count > small.link_count

    def test_paper_fig4_sizes_buildable(self):
        for edge in (6.0, 12.0, 18.0, 24.0, 30.0, 36.0):
            deployment = build_square_deployment(edge)
            assert deployment.cell_count == int(edge / 0.6) ** 2

    def test_invalid_edge(self):
        with pytest.raises(ValueError):
            build_square_deployment(0.0)


class TestDeploymentValidation:
    def test_rejects_empty_links(self):
        room = Room(2.0, 2.0)
        with pytest.raises(ValueError, match="at least one link"):
            Deployment(room=room, grid=Grid(room, 0.5), links=[])

    def test_rejects_links_outside_room(self):
        room = Room(2.0, 2.0)
        bad = Link(index=0, tx=Point(0, 0), rx=Point(5.0, 0))
        with pytest.raises(ValueError, match="outside"):
            Deployment(room=room, grid=Grid(room, 0.5), links=[bad])
