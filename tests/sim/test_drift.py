"""Unit tests for drift processes, including the paper-anchor calibration."""

import numpy as np
import pytest

from repro.sim.drift import (
    CompositeDrift,
    EntryFieldDrift,
    GaussMarkovDrift,
    LinearDrift,
    RandomWalkDrift,
    calibrated_paper_drift,
)


class TestGaussMarkov:
    def test_zero_at_day_zero(self):
        drift = GaussMarkovDrift(links=4, seed=0)
        np.testing.assert_array_equal(drift.offsets(0.0), np.zeros(4))

    def test_deterministic_queries(self):
        drift = GaussMarkovDrift(links=4, seed=0)
        np.testing.assert_array_equal(drift.offsets(10.0), drift.offsets(10.0))

    def test_out_of_order_queries_agree(self):
        a = GaussMarkovDrift(links=3, seed=1)
        b = GaussMarkovDrift(links=3, seed=1)
        first = a.offsets(30.0).copy()
        b.offsets(5.0)
        np.testing.assert_array_equal(b.offsets(30.0), first)

    def test_interpolation_between_days(self):
        drift = GaussMarkovDrift(links=2, seed=2)
        lo, hi = drift.offsets(3.0), drift.offsets(4.0)
        mid = drift.offsets(3.5)
        np.testing.assert_allclose(mid, 0.5 * (lo + hi))

    def test_horizon_enforced(self):
        drift = GaussMarkovDrift(links=2, horizon_days=10, seed=0)
        with pytest.raises(ValueError, match="horizon"):
            drift.offsets(11.0)

    def test_negative_day_rejected(self):
        drift = GaussMarkovDrift(links=2, seed=0)
        with pytest.raises(ValueError):
            drift.offsets(-1.0)

    def test_magnitude_grows_then_saturates(self):
        """Ensemble |drift| grows with day and saturates (mean reversion)."""
        gaps = (2.0, 10.0, 60.0, 300.0)
        means = {g: [] for g in gaps}
        for seed in range(30):
            drift = GaussMarkovDrift(links=6, seed=seed)
            for g in gaps:
                means[g].append(np.abs(drift.offsets(g)).mean())
        averaged = [np.mean(means[g]) for g in gaps]
        assert averaged[0] < averaged[1] < averaged[2]
        # Saturation: growth from 60 to 300 days is modest.
        assert averaged[3] < 2.0 * averaged[2]

    @pytest.mark.parametrize("kwargs", [
        {"links": 0},
        {"links": 2, "rho": 1.0},
        {"links": 2, "link_correlation": 1.5},
        {"links": 2, "horizon_days": 0},
    ])
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            GaussMarkovDrift(**kwargs)


class TestPaperCalibration:
    def test_anchor_magnitudes(self):
        """The paper: RSS changes ~2.5 dBm after 5 days, ~6 dBm after 45.

        Ensemble means must land within a tolerant band of those anchors.
        """
        five, forty_five = [], []
        for seed in range(40):
            drift = calibrated_paper_drift(10, seed=seed)
            five.append(np.abs(drift.offsets(5.0)).mean())
            forty_five.append(np.abs(drift.offsets(45.0)).mean())
        assert np.mean(five) == pytest.approx(2.5, abs=1.0)
        assert np.mean(forty_five) == pytest.approx(6.0, abs=2.0)

    def test_growth_ordering(self):
        values = []
        for seed in range(20):
            drift = calibrated_paper_drift(10, seed=seed)
            values.append(
                [np.abs(drift.offsets(d)).mean() for d in (5.0, 45.0)]
            )
        means = np.mean(values, axis=0)
        assert means[1] > means[0]


class TestRandomWalk:
    def test_grows_without_saturation(self):
        gaps = (10.0, 40.0, 160.0)
        means = {g: [] for g in gaps}
        for seed in range(30):
            drift = RandomWalkDrift(links=4, horizon_days=200, seed=seed)
            for g in gaps:
                means[g].append(np.abs(drift.offsets(g)).mean())
        averaged = [np.mean(means[g]) for g in gaps]
        assert averaged[0] < averaged[1] < averaged[2]
        # sqrt growth: quadrupling the gap roughly doubles the magnitude.
        assert averaged[2] / averaged[1] == pytest.approx(2.0, rel=0.5)

    def test_zero_at_origin(self):
        drift = RandomWalkDrift(links=3, seed=0)
        np.testing.assert_array_equal(drift.offsets(0.0), np.zeros(3))


class TestLinearDrift:
    def test_exact_values(self):
        drift = LinearDrift(links=3, slope_db_per_day=0.5)
        np.testing.assert_allclose(drift.offsets(4.0), np.full(3, 2.0))

    def test_negative_day_rejected(self):
        with pytest.raises(ValueError):
            LinearDrift(links=1).offsets(-0.1)


class TestCompositeDrift:
    def test_sums_components(self):
        combined = CompositeDrift(
            components=[
                LinearDrift(links=2, slope_db_per_day=1.0),
                LinearDrift(links=2, slope_db_per_day=0.5),
            ]
        )
        np.testing.assert_allclose(combined.offsets(2.0), np.full(2, 3.0))

    def test_link_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="disagree"):
            CompositeDrift(
                components=[LinearDrift(links=2), LinearDrift(links=3)]
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeDrift(components=[])


class TestEntryFieldDrift:
    def test_zero_at_day_zero(self):
        drift = EntryFieldDrift(links=3, cells=8, seed=0)
        np.testing.assert_array_equal(drift.offsets(0.0), np.zeros((3, 8)))

    def test_shape(self):
        drift = EntryFieldDrift(links=3, cells=8, seed=0)
        assert drift.offsets(5.0).shape == (3, 8)

    def test_query_order_invariance(self):
        a = EntryFieldDrift(links=2, cells=4, seed=3)
        b = EntryFieldDrift(links=2, cells=4, seed=3)
        target = a.offsets(20.0).copy()
        b.offsets(7.0)
        b.offsets(33.0)
        np.testing.assert_array_equal(b.offsets(20.0), target)

    def test_interpolation(self):
        drift = EntryFieldDrift(links=2, cells=4, seed=1)
        lo, hi = drift.offsets(2.0), drift.offsets(3.0)
        np.testing.assert_allclose(drift.offsets(2.25), 0.75 * lo + 0.25 * hi)

    def test_fast_component_saturates_quickly(self):
        magnitudes = []
        for seed in range(20):
            drift = EntryFieldDrift(
                links=4, cells=10, slow_stat_std=0.0, seed=seed
            )
            magnitudes.append(
                [np.abs(drift.offsets(d)).mean() for d in (3.0, 30.0)]
            )
        means = np.mean(magnitudes, axis=0)
        # Fast component (rho=0.6) is essentially stationary by day 3.
        assert means[1] == pytest.approx(means[0], rel=0.2)

    def test_slow_component_keeps_growing(self):
        magnitudes = []
        for seed in range(20):
            drift = EntryFieldDrift(
                links=4, cells=10, fast_stat_std=0.0, seed=seed
            )
            magnitudes.append(
                [np.abs(drift.offsets(d)).mean() for d in (5.0, 90.0)]
            )
        means = np.mean(magnitudes, axis=0)
        assert means[1] > 2.0 * means[0]

    def test_smooth_innovations_are_spatially_correlated(self):
        rough = EntryFieldDrift(links=1, cells=64, seed=5)
        smooth = EntryFieldDrift(
            links=1, cells=64, grid_rows=8, grid_columns=8, seed=5
        )

        def neighbor_corr(field):
            grid = field.reshape(8, 8)
            a = grid[:, :-1].ravel()
            b = grid[:, 1:].ravel()
            return np.corrcoef(a, b)[0, 1]

        # Compare the slow components at a long horizon.
        rough_field = rough._slow[0]  # force simulation first
        rough.offsets(60.0)
        smooth.offsets(60.0)
        del rough_field
        assert neighbor_corr(smooth._slow[60][0]) > neighbor_corr(
            rough._slow[60][0]
        ) + 0.2

    def test_grid_mismatch_rejected(self):
        with pytest.raises(ValueError, match="does not tile"):
            EntryFieldDrift(links=2, cells=10, grid_rows=3, grid_columns=4)

    def test_negative_day_rejected(self):
        with pytest.raises(ValueError):
            EntryFieldDrift(links=1, cells=1).offsets(-2.0)
