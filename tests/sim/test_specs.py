"""Tests for the declarative scenario specs and the registry."""

import dataclasses

import numpy as np
import pytest

from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.scenario import build_paper_scenario
from repro.sim.specs import (
    DriftSpec,
    EventSpec,
    GeometrySpec,
    ScenarioSpec,
    as_scenario_spec,
    build_deployment,
    build_scenario,
    get_scenario_spec,
    list_scenarios,
    scenario_names,
)

EXPECTED_NAMES = {
    "paper",
    "square-6m",
    "square-12m",
    "warehouse",
    "corridor",
    "atrium",
    "dense-office",
}


class TestRegistry:
    def test_expected_scenarios_registered(self):
        assert EXPECTED_NAMES <= set(scenario_names())

    def test_square_pattern_resolves(self):
        spec = get_scenario_spec("square-9m")
        assert spec.geometry.width_m == 9.0
        assert spec.geometry.kind == "perimeter"

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario_spec("submarine")
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario_spec("square-xlm")

    @pytest.mark.parametrize(
        "name", ["square-infm", "square-+infm", "square--infm", "square-nanm",
                 "square-1e400m"]
    )
    def test_non_finite_square_edge_rejected_with_valueerror(self, name):
        # The PR-4 bugfix: these used to leak OverflowError (or a cryptic
        # NaN-conversion error) out of geometry construction, breaking the
        # registry's documented KeyError/ValueError contract.
        with pytest.raises(ValueError, match="finite"):
            get_scenario_spec(name)

    @pytest.mark.parametrize("name", ["square-0m", "square--5m"])
    def test_non_positive_square_edge_rejected_with_valueerror(self, name):
        with pytest.raises(ValueError):
            get_scenario_spec(name)

    def test_list_scenarios_matches_names(self):
        specs = list_scenarios()
        assert list(specs) == scenario_names()
        for name, spec in specs.items():
            assert spec.name == name
            assert spec.description

    def test_every_registered_spec_builds(self):
        for name in scenario_names():
            scenario = build_scenario(get_scenario_spec(name, seed=1))
            assert scenario.deployment.link_count >= 2
            assert scenario.deployment.cell_count >= 4
            # The world answers the core query on day 0 and a later day.
            assert scenario.true_rss(0.0).shape == (
                scenario.deployment.link_count,
            )
            assert np.isfinite(scenario.true_rss(33.5)).all()

    def test_as_scenario_spec_accepts_all_forms(self):
        by_name = as_scenario_spec("corridor")
        by_obj = as_scenario_spec(by_name)
        by_dict = as_scenario_spec(by_name.to_dict())
        assert by_obj == by_name == by_dict
        with pytest.raises(TypeError, match="expected ScenarioSpec"):
            as_scenario_spec(3.14)


class TestSerialization:
    @pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
    def test_round_trip_equality(self, name):
        spec = get_scenario_spec(name, seed=42)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_round_trip_scenario_bit_identical(self):
        """Spec -> dict -> JSON -> spec must realize the identical world."""
        for name in ("paper", "warehouse", "atrium"):
            spec = get_scenario_spec(name, seed=7)
            rebuilt = ScenarioSpec.from_json(spec.to_json())
            original = build_scenario(spec)
            clone = build_scenario(rebuilt)
            np.testing.assert_array_equal(
                original.true_fingerprint_matrix(45.0),
                clone.true_fingerprint_matrix(45.0),
            )
            survey_a = RssCollector(
                original, CollectionProtocol(samples_per_cell=3), seed=5
            ).collect_full_survey(10.0)
            survey_b = RssCollector(
                clone, CollectionProtocol(samples_per_cell=3), seed=5
            ).collect_full_survey(10.0)
            np.testing.assert_array_equal(
                survey_a.survey.matrix, survey_b.survey.matrix
            )

    def test_from_file(self, tmp_path):
        spec = get_scenario_spec("corridor", seed=3)
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        assert ScenarioSpec.from_file(path) == spec

    def test_with_seed(self):
        spec = get_scenario_spec("paper")
        assert spec.with_seed(9).seed == 9
        assert spec.seed == 0  # frozen: the original is untouched


class TestBuildScenario:
    def test_paper_spec_matches_build_paper_scenario(self):
        """The registry `paper` entry realizes the exact pre-registry world."""
        via_spec = build_scenario(get_scenario_spec("paper", seed=77))
        via_wrapper = build_paper_scenario(seed=77)
        np.testing.assert_array_equal(
            via_spec.true_fingerprint_matrix(45.0),
            via_wrapper.true_fingerprint_matrix(45.0),
        )

    def test_seed_changes_realization(self):
        spec = get_scenario_spec("warehouse")
        a = build_scenario(spec.with_seed(1))
        b = build_scenario(spec.with_seed(2))
        assert not np.array_equal(a.true_rss(0.0), b.true_rss(0.0))

    def test_events_realized_from_spec(self):
        spec = get_scenario_spec("atrium", seed=5)
        scenario = build_scenario(spec)
        assert len(scenario.events) == len(spec.events) == 2
        # The first event perturbs offsets from its day onward.
        before = scenario.environment_offsets(scenario.events[0].day - 1.0)
        after = scenario.environment_offsets(scenario.events[0].day + 1e-6)
        assert not np.array_equal(before, after)

    def test_interference_spec_reaches_collectors(self):
        scenario = build_scenario(get_scenario_spec("atrium", seed=1))
        collector = RssCollector(scenario, seed=2)
        assert collector.interference is not None
        assert (
            collector.interference.links == scenario.deployment.link_count
        )
        # Quiet scenarios keep interference off.
        quiet = build_scenario(get_scenario_spec("paper", seed=1))
        assert RssCollector(quiet, seed=2).interference is None

    def test_dense_office_doubles_link_density(self):
        paper = build_deployment(get_scenario_spec("paper").geometry)
        dense = build_deployment(get_scenario_spec("dense-office").geometry)
        assert dense.link_count == 2 * paper.link_count
        assert dense.cell_count == paper.cell_count


class TestComponentValidation:
    def test_geometry_validated(self):
        with pytest.raises(ValueError, match="kind"):
            GeometrySpec(kind="donut")
        with pytest.raises(ValueError, match="link_count"):
            GeometrySpec(link_count=1)

    def test_drift_validated(self):
        with pytest.raises(ValueError, match="model"):
            DriftSpec(model="brownian-bridge")

    def test_event_validated(self):
        with pytest.raises(ValueError, match="link_fraction"):
            EventSpec(day=1.0, link_fraction=0.0)
        with pytest.raises(ValueError, match="day"):
            EventSpec(day=-1.0)

    def test_custom_spec_replace(self):
        spec = dataclasses.replace(
            get_scenario_spec("paper"),
            name="tiny",
            geometry=GeometrySpec(
                kind="perimeter", width_m=3.0, depth_m=3.0, link_count=4
            ),
        )
        scenario = build_scenario(spec.with_seed(4))
        assert scenario.deployment.cell_count == 25
        assert scenario.deployment.link_count == 4
