"""Unit tests for interference injection (failure injection)."""

import numpy as np
import pytest

from repro.core.detection import PresenceDetector
from repro.sim.collector import RssCollector
from repro.sim.interference import BurstyInterferenceModel
from repro.sim.scenario import build_paper_scenario


class TestBurstyInterferenceModel:
    def test_offsets_shape(self):
        model = BurstyInterferenceModel(links=8, seed=0)
        assert model.sample_offsets().shape == (8,)

    def test_hit_rate_matches_probability(self):
        model = BurstyInterferenceModel(links=4, burst_probability=0.2, seed=1)
        hits = sum(
            np.count_nonzero(model.sample_offsets()) for _ in range(500)
        )
        rate = hits / (500 * 4)
        assert rate == pytest.approx(0.2, abs=0.05)

    def test_zero_probability_silent(self):
        model = BurstyInterferenceModel(links=4, burst_probability=0.0, seed=0)
        for _ in range(20):
            np.testing.assert_array_equal(model.sample_offsets(), np.zeros(4))

    def test_negative_direction(self):
        model = BurstyInterferenceModel(
            links=6, burst_probability=1.0, direction="negative", seed=2
        )
        assert np.all(model.sample_offsets() < 0)

    def test_positive_direction(self):
        model = BurstyInterferenceModel(
            links=6, burst_probability=1.0, direction="positive", seed=2
        )
        assert np.all(model.sample_offsets() > 0)

    def test_both_directions_mix(self):
        model = BurstyInterferenceModel(
            links=50, burst_probability=1.0, direction="both", seed=3
        )
        offsets = model.sample_offsets()
        assert (offsets > 0).any() and (offsets < 0).any()

    def test_magnitude_band(self):
        model = BurstyInterferenceModel(
            links=20, burst_probability=1.0, magnitude_db=(2.0, 5.0), seed=4
        )
        magnitudes = np.abs(model.sample_offsets())
        assert magnitudes.min() >= 2.0
        assert magnitudes.max() <= 5.0

    @pytest.mark.parametrize("kwargs", [
        {"links": 0},
        {"links": 2, "burst_probability": 1.5},
        {"links": 2, "magnitude_db": (5.0, 2.0)},
        {"links": 2, "direction": "sideways"},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            BurstyInterferenceModel(**kwargs)


class TestCollectorIntegration:
    def test_link_count_validated(self):
        scenario = build_paper_scenario(seed=60)
        with pytest.raises(ValueError, match="interference covers"):
            RssCollector(
                scenario,
                seed=0,
                interference=BurstyInterferenceModel(links=3, seed=0),
            )

    def test_interference_perturbs_samples(self):
        scenario = build_paper_scenario(seed=61)
        clean = RssCollector(scenario, seed=5)
        noisy = RssCollector(
            scenario,
            seed=5,
            interference=BurstyInterferenceModel(
                links=scenario.deployment.link_count,
                burst_probability=0.5,
                seed=9,
            ),
        )
        clean_frames = np.vstack([clean.live_vector(0.0) for _ in range(20)])
        noisy_frames = np.vstack([noisy.live_vector(0.0) for _ in range(20)])
        assert np.abs(noisy_frames - clean_frames).max() > 2.0

    def test_survey_averaging_suppresses_interference(self):
        """Averaged 100-sample surveys tolerate moderate burst rates: the
        corrupted survey stays within ~a couple dB of the clean one."""
        scenario = build_paper_scenario(seed=62)
        clean = RssCollector(scenario, seed=7)
        noisy = RssCollector(
            scenario,
            seed=7,
            interference=BurstyInterferenceModel(
                links=scenario.deployment.link_count,
                burst_probability=0.05,
                seed=11,
            ),
        )
        clean_col = clean.collect_survey(0.0, [40]).survey.matrix[:, 0]
        noisy_col = noisy.collect_survey(0.0, [40]).survey.matrix[:, 0]
        assert np.abs(noisy_col - clean_col).mean() < 2.0

    def test_detector_survives_interference_calibration(self):
        """Calibrating the presence detector *under* interference widens its
        threshold so interference alone does not fire it constantly."""
        scenario = build_paper_scenario(seed=63)
        collector = RssCollector(
            scenario,
            seed=8,
            interference=BurstyInterferenceModel(
                links=scenario.deployment.link_count,
                burst_probability=0.1,
                seed=13,
            ),
        )
        frames = np.vstack([collector.live_vector(0.0) for _ in range(40)])
        detector = PresenceDetector(frames[:20], k=4.0)
        false_alarms = sum(detector.detect(f).present for f in frames[20:])
        assert false_alarms <= 4
