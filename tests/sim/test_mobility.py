"""Unit tests for mobility models."""

import pytest

from repro.sim.collector import RssCollector
from repro.sim.geometry import Point, Room
from repro.sim.mobility import (
    RandomWalkModel,
    RandomWaypointModel,
    ScriptedRoute,
    collect_mobility_trace,
)
from repro.sim.scenario import build_paper_scenario


@pytest.fixture()
def room():
    return Room(7.2, 4.8)


class TestRandomWaypoint:
    def test_positions_stay_inside_margin(self, room):
        model = RandomWaypointModel(room, margin_m=0.3, seed=0)
        for p in model.positions(100):
            assert 0.3 - 1e-9 <= p.x <= room.width - 0.3 + 1e-9
            assert 0.3 - 1e-9 <= p.y <= room.depth - 0.3 + 1e-9

    def test_speed_respected(self, room):
        model = RandomWaypointModel(
            room, speed_range_mps=(0.5, 1.0), pause_range_s=(0.0, 0.0), seed=1
        )
        positions = model.positions(60)
        steps = [
            positions[i].distance_to(positions[i + 1])
            for i in range(len(positions) - 1)
        ]
        assert max(steps) <= 1.0 + 1e-6

    def test_deterministic_per_seed(self, room):
        a = RandomWaypointModel(room, seed=5).positions(30)
        b = RandomWaypointModel(room, seed=5).positions(30)
        assert [(p.x, p.y) for p in a] == [(p.x, p.y) for p in b]

    def test_moves_around(self, room):
        positions = RandomWaypointModel(room, seed=2).positions(200)
        xs = [p.x for p in positions]
        assert max(xs) - min(xs) > 1.0

    def test_validation(self, room):
        with pytest.raises(ValueError):
            RandomWaypointModel(room, speed_range_mps=(1.0, 0.5))
        with pytest.raises(ValueError):
            RandomWaypointModel(room, margin_m=3.0)
        with pytest.raises(ValueError):
            RandomWaypointModel(room, seed=0).positions(0)


class TestScriptedRoute:
    def test_starts_at_first_waypoint(self):
        route = ScriptedRoute([Point(1, 1), Point(4, 1)], speed_mps=1.0)
        positions = route.positions(5)
        assert positions[0] == Point(1, 1)

    def test_constant_speed(self):
        route = ScriptedRoute([Point(0, 0), Point(10, 0)], speed_mps=0.5)
        positions = route.positions(10)
        for a, b in zip(positions, positions[1:]):
            assert a.distance_to(b) == pytest.approx(0.5, abs=1e-9)

    def test_holds_at_end_without_loop(self):
        route = ScriptedRoute([Point(0, 0), Point(1, 0)], speed_mps=1.0)
        positions = route.positions(6)
        assert positions[-1] == positions[-2] == Point(1, 0)

    def test_loop_returns_to_start(self):
        square = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        route = ScriptedRoute(square, speed_mps=2.0, loop=True)
        positions = route.positions(30)
        xs = {round(p.x, 6) for p in positions}
        assert len(xs) > 1  # keeps moving, does not park

    def test_validation(self):
        with pytest.raises(ValueError, match="two waypoints"):
            ScriptedRoute([Point(0, 0)])
        with pytest.raises(ValueError):
            ScriptedRoute([Point(0, 0), Point(1, 1)], speed_mps=0.0)


class TestRandomWalk:
    def test_stays_inside(self, room):
        model = RandomWalkModel(room, seed=3)
        for p in model.positions(300):
            assert 0.0 <= p.x <= room.width
            assert 0.0 <= p.y <= room.depth

    def test_step_size(self, room):
        model = RandomWalkModel(room, speed_mps=0.4, seed=4)
        positions = model.positions(50)
        steps = [
            positions[i].distance_to(positions[i + 1])
            for i in range(len(positions) - 1)
        ]
        # Reflection can shorten a step; it can never lengthen it.
        assert max(steps) <= 0.4 + 1e-6

    def test_deterministic(self, room):
        a = RandomWalkModel(room, seed=6).positions(20)
        b = RandomWalkModel(room, seed=6).positions(20)
        assert [(p.x, p.y) for p in a] == [(p.x, p.y) for p in b]


class TestCollectMobilityTrace:
    def test_trace_fields(self):
        scenario = build_paper_scenario(seed=50)
        collector = RssCollector(scenario, seed=1)
        model = RandomWaypointModel(scenario.deployment.room, seed=2)
        trace = collect_mobility_trace(collector, model, day=5.0, frames=12)
        assert trace.frame_count == 12
        assert trace.rss.shape == (12, scenario.deployment.link_count)
        assert trace.true_positions.shape == (12, 2)
        grid = scenario.deployment.grid
        for cell, (x, y) in zip(trace.true_cells, trace.true_positions):
            assert grid.cell_at(Point(float(x), float(y))) == cell
