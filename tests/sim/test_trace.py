"""Unit tests for survey/trace containers and their serialization."""

import numpy as np
import pytest

from repro.sim.trace import FingerprintSurvey, LiveTrace, concatenate_traces


@pytest.fixture()
def survey():
    rng = np.random.default_rng(0)
    return FingerprintSurvey(
        day=3.0,
        matrix=rng.normal(-50, 3, size=(4, 12)),
        empty_rss=rng.normal(-45, 2, size=4),
        samples_per_cell=10,
        sample_period_s=0.5,
    )


@pytest.fixture()
def trace():
    rng = np.random.default_rng(1)
    return LiveTrace(
        day=5.0,
        rss=rng.normal(-50, 3, size=(6, 4)),
        true_cells=np.arange(6),
        true_positions=rng.uniform(0, 5, size=(6, 2)),
    )


class TestFingerprintSurvey:
    def test_shape_properties(self, survey):
        assert survey.link_count == 4
        assert survey.cell_count == 12

    def test_collection_seconds(self, survey):
        assert survey.collection_seconds == pytest.approx(12 * 10 * 0.5)

    def test_column_for_cell_without_cells_array(self, survey):
        np.testing.assert_array_equal(survey.column_for_cell(3), survey.matrix[:, 3])
        with pytest.raises(IndexError):
            survey.column_for_cell(12)

    def test_column_for_cell_with_cells_array(self):
        matrix = np.arange(8, dtype=float).reshape(2, 4)
        survey = FingerprintSurvey(
            day=0.0,
            matrix=matrix,
            empty_rss=np.zeros(2),
            cells=np.array([5, 9, 2, 7]),
        )
        np.testing.assert_array_equal(survey.column_for_cell(9), matrix[:, 1])
        with pytest.raises(IndexError):
            survey.column_for_cell(0)

    def test_save_load_roundtrip(self, survey, tmp_path):
        path = tmp_path / "survey.npz"
        survey.save(path)
        loaded = FingerprintSurvey.load(path)
        np.testing.assert_array_equal(loaded.matrix, survey.matrix)
        np.testing.assert_array_equal(loaded.empty_rss, survey.empty_rss)
        assert loaded.day == survey.day
        assert loaded.samples_per_cell == survey.samples_per_cell

    def test_save_load_with_cells(self, tmp_path):
        survey = FingerprintSurvey(
            day=1.0,
            matrix=np.zeros((2, 3)),
            empty_rss=np.zeros(2),
            cells=np.array([4, 8, 15]),
        )
        path = tmp_path / "s.npz"
        survey.save(path)
        np.testing.assert_array_equal(
            FingerprintSurvey.load(path).cells, [4, 8, 15]
        )

    def test_empty_rss_shape_validated(self):
        with pytest.raises(ValueError, match="empty_rss"):
            FingerprintSurvey(day=0.0, matrix=np.zeros((3, 4)), empty_rss=np.zeros(2))

    def test_cells_shape_validated(self):
        with pytest.raises(ValueError, match="cells shape"):
            FingerprintSurvey(
                day=0.0,
                matrix=np.zeros((3, 4)),
                empty_rss=np.zeros(3),
                cells=np.array([1, 2]),
            )

    def test_non_finite_rejected(self):
        matrix = np.zeros((2, 2))
        matrix[0, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            FingerprintSurvey(day=0.0, matrix=matrix, empty_rss=np.zeros(2))

    def test_samples_per_cell_validated(self):
        with pytest.raises(ValueError):
            FingerprintSurvey(
                day=0.0,
                matrix=np.zeros((2, 2)),
                empty_rss=np.zeros(2),
                samples_per_cell=0,
            )


class TestLiveTrace:
    def test_shape_properties(self, trace):
        assert trace.frame_count == 6
        assert trace.link_count == 4

    def test_frame_access(self, trace):
        np.testing.assert_array_equal(trace.frame(2), trace.rss[2])

    def test_save_load_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = LiveTrace.load(path)
        np.testing.assert_array_equal(loaded.rss, trace.rss)
        np.testing.assert_array_equal(loaded.true_cells, trace.true_cells)
        np.testing.assert_array_equal(loaded.true_positions, trace.true_positions)

    def test_save_load_minimal(self, tmp_path):
        minimal = LiveTrace(day=0.0, rss=np.zeros((2, 3)))
        path = tmp_path / "m.npz"
        minimal.save(path)
        loaded = LiveTrace.load(path)
        assert loaded.true_cells is None
        assert loaded.true_positions is None

    def test_cells_shape_validated(self):
        with pytest.raises(ValueError, match="true_cells"):
            LiveTrace(day=0.0, rss=np.zeros((3, 2)), true_cells=np.arange(2))

    def test_positions_shape_validated(self):
        with pytest.raises(ValueError, match="true_positions"):
            LiveTrace(
                day=0.0, rss=np.zeros((3, 2)), true_positions=np.zeros((3, 3))
            )


class TestConcatenate:
    def test_concatenates(self, trace):
        combined = concatenate_traces([trace, trace])
        assert combined.frame_count == 12
        np.testing.assert_array_equal(combined.rss[:6], trace.rss)

    def test_day_mismatch_rejected(self, trace):
        other = LiveTrace(day=9.0, rss=trace.rss)
        with pytest.raises(ValueError, match="multiple days"):
            concatenate_traces([trace, other])

    def test_link_mismatch_rejected(self, trace):
        other = LiveTrace(day=5.0, rss=np.zeros((2, 7)))
        with pytest.raises(ValueError, match="link count"):
            concatenate_traces([trace, other])

    def test_partial_ground_truth_dropped(self, trace):
        bare = LiveTrace(day=5.0, rss=trace.rss)
        combined = concatenate_traces([trace, bare])
        assert combined.true_cells is None

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            concatenate_traces([])
