"""Unit tests for the baseline channel model."""

import numpy as np
import pytest

from repro.sim.channel import ChannelModel, ChannelParams, midpoint_of
from repro.sim.geometry import Link, Point


@pytest.fixture()
def links():
    return [
        Link(index=0, tx=Point(0, 1), rx=Point(8, 1)),
        Link(index=1, tx=Point(0, 2), rx=Point(8, 2)),
        Link(index=2, tx=Point(0, 6), rx=Point(8, 6)),
    ]


class TestChannelParams:
    def test_defaults_valid(self):
        ChannelParams()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("path_loss_exponent", 0.0),
            ("reference_distance_m", -1.0),
            ("noise_sigma_db", -0.5),
            ("multipath_correlation_m", 0.0),
        ],
    )
    def test_invalid_params(self, field, value):
        with pytest.raises(ValueError):
            ChannelParams(**{field: value})

    def test_with_noise_sigma(self):
        params = ChannelParams().with_noise_sigma(0.0)
        assert params.noise_sigma_db == 0.0


class TestChannelModel:
    def test_path_loss_monotone_in_distance(self, links):
        channel = ChannelModel(links, seed=0)
        assert channel.path_loss_db(10.0) > channel.path_loss_db(2.0)

    def test_path_loss_clamped_below_reference(self, links):
        channel = ChannelModel(links, seed=0)
        assert channel.path_loss_db(0.01) == channel.path_loss_db(1.0)

    def test_empty_room_rss_plausible_range(self, links):
        channel = ChannelModel(links, seed=0)
        rss = channel.empty_room_rss()
        assert rss.shape == (3,)
        assert np.all(rss < 0)  # indoor WiFi RSS is negative dBm
        assert np.all(rss > -90)

    def test_realization_frozen(self, links):
        channel = ChannelModel(links, seed=0)
        np.testing.assert_array_equal(
            channel.empty_room_rss(), channel.empty_room_rss()
        )

    def test_seed_determinism(self, links):
        a = ChannelModel(links, seed=5).empty_room_rss()
        b = ChannelModel(links, seed=5).empty_room_rss()
        np.testing.assert_array_equal(a, b)

    def test_seeds_differ(self, links):
        a = ChannelModel(links, seed=1).empty_room_rss()
        b = ChannelModel(links, seed=2).empty_room_rss()
        assert not np.array_equal(a, b)

    def test_nearby_links_correlated_multipath(self):
        """Links 0/1 are 1 m apart, link 2 is 4+ m away: the multipath gains
        of the close pair should correlate more strongly across seeds."""
        close_deltas, far_deltas = [], []
        for seed in range(200):
            links = [
                Link(index=0, tx=Point(0, 1), rx=Point(8, 1)),
                Link(index=1, tx=Point(0, 1.5), rx=Point(8, 1.5)),
                Link(index=2, tx=Point(0, 7), rx=Point(8, 7)),
            ]
            channel = ChannelModel(links, seed=seed)
            gains = channel._multipath
            close_deltas.append(gains[0] - gains[1])
            far_deltas.append(gains[0] - gains[2])
        assert np.std(close_deltas) < np.std(far_deltas)

    def test_sample_no_rng_is_deterministic(self, links):
        channel = ChannelModel(links, seed=0)
        a = channel.sample(quantize=False)
        b = channel.sample(quantize=False)
        np.testing.assert_array_equal(a, b)

    def test_sample_shadow_reduces_rss(self, links):
        channel = ChannelModel(links, seed=0)
        base = channel.sample(quantize=False)
        shadowed = channel.sample(shadow_db=np.array([5.0, 0.0, 0.0]), quantize=False)
        assert shadowed[0] == pytest.approx(base[0] - 5.0)
        assert shadowed[1] == pytest.approx(base[1])

    def test_sample_drift_adds(self, links):
        channel = ChannelModel(links, seed=0)
        base = channel.sample(quantize=False)
        drifted = channel.sample(drift_db=np.array([1.0, -2.0, 0.5]), quantize=False)
        np.testing.assert_allclose(drifted - base, [1.0, -2.0, 0.5])

    def test_quantization_grid(self, links):
        channel = ChannelModel(links, seed=0)
        rss = channel.sample(rng=np.random.default_rng(0), quantize=True)
        np.testing.assert_allclose(rss, np.round(rss))

    def test_noise_varies_between_samples(self, links):
        channel = ChannelModel(links, seed=0)
        rng = np.random.default_rng(0)
        a = channel.sample(rng=rng, quantize=False)
        b = channel.sample(rng=rng, quantize=False)
        assert not np.array_equal(a, b)

    def test_zero_noise_params(self, links):
        params = ChannelParams(noise_sigma_db=0.0, multipath_sigma_db=0.0)
        channel = ChannelModel(links, params=params, seed=0)
        rng = np.random.default_rng(0)
        a = channel.sample(rng=rng, quantize=False)
        b = channel.sample(rng=rng, quantize=False)
        np.testing.assert_array_equal(a, b)

    def test_requires_links(self):
        with pytest.raises(ValueError):
            ChannelModel([], seed=0)


def test_midpoint_of():
    assert midpoint_of(Point(0, 0), Point(2, 4)) == Point(1, 2)
