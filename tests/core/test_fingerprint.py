"""Unit tests for the fingerprint-matrix containers."""

import numpy as np
import pytest

from repro.core.fingerprint import FingerprintDatabase, FingerprintMatrix


@pytest.fixture()
def matrix():
    rng = np.random.default_rng(0)
    return FingerprintMatrix(
        values=rng.normal(-50, 3, size=(5, 20)),
        empty_rss=rng.normal(-45, 2, size=5),
        day=0.0,
        source="survey",
    )


class TestFingerprintMatrix:
    def test_shape_properties(self, matrix):
        assert matrix.link_count == 5
        assert matrix.cell_count == 20
        assert matrix.shape == (5, 20)

    def test_dips_sign_convention(self):
        fp = FingerprintMatrix(
            values=np.array([[-50.0, -42.0]]),
            empty_rss=np.array([-45.0]),
        )
        # Lower RSS than empty room = positive dip (attenuation).
        np.testing.assert_allclose(fp.dips(), [[5.0, -3.0]])

    def test_column_access(self, matrix):
        np.testing.assert_array_equal(matrix.column(3), matrix.values[:, 3])
        with pytest.raises(IndexError):
            matrix.column(20)

    def test_columns_subset(self, matrix):
        subset = matrix.columns(np.array([1, 5, 7]))
        assert subset.shape == (5, 3)
        np.testing.assert_array_equal(subset[:, 1], matrix.values[:, 5])

    def test_effective_rank_of_low_rank_data(self):
        rng = np.random.default_rng(1)
        low = rng.normal(size=(6, 2)) @ rng.normal(size=(2, 30))
        fp = FingerprintMatrix(values=low, empty_rss=np.zeros(6))
        assert fp.effective_rank(0.999) <= 2

    def test_with_values_preserves_context(self, matrix):
        updated = matrix.with_values(matrix.values + 1.0, source="reconstruction")
        assert updated.source == "reconstruction"
        assert updated.day == matrix.day
        np.testing.assert_array_equal(updated.empty_rss, matrix.empty_rss)

    def test_with_values_new_day(self, matrix):
        updated = matrix.with_values(matrix.values, source="reconstruction", day=9.0)
        assert updated.day == 9.0

    def test_with_empty_rss(self, matrix):
        fresh = matrix.with_empty_rss(matrix.empty_rss + 2.0)
        np.testing.assert_allclose(fresh.empty_rss, matrix.empty_rss + 2.0)
        np.testing.assert_array_equal(fresh.values, matrix.values)

    def test_empty_rss_shape_validated(self):
        with pytest.raises(ValueError, match="empty_rss"):
            FingerprintMatrix(values=np.zeros((3, 4)), empty_rss=np.zeros(4))

    def test_non_finite_rejected(self):
        values = np.zeros((2, 2))
        values[1, 1] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            FingerprintMatrix(values=values, empty_rss=np.zeros(2))

    def test_immutability(self, matrix):
        with pytest.raises(AttributeError):
            matrix.day = 5.0


class TestFingerprintDatabase:
    def make(self, day, source="survey"):
        return FingerprintMatrix(
            values=np.full((2, 3), -50.0 - day),
            empty_rss=np.zeros(2),
            day=day,
            source=source,
        )

    def test_empty_lookups_raise(self):
        db = FingerprintDatabase()
        with pytest.raises(LookupError, match="empty"):
            db.at(0.0)
        with pytest.raises(LookupError):
            db.latest()
        with pytest.raises(LookupError):
            db.initial()

    def test_at_picks_most_recent_epoch(self):
        db = FingerprintDatabase()
        db.add(self.make(0.0))
        db.add(self.make(10.0))
        db.add(self.make(20.0))
        assert db.at(15.0).day == 10.0
        assert db.at(10.0).day == 10.0
        assert db.at(99.0).day == 20.0

    def test_at_before_first_epoch_raises(self):
        db = FingerprintDatabase()
        db.add(self.make(5.0))
        with pytest.raises(LookupError, match="earliest"):
            db.at(4.0)
        # The boundary day itself resolves.
        assert db.at(5.0).day == 5.0

    def test_version_bumps_on_every_add(self):
        db = FingerprintDatabase()
        assert db.version == 0
        db.add(self.make(0.0))
        assert db.version == 1
        db.add(self.make(10.0))
        assert db.version == 2
        # Lookups never change the version (it tracks mutations only).
        db.at(5.0)
        db.latest()
        assert db.version == 2

    def test_out_of_order_add_changes_resolution_and_version(self):
        """Why caches key on the version: a new epoch can change which
        fingerprint serves an *old* query day."""
        db = FingerprintDatabase()
        db.add(self.make(0.0))
        assert db.at(40.0).day == 0.0
        before = db.version
        db.add(self.make(30.0))
        assert db.version == before + 1
        assert db.at(40.0).day == 30.0

    def test_out_of_order_insertion(self):
        db = FingerprintDatabase()
        db.add(self.make(20.0))
        db.add(self.make(0.0))
        db.add(self.make(10.0))
        assert db.days == [0.0, 10.0, 20.0]
        assert db.initial().day == 0.0
        assert db.latest().day == 20.0

    def test_shape_consistency_enforced(self):
        db = FingerprintDatabase()
        db.add(self.make(0.0))
        wrong = FingerprintMatrix(
            values=np.zeros((3, 3)), empty_rss=np.zeros(3), day=1.0
        )
        with pytest.raises(ValueError, match="shape"):
            db.add(wrong)

    def test_staleness(self):
        db = FingerprintDatabase()
        db.add(self.make(0.0))
        db.add(self.make(30.0))
        assert db.staleness(45.0) == pytest.approx(15.0)
        assert db.staleness(29.0) == pytest.approx(29.0)

    def test_epoch_count_and_listing(self):
        db = FingerprintDatabase()
        for day in (0.0, 5.0):
            db.add(self.make(day))
        assert db.epoch_count == 2
        assert [e.day for e in db.epochs()] == [0.0, 5.0]

    def test_summary(self):
        db = FingerprintDatabase()
        assert db.summary() == {"epochs": 0}
        db.add(self.make(0.0))
        summary = db.summary()
        assert summary["epochs"] == 1.0
        assert summary["links"] == 2.0
        assert summary["cells"] == 3.0
