"""Unit tests for the LoLi-IR alternating solver."""

import numpy as np
import pytest

from repro.core.loli_ir import LoliIrConfig, LoliIrProblem, LoliIrSolver


def make_problem(links=8, cells=24, rank=3, observe=0.5, seed=0, with_lrr=True):
    rng = np.random.default_rng(seed)
    truth = rng.normal(size=(links, rank)) @ rng.normal(size=(rank, cells))
    mask = rng.random((links, cells)) < observe
    lrr_target = truth + 0.2 * rng.standard_normal(truth.shape) if with_lrr else None
    problem = LoliIrProblem(
        observed_mask=mask,
        observed_values=np.where(mask, truth, 0.0),
        lrr_target=lrr_target,
    )
    return truth, problem


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"rank": 0},
        {"lam": 0.0},
        {"observed_weight": -1.0},
        {"outer_iterations": 0},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            LoliIrConfig(**kwargs)


class TestProblemValidation:
    def test_mask_value_shape_mismatch(self):
        with pytest.raises(ValueError, match="observed_mask"):
            LoliIrProblem(
                observed_mask=np.zeros((2, 3), dtype=bool),
                observed_values=np.zeros((2, 4)),
            )

    def test_lrr_shape_mismatch(self):
        with pytest.raises(ValueError, match="lrr_target"):
            LoliIrProblem(
                observed_mask=np.ones((2, 3), dtype=bool),
                observed_values=np.zeros((2, 3)),
                lrr_target=np.zeros((2, 4)),
            )

    def test_continuity_pieces_come_together(self):
        with pytest.raises(ValueError, match="come together"):
            LoliIrProblem(
                observed_mask=np.ones((2, 3), dtype=bool),
                observed_values=np.zeros((2, 3)),
                continuity_op=np.zeros((3, 2)),
            )

    def test_continuity_shapes_checked(self):
        with pytest.raises(ValueError, match="continuity_op"):
            LoliIrProblem(
                observed_mask=np.ones((2, 3), dtype=bool),
                observed_values=np.zeros((2, 3)),
                continuity_op=np.zeros((4, 2)),
                continuity_weights=np.zeros((2, 2)),
            )

    def test_similarity_shapes_checked(self):
        with pytest.raises(ValueError, match="similarity_op"):
            LoliIrProblem(
                observed_mask=np.ones((2, 3), dtype=bool),
                observed_values=np.zeros((2, 3)),
                similarity_op=np.zeros((1, 5)),
                similarity_weights=np.zeros((1, 3)),
            )


class TestSolve:
    def test_objective_monotone_nonincreasing(self):
        _, problem = make_problem()
        result = LoliIrSolver(LoliIrConfig(rank=3, outer_iterations=15)).solve(problem)
        history = result.objective_history
        assert np.all(np.diff(history) <= 1e-6 * np.maximum(1.0, history[:-1]))

    def test_recovers_low_rank_matrix(self):
        truth, problem = make_problem()
        result = LoliIrSolver(
            LoliIrConfig(rank=3, lam=1e-4, outer_iterations=30)
        ).solve(problem)
        unobserved = ~problem.observed_mask
        error = np.abs(result.matrix - truth)[unobserved].mean()
        assert error < 0.25 * np.abs(truth).mean()

    def test_mask_only_problem_solvable(self):
        """With the default λ, rank-only masked factorization (the paper's
        property-i arm) recovers a well-observed low-rank matrix. A tiny λ
        would overfit the unobserved entries — that's what the LRR and
        smoothness terms guard against in the real problem."""
        truth, problem = make_problem(
            links=12, cells=40, observe=0.7, with_lrr=False
        )
        result = LoliIrSolver(
            LoliIrConfig(rank=3, lam=1e-2, outer_iterations=60)
        ).solve(problem)
        error = np.abs(result.matrix - truth)[~problem.observed_mask].mean()
        assert error < 0.2 * np.abs(truth).mean()

    def test_factors_multiply_to_matrix(self):
        _, problem = make_problem()
        result = LoliIrSolver(LoliIrConfig(rank=3)).solve(problem)
        np.testing.assert_allclose(result.matrix, result.left @ result.right.T)

    def test_rank_clipped_to_dimensions(self):
        _, problem = make_problem(links=4, cells=10)
        result = LoliIrSolver(LoliIrConfig(rank=99)).solve(problem)
        assert result.left.shape[1] <= 4

    def test_early_stop_flag(self):
        _, problem = make_problem()
        result = LoliIrSolver(
            LoliIrConfig(rank=3, outer_iterations=100, tol=1e-3)
        ).solve(problem)
        assert result.converged
        assert result.iterations < 100

    def test_custom_initialization(self):
        truth, problem = make_problem()
        result = LoliIrSolver(LoliIrConfig(rank=3)).solve(problem, initial=truth)
        # Starting at the truth, the first objective is already near-optimal.
        assert result.objective_history[0] <= result.objective_history[-1] * 10

    def test_initial_shape_validated(self):
        _, problem = make_problem()
        with pytest.raises(ValueError, match="initial shape"):
            LoliIrSolver().solve(problem, initial=np.zeros((2, 2)))

    def test_smoothness_terms_pull_toward_smooth_solutions(self):
        """With continuity active on a pair of unobserved neighbor columns,
        their values end up closer than without the penalty."""
        rng = np.random.default_rng(1)
        links, cells = 6, 10
        truth = rng.normal(size=(links, 2)) @ rng.normal(size=(2, cells))
        mask = np.ones((links, cells), dtype=bool)
        mask[:, 4:6] = False  # two hidden columns
        # G penalizing the difference of columns 4 and 5 on all links.
        g = np.zeros((cells, 1))
        g[4, 0], g[5, 0] = -1.0, 1.0
        weights = np.ones((links, 1))

        def solve(weight):
            problem = LoliIrProblem(
                observed_mask=mask,
                observed_values=np.where(mask, truth, 0.0),
                continuity_op=g,
                continuity_weights=weights,
            )
            config = LoliIrConfig(
                rank=2, lam=1e-4, continuity_weight=weight, outer_iterations=30
            )
            return LoliIrSolver(config).solve(problem).matrix

        without = solve(0.0)
        with_penalty = solve(10.0)
        gap_without = np.abs(without[:, 4] - without[:, 5]).mean()
        gap_with = np.abs(with_penalty[:, 4] - with_penalty[:, 5]).mean()
        assert gap_with < gap_without + 1e-9

    def test_similarity_terms_pull_rows_together(self):
        rng = np.random.default_rng(2)
        links, cells = 6, 8
        truth = rng.normal(size=(links, 2)) @ rng.normal(size=(2, cells))
        mask = np.ones((links, cells), dtype=bool)
        mask[2:4, :] = False  # two hidden rows
        h = np.zeros((1, links))
        h[0, 2], h[0, 3] = -1.0, 1.0
        weights = np.ones((1, cells))

        def solve(weight):
            problem = LoliIrProblem(
                observed_mask=mask,
                observed_values=np.where(mask, truth, 0.0),
                similarity_op=h,
                similarity_weights=weights,
            )
            config = LoliIrConfig(
                rank=2, lam=1e-4, similarity_weight=weight, outer_iterations=30
            )
            return LoliIrSolver(config).solve(problem).matrix

        without = solve(0.0)
        with_penalty = solve(10.0)
        gap_without = np.abs(without[2] - without[3]).mean()
        gap_with = np.abs(with_penalty[2] - with_penalty[3]).mean()
        assert gap_with < gap_without + 1e-9

    def test_deterministic(self):
        _, problem = make_problem()
        solver = LoliIrSolver(LoliIrConfig(rank=3))
        a = solver.solve(problem).matrix
        b = solver.solve(problem).matrix
        np.testing.assert_array_equal(a, b)
