"""Unit tests for undistorted/largely-distorted entry classification."""

import numpy as np
import pytest

from repro.core.distortion import DistortionProfile, build_distortion_profile
from repro.core.fingerprint import FingerprintMatrix


def fingerprint_with_dips(dips):
    """Build a fingerprint whose dips() equal the given matrix."""
    dips = np.asarray(dips, dtype=float)
    empty = np.full(dips.shape[0], -45.0)
    return FingerprintMatrix(values=empty[:, None] - dips, empty_rss=empty)


class TestBuildProfile:
    def test_classification_thresholds(self):
        fp = fingerprint_with_dips([[0.5, 2.0, 5.0, -0.5, -4.0]])
        profile = build_distortion_profile(
            fp, undistorted_threshold_db=1.0, distorted_threshold_db=3.0
        )
        np.testing.assert_array_equal(
            profile.undistorted, [[True, False, False, True, False]]
        )
        np.testing.assert_array_equal(
            profile.largely_distorted, [[False, False, True, False, False]]
        )

    def test_negative_dips_never_largely_distorted(self):
        """RSS *increases* (scattering) are not blocking events."""
        fp = fingerprint_with_dips([[-10.0]])
        profile = build_distortion_profile(fp)
        assert not profile.largely_distorted[0, 0]
        assert not profile.undistorted[0, 0]

    def test_fraction_properties(self):
        fp = fingerprint_with_dips([[0.0, 0.0, 5.0, 5.0]])
        profile = build_distortion_profile(fp)
        assert profile.undistorted_fraction == pytest.approx(0.5)
        assert profile.distorted_fraction == pytest.approx(0.5)

    def test_threshold_ordering_enforced(self):
        fp = fingerprint_with_dips([[1.0]])
        with pytest.raises(ValueError, match="must exceed"):
            build_distortion_profile(
                fp, undistorted_threshold_db=3.0, distorted_threshold_db=2.0
            )

    def test_paper_scenario_produces_both_classes(self, surveyed_fingerprint):
        profile = build_distortion_profile(surveyed_fingerprint)
        assert profile.undistorted_fraction > 0.05
        assert profile.distorted_fraction > 0.05
        # The two classes are disjoint by construction; most entries belong
        # to one of them.
        assert profile.undistorted_fraction + profile.distorted_fraction <= 1.0


class TestKnownEntries:
    def test_undistorted_entries_take_empty_rss(self):
        fp = fingerprint_with_dips([[0.0, 5.0], [5.0, 0.0]])
        profile = build_distortion_profile(fp)
        fresh_empty = np.array([-40.0, -42.0])
        known = profile.known_entries(fresh_empty)
        assert known[0, 0] == pytest.approx(-40.0)
        assert known[1, 1] == pytest.approx(-42.0)
        # Distorted entries carry no information (masked anyway).
        assert known[0, 1] == 0.0
        assert known[1, 0] == 0.0

    def test_empty_shape_validated(self):
        fp = fingerprint_with_dips([[0.0, 5.0]])
        profile = build_distortion_profile(fp)
        with pytest.raises(ValueError, match="empty_rss"):
            profile.known_entries(np.zeros(3))


class TestProfileValidation:
    def test_overlapping_masks_rejected(self):
        with pytest.raises(ValueError, match="both"):
            DistortionProfile(
                undistorted=np.array([[True]]),
                largely_distorted=np.array([[True]]),
                dips=np.zeros((1, 1)),
                undistorted_threshold_db=1.0,
                distorted_threshold_db=3.0,
            )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="disagree"):
            DistortionProfile(
                undistorted=np.zeros((2, 2), dtype=bool),
                largely_distorted=np.zeros((2, 3), dtype=bool),
                dips=np.zeros((2, 2)),
                undistorted_threshold_db=1.0,
                distorted_threshold_db=3.0,
            )
