"""Unit tests for fingerprint matchers."""

import numpy as np
import pytest

from repro.core.fingerprint import FingerprintMatrix
from repro.core.matching import (
    KnnMatcher,
    NearestNeighborMatcher,
    ProbabilisticMatcher,
    expected_position,
)
from repro.sim.geometry import Grid, Room


@pytest.fixture()
def grid():
    # 4 columns x 3 rows = 12 cells.
    return Grid(Room(2.4, 1.8), 0.6)


@pytest.fixture()
def fingerprint(grid):
    """Distinct, well-separated columns: matching must be unambiguous."""
    rng = np.random.default_rng(0)
    values = rng.normal(-50.0, 6.0, size=(6, grid.cell_count))
    return FingerprintMatrix(values=values, empty_rss=np.full(6, -45.0))


class TestNearestNeighbor:
    def test_exact_column_matches_itself(self, fingerprint, grid):
        matcher = NearestNeighborMatcher(fingerprint, grid)
        for cell in (0, 5, 11):
            result = matcher.match(fingerprint.column(cell))
            assert result.cell == cell
            assert result.position == grid.center_of(cell)

    def test_robust_to_small_noise(self, fingerprint, grid):
        matcher = NearestNeighborMatcher(fingerprint, grid)
        rng = np.random.default_rng(1)
        correct = 0
        for cell in range(grid.cell_count):
            noisy = fingerprint.column(cell) + rng.normal(0, 0.5, size=6)
            if matcher.match(noisy).cell == cell:
                correct += 1
        assert correct >= 10

    def test_manhattan_metric(self, fingerprint, grid):
        matcher = NearestNeighborMatcher(fingerprint, grid, metric="manhattan")
        assert matcher.match(fingerprint.column(3)).cell == 3

    def test_unknown_metric_rejected(self, fingerprint, grid):
        with pytest.raises(ValueError, match="metric"):
            NearestNeighborMatcher(fingerprint, grid, metric="cosine")

    def test_dips_mode_cancels_common_drift(self, fingerprint, grid):
        """Matching on dips with a fresh live calibration is invariant to a
        common per-link RSS shift between survey time and query time."""
        drift = np.linspace(-4.0, 3.0, 6)
        live = fingerprint.column(7) + drift
        live_empty = fingerprint.empty_rss + drift
        matcher = NearestNeighborMatcher(
            fingerprint, grid, use_dips=True, live_empty_rss=live_empty
        )
        assert matcher.match(live).cell == 7

    def test_scores_ordering(self, fingerprint, grid):
        matcher = NearestNeighborMatcher(fingerprint, grid)
        result = matcher.match(fingerprint.column(4))
        assert np.argmax(result.scores) == 4

    def test_vector_shape_validated(self, fingerprint, grid):
        matcher = NearestNeighborMatcher(fingerprint, grid)
        with pytest.raises(ValueError, match="live vector"):
            matcher.match(np.zeros(5))

    def test_grid_fingerprint_mismatch(self, fingerprint):
        other = Grid(Room(1.2, 1.2), 0.6)
        with pytest.raises(ValueError, match="cells"):
            NearestNeighborMatcher(fingerprint, other)


class TestKnn:
    def test_exact_match_best_cell(self, fingerprint, grid):
        matcher = KnnMatcher(fingerprint, grid, k=3)
        assert matcher.match(fingerprint.column(6)).cell == 6

    def test_position_interpolates(self, fingerprint, grid):
        """A vector exactly between two columns lands between their cells."""
        matcher = KnnMatcher(fingerprint, grid, k=2)
        blend = 0.5 * (fingerprint.column(0) + fingerprint.column(1))
        position = matcher.match(blend).position
        a, b = grid.center_of(0), grid.center_of(1)
        assert min(a.x, b.x) - 1e-9 <= position.x <= max(a.x, b.x) + 1e-9
        assert min(a.y, b.y) - 1e-9 <= position.y <= max(a.y, b.y) + 1e-9

    def test_k_one_equals_nn(self, fingerprint, grid):
        knn = KnnMatcher(fingerprint, grid, k=1)
        nn = NearestNeighborMatcher(fingerprint, grid)
        vector = fingerprint.column(9) + 0.3
        assert knn.match(vector).cell == nn.match(vector).cell

    def test_invalid_k(self, fingerprint, grid):
        with pytest.raises(ValueError):
            KnnMatcher(fingerprint, grid, k=0)
        with pytest.raises(ValueError):
            KnnMatcher(fingerprint, grid, k=13)


class TestProbabilistic:
    def test_map_matches_exact_column(self, fingerprint, grid):
        matcher = ProbabilisticMatcher(fingerprint, grid, sigma_db=2.0)
        assert matcher.match(fingerprint.column(2)).cell == 2

    def test_posterior_normalized(self, fingerprint, grid):
        matcher = ProbabilisticMatcher(fingerprint, grid)
        posterior = matcher.posterior(fingerprint.column(5))
        assert posterior.sum() == pytest.approx(1.0)
        assert np.all(posterior >= 0)

    def test_posterior_peaks_at_truth(self, fingerprint, grid):
        matcher = ProbabilisticMatcher(fingerprint, grid, sigma_db=1.0)
        posterior = matcher.posterior(fingerprint.column(5))
        assert np.argmax(posterior) == 5

    def test_wider_sigma_flattens_posterior(self, fingerprint, grid):
        narrow = ProbabilisticMatcher(fingerprint, grid, sigma_db=1.0)
        wide = ProbabilisticMatcher(fingerprint, grid, sigma_db=20.0)
        vector = fingerprint.column(5)
        assert narrow.posterior(vector).max() > wide.posterior(vector).max()

    def test_prior_shifts_map(self, fingerprint, grid):
        """A prior that forbids the true cell moves the MAP elsewhere."""
        prior = np.ones(grid.cell_count)
        prior[5] = 1e-30
        matcher = ProbabilisticMatcher(
            fingerprint, grid, sigma_db=20.0, prior=prior
        )
        assert matcher.match(fingerprint.column(5)).cell != 5

    def test_invalid_prior(self, fingerprint, grid):
        with pytest.raises(ValueError):
            ProbabilisticMatcher(fingerprint, grid, prior=np.zeros(12))
        with pytest.raises(ValueError):
            ProbabilisticMatcher(fingerprint, grid, prior=np.ones(5))

    def test_invalid_sigma(self, fingerprint, grid):
        with pytest.raises(ValueError):
            ProbabilisticMatcher(fingerprint, grid, sigma_db=0.0)


class TestExpectedPosition:
    def test_point_mass(self, grid):
        posterior = np.zeros(grid.cell_count)
        posterior[7] = 1.0
        assert expected_position(posterior, grid) == grid.center_of(7)

    def test_uniform_is_room_center(self, grid):
        posterior = np.full(grid.cell_count, 1.0 / grid.cell_count)
        center = expected_position(posterior, grid)
        assert center.x == pytest.approx(grid.room.width / 2)
        assert center.y == pytest.approx(grid.room.depth / 2)

    def test_zero_posterior_rejected(self, grid):
        with pytest.raises(ValueError, match="zero"):
            expected_position(np.zeros(grid.cell_count), grid)

    def test_shape_validated(self, grid):
        with pytest.raises(ValueError):
            expected_position(np.ones(5), grid)
