"""Unit tests for presence detection."""

import numpy as np
import pytest

from repro.core.detection import PresenceDetector, roc_sweep
from repro.sim.collector import RssCollector
from repro.sim.scenario import build_paper_scenario


@pytest.fixture(scope="module")
def scenario():
    return build_paper_scenario(seed=777)


@pytest.fixture(scope="module")
def frames(scenario):
    """(empty_frames, occupied_frames) at day 0."""
    collector = RssCollector(scenario, seed=0)
    empty = np.vstack([collector.live_vector(0.0) for _ in range(40)])
    occupied = np.vstack(
        [collector.live_vector(0.0, cell=c) for c in range(0, 96, 3)]
    )
    return empty, occupied


class TestPresenceDetector:
    def test_detects_target_misses_empty(self, frames):
        empty, occupied = frames
        detector = PresenceDetector(empty[:20], k=4.0)
        false_alarms = sum(detector.detect(f).present for f in empty[20:])
        detections = sum(detector.detect(f).present for f in occupied)
        assert false_alarms <= 2
        assert detections >= 0.8 * len(occupied)

    def test_score_increases_with_target(self, frames):
        empty, occupied = frames
        detector = PresenceDetector(empty[:20])
        empty_scores = [detector.score(f) for f in empty[20:]]
        occupied_scores = [detector.score(f) for f in occupied]
        assert np.median(occupied_scores) > np.median(empty_scores)

    @pytest.mark.parametrize("aggregate", ["sum", "mean", "max"])
    def test_aggregates_work(self, frames, aggregate):
        empty, occupied = frames
        detector = PresenceDetector(empty[:20], aggregate=aggregate)
        # A well-covered interior cell (index 14 → cell 42): corner cells are
        # legitimately hard and are covered by the rate test above.
        assert detector.detect(occupied[14]).present

    def test_higher_k_raises_threshold(self, frames):
        empty, _ = frames
        lenient = PresenceDetector(empty[:20], k=1.0)
        strict = PresenceDetector(empty[:20], k=8.0)
        assert strict.threshold > lenient.threshold

    def test_detect_trace(self, frames):
        empty, occupied = frames
        detector = PresenceDetector(empty[:20])
        results = detector.detect_trace(occupied[:5])
        assert len(results) == 5
        assert all(r.threshold == detector.threshold for r in results)

    def test_recalibrate_follows_drift(self, scenario):
        """After 60 days of drift, a stale detector fires on empty frames;
        recalibration silences it."""
        collector = RssCollector(scenario, seed=1)
        day0 = np.vstack([collector.live_vector(0.0) for _ in range(20)])
        day60 = np.vstack([collector.live_vector(60.0) for _ in range(20)])
        detector = PresenceDetector(day0, k=4.0)
        stale_false_alarms = sum(detector.detect(f).present for f in day60)
        detector.recalibrate(day60[:10])
        fresh_false_alarms = sum(detector.detect(f).present for f in day60[10:])
        assert fresh_false_alarms <= stale_false_alarms
        assert fresh_false_alarms <= 2

    def test_recalibrate_validates_links(self, frames):
        empty, _ = frames
        detector = PresenceDetector(empty[:10])
        with pytest.raises(ValueError, match="links"):
            detector.recalibrate(np.zeros((5, 3)))

    def test_validation(self, frames):
        empty, _ = frames
        with pytest.raises(ValueError, match="2 calibration"):
            PresenceDetector(empty[:1])
        with pytest.raises(ValueError):
            PresenceDetector(empty[:5], k=0.0)
        with pytest.raises(ValueError, match="aggregate"):
            PresenceDetector(empty[:5], aggregate="median")
        detector = PresenceDetector(empty[:5])
        with pytest.raises(ValueError, match="live vector"):
            detector.score(np.zeros(3))


class TestRocSweep:
    def test_tpr_fpr_tradeoff(self, frames):
        empty, occupied = frames
        points = roc_sweep(empty, occupied, ks=(0.5, 2.0, 8.0))
        # Stricter thresholds can only reduce both rates.
        tprs = [p.true_positive_rate for p in points]
        fprs = [p.false_positive_rate for p in points]
        assert all(a >= b - 1e-9 for a, b in zip(tprs, tprs[1:]))
        assert all(a >= b - 1e-9 for a, b in zip(fprs, fprs[1:]))

    def test_rates_in_unit_interval(self, frames):
        empty, occupied = frames
        for p in roc_sweep(empty, occupied):
            assert 0.0 <= p.true_positive_rate <= 1.0
            assert 0.0 <= p.false_positive_rate <= 1.0

    def test_good_detector_dominates_chance(self, frames):
        empty, occupied = frames
        points = roc_sweep(empty, occupied, ks=(3.0,))
        assert points[0].true_positive_rate > points[0].false_positive_rate

    def test_validation(self, frames):
        empty, occupied = frames
        with pytest.raises(ValueError, match="calibration_split"):
            roc_sweep(empty, occupied, calibration_split=1.0)
        with pytest.raises(ValueError, match="not enough"):
            roc_sweep(empty[:2], occupied, calibration_split=0.9)
