"""Batch/loop equivalence of the matching layer.

The per-frame ``match`` path is a thin wrapper over ``match_batch``; these
tests pin the batch kernels to an explicit per-frame reference computation
(re-implementing the original loop semantics), so a regression in the
broadcasting cannot hide behind the wrapper.
"""

import numpy as np
import pytest

import repro.core.matching as matching
from repro.core.fingerprint import FingerprintMatrix
from repro.core.matching import (
    BatchMatchResult,
    KnnMatcher,
    NearestNeighborMatcher,
    ProbabilisticMatcher,
)
from repro.core.multi_target import MultiTargetMatcher
from repro.sim.geometry import Grid, Room


@pytest.fixture()
def grid():
    return Grid(Room(3.0, 2.4), 0.6)  # 5 x 4 = 20 cells


@pytest.fixture()
def fingerprint(grid):
    rng = np.random.default_rng(7)
    values = rng.normal(-50.0, 6.0, size=(8, grid.cell_count))
    return FingerprintMatrix(values=values, empty_rss=np.full(8, -44.0))


@pytest.fixture()
def frames(fingerprint):
    rng = np.random.default_rng(11)
    return rng.normal(-50.0, 6.0, size=(40, fingerprint.link_count))


def reference_euclidean_distances(values, vector):
    deltas = values - vector[:, None]
    return np.sqrt(np.sum(deltas**2, axis=0))


class TestNearestNeighborBatch:
    @pytest.mark.parametrize("metric", ["euclidean", "manhattan"])
    def test_batch_equals_per_frame_reference(self, fingerprint, grid, frames, metric):
        matcher = NearestNeighborMatcher(fingerprint, grid, metric=metric)
        batch = matcher.match_batch(frames)
        for index, frame in enumerate(frames):
            deltas = fingerprint.values - frame[:, None]
            if metric == "euclidean":
                distances = np.sqrt(np.sum(deltas**2, axis=0))
            else:
                distances = np.sum(np.abs(deltas), axis=0)
            assert batch.cells[index] == np.argmin(distances)
            # The batch kernel computes euclidean distances via the Gram
            # expansion (BLAS matmul), so agreement is tight-tolerance
            # rather than bitwise.
            np.testing.assert_allclose(
                batch.scores[index], -distances, rtol=1e-9, atol=1e-9
            )
            center = grid.center_of(int(batch.cells[index]))
            np.testing.assert_array_equal(
                batch.positions[index], [center.x, center.y]
            )

    def test_match_is_wrapper_over_batch(self, fingerprint, grid, frames):
        matcher = NearestNeighborMatcher(fingerprint, grid)
        batch = matcher.match_batch(frames)
        for index, frame in enumerate(frames):
            single = matcher.match(frame)
            assert single.cell == batch.cells[index]
            # BLAS accumulates a batch-of-one and a row of a batch-of-N in
            # different orders, so scores agree to tolerance, not bitwise.
            np.testing.assert_allclose(
                single.scores, batch.scores[index], rtol=1e-9, atol=1e-9
            )

    def test_dips_mode_batch(self, fingerprint, grid, frames):
        live_empty = fingerprint.empty_rss + 1.5
        matcher = NearestNeighborMatcher(
            fingerprint, grid, use_dips=True, live_empty_rss=live_empty
        )
        batch = matcher.match_batch(frames)
        for index, frame in enumerate(frames):
            assert matcher.match(frame).cell == batch.cells[index]

    def test_frame_shape_validated(self, fingerprint, grid, frames):
        matcher = NearestNeighborMatcher(fingerprint, grid)
        with pytest.raises(ValueError, match="frames shape"):
            matcher.match_batch(frames[:, :-1])
        with pytest.raises(ValueError, match="frames shape"):
            matcher.match_batch(frames[0])

    def test_chunked_scoring_identical(self, fingerprint, grid, frames, monkeypatch):
        # Manhattan is the metric that takes the chunked delta-tensor path.
        matcher = NearestNeighborMatcher(fingerprint, grid, metric="manhattan")
        full = matcher.match_batch(frames)
        # Force the blocked code path: at most ~1 frame per chunk.
        monkeypatch.setattr(matching, "_BLOCK_ELEMENTS", 1)
        chunked = matcher.match_batch(frames)
        np.testing.assert_array_equal(full.cells, chunked.cells)
        np.testing.assert_array_equal(full.scores, chunked.scores)


class TestKnnBatch:
    def test_batch_equals_per_frame_reference(self, fingerprint, grid, frames):
        matcher = KnnMatcher(fingerprint, grid, k=3)
        batch = matcher.match_batch(frames)
        for index, frame in enumerate(frames):
            distances = reference_euclidean_distances(fingerprint.values, frame)
            order = np.argsort(distances)[:3]
            weights = 1.0 / (distances[order] + matcher.epsilon)
            weights = weights / weights.sum()
            xs = [grid.center_of(int(c)).x for c in order]
            ys = [grid.center_of(int(c)).y for c in order]
            assert batch.cells[index] == order[0]
            np.testing.assert_allclose(
                batch.positions[index],
                [np.dot(weights, xs), np.dot(weights, ys)],
                rtol=1e-10,
            )

    def test_k_equal_cell_count(self, fingerprint, grid, frames):
        matcher = KnnMatcher(fingerprint, grid, k=grid.cell_count)
        batch = matcher.match_batch(frames[:5])
        for index in range(5):
            distances = reference_euclidean_distances(
                fingerprint.values, frames[index]
            )
            assert batch.cells[index] == np.argmin(distances)


class TestProbabilisticBatch:
    def test_log_likelihoods_batch_matches_reference(
        self, fingerprint, grid, frames
    ):
        matcher = ProbabilisticMatcher(fingerprint, grid, sigma_db=2.5)
        batch = matcher.log_likelihoods_batch(frames)
        for index, frame in enumerate(frames):
            deltas = fingerprint.values - frame[:, None]
            reference = -0.5 * np.sum(deltas**2, axis=0) / 2.5**2
            np.testing.assert_allclose(
                batch[index], reference, rtol=1e-9, atol=1e-9
            )

    def test_posterior_batch_rows_normalized(self, fingerprint, grid, frames):
        matcher = ProbabilisticMatcher(fingerprint, grid)
        posteriors = matcher.posterior_batch(frames)
        np.testing.assert_allclose(posteriors.sum(axis=1), 1.0)
        for index, frame in enumerate(frames):
            np.testing.assert_allclose(
                posteriors[index], matcher.posterior(frame), rtol=1e-8, atol=1e-15
            )

    def test_match_batch_cells(self, fingerprint, grid, frames):
        matcher = ProbabilisticMatcher(fingerprint, grid)
        batch = matcher.match_batch(frames)
        for index, frame in enumerate(frames):
            assert batch.cells[index] == matcher.match(frame).cell


class TestBatchMatchResult:
    def test_sequence_protocol(self, fingerprint, grid, frames):
        batch = NearestNeighborMatcher(fingerprint, grid).match_batch(frames)
        assert isinstance(batch, BatchMatchResult)
        assert len(batch) == len(frames)
        assert batch.frame_count == len(frames)
        collected = list(batch)
        assert len(collected) == len(frames)
        assert collected[3].cell == batch.cells[3]
        assert batch[-1].cell == batch.cells[-1]
        sliced = batch[1:4]
        assert [r.cell for r in sliced] == list(batch.cells[1:4])
        with pytest.raises(IndexError):
            batch[len(frames)]

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="positions"):
            BatchMatchResult(
                cells=np.zeros(3, dtype=int),
                positions=np.zeros((2, 2)),
                scores=np.zeros((3, 5)),
            )
        with pytest.raises(ValueError, match="scores"):
            BatchMatchResult(
                cells=np.zeros(3, dtype=int),
                positions=np.zeros((3, 2)),
                scores=np.zeros((2, 5)),
            )


class TestMultiTargetBatch:
    def test_match_batch_equals_per_frame(self, fingerprint, grid, frames):
        matcher = MultiTargetMatcher(fingerprint, grid, prune_keep=8)
        results = matcher.match_batch(frames[:10])
        assert len(results) == 10
        for frame, batched in zip(frames[:10], results):
            single = matcher.match(frame)
            assert batched.count == single.count
            assert batched.cells == single.cells
            assert batched.residual == pytest.approx(single.residual)

    def test_frames_validated(self, fingerprint, grid):
        matcher = MultiTargetMatcher(fingerprint, grid)
        with pytest.raises(ValueError, match="frames shape"):
            matcher.match_batch(np.zeros((4, 3)))

    def test_row_sweep_pair_search_matches_broadcast(
        self, fingerprint, grid, frames, monkeypatch
    ):
        import repro.core.multi_target as multi_target

        matcher = MultiTargetMatcher(fingerprint, grid, prune_keep=None)
        broadcast = [matcher.match(frame) for frame in frames[:6]]
        # Force the memory-bounded row-at-a-time path.
        monkeypatch.setattr(multi_target, "_PAIR_BLOCK_ELEMENTS", 1)
        swept = [matcher.match(frame) for frame in frames[:6]]
        for a, b in zip(broadcast, swept):
            assert a.cells == b.cells
            assert a.residual == pytest.approx(b.residual)

    def test_pruned_pair_search_matches_exhaustive(self, fingerprint, grid):
        rng = np.random.default_rng(3)
        dips = fingerprint.dips()
        frame = fingerprint.empty_rss - (
            dips[:, 4] + dips[:, 17] + rng.normal(0, 0.05, fingerprint.link_count)
        )
        exhaustive = MultiTargetMatcher(fingerprint, grid, prune_keep=None)
        assert exhaustive.match(frame).cells == (4, 17)


class TestPipelineBatch:
    def test_localize_trace_consistent_with_localize(self, paper_scenario):
        from repro.core.pipeline import TafLoc
        from repro.sim.collector import CollectionProtocol, RssCollector

        protocol = CollectionProtocol(samples_per_cell=5, empty_room_samples=8)
        system = TafLoc(RssCollector(paper_scenario, protocol, seed=1), seed=2)
        system.commission(0.0)
        trace = RssCollector(paper_scenario, protocol, seed=3).live_trace(
            0.0, [5, 20, 60, 90]
        )
        batch = system.localize_trace(trace)
        assert isinstance(batch, BatchMatchResult)
        for index in range(trace.frame_count):
            single = system.localize(trace.rss[index], 0.0)
            assert batch[index].cell == single.cell
            np.testing.assert_allclose(
                [batch[index].position.x, batch[index].position.y],
                [single.position.x, single.position.y],
                rtol=1e-9,
                atol=1e-9,
            )
        errors = system.localization_errors(trace)
        assert errors.shape == (trace.frame_count,)
        reference = [
            batch[i].position.distance_to(
                type(batch[i].position)(*trace.true_positions[i])
            )
            for i in range(trace.frame_count)
        ]
        np.testing.assert_allclose(errors, reference, rtol=1e-12)
