"""Unit tests for the particle-filter tracker."""

import numpy as np
import pytest

from repro.core.fingerprint import FingerprintMatrix
from repro.core.matching import ProbabilisticMatcher
from repro.core.tracking import ParticleFilterTracker, TrackerConfig
from repro.sim.geometry import Grid, Room


@pytest.fixture()
def room():
    return Room(3.0, 3.0)


@pytest.fixture()
def grid(room):
    return Grid(room, 0.6)  # 5x5 = 25 cells


@pytest.fixture()
def matcher(grid):
    rng = np.random.default_rng(0)
    values = rng.normal(-50.0, 6.0, size=(8, grid.cell_count))
    fingerprint = FingerprintMatrix(values=values, empty_rss=np.full(8, -45.0))
    return ProbabilisticMatcher(fingerprint, grid, sigma_db=2.0)


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"particle_count": 0},
        {"process_sigma_m": 0.0},
        {"resample_threshold": 1.5},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            TrackerConfig(**kwargs)


class TestTracker:
    def test_estimates_stay_in_room(self, matcher, room):
        tracker = ParticleFilterTracker(matcher, room, seed=0)
        rng = np.random.default_rng(1)
        for _ in range(10):
            estimate = tracker.step(rng.normal(-50, 5, size=8))
            assert room.contains(estimate)

    def test_converges_to_static_target(self, matcher, room, grid):
        """Repeated observations of one cell pull the estimate to it."""
        target_cell = 12  # center of the 5x5 grid
        observation = matcher.fingerprint.column(target_cell)
        tracker = ParticleFilterTracker(
            matcher, room, TrackerConfig(process_sigma_m=0.2), seed=0
        )
        estimate = None
        for _ in range(15):
            estimate = tracker.step(observation)
        assert estimate.distance_to(grid.center_of(target_cell)) < 0.8

    def test_tracks_moving_target(self, matcher, room, grid):
        """Track a target stepping through a row of cells; late estimates
        follow it to the far side of the room."""
        path = [10, 11, 12, 13, 14]  # middle row, left to right
        tracker = ParticleFilterTracker(
            matcher, room, TrackerConfig(process_sigma_m=0.7), seed=0
        )
        estimates = []
        for cell in path:
            for _ in range(4):
                estimates.append(tracker.step(matcher.fingerprint.column(cell)))
        final_target = grid.center_of(path[-1])
        assert estimates[-1].distance_to(final_target) < 1.0

    def test_run_convenience(self, matcher, room):
        tracker = ParticleFilterTracker(matcher, room, seed=0)
        frames = np.tile(matcher.fingerprint.column(12), (5, 1))
        estimates = tracker.run(frames)
        assert len(estimates) == 5
        assert len(tracker.history) == 5

    def test_run_validates_shape(self, matcher, room):
        tracker = ParticleFilterTracker(matcher, room, seed=0)
        with pytest.raises(ValueError, match="2-D"):
            tracker.run(np.zeros(8))

    def test_deterministic_per_seed(self, matcher, room):
        frames = np.tile(matcher.fingerprint.column(7), (6, 1))
        a = ParticleFilterTracker(matcher, room, seed=5).run(frames)
        b = ParticleFilterTracker(matcher, room, seed=5).run(frames)
        assert [(p.x, p.y) for p in a] == [(p.x, p.y) for p in b]

    def test_effective_sample_size_bounds(self, matcher, room):
        config = TrackerConfig(particle_count=200)
        tracker = ParticleFilterTracker(matcher, room, config, seed=0)
        assert tracker.effective_sample_size == pytest.approx(200.0)
        tracker.step(matcher.fingerprint.column(3))
        assert 1.0 <= tracker.effective_sample_size <= 200.0

    def test_resampling_restores_ess(self, matcher, room):
        config = TrackerConfig(particle_count=300, resample_threshold=0.9)
        tracker = ParticleFilterTracker(matcher, room, config, seed=0)
        for _ in range(5):
            tracker.step(matcher.fingerprint.column(3))
        # With an aggressive threshold the filter must have resampled, so the
        # ESS cannot be tiny.
        assert tracker.effective_sample_size > 30
