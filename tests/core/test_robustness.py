"""Unit tests for link-failure robustness."""

import numpy as np
import pytest

from repro.core.fingerprint import FingerprintMatrix
from repro.core.robustness import (
    detect_dead_links,
    mask_fingerprint,
    mask_live_vector,
    masked_matcher,
)
from repro.sim.collector import RssCollector
from repro.sim.geometry import Point
from repro.sim.scenario import build_paper_scenario


@pytest.fixture(scope="module")
def scenario():
    return build_paper_scenario(seed=888)


@pytest.fixture(scope="module")
def fingerprint(scenario):
    return FingerprintMatrix(
        values=scenario.true_fingerprint_matrix(0.0),
        empty_rss=scenario.true_rss(0.0),
        day=0.0,
    )


class TestDetectDeadLinks:
    def make_frames(self, scenario, seed=0, count=10):
        collector = RssCollector(scenario, seed=seed)
        return np.vstack([collector.live_vector(0.0) for _ in range(count)])

    def test_all_healthy_on_clean_frames(self, scenario):
        frames = self.make_frames(scenario)
        healthy = detect_dead_links(frames, scenario.true_rss(0.0))
        assert healthy.all()

    def test_floor_pinned_link_flagged(self, scenario):
        frames = self.make_frames(scenario)
        frames[:, 3] = -100.0
        healthy = detect_dead_links(frames, scenario.true_rss(0.0))
        assert not healthy[3]
        assert healthy.sum() == frames.shape[1] - 1

    def test_frozen_link_flagged(self, scenario):
        frames = self.make_frames(scenario)
        frames[:, 5] = frames[0, 5]  # stuck driver: identical readings
        healthy = detect_dead_links(frames, scenario.true_rss(0.0))
        assert not healthy[5]

    def test_wildly_offset_link_flagged(self, scenario):
        frames = self.make_frames(scenario)
        frames[:, 7] += 40.0
        healthy = detect_dead_links(frames, scenario.true_rss(0.0))
        assert not healthy[7]

    def test_empty_rss_shape_validated(self, scenario):
        frames = self.make_frames(scenario)
        with pytest.raises(ValueError, match="empty_rss"):
            detect_dead_links(frames, np.zeros(3))


class TestMaskFingerprint:
    def test_projection_shapes(self, fingerprint):
        mask = np.ones(10, dtype=bool)
        mask[2] = mask[7] = False
        reduced = mask_fingerprint(fingerprint, mask)
        assert reduced.link_count == 8
        assert reduced.cell_count == fingerprint.cell_count
        assert "masked" in reduced.source

    def test_rows_match_source(self, fingerprint):
        mask = np.zeros(10, dtype=bool)
        mask[[0, 4, 9]] = True
        reduced = mask_fingerprint(fingerprint, mask)
        np.testing.assert_array_equal(
            reduced.values, fingerprint.values[[0, 4, 9]]
        )

    def test_all_masked_rejected(self, fingerprint):
        with pytest.raises(ValueError, match="nothing to match"):
            mask_fingerprint(fingerprint, np.zeros(10, dtype=bool))

    def test_shape_validated(self, fingerprint):
        with pytest.raises(ValueError, match="link_mask"):
            mask_fingerprint(fingerprint, np.ones(5, dtype=bool))

    def test_mask_live_vector(self):
        mask = np.array([True, False, True])
        out = mask_live_vector(np.array([1.0, 2.0, 3.0]), mask)
        np.testing.assert_array_equal(out, [1.0, 3.0])
        with pytest.raises(ValueError):
            mask_live_vector(np.zeros(2), mask)


class TestGracefulDegradation:
    def median_error(self, scenario, fingerprint, dead_links, seed):
        mask = np.ones(scenario.deployment.link_count, dtype=bool)
        mask[list(dead_links)] = False
        matcher = masked_matcher(
            fingerprint, scenario.deployment.grid, mask, kind="knn"
        )
        trace = RssCollector(scenario, seed=seed).live_trace(
            0.0, list(range(0, 96, 5))
        )
        errors = []
        for frame, (x, y) in zip(trace.rss, trace.true_positions):
            estimate = matcher.match(mask_live_vector(frame, mask)).position
            errors.append(estimate.distance_to(Point(float(x), float(y))))
        return float(np.median(errors))

    def test_one_dead_link_small_impact(self, scenario, fingerprint):
        baseline = self.median_error(scenario, fingerprint, [], seed=9)
        degraded = self.median_error(scenario, fingerprint, [4], seed=9)
        assert degraded < baseline + 1.0

    def test_half_dead_links_still_functional(self, scenario, fingerprint):
        degraded = self.median_error(
            scenario, fingerprint, [0, 2, 4, 6, 8], seed=9
        )
        # Random guessing in this room gives ~3 m; stay clearly better.
        assert degraded < 2.5

    def test_degradation_monotone_in_expectation(self, scenario, fingerprint):
        few = np.mean(
            [self.median_error(scenario, fingerprint, [1], seed=s) for s in (9, 10)]
        )
        many = np.mean(
            [
                self.median_error(scenario, fingerprint, [1, 3, 5, 7], seed=s)
                for s in (9, 10)
            ]
        )
        assert many >= few - 0.3  # allow noise, forbid absurd inversions


class TestMaskedMatcherKinds:
    @pytest.mark.parametrize("kind", ["nn", "knn", "probabilistic"])
    def test_kinds_build_and_match(self, scenario, fingerprint, kind):
        mask = np.ones(10, dtype=bool)
        mask[0] = False
        matcher = masked_matcher(
            fingerprint, scenario.deployment.grid, mask, kind=kind
        )
        frame = scenario.true_rss(0.0, cell=40)
        result = matcher.match(mask_live_vector(frame, mask))
        assert 0 <= result.cell < 96

    def test_unknown_kind_rejected(self, scenario, fingerprint):
        with pytest.raises(ValueError, match="kind"):
            masked_matcher(
                fingerprint,
                scenario.deployment.grid,
                np.ones(10, dtype=bool),
                kind="oracle",
            )
