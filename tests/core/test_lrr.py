"""Unit tests for the low-rank-representation (Z) fitting and transfer."""

import numpy as np
import pytest

from repro.core.lrr import LrrConfig, LrrModel, fit_lrr, fit_lrr_nuclear


def make_instance(links=8, cells=30, rank=4, seed=0, noise=0.0):
    """A rank-limited matrix plus a reference set that spans it."""
    rng = np.random.default_rng(seed)
    base = rng.normal(size=(links, rank)) @ rng.normal(size=(rank, cells))
    matrix = base - 50.0  # dBm-like offset
    if noise:
        matrix = matrix + noise * rng.standard_normal(matrix.shape)
    references = np.arange(rank + 2)  # a few spares beyond the rank
    return matrix, references


class TestFitLrr:
    def test_training_fit_is_tight_on_low_rank_data(self):
        matrix, refs = make_instance()
        model = fit_lrr(matrix, refs, LrrConfig(ridge=1e-8))
        assert model.training_residual < 1e-6

    def test_prediction_recovers_training_matrix(self):
        matrix, refs = make_instance()
        model = fit_lrr(matrix, refs, LrrConfig(ridge=1e-8))
        predicted = model.predict(matrix[:, refs])
        np.testing.assert_allclose(predicted, matrix, atol=1e-5)

    def test_transfer_under_per_link_drift(self):
        """The paper's core trick: Z learned at day 0 transfers fresh
        reference measurements under per-link gain drift."""
        matrix, refs = make_instance()
        model = fit_lrr(matrix, refs, LrrConfig(ridge=1e-8, center=True))
        drift = np.linspace(-3.0, 4.0, matrix.shape[0])[:, None]
        drifted = matrix + drift
        predicted = model.predict(drifted[:, refs])
        np.testing.assert_allclose(predicted, drifted, atol=1e-4)

    def test_uncentered_fit_does_not_transfer_drift(self):
        """Without centering, a common drift leaks through Z; this documents
        why centering is the default."""
        matrix, refs = make_instance()
        centered = fit_lrr(matrix, refs, LrrConfig(ridge=1e-8, center=True))
        uncentered = fit_lrr(matrix, refs, LrrConfig(ridge=1e-8, center=False))
        drift = np.full((matrix.shape[0], 1), 5.0)
        drifted = matrix + drift
        err_centered = np.abs(centered.predict(drifted[:, refs]) - drifted).mean()
        err_uncentered = np.abs(
            uncentered.predict(drifted[:, refs]) - drifted
        ).mean()
        assert err_centered <= err_uncentered + 1e-9

    def test_ridge_shrinks_correlation(self):
        matrix, refs = make_instance(noise=0.1)
        small = fit_lrr(matrix, refs, LrrConfig(ridge=1e-6))
        large = fit_lrr(matrix, refs, LrrConfig(ridge=100.0))
        assert np.linalg.norm(large.correlation) < np.linalg.norm(
            small.correlation
        )

    def test_model_shape_properties(self):
        matrix, refs = make_instance()
        model = fit_lrr(matrix, refs)
        assert model.reference_count == len(refs)
        assert model.cell_count == matrix.shape[1]
        assert model.correlation.shape == (len(refs), matrix.shape[1])

    def test_invalid_reference_cells(self):
        matrix, _ = make_instance(cells=10)
        with pytest.raises(ValueError):
            fit_lrr(matrix, np.array([0, 10]))
        with pytest.raises(ValueError, match="duplicates"):
            fit_lrr(matrix, np.array([0, 0]))
        with pytest.raises(ValueError):
            fit_lrr(matrix, np.array([], dtype=int))

    def test_predict_validates_shape(self):
        matrix, refs = make_instance()
        model = fit_lrr(matrix, refs)
        with pytest.raises(ValueError, match="columns"):
            model.predict(matrix[:, : len(refs) - 1])


class TestFitLrrNuclear:
    def test_fits_low_rank_data(self):
        matrix, refs = make_instance()
        model = fit_lrr_nuclear(
            matrix, refs, nuclear_weight=1e-4, ridge=1e-8
        )
        assert model.training_residual < 0.5

    def test_nuclear_weight_reduces_rank_of_z(self):
        matrix, refs = make_instance(noise=0.2)
        light = fit_lrr_nuclear(matrix, refs, nuclear_weight=1e-6)
        heavy = fit_lrr_nuclear(matrix, refs, nuclear_weight=50.0)
        rank_light = np.linalg.matrix_rank(light.correlation, tol=1e-6)
        rank_heavy = np.linalg.matrix_rank(heavy.correlation, tol=1e-6)
        assert rank_heavy <= rank_light

    def test_extreme_weight_zeroes_z(self):
        matrix, refs = make_instance()
        model = fit_lrr_nuclear(matrix, refs, nuclear_weight=1e9)
        np.testing.assert_allclose(model.correlation, 0.0, atol=1e-9)


class TestLrrModelValidation:
    def test_row_mismatch_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            LrrModel(
                reference_cells=np.array([0, 1]),
                correlation=np.zeros((3, 5)),
                reference_mean_offset=None,
                training_residual=0.0,
            )

    def test_centered_property(self):
        model = LrrModel(
            reference_cells=np.array([0, 1]),
            correlation=np.zeros((2, 5)),
            reference_mean_offset=np.zeros(4),
            training_residual=0.0,
        )
        assert model.centered
        bare = LrrModel(
            reference_cells=np.array([0, 1]),
            correlation=np.zeros((2, 5)),
            reference_mean_offset=None,
            training_residual=0.0,
        )
        assert not bare.centered
