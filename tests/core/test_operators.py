"""Unit tests for the continuity (G) and similarity (H) operators."""

import numpy as np
import pytest

from repro.core.operators import (
    continuity_operator,
    masked_pair_weights,
    similarity_operator,
)
from repro.sim.deployment import build_paper_deployment
from repro.sim.geometry import Grid, Room


@pytest.fixture()
def small_grid():
    # 3 columns x 2 rows = 6 cells.
    return Grid(Room(1.8, 1.2), 0.6)


class TestContinuityOperator:
    def test_shape(self, small_grid):
        g = continuity_operator(small_grid)
        # 3x2 grid: horizontal pairs 2*2=4, vertical pairs 3*1=3 → 7 pairs.
        assert g.shape == (6, 7)

    def test_each_pair_is_a_difference(self, small_grid):
        g = continuity_operator(small_grid)
        for p in range(g.shape[1]):
            column = g[:, p]
            assert np.sum(column == 1.0) == 1
            assert np.sum(column == -1.0) == 1
            assert np.sum(column != 0.0) == 2

    def test_pairs_are_grid_neighbors(self, small_grid):
        g = continuity_operator(small_grid)
        for p in range(g.shape[1]):
            a, b = np.flatnonzero(g[:, p])
            assert b in small_grid.neighbors_of(int(a))

    def test_smooth_field_has_small_penalty(self, small_grid):
        """A linear-in-position field must have a much smaller continuity
        penalty than a random one."""
        g = continuity_operator(small_grid)
        centers = small_grid.centers()
        smooth = np.array([[c.x + c.y for c in centers]])
        rough = np.random.default_rng(0).normal(size=(1, 6)) * 3.0
        assert np.sum((smooth @ g) ** 2) < np.sum((rough @ g) ** 2)

    def test_constant_field_zero_penalty(self, small_grid):
        g = continuity_operator(small_grid)
        constant = np.full((2, 6), 7.0)
        np.testing.assert_allclose(constant @ g, 0.0, atol=1e-12)


class TestSimilarityOperator:
    def test_shape_on_paper_deployment(self):
        deployment = build_paper_deployment()
        h = similarity_operator(deployment)
        assert h.shape == (len(deployment.adjacent_link_pairs()), 10)

    def test_rows_are_differences(self):
        deployment = build_paper_deployment()
        h = similarity_operator(deployment)
        for p in range(h.shape[0]):
            row = h[p]
            assert np.sum(row == 1.0) == 1
            assert np.sum(row == -1.0) == 1

    def test_equal_links_zero_penalty(self):
        deployment = build_paper_deployment()
        h = similarity_operator(deployment)
        same = np.tile(np.linspace(-50, -40, 96), (10, 1))
        np.testing.assert_allclose(h @ same, 0.0, atol=1e-12)

    def test_custom_pairs(self):
        deployment = build_paper_deployment()
        h = similarity_operator(deployment, pairs=[(0, 3), (2, 5)])
        assert h.shape == (2, 10)
        assert h[0, 0] == -1.0 and h[0, 3] == 1.0

    def test_invalid_pairs_rejected(self):
        deployment = build_paper_deployment()
        with pytest.raises(ValueError, match="out of range"):
            similarity_operator(deployment, pairs=[(0, 99)])


class TestMaskedPairWeights:
    def test_pair_active_only_when_both_cells_masked(self, small_grid):
        mask = np.zeros((2, 6), dtype=bool)
        mask[0, 0] = True
        mask[0, 1] = True  # cells 0-1 are horizontal neighbors
        mask[1, 0] = True  # link 1 has only cell 0 → no active pair
        weights, row_mask = masked_pair_weights(mask, small_grid)
        g = continuity_operator(small_grid)
        # Find the pair column for (0, 1).
        pair_idx = next(
            p
            for p in range(g.shape[1])
            if set(np.flatnonzero(g[:, p]).tolist()) == {0, 1}
        )
        assert weights[0, pair_idx] == 1.0
        assert weights[1, pair_idx] == 0.0
        np.testing.assert_array_equal(row_mask, mask.astype(float))

    def test_all_masked_gives_all_pairs(self, small_grid):
        mask = np.ones((1, 6), dtype=bool)
        weights, _ = masked_pair_weights(mask, small_grid)
        np.testing.assert_array_equal(weights, np.ones_like(weights))
