"""Solver modes of LoLi-IR: the Gram fast path vs the matrix-free CG
reference, float32, and warm-started solves."""

import numpy as np
import pytest

from repro.core.loli_ir import LoliIrConfig, LoliIrProblem, LoliIrSolver
from repro.core.reconstruction import ReconstructionConfig, Reconstructor
from repro.core.fingerprint import FingerprintMatrix
from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.scenario import build_paper_scenario


def make_problem(links=8, cells=24, rank=3, observe=0.5, seed=0):
    rng = np.random.default_rng(seed)
    truth = rng.normal(0, 1, size=(links, rank)) @ rng.normal(
        0, 1, size=(rank, cells)
    )
    mask = rng.random((links, cells)) < observe
    mask[:, 0] = True  # keep at least one fully observed column
    return truth, LoliIrProblem(
        observed_mask=mask,
        observed_values=np.where(mask, truth, 0.0),
        lrr_target=truth + rng.normal(0, 0.05, size=truth.shape),
    )


def make_smooth_problem(links=8, cells=24, rank=3, seed=3):
    """A problem exercising every objective term, including the couplings."""
    rng = np.random.default_rng(seed)
    truth = rng.normal(size=(links, rank)) @ rng.normal(size=(rank, cells))
    mask = rng.random((links, cells)) < 0.5
    pairs_g, pairs_h = 30, 6
    g = np.zeros((cells, pairs_g))
    for p in range(pairs_g):
        a, b = rng.choice(cells, 2, replace=False)
        g[a, p], g[b, p] = -1.0, 1.0
    h = np.zeros((pairs_h, links))
    for q in range(pairs_h):
        a, b = rng.choice(links, 2, replace=False)
        h[q, a], h[q, b] = -1.0, 1.0
    return LoliIrProblem(
        observed_mask=mask,
        observed_values=np.where(mask, truth, 0.0),
        lrr_target=truth + 0.2 * rng.standard_normal(truth.shape),
        continuity_op=g,
        continuity_weights=(rng.random((links, pairs_g)) < 0.5).astype(float),
        similarity_op=h,
        similarity_weights=(rng.random((pairs_h, cells)) < 0.5).astype(float),
    )


class TestGramMethod:
    def test_method_validated(self):
        with pytest.raises(ValueError, match="method"):
            LoliIrConfig(method="newton")

    def test_matches_cg_reference_on_full_objective(self):
        """Both backends solve the same normal equations; with acceleration
        off and a tight inner tolerance they must agree to solver precision
        on a problem exercising every term (couplings included)."""
        problem = make_smooth_problem()
        kwargs = dict(rank=3, accelerate=False, cg_tol=1e-11, tol=1e-8)
        gram = LoliIrSolver(LoliIrConfig(method="gram", **kwargs)).solve(problem)
        cg = LoliIrSolver(LoliIrConfig(method="cg", **kwargs)).solve(problem)
        assert gram.iterations == cg.iterations
        np.testing.assert_allclose(gram.matrix, cg.matrix, atol=1e-6)
        assert gram.final_objective == pytest.approx(
            cg.final_objective, rel=1e-9
        )

    def test_matches_cg_without_couplings(self):
        _, problem = make_problem()
        kwargs = dict(rank=3, accelerate=False, cg_tol=1e-11, tol=1e-8)
        gram = LoliIrSolver(LoliIrConfig(method="gram", **kwargs)).solve(problem)
        cg = LoliIrSolver(LoliIrConfig(method="cg", **kwargs)).solve(problem)
        np.testing.assert_allclose(gram.matrix, cg.matrix, atol=1e-6)

    def test_uniform_rows_fast_path_exact(self):
        """Fully observed + no smoothness ⇒ every row shares one k×k system;
        the shared-factorization fast path must agree with the reference."""
        rng = np.random.default_rng(9)
        truth = rng.normal(size=(6, 3)) @ rng.normal(size=(3, 15))
        problem = LoliIrProblem(
            observed_mask=np.ones_like(truth, dtype=bool),
            observed_values=truth,
        )
        kwargs = dict(rank=3, accelerate=False, cg_tol=1e-11, tol=1e-8)
        gram = LoliIrSolver(LoliIrConfig(method="gram", **kwargs)).solve(problem)
        cg = LoliIrSolver(LoliIrConfig(method="cg", **kwargs)).solve(problem)
        np.testing.assert_allclose(gram.matrix, cg.matrix, atol=1e-6)

    def test_acceleration_never_increases_objective(self):
        problem = make_smooth_problem(seed=11)
        result = LoliIrSolver(
            LoliIrConfig(rank=3, accelerate=True, outer_iterations=25)
        ).solve(problem)
        history = result.objective_history
        assert np.all(np.diff(history) <= 1e-9 * np.maximum(1.0, history[:-1]))

    def test_acceleration_does_not_worsen_final_objective(self):
        problem = make_smooth_problem(seed=12)
        plain = LoliIrSolver(
            LoliIrConfig(rank=3, accelerate=False, outer_iterations=40)
        ).solve(problem)
        fast = LoliIrSolver(
            LoliIrConfig(rank=3, accelerate=True, outer_iterations=40)
        ).solve(problem)
        assert fast.final_objective <= plain.final_objective * (1 + 1e-4)

    def test_convergence_history_exposed(self):
        problem = make_smooth_problem()
        result = LoliIrSolver(LoliIrConfig(rank=3)).solve(problem)
        assert result.sweep_seconds.shape == (result.iterations,)
        assert np.all(result.sweep_seconds > 0)
        assert result.inner_iterations.shape == (result.iterations,)
        assert result.solve_seconds >= float(result.sweep_seconds.sum())

    def test_closed_form_rows_report_zero_inner_iterations(self):
        _, problem = make_problem()  # no couplings ⇒ no inner CG at all
        result = LoliIrSolver(LoliIrConfig(rank=3)).solve(problem)
        assert np.all(result.inner_iterations == 0)


class TestDirectCoupledSolver:
    """The cached-splu coupled backend vs the default block-Cholesky PCG."""

    def test_coupled_solver_validated(self):
        with pytest.raises(ValueError, match="coupled_solver"):
            LoliIrConfig(coupled_solver="lobpcg")

    def test_direct_matches_pcg_on_full_objective(self):
        """Both coupled backends solve the same convex half-steps; with
        acceleration off and tight tolerances they must agree to solver
        precision on a problem exercising both couplings."""
        problem = make_smooth_problem()
        kwargs = dict(rank=3, accelerate=False, cg_tol=1e-11, tol=1e-8)
        direct = LoliIrSolver(
            LoliIrConfig(coupled_solver="direct", **kwargs)
        ).solve(problem)
        pcg = LoliIrSolver(
            LoliIrConfig(coupled_solver="pcg", **kwargs)
        ).solve(problem)
        np.testing.assert_allclose(direct.matrix, pcg.matrix, atol=1e-6)
        assert direct.final_objective == pytest.approx(
            pcg.final_objective, rel=1e-9
        )

    def test_direct_matches_cg_reference(self):
        problem = make_smooth_problem(seed=5)
        kwargs = dict(rank=3, accelerate=False, cg_tol=1e-11, tol=1e-8)
        direct = LoliIrSolver(
            LoliIrConfig(coupled_solver="direct", **kwargs)
        ).solve(problem)
        cg = LoliIrSolver(LoliIrConfig(method="cg", **kwargs)).solve(problem)
        np.testing.assert_allclose(direct.matrix, cg.matrix, atol=1e-6)

    def test_direct_first_sweep_solves_exactly(self):
        """The first coupled sweep is a factorize-and-backsolve: zero inner
        CG iterations, later sweeps reuse the LU as a preconditioner."""
        problem = make_smooth_problem(seed=7)
        result = LoliIrSolver(
            LoliIrConfig(rank=3, coupled_solver="direct", accelerate=False)
        ).solve(problem)
        assert result.inner_iterations[0] == 0
        assert result.iterations >= 1

    def test_direct_objective_monotone(self):
        problem = make_smooth_problem(seed=13)
        result = LoliIrSolver(
            LoliIrConfig(rank=3, coupled_solver="direct", outer_iterations=20)
        ).solve(problem)
        history = result.objective_history
        assert np.all(np.diff(history) <= 1e-9 * np.maximum(1.0, history[:-1]))

    def test_lu_reused_across_solves(self):
        """A second solve on the same solver instance reuses the cached LU
        (no fresh exact first sweep — the preconditioned-CG path runs)."""
        problem = make_smooth_problem(seed=17)
        solver = LoliIrSolver(
            LoliIrConfig(rank=3, coupled_solver="direct", accelerate=False)
        )
        first = solver.solve(problem)
        assert len(solver._direct_cache) == 2  # one handle per coupling
        second = solver.solve(problem)
        assert len(solver._direct_cache) == 2
        # The cached-LU path still converges to the same answer.
        np.testing.assert_allclose(second.matrix, first.matrix, atol=1e-5)


class TestFloat32Mode:
    def test_dtype_validated(self):
        with pytest.raises(ValueError, match="dtype"):
            LoliIrConfig(dtype="float16")

    def test_float32_solution_close_to_float64(self):
        truth, problem = make_problem()
        result64 = LoliIrSolver(LoliIrConfig(rank=3)).solve(problem)
        result32 = LoliIrSolver(LoliIrConfig(rank=3, dtype="float32")).solve(problem)
        assert result32.matrix.dtype == np.float32
        np.testing.assert_allclose(
            result32.matrix, result64.matrix, atol=5e-2, rtol=5e-2
        )

    def test_float32_objective_monotone(self):
        _, problem = make_problem()
        result = LoliIrSolver(
            LoliIrConfig(rank=3, dtype="float32", outer_iterations=10)
        ).solve(problem)
        history = result.objective_history
        assert np.all(np.diff(history) <= 1e-3 * np.maximum(1.0, history[:-1]))


class TestWarmFactors:
    def test_warm_factors_reused(self):
        _, problem = make_problem()
        solver = LoliIrSolver(LoliIrConfig(rank=3))
        cold = solver.solve(problem)
        warm = solver.solve(problem, warm_factors=(cold.left, cold.right))
        # Restarting at the optimum must terminate almost immediately…
        assert warm.iterations <= 3
        # …without degrading the solution.
        assert warm.final_objective <= cold.final_objective * (1 + 1e-6)

    def test_mismatched_warm_factors_ignored(self):
        _, problem = make_problem()
        solver = LoliIrSolver(LoliIrConfig(rank=3))
        bad = (np.zeros((2, 3)), np.zeros((5, 3)))
        result = solver.solve(problem, warm_factors=bad)
        assert result.objective_history[-1] <= result.objective_history[0]

    def test_reconstructor_warm_start_quality(self):
        scenario = build_paper_scenario(seed=77)
        protocol = CollectionProtocol(samples_per_cell=5, empty_room_samples=8)
        collector = RssCollector(scenario, protocol, seed=1)
        survey = collector.collect_full_survey(0.0)
        initial = FingerprintMatrix(
            values=survey.survey.matrix, empty_rss=survey.survey.empty_rss
        )

        def run(warm_start):
            reconstructor = Reconstructor(
                scenario.deployment,
                initial,
                ReconstructionConfig(warm_start=warm_start),
                seed=2,
            )
            errors = []
            probe = RssCollector(scenario, protocol, seed=3)
            for day in (30.0, 30.25, 30.5):
                refs = probe.collect_survey(day, reconstructor.references.cells)
                empty = probe.collect_empty_room(day)
                report = reconstructor.reconstruct(
                    refs.survey.matrix, empty, day=day
                )
                truth = scenario.true_fingerprint_matrix(day)
                errors.append(
                    float(np.abs(report.fingerprint.values - truth).mean())
                )
            return errors

        cold = run(False)
        warm = run(True)
        # Warm starting must not cost reconstruction quality.
        for c, w in zip(cold, warm):
            assert w <= c + 0.25

    def test_warm_never_exceeds_cold_iterations(self):
        """Regression guard for the PR-1 warm-start pathology (warm solves
        crawling to the sweep cap while cold converged in half the sweeps).

        The probe design makes this structural: a warm solve either finishes
        in one sweep or replays the cold trajectory, so on every update of
        the incremental path its outer-iteration count is ≤ the cold one.
        """
        scenario = build_paper_scenario(seed=2016)
        protocol = CollectionProtocol(samples_per_cell=10, empty_room_samples=10)
        collector = RssCollector(scenario, protocol, seed=1)
        survey = collector.collect_full_survey(0.0)
        initial = FingerprintMatrix(
            values=survey.survey.matrix, empty_rss=survey.survey.empty_rss
        )

        def run(warm_start):
            reconstructor = Reconstructor(
                scenario.deployment,
                initial,
                ReconstructionConfig(warm_start=warm_start),
                seed=2,
            )
            probe = RssCollector(scenario, protocol, seed=3)
            iterations = []
            # The 6-hourly refresh loop the warm start is built for.
            for day in (30.0, 30.25, 30.5, 30.75):
                refs = probe.collect_survey(day, reconstructor.references.cells)
                empty = probe.collect_empty_room(day)
                report = reconstructor.reconstruct(
                    refs.survey.matrix, empty, day=day
                )
                iterations.append(report.solver_result.iterations)
            return iterations

        cold = run(False)
        warm = run(True)
        for w, c in zip(warm, cold):
            assert w <= c, f"warm {warm} exceeded cold {cold}"
