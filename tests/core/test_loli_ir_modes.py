"""Float32 mode and warm-started solves of LoLi-IR."""

import numpy as np
import pytest

from repro.core.loli_ir import LoliIrConfig, LoliIrProblem, LoliIrSolver
from repro.core.reconstruction import ReconstructionConfig, Reconstructor
from repro.core.fingerprint import FingerprintMatrix
from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.scenario import build_paper_scenario


def make_problem(links=8, cells=24, rank=3, observe=0.5, seed=0):
    rng = np.random.default_rng(seed)
    truth = rng.normal(0, 1, size=(links, rank)) @ rng.normal(
        0, 1, size=(rank, cells)
    )
    mask = rng.random((links, cells)) < observe
    mask[:, 0] = True  # keep at least one fully observed column
    return truth, LoliIrProblem(
        observed_mask=mask,
        observed_values=np.where(mask, truth, 0.0),
        lrr_target=truth + rng.normal(0, 0.05, size=truth.shape),
    )


class TestFloat32Mode:
    def test_dtype_validated(self):
        with pytest.raises(ValueError, match="dtype"):
            LoliIrConfig(dtype="float16")

    def test_float32_solution_close_to_float64(self):
        truth, problem = make_problem()
        result64 = LoliIrSolver(LoliIrConfig(rank=3)).solve(problem)
        result32 = LoliIrSolver(LoliIrConfig(rank=3, dtype="float32")).solve(problem)
        assert result32.matrix.dtype == np.float32
        np.testing.assert_allclose(
            result32.matrix, result64.matrix, atol=5e-2, rtol=5e-2
        )

    def test_float32_objective_monotone(self):
        _, problem = make_problem()
        result = LoliIrSolver(
            LoliIrConfig(rank=3, dtype="float32", outer_iterations=10)
        ).solve(problem)
        history = result.objective_history
        assert np.all(np.diff(history) <= 1e-3 * np.maximum(1.0, history[:-1]))


class TestWarmFactors:
    def test_warm_factors_reused(self):
        _, problem = make_problem()
        solver = LoliIrSolver(LoliIrConfig(rank=3))
        cold = solver.solve(problem)
        warm = solver.solve(problem, warm_factors=(cold.left, cold.right))
        # Restarting at the optimum must terminate almost immediately…
        assert warm.iterations <= 3
        # …without degrading the solution.
        assert warm.final_objective <= cold.final_objective * (1 + 1e-6)

    def test_mismatched_warm_factors_ignored(self):
        _, problem = make_problem()
        solver = LoliIrSolver(LoliIrConfig(rank=3))
        bad = (np.zeros((2, 3)), np.zeros((5, 3)))
        result = solver.solve(problem, warm_factors=bad)
        assert result.objective_history[-1] <= result.objective_history[0]

    def test_reconstructor_warm_start_quality(self):
        scenario = build_paper_scenario(seed=77)
        protocol = CollectionProtocol(samples_per_cell=5, empty_room_samples=8)
        collector = RssCollector(scenario, protocol, seed=1)
        survey = collector.collect_full_survey(0.0)
        initial = FingerprintMatrix(
            values=survey.survey.matrix, empty_rss=survey.survey.empty_rss
        )

        def run(warm_start):
            reconstructor = Reconstructor(
                scenario.deployment,
                initial,
                ReconstructionConfig(warm_start=warm_start),
                seed=2,
            )
            errors = []
            probe = RssCollector(scenario, protocol, seed=3)
            for day in (30.0, 30.25, 30.5):
                refs = probe.collect_survey(day, reconstructor.references.cells)
                empty = probe.collect_empty_room(day)
                report = reconstructor.reconstruct(
                    refs.survey.matrix, empty, day=day
                )
                truth = scenario.true_fingerprint_matrix(day)
                errors.append(
                    float(np.abs(report.fingerprint.values - truth).mean())
                )
            return errors

        cold = run(False)
        warm = run(True)
        # Warm starting must not cost reconstruction quality.
        for c, w in zip(cold, warm):
            assert w <= c + 0.25
