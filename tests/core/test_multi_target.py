"""Unit tests for the multi-target extension."""

import numpy as np
import pytest

from repro.core.fingerprint import FingerprintMatrix
from repro.core.multi_target import MultiTargetMatcher, pairing_error
from repro.sim.collector import RssCollector
from repro.sim.geometry import Point
from repro.sim.scenario import build_paper_scenario


@pytest.fixture(scope="module")
def scenario():
    return build_paper_scenario(seed=444)


@pytest.fixture(scope="module")
def fingerprint(scenario):
    return FingerprintMatrix(
        values=scenario.true_fingerprint_matrix(0.0),
        empty_rss=scenario.true_rss(0.0),
        day=0.0,
    )


@pytest.fixture(scope="module")
def matcher(scenario, fingerprint):
    return MultiTargetMatcher(fingerprint, scenario.deployment.grid)


class TestCounting:
    def test_empty_room_counts_zero(self, scenario, matcher):
        result = matcher.match(scenario.true_rss(0.0))
        assert result.count == 0
        assert result.cells == ()

    def test_single_target_counts_one(self, scenario, matcher):
        hits = 0
        probe_cells = list(range(10, 90, 11))
        for cell in probe_cells:
            result = matcher.match(scenario.true_rss(0.0, cell=cell))
            if result.count == 1:
                hits += 1
        assert hits >= len(probe_cells) - 1

    def test_two_separated_targets_count_two(self, scenario, matcher):
        pairs = [(10, 85), (3, 70), (25, 92)]
        hits = sum(
            matcher.match(scenario.true_rss_multi(0.0, pair)).count == 2
            for pair in pairs
        )
        assert hits >= 2


class TestLocalization:
    def test_single_target_cell_accuracy(self, scenario, matcher):
        grid = scenario.deployment.grid
        errors = []
        for cell in range(5, 96, 10):
            result = matcher.match(scenario.true_rss(0.0, cell=cell))
            if result.count >= 1:
                best = min(
                    p.distance_to(grid.center_of(cell)) for p in result.positions
                )
                errors.append(best)
        assert np.median(errors) < 1.0

    def test_two_target_pairing_accuracy(self, scenario, matcher):
        grid = scenario.deployment.grid
        errors = []
        for pair in [(10, 85), (3, 70), (25, 92), (40, 55)]:
            result = matcher.match(scenario.true_rss_multi(0.0, pair))
            if result.count == 2:
                truth = [grid.center_of(c) for c in pair]
                errors.append(pairing_error(list(result.positions), truth))
        assert errors, "no pair was ever detected"
        assert np.median(errors) < 1.5

    def test_noisy_frames_still_work(self, scenario, fingerprint):
        matcher = MultiTargetMatcher(fingerprint, scenario.deployment.grid)
        collector = RssCollector(scenario, seed=3)
        frame = collector.live_vector_multi(0.0, [10, 85], averaging=5)
        result = matcher.match(frame)
        assert result.count in (1, 2)  # never zero with two bodies present


class TestModelOrderPenalty:
    def test_higher_penalty_is_more_conservative(self, scenario, fingerprint):
        lenient = MultiTargetMatcher(
            fingerprint, scenario.deployment.grid, count_penalty_db=0.0
        )
        strict = MultiTargetMatcher(
            fingerprint, scenario.deployment.grid, count_penalty_db=3.0
        )
        frame = scenario.true_rss(0.0, cell=40)
        assert strict.match(frame).count <= lenient.match(frame).count


class TestPruning:
    def test_pruned_matches_exhaustive_on_clean_frames(self, scenario, fingerprint):
        exhaustive = MultiTargetMatcher(
            fingerprint, scenario.deployment.grid, prune_keep=None
        )
        pruned = MultiTargetMatcher(
            fingerprint, scenario.deployment.grid, prune_keep=25
        )
        frame = scenario.true_rss_multi(0.0, (10, 85))
        a, b = exhaustive.match(frame), pruned.match(frame)
        if a.count == b.count == 2:
            assert set(a.cells) == set(b.cells)

    def test_prune_keep_validated(self, scenario, fingerprint):
        with pytest.raises(ValueError):
            MultiTargetMatcher(
                fingerprint, scenario.deployment.grid, prune_keep=1
            )


class TestValidation:
    def test_grid_mismatch(self, scenario, fingerprint):
        from repro.sim.geometry import Grid, Room

        with pytest.raises(ValueError, match="cells"):
            MultiTargetMatcher(fingerprint, Grid(Room(1.2, 1.2), 0.6))

    def test_live_vector_shape(self, matcher):
        with pytest.raises(ValueError, match="live vector"):
            matcher.match(np.zeros(3))

    def test_live_empty_shape(self, scenario, fingerprint):
        with pytest.raises(ValueError, match="live_empty_rss"):
            MultiTargetMatcher(
                fingerprint,
                scenario.deployment.grid,
                live_empty_rss=np.zeros(2),
            )


class TestPairingError:
    def test_count_mismatch_is_infinite(self):
        assert pairing_error([Point(0, 0)], []) == float("inf")

    def test_empty_is_zero(self):
        assert pairing_error([], []) == 0.0

    def test_single(self):
        assert pairing_error([Point(0, 0)], [Point(3, 4)]) == pytest.approx(5.0)

    def test_best_permutation_chosen(self):
        estimated = [Point(0, 0), Point(10, 0)]
        truth = [Point(10, 0), Point(0, 0)]
        assert pairing_error(estimated, truth) == pytest.approx(0.0)
