"""Test package (explicit packages keep basenames unique across suites)."""
