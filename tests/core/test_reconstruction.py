"""Unit tests for the high-level Reconstructor (the TafLoc update step)."""

import numpy as np
import pytest

from repro.core.fingerprint import FingerprintMatrix
from repro.core.reconstruction import ReconstructionConfig, Reconstructor
from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.scenario import build_paper_scenario


@pytest.fixture(scope="module")
def setup():
    """Scenario + day-0 survey + reconstructor (module-cached for speed)."""
    scenario = build_paper_scenario(seed=77)
    protocol = CollectionProtocol(samples_per_cell=5, empty_room_samples=10)
    collector = RssCollector(scenario, protocol, seed=1)
    result = collector.collect_full_survey(0.0)
    fingerprint = FingerprintMatrix(
        values=result.survey.matrix,
        empty_rss=result.survey.empty_rss,
        day=0.0,
    )
    reconstructor = Reconstructor(
        scenario.deployment, fingerprint, ReconstructionConfig(), seed=0
    )
    return scenario, collector, fingerprint, reconstructor


def fresh_inputs(setup, day):
    scenario, collector, _, reconstructor = setup
    empty = collector.collect_empty_room(day)
    refs = collector.collect_survey(day, reconstructor.references.cells)
    return refs.survey.matrix, empty


class TestConstruction:
    def test_reference_count_default_is_papers(self, setup):
        _, _, _, reconstructor = setup
        assert reconstructor.references.count == 10

    def test_shape_mismatch_rejected(self, setup):
        scenario, _, fingerprint, _ = setup
        bad = FingerprintMatrix(
            values=fingerprint.values[:, :50], empty_rss=fingerprint.empty_rss
        )
        with pytest.raises(ValueError, match="cells"):
            Reconstructor(scenario.deployment, bad)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReconstructionConfig(reference_count=0)


class TestReconstruct:
    def test_output_shape_and_provenance(self, setup):
        scenario, _, _, reconstructor = setup
        refs, empty = fresh_inputs(setup, 10.0)
        report = reconstructor.reconstruct(refs, empty, day=10.0)
        fp = report.fingerprint
        assert fp.shape == (10, 96)
        assert fp.source == "reconstruction"
        assert fp.day == 10.0

    def test_reference_columns_trusted_exactly(self, setup):
        _, _, _, reconstructor = setup
        refs, empty = fresh_inputs(setup, 10.0)
        report = reconstructor.reconstruct(refs, empty, day=10.0)
        np.testing.assert_array_equal(
            report.fingerprint.values[:, reconstructor.references.cells], refs
        )

    def test_beats_stale_fingerprints(self, setup):
        """The core claim: a cheap reconstruction at day t tracks the true
        day-t matrix better than the stale day-0 survey does."""
        scenario, _, fingerprint, reconstructor = setup
        day = 60.0
        refs, empty = fresh_inputs(setup, day)
        report = reconstructor.reconstruct(refs, empty, day=day)
        truth = scenario.true_fingerprint_matrix(day)
        recon_err = np.abs(report.fingerprint.values - truth).mean()
        stale_err = np.abs(fingerprint.values - truth).mean()
        assert recon_err < stale_err

    def test_solver_objective_monotone(self, setup):
        _, _, _, reconstructor = setup
        refs, empty = fresh_inputs(setup, 5.0)
        report = reconstructor.reconstruct(refs, empty, day=5.0)
        history = report.solver_result.objective_history
        assert np.all(np.diff(history) <= 1e-6 * np.maximum(1.0, history[:-1]))

    def test_observed_fraction_sensible(self, setup):
        _, _, _, reconstructor = setup
        refs, empty = fresh_inputs(setup, 5.0)
        report = reconstructor.reconstruct(refs, empty, day=5.0)
        assert 0.05 < report.observed_fraction < 1.0

    def test_input_shape_validation(self, setup):
        _, _, _, reconstructor = setup
        refs, empty = fresh_inputs(setup, 5.0)
        with pytest.raises(ValueError, match="reference_matrix"):
            reconstructor.reconstruct(refs[:, :-1], empty)
        with pytest.raises(ValueError, match="empty_rss"):
            reconstructor.reconstruct(refs, empty[:-1])


class TestAblationSwitches:
    def test_lrr_disabled_still_runs(self, setup):
        scenario, _, fingerprint, _ = setup
        config = ReconstructionConfig(use_lrr=False)
        reconstructor = Reconstructor(
            scenario.deployment, fingerprint, config, seed=0
        )
        # Build inputs with a private collector to avoid fixture coupling.
        protocol = CollectionProtocol(samples_per_cell=5, empty_room_samples=10)
        collector = RssCollector(scenario, protocol, seed=5)
        empty = collector.collect_empty_room(5.0)
        refs = collector.collect_survey(5.0, reconstructor.references.cells).survey.matrix
        report = reconstructor.reconstruct(refs, empty, day=5.0)
        assert report.fingerprint.shape == (10, 96)

    def test_smoothness_disabled_still_runs(self, setup):
        scenario, _, fingerprint, _ = setup
        config = ReconstructionConfig(use_smoothness=False)
        reconstructor = Reconstructor(
            scenario.deployment, fingerprint, config, seed=0
        )
        protocol = CollectionProtocol(samples_per_cell=5, empty_room_samples=10)
        collector = RssCollector(scenario, protocol, seed=6)
        empty = collector.collect_empty_room(5.0)
        refs = collector.collect_survey(5.0, reconstructor.references.cells).survey.matrix
        report = reconstructor.reconstruct(refs, empty, day=5.0)
        assert report.fingerprint.shape == (10, 96)

    def test_full_objective_beats_rank_only_at_long_gap(self, setup):
        """Ablation shape: LRR + smoothness reduce long-gap error vs the
        rank-minimization-only arm (the paper's motivation for the extra
        terms)."""
        scenario, _, fingerprint, _ = setup
        day = 60.0
        protocol = CollectionProtocol(samples_per_cell=5, empty_room_samples=10)

        def error_for(config, seed):
            reconstructor = Reconstructor(
                scenario.deployment, fingerprint, config, seed=0
            )
            collector = RssCollector(scenario, protocol, seed=seed)
            empty = collector.collect_empty_room(day)
            refs = collector.collect_survey(
                day, reconstructor.references.cells
            ).survey.matrix
            report = reconstructor.reconstruct(refs, empty, day=day)
            truth = scenario.true_fingerprint_matrix(day)
            return np.abs(report.fingerprint.values - truth).mean()

        full = np.mean([error_for(ReconstructionConfig(), s) for s in (11, 12)])
        rank_only = np.mean(
            [
                error_for(
                    ReconstructionConfig(use_lrr=False, use_smoothness=False), s
                )
                for s in (11, 12)
            ]
        )
        assert full < rank_only
