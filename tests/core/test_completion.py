"""Unit tests for the rank-minimization completion baselines."""

import numpy as np
import pytest

from repro.core.completion import mean_fill, soft_impute, svt_complete


def completion_instance(links=12, cells=40, rank=3, observe=0.6, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    truth = rng.normal(size=(links, rank)) @ rng.normal(size=(rank, cells))
    mask = rng.random((links, cells)) < observe
    observed = truth + (noise * rng.standard_normal(truth.shape) if noise else 0.0)
    return truth, np.where(mask, observed, 0.0), mask


class TestSvt:
    def test_recovers_low_rank_matrix(self):
        truth, observed, mask = completion_instance()
        result = svt_complete(observed, mask)
        error = np.abs(result.matrix - truth)[~mask].mean()
        scale = np.abs(truth).mean()
        assert error < 0.3 * scale

    def test_fits_observed_entries(self):
        truth, observed, mask = completion_instance()
        result = svt_complete(observed, mask)
        assert np.abs(result.matrix - observed)[mask].mean() < 0.3

    def test_result_is_approximately_low_rank(self):
        _, observed, mask = completion_instance()
        result = svt_complete(observed, mask)
        # The top 3 singular values must dominate the spectrum.
        sigma = np.linalg.svd(result.matrix, compute_uv=False)
        assert sigma[:3].sum() / sigma.sum() > 0.9

    def test_iteration_cap(self):
        _, observed, mask = completion_instance()
        result = svt_complete(observed, mask, max_iter=3, tol=1e-15)
        assert result.iterations == 3
        assert not result.converged

    def test_input_validation(self):
        with pytest.raises(ValueError, match="mask shape"):
            svt_complete(np.zeros((2, 2)), np.zeros((3, 3), dtype=bool))
        with pytest.raises(ValueError):
            svt_complete(np.zeros((2, 2)), np.zeros((2, 2), dtype=bool), step=0.0)


class TestSoftImpute:
    def test_recovers_low_rank_matrix(self):
        truth, observed, mask = completion_instance(seed=2)
        result = soft_impute(observed, mask, shrinkage=0.1, max_iter=500)
        error = np.abs(result.matrix - truth)[~mask].mean()
        scale = np.abs(truth).mean()
        assert error < 0.35 * scale

    def test_tolerates_noise(self):
        truth, observed, mask = completion_instance(seed=3, noise=0.1)
        result = soft_impute(observed, mask, shrinkage=0.5, max_iter=500)
        error = np.abs(result.matrix - truth)[~mask].mean()
        scale = np.abs(truth).mean()
        assert error < 0.4 * scale

    def test_default_shrinkage_runs(self):
        _, observed, mask = completion_instance(seed=4)
        result = soft_impute(observed, mask)
        assert result.matrix.shape == observed.shape

    def test_convergence_flag(self):
        _, observed, mask = completion_instance(seed=5)
        result = soft_impute(observed, mask, shrinkage=0.2, max_iter=1000)
        assert result.converged


class TestMeanFill:
    def test_observed_entries_kept(self):
        observed = np.array([[1.0, 0.0], [3.0, 4.0]])
        mask = np.array([[True, False], [True, True]])
        filled = mean_fill(observed, mask)
        assert filled[0, 0] == 1.0
        assert filled[0, 1] == 1.0  # row mean of observed row-0 entries

    def test_empty_row_uses_global_mean(self):
        observed = np.array([[0.0, 0.0], [2.0, 4.0]])
        mask = np.array([[False, False], [True, True]])
        filled = mean_fill(observed, mask)
        np.testing.assert_allclose(filled[0], [3.0, 3.0])

    def test_nothing_observed(self):
        filled = mean_fill(np.zeros((2, 2)), np.zeros((2, 2), dtype=bool))
        np.testing.assert_array_equal(filled, np.zeros((2, 2)))
