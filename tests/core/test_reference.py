"""Unit tests for reference-location selection."""

import numpy as np
import pytest

from repro.core.reference import (
    ReferenceSelection,
    select_references,
    select_references_greedy,
    select_references_kmeans,
    select_references_pivoted_qr,
    select_references_random,
)


def low_rank_matrix(links=8, cells=40, rank=4, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(links, rank)) @ rng.normal(size=(rank, cells))
    if noise:
        matrix = matrix + noise * rng.standard_normal((links, cells))
    return matrix


class TestReferenceSelection:
    def test_validates_duplicates(self):
        with pytest.raises(ValueError, match="duplicates"):
            ReferenceSelection(
                cells=np.array([1, 1]), scores=np.zeros(2), strategy="x"
            )

    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            ReferenceSelection(
                cells=np.array([1, 2]), scores=np.zeros(3), strategy="x"
            )

    def test_count(self):
        sel = ReferenceSelection(
            cells=np.array([3, 1]), scores=np.ones(2), strategy="x"
        )
        assert sel.count == 2


class TestPivotedQr:
    def test_selects_requested_count(self):
        sel = select_references_pivoted_qr(low_rank_matrix(), 5)
        assert sel.count == 5
        assert sel.strategy == "pivoted_qr"

    def test_selection_spans_low_rank_matrix(self):
        """With rank-4 data, 4 selected columns must span the column space:
        regressing the matrix on them leaves ~zero residual."""
        matrix = low_rank_matrix(rank=4)
        sel = select_references_pivoted_qr(matrix, 4)
        reference = matrix[:, sel.cells]
        coeffs, *_ = np.linalg.lstsq(reference, matrix, rcond=None)
        residual = matrix - reference @ coeffs
        assert np.abs(residual).max() < 1e-8

    def test_beats_worst_case_random(self):
        """QR column selection yields lower projection residual than the
        worst random pick (sanity of the 'maximum linear independence'
        criterion)."""
        matrix = low_rank_matrix(rank=6, noise=0.05, seed=3)

        def residual(cells):
            ref = matrix[:, cells]
            coeffs, *_ = np.linalg.lstsq(ref, matrix, rcond=None)
            return float(np.linalg.norm(matrix - ref @ coeffs))

        qr_res = residual(select_references_pivoted_qr(matrix, 4).cells)
        worst = max(
            residual(select_references_random(matrix, 4, seed=s).cells)
            for s in range(10)
        )
        assert qr_res <= worst + 1e-12

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            select_references_pivoted_qr(low_rank_matrix(), 0)
        with pytest.raises(ValueError):
            select_references_pivoted_qr(low_rank_matrix(cells=10), 11)


class TestGreedy:
    def test_agrees_with_qr_on_easy_instance(self):
        """Greedy max-residual and pivoted QR implement the same criterion;
        on a well-separated instance they pick the same set."""
        matrix = low_rank_matrix(rank=3, seed=7)
        qr_cells = set(select_references_pivoted_qr(matrix, 3).cells.tolist())
        greedy_cells = set(select_references_greedy(matrix, 3).cells.tolist())
        assert qr_cells == greedy_cells

    def test_scores_decrease(self):
        sel = select_references_greedy(low_rank_matrix(noise=0.1), 5)
        assert all(a >= b for a, b in zip(sel.scores, sel.scores[1:]))

    def test_stops_when_matrix_exhausted(self):
        # Rank-1 centered matrix: only one meaningful direction.
        column = np.linspace(1, 2, 6)[:, None]
        weights = np.linspace(-1, 1, 8)[None, :]
        sel = select_references_greedy(column @ weights, 5)
        assert sel.count <= 2


class TestKmeans:
    def test_selects_requested_count(self):
        sel = select_references_kmeans(low_rank_matrix(noise=0.2), 5, seed=0)
        assert sel.count == 5
        assert len(set(sel.cells.tolist())) == 5

    def test_deterministic_per_seed(self):
        matrix = low_rank_matrix(noise=0.2)
        a = select_references_kmeans(matrix, 4, seed=9)
        b = select_references_kmeans(matrix, 4, seed=9)
        np.testing.assert_array_equal(a.cells, b.cells)


class TestRandom:
    def test_deterministic_per_seed(self):
        matrix = low_rank_matrix()
        a = select_references_random(matrix, 6, seed=1)
        b = select_references_random(matrix, 6, seed=1)
        np.testing.assert_array_equal(a.cells, b.cells)

    def test_within_range(self):
        sel = select_references_random(low_rank_matrix(cells=15), 10, seed=0)
        assert sel.cells.min() >= 0
        assert sel.cells.max() < 15


class TestDispatch:
    @pytest.mark.parametrize(
        "strategy", ["pivoted_qr", "greedy", "kmeans", "random"]
    )
    def test_all_strategies_dispatch(self, strategy):
        sel = select_references(low_rank_matrix(), 4, strategy=strategy)
        assert sel.count == 4
        assert sel.strategy == strategy

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            select_references(low_rank_matrix(), 4, strategy="magic")
