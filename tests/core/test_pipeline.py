"""Unit tests for the end-to-end TafLoc pipeline."""

import numpy as np
import pytest

from repro.core.pipeline import TafLoc, TafLocConfig
from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.scenario import build_paper_scenario


@pytest.fixture(scope="module")
def scenario():
    return build_paper_scenario(seed=301)


@pytest.fixture()
def system(scenario):
    protocol = CollectionProtocol(samples_per_cell=5, empty_room_samples=10)
    return TafLoc(RssCollector(scenario, protocol, seed=2), TafLocConfig(), seed=3)


class TestLifecycle:
    def test_not_commissioned_guards(self, system):
        assert not system.commissioned
        with pytest.raises(RuntimeError, match="commission"):
            system.update(1.0)
        with pytest.raises(RuntimeError, match="commission"):
            system.localize(np.zeros(10), 1.0)

    def test_commission_populates_database(self, system):
        fingerprint = system.commission(0.0)
        assert system.commissioned
        assert system.database.epoch_count == 1
        assert fingerprint.source == "survey"
        assert fingerprint.shape == (10, 96)

    def test_update_appends_epoch(self, system):
        system.commission(0.0)
        report = system.update(30.0)
        assert system.database.epoch_count == 2
        assert system.database.latest().source == "reconstruction"
        assert report.day == 30.0

    def test_update_report_cost_accounting(self, system):
        system.commission(0.0)
        report = system.update(30.0)
        protocol = system.collector.protocol
        expected_update = 10 * protocol.samples_per_cell * protocol.sample_period_s
        expected_full = 96 * protocol.samples_per_cell * protocol.sample_period_s
        assert report.seconds_spent == pytest.approx(expected_update)
        assert report.full_survey_seconds == pytest.approx(expected_full)
        assert report.savings_factor == pytest.approx(9.6)

    def test_update_reports_accumulate(self, system):
        system.commission(0.0)
        system.update(10.0)
        system.update(20.0)
        assert len(system.update_reports) == 2


class TestConfig:
    def test_invalid_matcher_rejected(self):
        with pytest.raises(ValueError, match="matcher"):
            TafLocConfig(matcher="oracle")

    @pytest.mark.parametrize("matcher", ["nn", "knn", "probabilistic"])
    def test_matcher_variants_build(self, scenario, matcher):
        protocol = CollectionProtocol(samples_per_cell=3, empty_room_samples=5)
        system = TafLoc(
            RssCollector(scenario, protocol, seed=4),
            TafLocConfig(matcher=matcher),
            seed=5,
        )
        system.commission(0.0)
        built = system.matcher_for_day(0.0)
        assert built.fingerprint.day == 0.0


class TestMatcherCache:
    def test_same_day_queries_reuse_one_matcher(self, system):
        """The PR-4 bugfix: repeated same-day queries must not rebuild the
        matcher (object identity, not just equality)."""
        system.commission(0.0)
        first = system.matcher_for_day(0.0)
        assert system.matcher_for_day(0.0) is first
        assert system.matcher_for_day(15.0) is first  # same resolved epoch

    def test_update_invalidates_the_cache(self, system):
        system.commission(0.0)
        stale = system.matcher_for_day(40.0)
        system.update(30.0)
        fresh = system.matcher_for_day(40.0)
        assert fresh is not stale
        assert fresh.fingerprint.day == 30.0
        # Steady state again: the new matcher is reused.
        assert system.matcher_for_day(40.0) is fresh

    def test_epochs_cache_independently(self, system):
        system.commission(0.0)
        system.update(30.0)
        early = system.matcher_for_day(10.0)
        late = system.matcher_for_day(45.0)
        assert early is not late
        assert system.matcher_for_day(10.0) is early
        assert system.matcher_for_day(45.0) is late

    def test_refresh_forces_rebuild(self, system):
        system.commission(0.0)
        cached = system.matcher_for_day(0.0)
        rebuilt = system.matcher_for_day(0.0, refresh=True)
        assert rebuilt is not cached
        # The rebuild replaces the cache entry.
        assert system.matcher_for_day(0.0) is rebuilt

    def test_cached_matcher_answers_match_fresh_build(self, system, scenario):
        system.commission(0.0)
        trace = RssCollector(scenario, seed=12).live_trace(0.0, [4, 44, 84])
        cached = system.matcher_for_day(0.0).match_batch(trace.rss)
        fresh = system.matcher_for_day(0.0, refresh=True).match_batch(trace.rss)
        np.testing.assert_array_equal(cached.cells, fresh.cells)
        np.testing.assert_array_equal(cached.positions, fresh.positions)


class TestLocalization:
    def test_localize_returns_result(self, system, scenario):
        system.commission(0.0)
        live = RssCollector(scenario, seed=9).live_vector(0.0, cell=40)
        result = system.localize(live, 0.0)
        assert 0 <= result.cell < 96
        assert scenario.deployment.room.contains(result.position)

    def test_localize_uses_freshest_epoch(self, system):
        system.commission(0.0)
        system.update(30.0)
        matcher_early = system.matcher_for_day(10.0)
        matcher_late = system.matcher_for_day(45.0)
        assert matcher_early.fingerprint.day == 0.0
        assert matcher_late.fingerprint.day == 30.0

    def test_localize_trace(self, system, scenario):
        system.commission(0.0)
        trace = RssCollector(scenario, seed=10).live_trace(0.0, [5, 20, 60])
        results = system.localize_trace(trace)
        assert len(results) == 3

    def test_localize_batch_matches_trace_path(self, system, scenario):
        system.commission(0.0)
        trace = RssCollector(scenario, seed=10).live_trace(0.0, [5, 20, 60])
        from_trace = system.localize_trace(trace)
        from_batch = system.localize_batch(trace.rss, 0.0)
        np.testing.assert_array_equal(from_batch.cells, from_trace.cells)
        np.testing.assert_array_equal(
            from_batch.positions, from_trace.positions
        )

    def test_localize_batch_requires_commissioning(self, system):
        with pytest.raises(RuntimeError, match="commission"):
            system.localize_batch(np.zeros((2, 10)), 0.0)

    def test_localization_errors_reasonable_at_day_zero(self, system, scenario):
        system.commission(0.0)
        cells = list(range(0, 96, 8))
        trace = RssCollector(scenario, seed=11).live_trace(0.0, cells)
        errors = system.localization_errors(trace)
        assert errors.shape == (len(cells),)
        # Room diagonal is ~8.6 m; median error with fresh prints must be
        # far below random guessing (~3 m average).
        assert np.median(errors) < 1.5

    def test_errors_require_ground_truth(self, system, scenario):
        from repro.sim.trace import LiveTrace

        system.commission(0.0)
        bare = LiveTrace(day=0.0, rss=np.zeros((2, 10)))
        with pytest.raises(ValueError, match="ground-truth"):
            system.localization_errors(bare)


class TestUpdateImprovesLateLocalization:
    def test_reconstruction_beats_stale_at_long_gap(self, scenario):
        """The headline behaviour: at a 60-day gap, localizing against the
        reconstructed fingerprints beats localizing against the stale
        day-0 survey."""
        protocol = CollectionProtocol(samples_per_cell=5, empty_room_samples=10)
        day = 60.0
        medians = {"updated": [], "stale": []}
        for seed in (0, 1):
            updated = TafLoc(
                RssCollector(scenario, protocol, seed=20 + seed),
                TafLocConfig(),
                seed=6,
            )
            updated.commission(0.0)
            updated.update(day)
            stale = TafLoc(
                RssCollector(scenario, protocol, seed=20 + seed),
                TafLocConfig(),
                seed=6,
            )
            stale.commission(0.0)
            cells = list(range(0, 96, 4))
            trace = RssCollector(scenario, seed=40 + seed).live_trace(day, cells)
            medians["updated"].append(np.median(updated.localization_errors(trace)))
            medians["stale"].append(np.median(stale.localization_errors(trace)))
        assert np.mean(medians["updated"]) < np.mean(medians["stale"])
