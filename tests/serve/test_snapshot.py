"""Snapshot round-trip gates: restore must change nothing, ever.

The contracts under test, per the module docstring of
:mod:`repro.serve.snapshot`:

* restore-vs-original bit-identity — database epochs, query answers, and
  *future updates* (the RNG-state part) — across every registered
  scenario, including the interference-bearing ones;
* corruption, version skew, and context mismatches (spec, protocol,
  manager seed) are *rejected*, falling back to a clean rebuild that
  still answers bit-identically.
"""

import dataclasses

import numpy as np
import pytest

from repro.serve.manager import SiteManager
from repro.serve.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    load_snapshot,
    restore_into,
    save_snapshot,
    snapshot_state,
)
from repro.sim.collector import CollectionProtocol
from repro.sim.specs import list_scenarios
from repro.util.rng import counter_stream

PROTOCOL = CollectionProtocol(samples_per_cell=2, empty_room_samples=5)
SEED = 77


def _manager(tmp_path, **overrides):
    kwargs = dict(
        protocol=PROTOCOL,
        seed=SEED,
        snapshot_dir=tmp_path,
        share_pipelines=False,
    )
    kwargs.update(overrides)
    return SiteManager(**kwargs)


def _frames(system, count=5):
    links = system.deployment.link_count
    return counter_stream(SEED, 9).normal(-55.0, 6.0, size=(count, links))


def _assert_epochs_identical(left, right):
    left_epochs, right_epochs = left.database.epochs(), right.database.epochs()
    assert len(left_epochs) == len(right_epochs)
    for a, b in zip(left_epochs, right_epochs):
        assert a.day == b.day
        assert a.source == b.source
        assert np.array_equal(a.values, b.values)
        assert np.array_equal(a.empty_rss, b.empty_rss)


class TestRoundTripAcrossScenarios:
    @pytest.mark.parametrize("name", sorted(list_scenarios()))
    def test_restore_is_bit_identical_including_future_updates(
        self, name, tmp_path
    ):
        """The full durability contract, per registered scenario: a
        restored pipeline has identical epochs, answers identical
        queries, and — the RNG-state part — its *next* update draws the
        same randomness the original would have, producing an identical
        new epoch."""
        origin = _manager(tmp_path)
        origin.register("site", name)
        system = origin.pipeline("site")  # commission + snapshot
        origin.update("site", 5.0)  # second epoch + re-snapshot

        revived = _manager(tmp_path)
        revived.register("site", name)
        restored = revived.pipeline("site")
        assert revived.stats.snapshots_restored == 1
        assert revived.stats.pipelines_built == 1  # built via restore path
        _assert_epochs_identical(system, restored)

        frames = _frames(system)
        assert np.array_equal(
            system.localize_batch(frames, 5.0).cells,
            restored.localize_batch(frames, 5.0).cells,
        )
        assert np.array_equal(
            system.localize_batch(frames, 5.0).positions,
            restored.localize_batch(frames, 5.0).positions,
        )

        original_report = origin.update("site", 9.0)
        restored_report = revived.update("site", 9.0)
        assert original_report.samples_taken == restored_report.samples_taken
        _assert_epochs_identical(system, restored)
        assert system.collector.samples_taken == restored.collector.samples_taken


class TestRejection:
    def _seed_snapshot(self, tmp_path):
        origin = _manager(tmp_path)
        origin.register("site", "square-3m")
        origin.pipeline("site")
        return origin.snapshot_path("site")

    def test_truncated_snapshot_is_rejected_then_rebuilt(self, tmp_path):
        path = self._seed_snapshot(tmp_path)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        revived = _manager(tmp_path)
        revived.register("site", "square-3m")
        restored = revived.pipeline("site")
        assert revived.stats.snapshots_rejected == 1
        assert revived.stats.snapshots_restored == 0
        assert restored.commissioned  # rebuilt from a clean survey

    def test_bitflipped_file_is_rejected(self, tmp_path):
        path = self._seed_snapshot(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF  # corrupt a stored array byte
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_stale_array_checksum_is_rejected(self, tmp_path):
        """A well-formed archive whose array bytes no longer match their
        recorded digest must fail the per-array checksum."""
        path = self._seed_snapshot(tmp_path)
        snapshot = load_snapshot(path)
        tampered = dataclasses.replace(
            snapshot,
            epochs=[
                dataclasses.replace(epoch, values=epoch.values + 1e-9)
                for epoch in snapshot.epochs
            ],
        )
        # save_snapshot digests the tampered arrays consistently, so write
        # the tampered arrays under the ORIGINAL meta block instead.
        save_snapshot(path, tampered)
        import numpy as _np

        with _np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
        good = tmp_path / "good.snap.npz"
        save_snapshot(good, snapshot)
        with _np.load(good) as archive:
            arrays["meta"] = archive["meta"]
        with open(path, "wb") as handle:
            _np.savez_compressed(handle, **arrays)
        with pytest.raises(SnapshotError, match="checksum"):
            load_snapshot(path)

    def test_version_skew_is_rejected(self, tmp_path):
        path = self._seed_snapshot(tmp_path)
        snapshot = load_snapshot(path)
        future = dataclasses.replace(snapshot, version=SNAPSHOT_VERSION + 1)
        save_snapshot(path, future)
        with pytest.raises(SnapshotError, match="format version"):
            load_snapshot(path)
        revived = _manager(tmp_path)
        revived.register("site", "square-3m")
        revived.pipeline("site")
        assert revived.stats.snapshots_rejected == 1

    def test_protocol_mismatch_is_rejected(self, tmp_path):
        self._seed_snapshot(tmp_path)
        other = _manager(
            tmp_path,
            protocol=CollectionProtocol(
                samples_per_cell=3, empty_room_samples=5
            ),
        )
        other.register("site", "square-3m")
        other.pipeline("site")
        # Same pipeline key + seed -> same path, but the protocol
        # fingerprint differs, so the restore must refuse it.
        assert other.stats.snapshots_rejected == 1
        assert other.stats.snapshots_restored == 0

    def test_different_seed_never_sees_the_snapshot(self, tmp_path):
        self._seed_snapshot(tmp_path)
        other = _manager(tmp_path, seed=SEED + 1)
        other.register("site", "square-3m")
        other.pipeline("site")
        # A different manager seed derives a different snapshot path:
        # a cold build, neither restored nor rejected.
        assert other.stats.snapshots_restored == 0
        assert other.stats.snapshots_rejected == 0

    def test_junk_file_raises_snapshot_error(self, tmp_path):
        path = tmp_path / "junk.snap.npz"
        path.write_bytes(b"not a snapshot at all")
        with pytest.raises(SnapshotError):
            load_snapshot(path)


class TestExplicitApi:
    def test_snapshot_site_requires_commissioned_pipeline(self, tmp_path):
        manager = _manager(tmp_path)
        manager.register("site", "square-3m")
        with pytest.raises(RuntimeError, match="no commissioned pipeline"):
            manager.snapshot_site("site")

    def test_snapshot_all_covers_commissioned_sites_only(self, tmp_path):
        manager = _manager(tmp_path)
        manager.register("warm-site", "square-3m")
        manager.register("cold-site", "square-4m")
        manager.pipeline("warm-site")
        written = manager.snapshot_all()
        assert set(written) == {"warm-site"}
        assert written["warm-site"].exists()

    def test_snapshot_path_requires_snapshot_dir(self):
        manager = SiteManager(protocol=PROTOCOL, seed=SEED)
        manager.register("site", "square-3m")
        with pytest.raises(RuntimeError, match="snapshot_dir"):
            manager.snapshot_path("site")

    def test_restore_into_refuses_commissioned_target(self, tmp_path):
        manager = _manager(tmp_path)
        manager.register("site", "square-3m")
        system = manager.pipeline("site")
        snapshot = load_snapshot(manager.snapshot_path("site"))
        with pytest.raises(SnapshotError, match="virgin"):
            restore_into(system, snapshot)

    def test_snapshot_state_refuses_uncommissioned(self, tmp_path):
        manager = SiteManager(
            protocol=PROTOCOL, seed=SEED, auto_commission=False
        )
        manager.register("site", "square-3m")
        system = manager.pipeline("site")
        with pytest.raises(SnapshotError, match="uncommissioned"):
            snapshot_state(
                system,
                spec_name="square-3m",
                spec_fingerprint="x",
                config_fingerprint=None,
                protocol_fingerprint=None,
                seed_key=0,
            )
