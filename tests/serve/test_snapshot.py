"""Snapshot round-trip gates: restore must change nothing, ever.

The contracts under test, per the module docstring of
:mod:`repro.serve.snapshot`:

* restore-vs-original bit-identity — database epochs, query answers, and
  *future updates* (the RNG-state part) — across every registered
  scenario, including the interference-bearing ones;
* corruption, version skew, and context mismatches (spec, protocol,
  manager seed) are *rejected*, falling back to a clean rebuild that
  still answers bit-identically.
"""

import dataclasses

import numpy as np
import pytest

from repro.serve.manager import SiteManager
from repro.serve.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    SnapshotStore,
    load_snapshot,
    restore_into,
    save_snapshot,
    snapshot_state,
)
from repro.sim.collector import CollectionProtocol
from repro.sim.specs import list_scenarios
from repro.util.rng import counter_stream

PROTOCOL = CollectionProtocol(samples_per_cell=2, empty_room_samples=5)
SEED = 77


def _manager(tmp_path, **overrides):
    kwargs = dict(
        protocol=PROTOCOL,
        seed=SEED,
        snapshot_dir=tmp_path,
        share_pipelines=False,
    )
    kwargs.update(overrides)
    return SiteManager(**kwargs)


def _frames(system, count=5):
    links = system.deployment.link_count
    return counter_stream(SEED, 9).normal(-55.0, 6.0, size=(count, links))


def _assert_epochs_identical(left, right):
    left_epochs, right_epochs = left.database.epochs(), right.database.epochs()
    assert len(left_epochs) == len(right_epochs)
    for a, b in zip(left_epochs, right_epochs):
        assert a.day == b.day
        assert a.source == b.source
        assert np.array_equal(a.values, b.values)
        assert np.array_equal(a.empty_rss, b.empty_rss)


class TestRoundTripAcrossScenarios:
    @pytest.mark.parametrize("name", sorted(list_scenarios()))
    def test_restore_is_bit_identical_including_future_updates(
        self, name, tmp_path
    ):
        """The full durability contract, per registered scenario: a
        restored pipeline has identical epochs, answers identical
        queries, and — the RNG-state part — its *next* update draws the
        same randomness the original would have, producing an identical
        new epoch."""
        origin = _manager(tmp_path)
        origin.register("site", name)
        system = origin.pipeline("site")  # commission + snapshot
        origin.update("site", 5.0)  # second epoch + re-snapshot

        revived = _manager(tmp_path)
        revived.register("site", name)
        restored = revived.pipeline("site")
        assert revived.stats.snapshots_restored == 1
        assert revived.stats.pipelines_built == 1  # built via restore path
        _assert_epochs_identical(system, restored)

        frames = _frames(system)
        assert np.array_equal(
            system.localize_batch(frames, 5.0).cells,
            restored.localize_batch(frames, 5.0).cells,
        )
        assert np.array_equal(
            system.localize_batch(frames, 5.0).positions,
            restored.localize_batch(frames, 5.0).positions,
        )

        original_report = origin.update("site", 9.0)
        restored_report = revived.update("site", 9.0)
        assert original_report.samples_taken == restored_report.samples_taken
        _assert_epochs_identical(system, restored)
        assert system.collector.samples_taken == restored.collector.samples_taken


class TestRejection:
    def _seed_snapshot(self, tmp_path):
        origin = _manager(tmp_path)
        origin.register("site", "square-3m")
        origin.pipeline("site")
        return origin.snapshot_path("site")

    def test_truncated_snapshot_is_rejected_then_rebuilt(self, tmp_path):
        path = self._seed_snapshot(tmp_path)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        revived = _manager(tmp_path)
        revived.register("site", "square-3m")
        restored = revived.pipeline("site")
        assert revived.stats.snapshots_rejected == 1
        assert revived.stats.snapshots_restored == 0
        assert restored.commissioned  # rebuilt from a clean survey

    def test_bitflipped_file_is_rejected(self, tmp_path):
        path = self._seed_snapshot(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF  # corrupt a stored array byte
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_stale_array_checksum_is_rejected(self, tmp_path):
        """A well-formed archive whose array bytes no longer match their
        recorded digest must fail the per-array checksum."""
        path = self._seed_snapshot(tmp_path)
        snapshot = load_snapshot(path)
        tampered = dataclasses.replace(
            snapshot,
            epochs=[
                dataclasses.replace(epoch, values=epoch.values + 1e-9)
                for epoch in snapshot.epochs
            ],
        )
        # save_snapshot digests the tampered arrays consistently, so write
        # the tampered arrays under the ORIGINAL meta block instead.
        save_snapshot(path, tampered)
        import numpy as _np

        with _np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
        good = tmp_path / "good.snap.npz"
        save_snapshot(good, snapshot)
        with _np.load(good) as archive:
            arrays["meta"] = archive["meta"]
        with open(path, "wb") as handle:
            _np.savez_compressed(handle, **arrays)
        with pytest.raises(SnapshotError, match="checksum"):
            load_snapshot(path)

    def test_version_skew_is_rejected(self, tmp_path):
        path = self._seed_snapshot(tmp_path)
        snapshot = load_snapshot(path)
        future = dataclasses.replace(snapshot, version=SNAPSHOT_VERSION + 1)
        save_snapshot(path, future)
        with pytest.raises(SnapshotError, match="format version"):
            load_snapshot(path)
        revived = _manager(tmp_path)
        revived.register("site", "square-3m")
        revived.pipeline("site")
        assert revived.stats.snapshots_rejected == 1

    def test_protocol_mismatch_is_rejected(self, tmp_path):
        self._seed_snapshot(tmp_path)
        other = _manager(
            tmp_path,
            protocol=CollectionProtocol(
                samples_per_cell=3, empty_room_samples=5
            ),
        )
        other.register("site", "square-3m")
        other.pipeline("site")
        # Same pipeline key + seed -> same path, but the protocol
        # fingerprint differs, so the restore must refuse it.
        assert other.stats.snapshots_rejected == 1
        assert other.stats.snapshots_restored == 0

    def test_different_seed_never_sees_the_snapshot(self, tmp_path):
        self._seed_snapshot(tmp_path)
        other = _manager(tmp_path, seed=SEED + 1)
        other.register("site", "square-3m")
        other.pipeline("site")
        # A different manager seed derives a different snapshot path:
        # a cold build, neither restored nor rejected.
        assert other.stats.snapshots_restored == 0
        assert other.stats.snapshots_rejected == 0

    def test_junk_file_raises_snapshot_error(self, tmp_path):
        path = tmp_path / "junk.snap.npz"
        path.write_bytes(b"not a snapshot at all")
        with pytest.raises(SnapshotError):
            load_snapshot(path)


class TestExplicitApi:
    def test_snapshot_site_requires_commissioned_pipeline(self, tmp_path):
        manager = _manager(tmp_path)
        manager.register("site", "square-3m")
        with pytest.raises(RuntimeError, match="no commissioned pipeline"):
            manager.snapshot_site("site")

    def test_snapshot_all_covers_commissioned_sites_only(self, tmp_path):
        manager = _manager(tmp_path)
        manager.register("warm-site", "square-3m")
        manager.register("cold-site", "square-4m")
        manager.pipeline("warm-site")
        written = manager.snapshot_all()
        assert set(written) == {"warm-site"}
        assert written["warm-site"].exists()

    def test_snapshot_path_requires_snapshot_dir(self):
        manager = SiteManager(protocol=PROTOCOL, seed=SEED)
        manager.register("site", "square-3m")
        with pytest.raises(RuntimeError, match="snapshot_dir"):
            manager.snapshot_path("site")

    def test_restore_into_refuses_commissioned_target(self, tmp_path):
        manager = _manager(tmp_path)
        manager.register("site", "square-3m")
        system = manager.pipeline("site")
        snapshot = load_snapshot(manager.snapshot_path("site"))
        with pytest.raises(SnapshotError, match="virgin"):
            restore_into(system, snapshot)

    def test_snapshot_state_refuses_uncommissioned(self, tmp_path):
        manager = SiteManager(
            protocol=PROTOCOL, seed=SEED, auto_commission=False
        )
        manager.register("site", "square-3m")
        system = manager.pipeline("site")
        with pytest.raises(SnapshotError, match="uncommissioned"):
            snapshot_state(
                system,
                spec_name="square-3m",
                spec_fingerprint="x",
                config_fingerprint=None,
                protocol_fingerprint=None,
                seed_key=0,
            )


class TestSnapshotStore:
    """Lifecycle: versioned retention, digest dedupe, scrub quarantine."""

    def _versioned(self, tmp_path, keep=2):
        manager = _manager(tmp_path, snapshot_keep=keep)
        manager.register("site", "square-3m")
        manager.pipeline("site")  # commission writes version 1
        return manager

    def test_keep_last_validation(self, tmp_path):
        with pytest.raises(ValueError, match="keep_last"):
            SnapshotStore(tmp_path, keep_last=0)
        with pytest.raises(ValueError, match="snapshot_keep"):
            _manager(None, snapshot_keep=2, snapshot_dir=None)

    def test_retention_bounds_history_and_counts_prunes(self, tmp_path):
        """Six refresh days through keep-last-2: the directory never
        holds more than two versions, and the store's lifetime counters
        record every inline prune."""
        manager = self._versioned(tmp_path, keep=2)
        store = manager.snapshot_store
        max_files = 0
        for day in range(1, 7):
            manager.update("site", float(day))  # auto-snapshots inline
            max_files = max(max_files, len(store.files()))
        assert max_files <= 2
        assert store.pruned_files >= 4  # v1..v5 pruned along the way
        assert store.pruned_bytes > 0
        # Every surviving file is a versioned name of the one base.
        base = manager.snapshot_path("site").name.removesuffix(".snap.npz")
        for path in store.files():
            assert path.name.startswith(f"{base}.v")

    def test_snapshot_site_dedupes_identical_state_by_digest(self, tmp_path):
        """Unchanged state re-snapshotted returns the existing file —
        replicas sharing a directory must not churn identical versions."""
        manager = self._versioned(tmp_path)
        first = manager.snapshot_site("site")
        again = manager.snapshot_site("site")
        assert again == first
        assert len(manager.snapshot_store.files()) == 1
        manager.update("site", 3.0)  # state changed: a new version lands
        newer = manager.snapshot_site("site")
        assert newer != first

    def test_scrub_quarantines_corrupt_file_out_of_the_restore_path(
        self, tmp_path
    ):
        """A bit-flipped version is renamed ``.corrupt`` (evidence kept,
        restore path cleared) and a fresh manager falls back to the
        surviving older version — bit-identically."""
        manager = self._versioned(tmp_path, keep=3)
        manager.update("site", 2.0)
        store = manager.snapshot_store
        newest = store.latest(manager.snapshot_path("site"))
        survivor = store.candidates(manager.snapshot_path("site"))[1]
        raw = bytearray(newest.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        newest.write_bytes(bytes(raw))
        report = store.scrub()
        assert report["corrupt"] == 1
        assert report["quarantined"] == [newest.name]
        assert not newest.exists()
        assert newest.with_name(newest.name + ".corrupt").exists()
        assert store.latest(manager.snapshot_path("site")) == survivor
        # The fallback restore answers with the survivor's exact bits.
        revived = _manager(tmp_path, snapshot_keep=3)
        revived.register("site", "square-3m")
        restored = revived.pipeline("site")
        assert revived.stats.snapshots_restored == 1
        original = load_snapshot(survivor)
        for left, right in zip(
            restored.database.epochs(), original.epochs
        ):
            assert np.array_equal(left.values, right.values)

    def test_compact_without_policy_is_a_no_op(self, tmp_path):
        manager = self._versioned(tmp_path, keep=None)
        store = manager.snapshot_store
        manager.update("site", 1.0)
        report = store.compact()
        assert report == {"files_removed": 0, "bytes_reclaimed": 0}
        assert store.pruned_files == 0
        # Unversioned mode keeps the PR-6 single-file layout intact.
        assert store.files() == [manager.snapshot_path("site")]

    def test_maintenance_reports_per_pass_deltas(self, tmp_path):
        """snapshot_maintenance reports the prune work of *its* pass as
        a delta of the store's lifetime counters — prunes that happened
        inline between passes stay in the lifetime totals only."""
        manager = self._versioned(tmp_path, keep=1)
        store = manager.snapshot_store
        report = manager.snapshot_maintenance()
        assert report["enabled"] is True
        assert report["checked"] == len(store.files())
        assert report["corrupt"] == 0
        manager.update("site", 4.0)  # v2 saved, v1 pruned inline
        inline_prunes = store.pruned_files
        assert inline_prunes >= 1
        # Loosen retention, grow history, tighten back: the next pass's
        # compact does real work and the report must show exactly it.
        store.keep_last = 3
        manager.update("site", 5.0)
        manager.update("site", 6.0)
        store.keep_last = 1
        backlog = len(store.files()) - 1
        assert backlog >= 1
        follow_up = manager.snapshot_maintenance()
        assert follow_up["files_removed"] == backlog
        assert follow_up["bytes_reclaimed"] > 0
        assert len(store.files()) == 1
        assert store.pruned_files == inline_prunes + backlog
        assert follow_up["total_bytes"] == store.total_bytes()
