"""Unit tests for the asyncio front-end (AioFrontend + AsyncServiceClient).

The contract under test is the PR-8 tentpole: one event loop serving
persistent pipelined NDJSON connections over TCP and unix sockets, an
async client that keeps N requests in flight (and transparently
micro-batches single queries), and chunk-streamed ``query_trace`` —
all bit-identical to the in-process service.
"""

import asyncio
import json
import socket

import numpy as np
import pytest

from repro.serve import (
    AioFrontend,
    AsyncServiceClient,
    LocalizationService,
    ServiceClient,
    ShardedService,
)
from repro.sim.collector import CollectionProtocol, LiveTrace, RssCollector

PROTOCOL = CollectionProtocol(samples_per_cell=2, empty_room_samples=5)
SITES = {"hq": "square-3m", "lab": "square-4m"}
SEED = 13


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def service():
    svc = LocalizationService.from_specs(SITES, protocol=PROTOCOL, seed=SEED)
    svc.warm()
    return svc


@pytest.fixture(scope="module")
def traces(service):
    out = {}
    for index, site in enumerate(service.sites()):
        scenario = service.pipeline(site).collector.scenario
        cells = list(range(0, scenario.deployment.cell_count, 3))
        out[site] = RssCollector(
            scenario, PROTOCOL, seed=90 + index
        ).live_trace(0.0, cells)
    return out


@pytest.fixture(scope="module")
def frontend(service, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("aio") / "serve.sock")
    with AioFrontend(service, unix_path=path) as fe:
        yield fe


@pytest.fixture(params=["tcp", "unix"])
def address(request, frontend):
    return (
        frontend.address if request.param == "tcp" else frontend.unix_address
    )


class TestAioIdentity:
    """Wire answers over the event loop == in-process answers, bits."""

    def test_single_query_bit_identical(self, address, service, traces):
        frame = traces["hq"].rss[0]
        reference = service.query("hq", frame, 0.0)

        async def one():
            async with AsyncServiceClient(address) as client:
                return await client.query("hq", frame, 0.0)

        wire = run(one())
        assert wire.cell == reference.cell
        assert wire.position == (
            reference.position.x,
            reference.position.y,
        )
        assert wire.score == reference.scores[reference.cell]

    def test_query_batch_bit_identical(self, address, service, traces):
        async def batches():
            async with AsyncServiceClient(address) as client:
                return {
                    site: await client.query_batch(
                        site, trace.rss, 0.0, include_scores=True
                    )
                    for site, trace in traces.items()
                }

        for site, wire in run(batches()).items():
            reference = service.query_batch(site, traces[site].rss, 0.0)
            np.testing.assert_array_equal(wire.cells, reference.cells)
            np.testing.assert_array_equal(wire.positions, reference.positions)
            np.testing.assert_array_equal(wire.scores, reference.scores)

    def test_pipelined_singles_bit_identical(self, address, service, traces):
        """Depth-8 pipelining (responses may complete out of order,
        matched by request id, micro-batched) == sequential singles."""

        async def pipelined(site, rss):
            async with AsyncServiceClient(address) as client:
                return await client.pipeline_queries(site, rss, 0.0, depth=8)

        for site, trace in traces.items():
            wire = run(pipelined(site, trace.rss))
            for result, frame in zip(wire, trace.rss):
                reference = service.query(site, frame, 0.0)
                assert result.cell == reference.cell
                assert result.position == (
                    reference.position.x,
                    reference.position.y,
                )
                assert result.score == reference.scores[reference.cell]

    def test_autobatch_disabled_matches_default(self, address, traces):
        """The micro-batched path returns exactly what the plain
        per-frame path returns — transparency down to the score bits."""
        rss = traces["hq"].rss

        async def both():
            async with AsyncServiceClient(address, autobatch=0) as plain:
                unbatched = await plain.pipeline_queries("hq", rss, 0.0)
            async with AsyncServiceClient(address) as batching:
                batched = await batching.pipeline_queries("hq", rss, 0.0)
            return unbatched, batched

        unbatched, batched = run(both())
        assert [(r.cell, r.position, r.score) for r in unbatched] == [
            (r.cell, r.position, r.score) for r in batched
        ]

    def test_microbatch_coalesces_wire_calls(self, address, traces):
        """32 concurrent singles must consume far fewer request ids
        than 32 — the whole point of transparent batching."""
        rss = np.tile(traces["hq"].rss, (4, 1))[:32]

        async def count_ids():
            async with AsyncServiceClient(address) as client:
                await client.pipeline_queries("hq", rss, 0.0, depth=32)
                return next(client._ids) - 1

        assert run(count_ids()) <= 8

    def test_streamed_trace_bit_identical_and_flat(
        self, service, frontend, traces
    ):
        """Chunked NDJSON streaming reassembles the exact in-process
        answer, and peak per-message bytes do not grow with length."""
        rss = traces["hq"].rss
        long_rss = np.concatenate([rss] * 8, axis=0)

        async def stream(frames):
            async with AsyncServiceClient(frontend.address) as client:
                result = await client.query_trace("hq", frames, 0.0, chunk=4)
                return result, client.peak_message_bytes

        _, short_peak = run(stream(rss))
        long_result, long_peak = run(stream(long_rss))
        long_reference = service.query_trace(
            "hq", LiveTrace(day=0.0, rss=long_rss)
        )
        np.testing.assert_array_equal(long_result.cells, long_reference.cells)
        np.testing.assert_array_equal(
            long_result.positions, long_reference.positions
        )
        assert long_peak <= 2 * short_peak

    def test_nonstreamed_trace_matches_streamed(self, frontend, traces):
        rss = traces["hq"].rss

        async def both():
            async with AsyncServiceClient(frontend.address) as client:
                streamed = await client.query_trace("hq", rss, 0.0, chunk=2)
                plain = await client.query_trace(
                    "hq", rss, 0.0, stream=False
                )
                return streamed, plain

        streamed, plain = run(both())
        np.testing.assert_array_equal(streamed.cells, plain.cells)
        np.testing.assert_array_equal(streamed.positions, plain.positions)


class TestAioErrorContract:
    """Remote errors arrive as the in-process exception types — also
    through the micro-batched and pipelined paths."""

    def test_unknown_site_keyerror(self, address):
        async def bad():
            async with AsyncServiceClient(address) as client:
                await client.query("nowhere", [0.0, 0.0], 0.0)

        with pytest.raises(KeyError, match="unknown site"):
            run(bad())

    def test_malformed_rss_valueerror(self, address):
        async def bad():
            async with AsyncServiceClient(address) as client:
                await client.query("hq", [0.0, 0.0, 0.0], 0.0)

        with pytest.raises(ValueError, match="shape"):
            run(bad())

    def test_pre_epoch_day_lookuperror(self, address):
        async def bad():
            async with AsyncServiceClient(address) as client:
                await client.query_batch("hq", np.zeros((1, 2)), -5.0)

        with pytest.raises(LookupError, match="no fingerprint epoch"):
            run(bad())

    def test_microbatch_isolates_bad_frames(self, address, traces):
        """A malformed frame coalesced alongside good ones must fail
        alone: grouping is by (site, day, frame length), so the good
        frames' batch is untouched."""
        good = traces["hq"].rss[0].tolist()

        async def mixed():
            async with AsyncServiceClient(address) as client:
                return await asyncio.gather(
                    client.query("hq", good, 0.0),
                    client.query("hq", [0.0, 0.0, 0.0], 0.0),
                    client.query("hq", good, 0.0),
                    return_exceptions=True,
                )

        first, bad, second = run(mixed())
        assert isinstance(bad, ValueError)
        assert first.cell == second.cell
        assert not isinstance(first, Exception)


class TestAioServerBehavior:
    def test_ephemeral_port_and_addresses(self, frontend):
        assert frontend.port > 0
        assert frontend.address == f"tcp://127.0.0.1:{frontend.port}"
        assert frontend.unix_address.startswith("unix://")

    def test_noid_requests_answered_in_order(self, frontend):
        """Back-compat with the PR-5 one-at-a-time transports: requests
        without an id get strictly in-order responses."""
        with socket.create_connection(
            ("127.0.0.1", frontend.port), timeout=5.0
        ) as sock:
            sock.sendall(
                b'{"method": "sites", "params": {}}\n'
                b'{"method": "health", "params": {}}\n'
            )
            reader = sock.makefile("rb")
            first = json.loads(reader.readline())
            second = json.loads(reader.readline())
        assert first["body"]["sites"] == ["hq", "lab"]
        assert second["body"]["status"] == "ok"

    def test_sync_client_speaks_to_aio_server(self, frontend, service, traces):
        """The sync ServiceClient's tcp:// and unix:// transports are
        first-class citizens of the aio server."""
        frame = traces["hq"].rss[0]
        reference = service.query("hq", frame, 0.0)
        for addr in (frontend.address, frontend.unix_address):
            with ServiceClient(addr) as client:
                wire = client.query("hq", frame, 0.0)
                assert wire.cell == reference.cell
                assert wire.score == reference.scores[reference.cell]

    def test_oversized_request_is_400_and_severed(self, service):
        """Satellite: the request body cap. A line past max_request_bytes
        gets a 400 and the connection is severed (the rest of the line
        is unparseable, so the stream cannot be resynced)."""
        with AioFrontend(service, max_request_bytes=512) as fe:
            with socket.create_connection(
                ("127.0.0.1", fe.port), timeout=5.0
            ) as sock:
                sock.sendall(
                    b'{"method": "sites", "params": {"pad": "'
                    + b"x" * 2048
                    + b'"}}\n'
                )
                reader = sock.makefile("rb")
                body = json.loads(reader.readline())
                assert body["status"] == 400
                assert reader.readline() == b""  # severed

    def test_malformed_json_line_is_400_but_connection_survives(
        self, frontend
    ):
        with socket.create_connection(
            ("127.0.0.1", frontend.port), timeout=5.0
        ) as sock:
            sock.sendall(b"{not json\n")
            reader = sock.makefile("rb")
            assert json.loads(reader.readline())["status"] == 400
            sock.sendall(b'{"method": "health", "params": {}}\n')
            assert json.loads(reader.readline())["status"] == 200

    def test_double_close_is_safe(self, service):
        fe = AioFrontend(service).start()
        fe.close()
        fe.close()

    def test_sharded_backend_offload_path(self, traces):
        """The offload dispatch path (worker-pipe calls parked on the
        executor, not the loop) serves and stays bit-identical."""
        rss = traces["hq"].rss[:4]
        with ShardedService(
            {"hq": "square-3m"}, shards=1, protocol=PROTOCOL, seed=SEED
        ) as sharded:
            sharded.warm()
            with AioFrontend(sharded) as fe:

                async def probe():
                    async with AsyncServiceClient(fe.address) as client:
                        sites = await client.sites()
                        results = await client.pipeline_queries(
                            "hq", rss, 0.0, depth=4
                        )
                        return sites, results

                sites, results = run(probe())
                assert sites == ["hq"]
                reference = sharded.query_batch("hq", rss, 0.0)
                assert [r.cell for r in results] == reference.cells.tolist()


class TestClientAddresses:
    def test_bad_scheme_rejected(self):
        with pytest.raises(ValueError, match="unsupported address"):
            AsyncServiceClient("ftp://127.0.0.1:1")

    def test_tcp_without_port_rejected(self):
        with pytest.raises(ValueError, match="tcp"):
            AsyncServiceClient("tcp://localhost")

    def test_empty_unix_path_rejected(self):
        with pytest.raises(ValueError, match="unix"):
            AsyncServiceClient("unix://")


class TestSyncTcpDesyncRecovery:
    """Satellite: keep-alive desync recovery for the sync client's
    NDJSON transport. The server drops the connection mid-exchange;
    the transport must poison its cached connection, re-dial lazily,
    and the idempotent retry must succeed — exactly two dials."""

    def test_drop_mid_exchange_then_recover(self):
        import threading

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        port = listener.getsockname()[1]
        dials = []
        response = b'{"status": 200, "body": {"sites": ["hq"]}}\n'

        def serve():
            # Connection 1: answer the first request, then slam the
            # door on the second without responding. The shutdown is
            # what actually sends the FIN — the makefile dup would
            # otherwise keep the socket half-open.
            conn, _ = listener.accept()
            dials.append(1)
            reader = conn.makefile("rb")
            reader.readline()
            conn.sendall(response)
            reader.readline()
            conn.shutdown(socket.SHUT_RDWR)
            reader.close()
            conn.close()
            # Connection 2: behave.
            conn, _ = listener.accept()
            dials.append(1)
            reader = conn.makefile("rb")
            reader.readline()
            conn.sendall(response)
            reader.readline()  # wait for client close
            reader.close()
            conn.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        try:
            client = ServiceClient(
                f"tcp://127.0.0.1:{port}",
                timeout=5.0,
                retries=2,
                backoff=0.01,
            )
            assert client.sites() == ["hq"]  # over connection 1
            # Connection 1 is now desynced (dropped mid-exchange): the
            # transport poisons it and the retry re-dials.
            assert client.sites() == ["hq"]
            assert len(dials) == 2
            client.close()
        finally:
            listener.close()
            thread.join(timeout=5.0)
