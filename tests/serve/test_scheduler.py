"""Unit tests for the staleness-driven update scheduler."""

import threading

import pytest

from repro.serve import (
    LocalizationService,
    SchedulerConfig,
    SimClock,
    UpdateScheduler,
)
from repro.sim.collector import CollectionProtocol, RssCollector

PROTOCOL = CollectionProtocol(samples_per_cell=2, empty_room_samples=5)
SITES = {"hq": "square-3m", "lab": "square-4m", "depot": "square-5m"}
SEED = 17


def fresh_service(warm=True):
    service = LocalizationService.from_specs(
        SITES, protocol=PROTOCOL, seed=SEED
    )
    if warm:
        service.warm()
    return service


class TestConfigValidation:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            SchedulerConfig(policy="vibes")

    def test_rejects_unknown_cold_mode(self):
        with pytest.raises(ValueError, match="cold"):
            SchedulerConfig(cold="ignore-forever")

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError, match="interval_days"):
            SchedulerConfig(interval_days=0.0)

    def test_rejects_zero_budget(self):
        with pytest.raises(ValueError, match="budget"):
            SchedulerConfig(budget=0)


class TestStaleness:
    def test_staleness_tracks_epoch_age(self):
        service = fresh_service()
        assert service.staleness("hq", 0.0) == 0.0
        assert service.staleness("hq", 25.0) == 25.0
        service.update("hq", 20.0)
        assert service.staleness("hq", 25.0) == 5.0

    def test_cold_site_reports_none(self):
        service = fresh_service(warm=False)
        assert service.staleness("hq", 10.0) is None

    def test_unknown_site_raises_keyerror(self):
        service = fresh_service(warm=False)
        with pytest.raises(KeyError, match="unknown site"):
            service.staleness("nowhere", 0.0)

    def test_staleness_never_materializes_a_pipeline(self):
        service = fresh_service(warm=False)
        service.staleness("hq", 10.0)
        assert not service.manager.materialized("hq")


class TestIntervalPolicy:
    def test_nothing_planned_before_threshold(self):
        service = fresh_service()
        scheduler = UpdateScheduler(
            service, SchedulerConfig(interval_days=30.0)
        )
        assert scheduler.plan(29.0) == []
        assert scheduler.tick(29.0) == []
        assert scheduler.stats.updates == 0

    def test_all_eligible_sites_update_stalest_first(self):
        service = fresh_service()
        service.update("hq", 10.0)  # hq is now fresher than lab/depot
        scheduler = UpdateScheduler(
            service, SchedulerConfig(interval_days=30.0)
        )
        actions = scheduler.tick(45.0)
        # lab/depot staleness 45 > hq staleness 35; ties break in
        # registration order.
        assert [a.site for a in actions] == ["lab", "depot", "hq"]
        assert all(a.action == "update" for a in actions)
        assert actions[0].staleness == 45.0
        assert all(service.staleness(s, 45.0) == 0.0 for s in SITES)

    def test_budget_caps_one_tick(self):
        service = fresh_service()
        scheduler = UpdateScheduler(
            service, SchedulerConfig(interval_days=30.0, budget=2)
        )
        assert len(scheduler.tick(40.0)) == 2
        assert len(scheduler.tick(40.0)) == 1
        assert scheduler.tick(40.0) == []

    def test_update_reports_are_attached(self):
        service = fresh_service()
        scheduler = UpdateScheduler(
            service, SchedulerConfig(interval_days=10.0, budget=1)
        )
        (action,) = scheduler.tick(15.0)
        assert action.report is not None
        assert action.report.day == 15.0
        assert action.report.savings_factor > 1.0


class TestColdSites:
    def test_cold_sites_are_commissioned_first(self):
        service = fresh_service(warm=False)
        scheduler = UpdateScheduler(
            service, SchedulerConfig(interval_days=30.0)
        )
        actions = scheduler.tick(45.0)
        assert {a.site for a in actions} == set(SITES)
        assert all(a.action == "commission" for a in actions)
        # Each site got exactly one epoch, at the tick day.
        for site in SITES:
            assert service.pipeline(site).database.days == [45.0]
        # Next tick: everything fresh, nothing to do.
        assert scheduler.tick(46.0) == []
        assert scheduler.stats.commissions == len(SITES)

    def test_cold_skip_leaves_sites_alone(self):
        service = fresh_service(warm=False)
        scheduler = UpdateScheduler(
            service,
            SchedulerConfig(interval_days=30.0, cold="skip"),
        )
        assert scheduler.tick(45.0) == []
        assert not service.manager.materialized("hq")

    def test_cold_raise_surfaces_the_fleet_state(self):
        service = fresh_service(warm=False)
        scheduler = UpdateScheduler(
            service, SchedulerConfig(interval_days=30.0, cold="raise")
        )
        with pytest.raises(RuntimeError, match="cold site"):
            scheduler.plan(45.0)

    def test_commissions_count_against_the_budget(self):
        service = fresh_service(warm=False)
        scheduler = UpdateScheduler(
            service, SchedulerConfig(interval_days=30.0, budget=1)
        )
        assert [a.action for a in scheduler.tick(45.0)] == ["commission"]
        assert [a.action for a in scheduler.tick(45.0)] == ["commission"]


class TestRoundRobinPolicy:
    def test_rotation_is_fair_under_budget(self):
        service = fresh_service()
        scheduler = UpdateScheduler(
            service,
            SchedulerConfig(
                policy="round-robin", interval_days=1.0, budget=1
            ),
        )
        # Keep every site permanently stale by ticking far apart; the
        # budget of 1 must rotate through the fleet, not starve anyone.
        picked = [scheduler.tick(50.0 * n)[0].site for n in range(1, 7)]
        assert picked == ["hq", "lab", "depot", "hq", "lab", "depot"]

    def test_rotation_skips_fresh_sites(self):
        service = fresh_service()
        scheduler = UpdateScheduler(
            service,
            SchedulerConfig(
                policy="round-robin", interval_days=30.0, budget=2
            ),
        )
        service.update("lab", 90.0)  # lab fresh at the first tick
        first = scheduler.tick(100.0)
        assert [a.site for a in first] == ["hq", "depot"]


class TestPriorityPolicy:
    def test_traffic_pressure_orders_the_plan(self):
        service = fresh_service()
        scheduler = UpdateScheduler(
            service,
            SchedulerConfig(policy="priority", interval_days=30.0, budget=1),
        )
        scenario = service.pipeline("lab").collector.scenario
        trace = RssCollector(scenario, PROTOCOL, seed=5).live_trace(
            0.0, [0, 1, 2, 3]
        )
        for _ in range(3):
            service.query_batch("lab", trace.rss, 0.0)
        (action,) = scheduler.tick(40.0)
        assert action.site == "lab"
        # lab's pressure is consumed by the refresh; the quiet sites get
        # the next budget units.
        assert scheduler.tick(40.0)[0].site == "hq"
        assert scheduler.tick(40.0)[0].site == "depot"


class TestBackgroundDriving:
    def test_background_thread_ticks_and_stops(self):
        service = fresh_service()
        scheduler = UpdateScheduler(
            service, SchedulerConfig(interval_days=5.0)
        )
        clock = SimClock(start_day=0.0, days_per_second=200.0)
        with scheduler.start(clock, period_seconds=0.05):
            deadline = threading.Event()
            for _ in range(100):
                if scheduler.stats.updates >= len(SITES):
                    break
                deadline.wait(0.05)
        assert scheduler.stats.ticks >= 1
        assert scheduler.stats.updates >= len(SITES)
        ticks = scheduler.stats.ticks
        deadline = threading.Event()
        deadline.wait(0.2)
        assert scheduler.stats.ticks == ticks  # stopped means stopped

    def test_double_start_rejected(self):
        service = fresh_service()
        scheduler = UpdateScheduler(service)
        scheduler.start(SimClock(), period_seconds=10.0)
        try:
            with pytest.raises(RuntimeError, match="already running"):
                scheduler.start(SimClock(), period_seconds=10.0)
        finally:
            scheduler.stop()

    def test_errors_are_counted_not_fatal(self):
        class ExplodingService:
            def sites(self):
                raise OSError("boom")

        scheduler = UpdateScheduler(ExplodingService())
        scheduler.start(SimClock(), period_seconds=0.01)
        try:
            deadline = threading.Event()
            for _ in range(100):
                if scheduler.stats.errors >= 2:
                    break
                deadline.wait(0.02)
        finally:
            scheduler.stop()
        assert scheduler.stats.errors >= 2

    def test_sim_clock_maps_wall_time_to_days(self):
        clock = SimClock(start_day=10.0, days_per_second=0.0)
        assert clock() == 10.0


class TestDriftPolicy:
    """policy="drift": refresh on measured degradation, not epoch age."""

    def _drift_service(self):
        from tests.serve.test_sentinel import QUIET, VOLATILE

        service = LocalizationService.from_specs(
            {"quiet": QUIET, "volatile": VOLATILE},
            protocol=PROTOCOL,
            seed=7,
        )
        service.warm()
        return service

    def _drift_config(self, **overrides):
        kwargs = dict(
            policy="drift",
            interval_days=30.0,
            drift_threshold_m=0.75,
            drift_frames=64,
        )
        kwargs.update(overrides)
        return SchedulerConfig(**kwargs)

    def test_refreshes_degraded_site_before_age_policy_would(self):
        """The PR-7 acceptance criterion: at day 5 the volatile site has
        measurably degraded but is nowhere near the 30-day age
        threshold — drift plans its refresh, age plans nothing."""
        service = self._drift_service()
        drift_plan = UpdateScheduler(service, self._drift_config()).plan(5.0)
        assert [(site, action) for site, action, _ in drift_plan] == [
            ("volatile", "update")
        ]
        age_plan = UpdateScheduler(
            service, SchedulerConfig(policy="interval", interval_days=30.0)
        ).plan(5.0)
        assert age_plan == []

    def test_staleness_slot_carries_measured_degradation(self):
        service = self._drift_service()
        (site, _, degradation), = UpdateScheduler(
            service, self._drift_config()
        ).plan(5.0)
        assert site == "volatile"
        assert degradation >= 0.75

    def test_refresh_clears_the_drift_signal(self):
        service = self._drift_service()
        scheduler = UpdateScheduler(service, self._drift_config())
        actions = scheduler.tick(5.0)
        assert [action.site for action in actions] == ["volatile"]
        assert scheduler.plan(5.0) == []
        assert scheduler.stats.updates == 1

    def test_cold_sites_are_skipped_not_probed(self):
        """A cold site is planned for commissioning (the shared cold
        contract), never probed for drift — no update action appears."""
        service = self._drift_service()
        cold = LocalizationService.from_specs(
            {"quiet": service.manager.spec("quiet")},
            protocol=PROTOCOL,
            seed=7,
        )
        planned = UpdateScheduler(cold, self._drift_config()).plan(5.0)
        assert planned == [("quiet", "commission", None)]
        skip = self._drift_config(cold="skip")
        assert UpdateScheduler(cold, skip).plan(5.0) == []

    def test_budget_caps_drift_plan(self):
        service = self._drift_service()
        config = self._drift_config(drift_threshold_m=1e-9, budget=1)
        planned = UpdateScheduler(service, config).plan(5.0)
        assert len(planned) == 1
        assert planned[0][0] == "volatile"  # most degraded wins the slot

    def test_most_degraded_site_is_planned_first(self):
        service = self._drift_service()
        config = self._drift_config(drift_threshold_m=1e-9)
        planned = UpdateScheduler(service, config).plan(5.0)
        assert planned[0][0] == "volatile"
        degradations = [degradation for _, _, degradation in planned]
        assert degradations == sorted(degradations, reverse=True)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="drift_threshold_m"):
            SchedulerConfig(policy="drift", drift_threshold_m=0.0)
        with pytest.raises(ValueError, match="drift_frames"):
            SchedulerConfig(policy="drift", drift_frames=0)


class _MaintenanceStub:
    """A serving surface with a canned snapshot-lifecycle report."""

    def __init__(self, report=None):
        self.passes = 0
        self.report = report or {"files_removed": 2, "bytes_reclaimed": 1024}

    def sites(self):
        return []

    def staleness(self, site, day):  # pragma: no cover - no sites
        return None

    def snapshot_maintenance(self):
        self.passes += 1
        return dict(self.report)


class TestSnapshotCadence:
    def test_first_tick_snapshots_then_respects_cadence(self):
        service = _MaintenanceStub()
        scheduler = UpdateScheduler(
            service, SchedulerConfig(snapshot_cadence_days=2.0)
        )
        scheduler.tick(0.0)
        assert service.passes == 1
        assert scheduler.stats.snapshot_runs == 1
        assert scheduler.stats.last_snapshot_day == 0.0
        scheduler.tick(1.0)
        assert service.passes == 1  # within the cadence window
        scheduler.tick(2.0)
        assert service.passes == 2
        assert scheduler.stats.last_snapshot_day == 2.0

    def test_lifecycle_stats_accumulate(self):
        service = _MaintenanceStub()
        scheduler = UpdateScheduler(
            service, SchedulerConfig(snapshot_cadence_days=1.0)
        )
        scheduler.tick(0.0)
        scheduler.tick(1.0)
        assert scheduler.stats.snapshot_runs == 2
        assert scheduler.stats.snapshot_files_removed == 4
        assert scheduler.stats.snapshot_bytes_reclaimed == 2048

    def test_no_cadence_means_no_lifecycle_calls(self):
        service = _MaintenanceStub()
        scheduler = UpdateScheduler(service, SchedulerConfig())
        scheduler.tick(0.0)
        scheduler.tick(100.0)
        assert service.passes == 0
        assert scheduler.stats.snapshot_runs == 0

    def test_backend_without_maintenance_is_tolerated(self):
        class Bare:
            def sites(self):
                return []

        scheduler = UpdateScheduler(
            Bare(), SchedulerConfig(snapshot_cadence_days=1.0)
        )
        scheduler.tick(0.0)  # must not raise
        assert scheduler.stats.snapshot_runs == 0

    def test_real_service_lifecycle_through_ticks(self, tmp_path):
        service = LocalizationService.from_specs(
            {"hq": "square-3m"},
            protocol=PROTOCOL,
            seed=SEED,
            snapshot_dir=tmp_path,
            snapshot_keep=2,
        )
        service.warm()
        scheduler = UpdateScheduler(
            service,
            SchedulerConfig(
                policy="interval", interval_days=1.0, snapshot_cadence_days=1.0
            ),
        )
        for day in range(5):
            scheduler.tick(float(day))
        assert scheduler.stats.snapshot_runs == 5
        files = service.manager.snapshot_store.files()
        assert len(files) <= 2
        assert service.manager.snapshot_store.pruned_files >= 1

    def test_cadence_validation(self):
        with pytest.raises(ValueError, match="snapshot_cadence_days"):
            SchedulerConfig(snapshot_cadence_days=0.0)


class TestStopMidTick:
    def test_stop_joins_after_inflight_tick_completes_fully(self):
        """stop() mid-tick: the in-flight refresh is never half-applied
        and the thread is joined, not leaked."""
        service = fresh_service()
        entered = threading.Event()
        release = threading.Event()
        real_update = service.update

        def slow_update(site, day, cold="raise"):
            entered.set()
            assert release.wait(10.0), "test deadlock: release never set"
            return real_update(site, day, cold=cold)

        service.update = slow_update
        scheduler = UpdateScheduler(
            service, SchedulerConfig(interval_days=1.0)
        )
        scheduler.start(
            SimClock(start_day=30.0, days_per_second=0.0),
            period_seconds=0.01,
        )
        assert entered.wait(10.0)
        stopper = threading.Thread(target=scheduler.stop)
        stopper.start()
        release.set()
        stopper.join(timeout=10.0)
        assert not stopper.is_alive()
        assert scheduler._thread is None
        # The tick that was in flight applied its epochs completely:
        # every site it refreshed has a full day-30 epoch and answers.
        assert scheduler.stats.ticks >= 1
        for site in SITES:
            epochs = service.manager.pipeline(site).database.epochs()
            assert [epoch.day for epoch in epochs] == sorted(
                epoch.day for epoch in epochs
            )
        ticks = scheduler.stats.ticks
        threading.Event().wait(0.1)
        assert scheduler.stats.ticks == ticks  # nothing runs after stop

    def test_stop_timeout_warns_about_stuck_tick(self):
        service = fresh_service(warm=False)
        entered = threading.Event()
        release = threading.Event()

        def stuck_update(site, day, cold="raise"):
            entered.set()
            release.wait(30.0)

        def stuck_commission(site, day):
            entered.set()
            release.wait(30.0)

        service.update = stuck_update
        service.commission = stuck_commission
        scheduler = UpdateScheduler(
            service, SchedulerConfig(interval_days=1.0, cold="commission")
        )
        scheduler.start(SimClock(30.0, 0.0), period_seconds=0.01)
        assert entered.wait(10.0)
        with pytest.warns(RuntimeWarning, match="did not stop"):
            scheduler.stop(timeout=0.1)
        release.set()  # let the daemon finish; it dies with the test
