"""Drift sentinel: measured degradation from held-out probes.

The contracts under test, per :mod:`repro.serve.sentinel`:

* probe streams are deterministic and independent of serving streams —
  measuring drift twice gives the identical reading and perturbs no
  serving answer by a single bit;
* the reading *separates* environments: a quiet site (tiny channel
  drift) reads near-zero degradation while a volatile one reads large,
  so a threshold between them is a meaningful refresh trigger;
* the error contract mirrors queries (RuntimeError uncommissioned,
  LookupError before the first epoch, None/KeyError through the
  service wrapper for cold/unknown sites).

The quiet/volatile recipe here is the calibrated PR-7 separation point
(square-5m, day 5, 64 probe frames, threshold 0.75 m) that the
scheduler's drift-policy tests reuse.
"""

import dataclasses

import numpy as np
import pytest

from repro.serve import LocalizationService
from repro.serve.sentinel import measure_drift, probe_seed
from repro.sim.collector import CollectionProtocol
from repro.sim.specs import DriftSpec, get_scenario_spec
from repro.util.rng import counter_stream

PROTOCOL = CollectionProtocol(samples_per_cell=2, empty_room_samples=5)
SEED = 7
PROBE_DAY = 5.0
PROBE_FRAMES = 64


def drift_spec(name, sigma_daily, rho):
    """A square-5m variant with a custom drift regime (the PR-7 recipe)."""
    return dataclasses.replace(
        get_scenario_spec("square-5m"),
        name=name,
        drift=DriftSpec(
            model="gauss-markov", sigma_daily=sigma_daily, rho=rho
        ),
    )


QUIET = drift_spec("quiet-room", 0.2, 0.988)
VOLATILE = drift_spec("volatile-room", 5.0, 0.9)


def fresh_service(warm=True):
    service = LocalizationService.from_specs(
        {"quiet": QUIET, "volatile": VOLATILE}, protocol=PROTOCOL, seed=SEED
    )
    if warm:
        service.warm()
    return service


def probe_frames(system, count=6):
    links = system.deployment.link_count
    return counter_stream(SEED, 11).normal(-55.0, 6.0, size=(count, links))


class TestProbeSeed:
    def test_deterministic(self):
        assert probe_seed(7, "abc") == probe_seed(7, "abc")

    def test_distinct_per_identity_and_seed(self):
        seeds = {
            probe_seed(7, "abc"),
            probe_seed(7, "xyz"),
            probe_seed(8, "abc"),
        }
        assert len(seeds) == 3


class TestMeasureDrift:
    def test_reading_is_deterministic(self):
        service = fresh_service()
        first = service.drift("volatile", PROBE_DAY, frames=16)
        second = service.drift("volatile", PROBE_DAY, frames=16)
        assert first == second

    def test_reading_fields_are_consistent(self):
        service = fresh_service()
        reading = service.drift("volatile", PROBE_DAY, frames=16)
        assert reading["site"] == "volatile"
        assert reading["day"] == PROBE_DAY
        assert reading["epoch_day"] == 0.0
        assert reading["frames"] == 16
        assert reading["degradation_m"] == pytest.approx(
            reading["probe_error_m"] - reading["baseline_error_m"]
        )

    def test_separates_quiet_from_volatile(self):
        """The calibrated separation the drift policy's threshold sits in."""
        service = fresh_service()
        quiet = service.drift("quiet", PROBE_DAY, frames=PROBE_FRAMES)
        volatile = service.drift("volatile", PROBE_DAY, frames=PROBE_FRAMES)
        assert quiet["degradation_m"] < 0.75 < volatile["degradation_m"]

    def test_measurement_never_perturbs_serving_answers(self):
        service = fresh_service()
        frames = probe_frames(service.pipeline("quiet"))
        before = service.query_batch("quiet", frames, 0.0)
        for _ in range(3):
            service.drift("quiet", PROBE_DAY, frames=8)
        after = service.query_batch("quiet", frames, 0.0)
        assert np.array_equal(before.cells, after.cells)
        assert np.array_equal(before.positions, after.positions)
        assert np.array_equal(before.scores, after.scores)

    def test_measurement_never_perturbs_future_updates(self):
        """The probe stream is disjoint from the collector's streams."""
        probed = fresh_service()
        probed.drift("volatile", PROBE_DAY, frames=8)
        probed.update("volatile", PROBE_DAY)
        untouched = fresh_service()
        untouched.update("volatile", PROBE_DAY)
        left = probed.pipeline("volatile").database.epochs()[-1]
        right = untouched.pipeline("volatile").database.epochs()[-1]
        assert np.array_equal(left.values, right.values)

    def test_uncommissioned_pipeline_raises(self):
        class Cold:
            commissioned = False

            class database:
                epoch_count = 0

        with pytest.raises(RuntimeError, match="not commissioned"):
            measure_drift(Cold(), 0.0, seed=1)

    def test_day_before_first_epoch_raises_lookup(self):
        service = fresh_service()
        with pytest.raises(LookupError):
            service.drift("quiet", -1.0)

    def test_frames_validation(self):
        service = fresh_service()
        with pytest.raises(ValueError, match="frames"):
            measure_drift(service.pipeline("quiet"), 0.0, frames=0, seed=1)


class TestServiceWrapper:
    def test_cold_site_returns_none(self):
        service = fresh_service(warm=False)
        assert service.drift("quiet", PROBE_DAY) is None

    def test_unknown_site_raises_keyerror(self):
        service = fresh_service(warm=False)
        with pytest.raises(KeyError, match="unknown site"):
            service.drift("nowhere", PROBE_DAY)
