"""Unit tests for the multi-site pipeline manager."""

import numpy as np
import pytest

from repro.core.pipeline import TafLoc, TafLocConfig
from repro.core.reconstruction import ReconstructionConfig
from repro.serve import SiteManager, pipeline_seed, reconstructor_seed
from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.specs import get_scenario_spec

PROTOCOL = CollectionProtocol(samples_per_cell=3, empty_room_samples=5)


@pytest.fixture()
def manager():
    return SiteManager(protocol=PROTOCOL, seed=11)


class TestRegistration:
    def test_register_resolves_names_dicts_and_specs(self, manager):
        by_name = manager.register("hq", "paper")
        by_spec = manager.register("lab", get_scenario_spec("square-6m"))
        by_dict = manager.register(
            "annex", get_scenario_spec("corridor").to_dict()
        )
        assert by_name.name == "paper"
        assert by_spec.name == "square-6m"
        assert by_dict.name == "corridor"
        assert manager.sites() == ["hq", "lab", "annex"]
        assert "hq" in manager and "nowhere" not in manager

    def test_duplicate_site_rejected(self, manager):
        manager.register("hq", "paper")
        with pytest.raises(ValueError, match="already registered"):
            manager.register("hq", "warehouse")

    def test_unknown_site_raises_keyerror(self, manager):
        manager.register("hq", "paper")
        with pytest.raises(KeyError, match="unknown site"):
            manager.pipeline("branch")
        with pytest.raises(KeyError, match="unknown site"):
            manager.spec("branch")
        with pytest.raises(KeyError, match="unknown site"):
            manager.materialized("branch")

    def test_unknown_scenario_name_raises_keyerror(self, manager):
        with pytest.raises(KeyError, match="unknown scenario"):
            manager.register("hq", "submarine")


class TestMaterialization:
    def test_lazy_until_first_pipeline_access(self, manager):
        manager.register("hq", "paper")
        assert not manager.materialized("hq")
        assert manager.stats.pipelines_built == 0
        system = manager.pipeline("hq")
        assert manager.materialized("hq")
        assert manager.stats.pipelines_built == 1
        assert system.commissioned
        assert system.database.epoch_count == 1

    def test_repeated_access_returns_same_pipeline(self, manager):
        manager.register("hq", "paper")
        assert manager.pipeline("hq") is manager.pipeline("hq")
        assert manager.stats.pipelines_built == 1

    def test_sites_sharing_a_spec_share_one_pipeline(self, manager):
        manager.register("hq", "paper")
        manager.register("mirror", get_scenario_spec("paper"))
        assert manager.pipeline("hq") is manager.pipeline("mirror")
        assert manager.stats.pipelines_built == 1
        assert manager.stats.pipelines_shared == 1

    def test_distinct_seeds_are_distinct_environments(self, manager):
        manager.register("a", get_scenario_spec("paper", seed=1))
        manager.register("b", get_scenario_spec("paper", seed=2))
        assert manager.pipeline("a") is not manager.pipeline("b")
        assert manager.stats.pipelines_built == 2

    def test_manager_pipeline_matches_standalone_tafloc(self, manager):
        """The determinism contract: a manager-built pipeline equals a
        standalone TafLoc constructed with the derived seeds, bit for bit."""
        manager.register("hq", "paper")
        spec = get_scenario_spec("paper")
        scenario = manager.pipeline("hq").collector.scenario
        direct = TafLoc(
            RssCollector(scenario, PROTOCOL, seed=pipeline_seed(spec, 11)),
            seed=reconstructor_seed(spec, 11),
        )
        direct.commission(0.0)
        served = manager.pipeline("hq").database.latest()
        np.testing.assert_array_equal(
            served.values, direct.database.latest().values
        )
        np.testing.assert_array_equal(
            served.empty_rss, direct.database.latest().empty_rss
        )

    def test_identity_contract_holds_for_stochastic_reference_strategy(self):
        """Regression: the bit-identity recipe must also cover strategies
        whose reference selection consumes the reconstructor seed (the
        manager used to derive a seed the documented recipe left at 0)."""
        config = TafLocConfig(
            reconstruction=ReconstructionConfig(reference_strategy="random")
        )
        manager = SiteManager(protocol=PROTOCOL, config=config, seed=11)
        manager.register("hq", "paper")
        served = manager.pipeline("hq")
        manager.update("hq", 30.0)
        spec = get_scenario_spec("paper")
        direct = TafLoc(
            RssCollector(
                served.collector.scenario,
                PROTOCOL,
                seed=pipeline_seed(spec, 11),
            ),
            config,
            seed=reconstructor_seed(spec, 11),
        )
        direct.commission(0.0)
        direct.update(30.0)
        np.testing.assert_array_equal(
            served.database.latest().values, direct.database.latest().values
        )

    def test_pipeline_seed_keyed_by_structure_not_name(self):
        paper = get_scenario_spec("paper")
        assert pipeline_seed(paper, 0) == pipeline_seed(
            get_scenario_spec("paper"), 0
        )
        assert pipeline_seed(paper, 0) != pipeline_seed(paper.with_seed(1), 0)
        assert pipeline_seed(paper, 0) != pipeline_seed(paper, 1)


class TestAttachAndUpdate:
    def test_attach_serves_existing_pipeline(self, manager):
        manager.register("hq", "paper")
        scenario = manager.pipeline("hq").collector.scenario
        testbed_system = TafLoc(RssCollector(scenario, PROTOCOL, seed=5))
        manager.attach("testbed", testbed_system)
        assert manager.pipeline("testbed") is testbed_system
        assert manager.spec("testbed") is None
        assert manager.materialized("testbed")
        with pytest.raises(ValueError, match="already registered"):
            manager.attach("testbed", testbed_system)

    def test_auto_commission_off_leaves_pipeline_raw(self):
        manager = SiteManager(
            protocol=PROTOCOL, auto_commission=False, seed=3
        )
        manager.register("hq", "paper")
        system = manager.pipeline("hq")
        assert not system.commissioned
        with pytest.raises(RuntimeError, match="commission"):
            system.localize(np.zeros(10), 0.0)

    def test_update_appends_epoch(self, manager):
        manager.register("hq", "paper")
        manager.pipeline("hq")  # warm: materialize + commission
        report = manager.update("hq", 30.0)
        assert report.day == 30.0
        assert manager.pipeline("hq").database.epoch_count == 2


class TestColdUpdateContract:
    """update() on a never-materialized site must not silently
    commission-then-update with an ambiguous epoch pair."""

    def test_cold_update_raises_by_default(self, manager):
        manager.register("hq", "paper")
        with pytest.raises(RuntimeError, match="cold update"):
            manager.update("hq", 30.0)

    def test_refused_cold_update_leaves_site_lazy(self, manager):
        manager.register("hq", "paper")
        with pytest.raises(RuntimeError, match="cold update"):
            manager.update("hq", 30.0)
        assert not manager.materialized("hq")
        assert manager.stats.pipelines_built == 0
        # The lazy path still works exactly as before the refusal.
        assert manager.pipeline("hq").commissioned

    def test_cold_update_can_commission_at_the_update_day(self, manager):
        manager.register("hq", "paper")
        report = manager.update("hq", 30.0, cold="commission")
        assert report is None
        system = manager.pipeline("hq")
        # One unambiguous epoch, at the update day — not at commission_day.
        assert system.database.days == [30.0]
        assert system.commissioned
        warm = manager.update("hq", 60.0)
        assert warm is not None and warm.day == 60.0
        assert system.database.days == [30.0, 60.0]

    def test_uncommissioned_materialized_site_is_cold(self):
        manager = SiteManager(
            protocol=PROTOCOL, auto_commission=False, seed=3
        )
        manager.register("hq", "paper")
        manager.pipeline("hq")  # materialized but not commissioned
        with pytest.raises(RuntimeError, match="cold update"):
            manager.update("hq", 30.0)

    def test_invalid_cold_policy_rejected(self, manager):
        manager.register("hq", "paper")
        with pytest.raises(ValueError, match="cold"):
            manager.update("hq", 30.0, cold="panic")

    def test_cold_update_on_unknown_site_raises_keyerror(self, manager):
        with pytest.raises(KeyError, match="unknown site"):
            manager.update("branch", 30.0, cold="commission")

    def test_explicit_commission_then_refuses_recommission(self, manager):
        manager.register("hq", "paper")
        manager.commission("hq", 10.0)
        assert manager.pipeline("hq").database.days == [10.0]
        with pytest.raises(RuntimeError, match="already commissioned"):
            manager.commission("hq", 20.0)

    def test_shared_spec_site_is_warm_through_its_twin(self, manager):
        """A site whose spec fingerprint was materialized by another site
        shares that commissioned pipeline — updating it is a warm update."""
        manager.register("hq", "paper")
        manager.register("mirror", get_scenario_spec("paper"))
        manager.pipeline("hq")
        report = manager.update("mirror", 30.0)
        assert report is not None
        assert manager.pipeline("hq").database.epoch_count == 2
