"""Anti-entropy e2e: quorum read-repair, scrub, degraded-mode serving.

The trust contracts, per :class:`repro.serve.shard.ShardedService`:

* a corrupted replica under ``read_mode="quorum"`` never changes a
  client answer — the divergence is alarmed (``read_divergences``),
  the liar quarantined and read-repaired from the authoritative
  snapshot, all inside the read;
* corruption in a replica that no read touches is found by the scrub
  (``scrub_divergences``) and repaired the same way;
* when every replica of a site is down and ``degraded_mode`` is on,
  the fleet answers from the last verified snapshot with an explicit
  ``stale`` marker instead of raising ServiceUnavailable;
* background refresh racing a live resize leaves the fleet scrub-clean
  (replica bit-agreement is the proof that no epoch was half-applied).
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.serve import (
    LocalizationService,
    ShardedService,
    SimClock,
    StaleAnswer,
    UpdateScheduler,
)
from repro.serve.faults import FaultInjector
from repro.serve.protocol import ServiceUnavailable
from repro.serve.scheduler import SchedulerConfig
from repro.sim.collector import CollectionProtocol
from repro.util.rng import counter_stream

PROTOCOL = CollectionProtocol(samples_per_cell=2, empty_room_samples=5)
SITES = {"hq": "square-3m", "lab": "square-4m"}
SEED = 2016


@pytest.fixture(scope="module")
def reference():
    svc = LocalizationService.from_specs(
        SITES, protocol=PROTOCOL, seed=SEED, share_pipelines=False
    )
    svc.warm()
    return svc


@pytest.fixture(scope="module")
def workloads(reference):
    out = {}
    for index, site in enumerate(SITES):
        links = reference.pipeline(site).deployment.link_count
        out[site] = counter_stream(SEED, 300 + index).normal(
            -55.0, 6.0, size=(5, links)
        )
    return out


@pytest.fixture(scope="module")
def expected(reference, workloads):
    return {
        site: reference.query_batch(site, rss, 0.0)
        for site, rss in workloads.items()
    }


def make_fleet(tmp_path, **overrides):
    kwargs = dict(
        shards=3,
        replicas=2,
        snapshot_dir=tmp_path / "snapshots",
        call_timeout=30.0,
        read_mode="quorum",
        degraded_mode=True,
        protocol=PROTOCOL,
        seed=SEED,
    )
    kwargs.update(overrides)
    service = ShardedService(SITES, **kwargs)
    service.warm()
    return service


@pytest.fixture()
def fleet(tmp_path):
    service = make_fleet(tmp_path)
    yield service
    service.close()


def _identical(result, expect):
    return (
        np.array_equal(result.cells, expect.cells)
        and np.array_equal(result.positions, expect.positions)
        and np.array_equal(result.scores, expect.scores)
    )


class TestValidation:
    """Constructor contracts reject nonsense before any worker spawns."""

    def test_unknown_read_mode_rejected(self):
        with pytest.raises(ValueError, match="read_mode"):
            ShardedService(SITES, read_mode="paxos", protocol=PROTOCOL)

    def test_scrub_frames_must_be_positive(self):
        with pytest.raises(ValueError, match="scrub_frames"):
            ShardedService(SITES, scrub_frames=0, protocol=PROTOCOL)

    def test_degraded_mode_requires_snapshot_dir(self):
        with pytest.raises(ValueError, match="snapshot_dir"):
            ShardedService(SITES, degraded_mode=True, protocol=PROTOCOL)


class TestQuorumReadRepair:
    def test_corrupt_primary_never_changes_a_client_answer(
        self, fleet, workloads, expected
    ):
        """The headline gate: a lying primary is outvoted, alarmed,
        quarantined, and repaired — all inside the read path."""
        injector = FaultInjector(fleet)
        detail = injector.corrupt(
            fleet.replicas["hq"][0], site="hq", seed=5
        )
        assert detail is not None and detail["before"] != detail["after"]
        for _ in range(2):
            for site, rss in workloads.items():
                result = fleet.query_batch(site, rss, 0.0)
                assert _identical(result, expected[site])
                assert not getattr(result, "stale", False)
        stats = fleet.router_stats
        assert stats.read_divergences >= 1
        assert stats.quarantines >= 1
        assert stats.repairs >= 1
        # The repair was verified before the replica rejoined: a scrub
        # right after finds nothing, and nothing is still held out.
        report = fleet.scrub()
        assert report["divergent_sites"] == []
        assert fleet.quarantined_replicas() == []


class TestScrub:
    def test_scrub_finds_silent_secondary_corruption(
        self, fleet, workloads, expected
    ):
        """A corrupted secondary that serves no reads is invisible to
        clients — only the background scrub can catch it."""
        injector = FaultInjector(fleet)
        secondary = fleet.replicas["lab"][1]
        assert injector.corrupt(secondary, site="lab", seed=9) is not None
        report = fleet.scrub()
        assert report["sites_checked"] == len(SITES)
        assert report["divergent_sites"] == ["lab"]
        assert report["quarantined"] >= 1
        assert report["repaired"] >= 1
        assert fleet.router_stats.scrub_divergences >= 1
        # Repaired and verified: the next pass is clean and answers are
        # back to reference bits.
        assert fleet.scrub()["divergent_sites"] == []
        assert fleet.quarantined_replicas() == []
        post = fleet.query_batch("lab", workloads["lab"], 0.0)
        assert _identical(post, expected["lab"])

    def test_scrub_subset_and_unknown_site(self, fleet):
        report = fleet.scrub(sites=["hq"])
        assert report["sites_checked"] == 1
        with pytest.raises(KeyError, match="unknown site"):
            fleet.scrub(sites=["nowhere"])

    def test_background_scrub_thread_lifecycle(self, fleet):
        assert fleet.start_scrub(interval_seconds=0.05) is fleet
        with pytest.raises(RuntimeError, match="already running"):
            fleet.start_scrub(interval_seconds=0.05)
        deadline = time.monotonic() + 10.0
        while fleet.router_stats.scrubs < 2:
            assert time.monotonic() < deadline, "scrub thread never ran"
            time.sleep(0.02)
        fleet.stop_scrub()
        assert fleet._scrub_thread is None
        settled = fleet.router_stats.scrubs
        time.sleep(0.15)
        assert fleet.router_stats.scrubs == settled  # really stopped
        fleet.stop_scrub()  # idempotent

    def test_start_scrub_rejects_non_positive_interval(self, fleet):
        with pytest.raises(ValueError, match="interval_seconds"):
            fleet.start_scrub(interval_seconds=0.0)

    def test_health_reports_anti_entropy_section(self, fleet):
        report = fleet.health()
        section = report["anti_entropy"]
        assert section["read_mode"] == "quorum"
        assert section["degraded_mode"] is True
        assert section["quarantined"] == []
        # A held-out replica degrades health until repair clears it.
        fleet._quarantine("hq", fleet.replicas["hq"][1])
        report = fleet.health()
        assert report["status"] == "degraded"
        assert ["hq", fleet.replicas["hq"][1]] in report["anti_entropy"][
            "quarantined"
        ]
        fleet._unquarantine("hq", fleet.replicas["hq"][1])
        assert fleet.health()["status"] == "ok"

    def test_quarantined_replica_blocks_updates(self, fleet):
        """Mutations need the full trusted replica set: a quarantined
        replica would silently miss the refresh and drift."""
        fleet._quarantine("hq", fleet.replicas["hq"][1])
        with pytest.raises(ServiceUnavailable, match="quarantined"):
            fleet.update("hq", 5.0)
        fleet._unquarantine("hq", fleet.replicas["hq"][1])
        report = fleet.update("hq", 5.0)
        assert report is not None and report.samples_taken > 0

    def test_resize_prunes_quarantine_entries_for_lost_replicas(
        self, fleet
    ):
        """(site, shard) quarantine pairs name the old layout; a resize
        must drop any that no longer point at an owning replica."""
        fleet._quarantine("hq", 2)
        fleet._quarantine("lab", 2)
        fleet.resize(2)  # shard 2 retired; R=2 over 2 shards owns all
        for site, index in fleet.quarantined_replicas():
            assert index in fleet.replicas[site]
        assert all(
            index != 2 for _, index in fleet.quarantined_replicas()
        )


class TestDegradedMode:
    def test_all_replicas_down_serves_stale_snapshot_answer(
        self, tmp_path, workloads, expected
    ):
        """Losing every replica of a site yields the last verified
        snapshot's bits, explicitly marked stale — not an exception."""
        service = make_fleet(tmp_path, auto_respawn=False)
        try:
            for index in set(service.replicas["hq"]):
                os.kill(service._shards[index].process.pid, signal.SIGKILL)
                service._shards[index].process.join(timeout=5.0)
            result = service.query_batch("hq", workloads["hq"], 0.0)
            assert isinstance(result, StaleAnswer)
            assert result.stale is True
            assert _identical(result, expected["hq"])
            assert len(result) == workloads["hq"].shape[0]
            assert service.router_stats.degraded_answers >= 1
            report = service.health()
            assert "hq" in report["anti_entropy"]["stale_capable"]
            assert report["status"] == "degraded"  # stale cover counts
        finally:
            service.close()

    def test_without_degraded_mode_the_same_loss_raises(
        self, tmp_path, workloads
    ):
        service = make_fleet(
            tmp_path,
            read_mode="failover",
            degraded_mode=False,
            auto_respawn=False,
        )
        try:
            for index in set(service.replicas["hq"]):
                os.kill(service._shards[index].process.pid, signal.SIGKILL)
                service._shards[index].process.join(timeout=5.0)
            with pytest.raises(ServiceUnavailable):
                service.query_batch("hq", workloads["hq"], 0.0)
        finally:
            service.close()


class TestResizeUnderRefresh:
    def test_resize_racing_scheduler_updates_stays_scrub_clean(
        self, fleet, workloads, expected
    ):
        """A live resize while the background scheduler refreshes: no
        leaked threads, and a final scrub proves every replica holds the
        same bits — no epoch was half-applied across the handoff."""
        scheduler = UpdateScheduler(
            fleet,
            SchedulerConfig(policy="interval", interval_days=0.5),
        )
        scheduler.start(
            SimClock(start_day=0.0, days_per_second=2.0),
            period_seconds=0.05,
        )
        try:
            for size in (2, 4, 2):
                fleet.resize(size)
                for site, rss in workloads.items():
                    result = fleet.query_batch(site, rss, 0.0)
                    assert _identical(result, expected[site])
        finally:
            scheduler.stop()
        assert scheduler._thread is None
        # Replica bit-agreement across every site: whatever refreshes
        # landed, they landed on the whole replica set or not at all.
        report = fleet.scrub()
        assert report["divergent_sites"] == []
        assert fleet.quarantined_replicas() == []
        # Day-0 epochs were never touched by later refreshes.
        for site, rss in workloads.items():
            assert _identical(
                fleet.query_batch(site, rss, 0.0), expected[site]
            )
