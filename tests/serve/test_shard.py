"""Unit tests for the shard layer (routing + worker processes)."""

import numpy as np
import pytest

from repro.serve import LocalizationService, ShardedService, shard_for_site
from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.specs import get_scenario_spec

PROTOCOL = CollectionProtocol(samples_per_cell=2, empty_room_samples=5)
SITES = {
    "hq": "square-3m",
    "lab": "square-4m",
    "depot": "square-3m",
    "annex": "square-4m",
}
SEED = 21


@pytest.fixture(scope="module")
def reference():
    service = LocalizationService.from_specs(
        SITES, protocol=PROTOCOL, seed=SEED
    )
    service.warm()
    return service


@pytest.fixture(scope="module")
def traces(reference):
    out = {}
    for index, site in enumerate(reference.sites()):
        scenario = reference.pipeline(site).collector.scenario
        cells = list(range(0, scenario.deployment.cell_count, 4))
        out[site] = RssCollector(
            scenario, PROTOCOL, seed=60 + index
        ).live_trace(0.0, cells)
    return out


@pytest.fixture(scope="module", params=[1, 2, 3])
def sharded(request):
    with ShardedService(
        SITES, shards=request.param, protocol=PROTOCOL, seed=SEED
    ) as service:
        service.warm()
        yield service


class TestRouting:
    def test_shard_for_site_in_range_and_deterministic(self):
        for count in (1, 2, 5, 16):
            for site in SITES:
                shard = shard_for_site(site, count)
                assert 0 <= shard < count
                assert shard == shard_for_site(site, count)

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError, match="shard_count"):
            shard_for_site("hq", 0)
        with pytest.raises(ValueError, match="shards"):
            ShardedService(SITES, shards=0, protocol=PROTOCOL, seed=SEED)

    def test_assignment_matches_pure_function(self, sharded):
        for site in SITES:
            assert sharded.assignment[site] == shard_for_site(
                site, sharded.shard_count
            )

    def test_sites_preserve_registration_order(self, sharded):
        assert sharded.sites() == list(SITES)

    def test_unknown_site_raises_keyerror(self, sharded):
        with pytest.raises(KeyError, match="unknown site"):
            sharded.query("nowhere", np.zeros(2), 0.0)
        with pytest.raises(KeyError, match="unknown site"):
            sharded.warm(["nowhere"])


class TestShardIdentity:
    """The acceptance contract: any shard count answers with the same
    bits as the in-process service (and therefore as any other count)."""

    def test_query_batch_bit_identical_to_in_process(
        self, sharded, reference, traces
    ):
        for site, trace in traces.items():
            served = sharded.query_batch(site, trace.rss, 0.0)
            expected = reference.query_batch(site, trace.rss, 0.0)
            np.testing.assert_array_equal(served.cells, expected.cells)
            np.testing.assert_array_equal(
                served.positions, expected.positions
            )
            np.testing.assert_array_equal(served.scores, expected.scores)

    def test_single_query_and_trace_bit_identical(
        self, sharded, reference, traces
    ):
        trace = traces["hq"]
        single = sharded.query("hq", trace.rss[0], 0.0)
        expected = reference.query("hq", trace.rss[0], 0.0)
        assert single.cell == expected.cell
        assert single.position == expected.position
        routed = sharded.query_trace("hq", trace)
        np.testing.assert_array_equal(
            routed.cells, reference.query_trace("hq", trace).cells
        )

    def test_map_query_batch_fans_out_in_request_order(
        self, sharded, reference, traces
    ):
        requests = [(site, traces[site].rss, 0.0) for site in traces]
        results = sharded.map_query_batch(requests)
        assert len(results) == len(requests)
        for (site, rss, day), result in zip(requests, results):
            expected = reference.query_batch(site, rss, day)
            np.testing.assert_array_equal(result.cells, expected.cells)
            np.testing.assert_array_equal(
                result.positions, expected.positions
            )

    def test_map_query_batch_propagates_errors_after_draining(self, sharded):
        requests = [("hq", np.zeros((1, 2)), 0.0), ("nowhere", None, 0.0)]
        with pytest.raises(KeyError, match="unknown site"):
            sharded.map_query_batch(requests)
        # The pipes stayed in sync: the next call still answers.
        assert sharded.query_batch("hq", np.zeros((1, 2)), 0.0).frame_count == 1


class TestShardServiceSurface:
    def test_error_contract_crosses_the_process_boundary(self, sharded):
        with pytest.raises(ValueError, match="shape"):
            sharded.query("hq", np.zeros(7), 0.0)
        with pytest.raises(LookupError, match="no fingerprint epoch"):
            sharded.query_batch("hq", np.zeros((1, 2)), -3.0)

    def test_update_and_staleness_route_to_the_owner(self):
        with ShardedService(
            SITES, shards=2, protocol=PROTOCOL, seed=SEED
        ) as service:
            service.warm()
            assert service.staleness("hq", 20.0) == 20.0
            report = service.update("hq", 20.0)
            assert report.day == 20.0
            assert service.staleness("hq", 20.0) == 0.0
            summary = service.site_summary("hq")
            assert summary["epochs"] == 2

    def test_cold_update_contract_crosses_the_boundary(self):
        with ShardedService(
            SITES, shards=2, protocol=PROTOCOL, seed=SEED
        ) as service:
            with pytest.raises(RuntimeError, match="cold update"):
                service.update("hq", 10.0)
            assert service.update("hq", 10.0, cold="commission") is None
            assert service.staleness("hq", 10.0) == 0.0

    def test_service_stats_aggregate_across_workers(self, sharded, traces):
        before = sharded.service_stats()
        sharded.query_batch("hq", traces["hq"].rss, 0.0)
        sharded.query_batch("lab", traces["lab"].rss, 0.0)
        after = sharded.service_stats()
        assert after.queries >= before.queries + 2
        assert after.frames_by_site["hq"] >= traces["hq"].frame_count

    def test_summary_covers_every_site(self, sharded):
        rows = sharded.summary()
        assert [row["site"] for row in rows] == list(SITES)
        assert all(row["commissioned"] for row in rows)

    def test_dead_worker_fan_out_raises_without_desyncing_survivors(self):
        """Regression: a crashed worker mid-fan-out must surface an error
        *after* draining the healthy shards — not deadlock on held locks,
        and not leave a stale reply that desyncs the survivors' pipes."""
        with ShardedService(
            SITES, shards=2, protocol=PROTOCOL, seed=SEED
        ) as service:
            service.warm()
            victim = service.assignment["hq"]
            survivor_site = next(
                site
                for site, shard in service.assignment.items()
                if shard != victim
            )
            links = {
                site: service.site_summary(site)["links"]
                for site in ("hq", survivor_site)
            }
            service._shards[victim].process.terminate()
            service._shards[victim].process.join(timeout=5.0)
            requests = [
                (site, np.zeros((1, links[site])), 0.0)
                for site in ("hq", survivor_site)
            ]
            with pytest.raises((EOFError, OSError, BrokenPipeError)):
                service.map_query_batch(requests)
            # Locks were released and the survivor's pipe is still in
            # sync: a follow-up call answers normally.
            result = service.query_batch(
                survivor_site, np.zeros((2, links[survivor_site])), 0.0
            )
            assert result.frame_count == 2

    def test_failed_call_in_fan_out_drains_other_shards(self):
        """A contract error on one shard (unknown day) must not corrupt
        the reply stream of the other shard in the same fan-out."""
        with ShardedService(
            SITES, shards=2, protocol=PROTOCOL, seed=SEED
        ) as service:
            service.warm()
            links = {
                site: service.site_summary(site)["links"]
                for site in ("hq", "lab")
            }
            good = [("hq", np.zeros((1, links["hq"])), 0.0)]
            bad = [("lab", np.zeros((1, links["lab"])), -9.0)]  # pre-epoch
            with pytest.raises(LookupError):
                service.map_query_batch(good + bad)
            for site in ("hq", "lab"):
                assert service.query_batch(
                    site, np.zeros((1, links[site])), 0.0
                ).frame_count == 1

    def test_close_is_idempotent(self):
        service = ShardedService(
            {"hq": get_scenario_spec("square-3m")},
            shards=1,
            protocol=PROTOCOL,
            seed=SEED,
        )
        service.close()
        service.close()
        with pytest.raises((BrokenPipeError, OSError, EOFError)):
            service.query("hq", np.zeros(2), 0.0)
