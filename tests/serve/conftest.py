"""Per-test resource-leak sanitizer for the serving suite.

Every test in ``tests/serve/`` runs under an autouse fixture that
snapshots the live non-daemon threads, multiprocessing children, and
open socket file descriptors *before* the test body, and asserts the
test left none of its own behind afterwards. The serving stack spawns
real worker processes, wire listeners, and watchdog threads; a test
that forgets ``close()``/``join()`` poisons every test after it (port
exhaustion, stray respawns answering a later test's queries), and such
leaks are exactly the bugs that only reproduce in full-suite runs.

Scoping makes this compose with shared fixtures for free: a
module-scoped server fixture instantiates before the function-scoped
sanitizer takes its baseline, so its threads/processes/sockets are
baseline state, not leaks. Only resources created *during* the test
body and still alive after it count.

Opt out per-test with ``@pytest.mark.allow_resource_leaks("reason")``
when a test intentionally abandons a resource (e.g. asserting the
fleet survives an unjoined crash); the marker requires a reason so
escapes stay documented.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from typing import List, Set, Tuple

import pytest

#: Post-test settle budget: worker teardown is asynchronous (a joined
#: process's reaper thread, a closing socket in TIME_WAIT handoff), so
#: the check retries until clean or this many seconds elapse.
_GRACE_SECONDS = 5.0
_POLL_SECONDS = 0.05

LEAK_MARKER = "allow_resource_leaks"


def _live_nondaemon_threads() -> Set[Tuple[int, str]]:
    return {
        (t.ident or 0, t.name)
        for t in threading.enumerate()
        if t.is_alive() and not t.daemon and t is not threading.main_thread()
    }


def _live_children() -> Set[int]:
    return {p.pid for p in multiprocessing.active_children() if p.pid}


def _open_socket_fds() -> Set[Tuple[int, str]]:
    """(fd, socket-inode) pairs from /proc/self/fd; empty off procfs."""
    fds: Set[Tuple[int, str]] = set()
    fd_dir = "/proc/self/fd"
    if not os.path.isdir(fd_dir):
        return fds
    try:
        entries = os.listdir(fd_dir)
    except OSError:
        return fds
    for entry in entries:
        try:
            target = os.readlink(os.path.join(fd_dir, entry))
        except OSError:
            continue
        if target.startswith("socket:"):
            fds.add((int(entry), target))
    return fds


def _leaks_after(
    base_threads: Set[Tuple[int, str]],
    base_children: Set[int],
    base_sockets: Set[Tuple[int, str]],
) -> List[str]:
    problems: List[str] = []
    for ident, name in sorted(_live_nondaemon_threads() - base_threads):
        problems.append(f"non-daemon thread {name!r} (ident={ident})")
    for pid in sorted(_live_children() - base_children):
        problems.append(f"child process pid={pid}")
    for fd, inode in sorted(_open_socket_fds() - base_sockets):
        problems.append(f"open socket fd={fd} ({inode})")
    return problems


@pytest.fixture(autouse=True)
def _leak_sanitizer(request: pytest.FixtureRequest):
    marker = request.node.get_closest_marker(LEAK_MARKER)
    if marker is not None:
        if not marker.args or not str(marker.args[0]).strip():
            pytest.fail(
                f"@pytest.mark.{LEAK_MARKER} requires a reason argument"
            )
        yield
        return

    base_threads = _live_nondaemon_threads()
    base_children = _live_children()
    base_sockets = _open_socket_fds()
    yield
    deadline = time.monotonic() + _GRACE_SECONDS
    problems = _leaks_after(base_threads, base_children, base_sockets)
    while problems and time.monotonic() < deadline:
        time.sleep(_POLL_SECONDS)
        problems = _leaks_after(base_threads, base_children, base_sockets)
    if problems:
        listing = "\n  ".join(problems)
        pytest.fail(
            f"test leaked resources (still live {_GRACE_SECONDS:.0f}s after "
            f"teardown):\n  {listing}\n"
            f"Close servers/clients and join threads in the test, or mark "
            f"it @pytest.mark.{LEAK_MARKER}('<reason>') if intentional.",
            pytrace=False,
        )
