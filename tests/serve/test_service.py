"""Unit tests for the localization serving front-end."""

import numpy as np
import pytest

from repro.core.pipeline import TafLoc
from repro.serve import (
    LocalizationService,
    SiteManager,
    pipeline_seed,
    reconstructor_seed,
)
from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.specs import build_scenario, get_scenario_spec

PROTOCOL = CollectionProtocol(samples_per_cell=3, empty_room_samples=5)
SITES = {"hq": "paper", "depot": "square-6m"}


@pytest.fixture(scope="module")
def service():
    return LocalizationService.from_specs(SITES, protocol=PROTOCOL, seed=7)


@pytest.fixture(scope="module")
def traces(service):
    out = {}
    for site in service.sites():
        scenario = service.pipeline(site).collector.scenario
        cells = list(range(0, scenario.deployment.cell_count, 7))
        out[site] = RssCollector(scenario, PROTOCOL, seed=40).live_trace(
            0.0, cells
        )
    return out


def direct_system(site: str) -> TafLoc:
    """A standalone TafLoc built exactly like the service builds its own."""
    spec = get_scenario_spec(SITES[site])
    system = TafLoc(
        RssCollector(
            build_scenario(spec), PROTOCOL, seed=pipeline_seed(spec, 7)
        ),
        seed=reconstructor_seed(spec, 7),
    )
    system.commission(0.0)
    return system


class TestConstruction:
    def test_manager_and_kwargs_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            LocalizationService(SiteManager(), seed=1)

    def test_from_specs_registers_every_site(self, service):
        assert service.sites() == ["hq", "depot"]

    def test_warm_materializes(self):
        fresh = LocalizationService.from_specs(
            SITES, protocol=PROTOCOL, seed=7
        )
        assert not fresh.manager.materialized("hq")
        assert fresh.warm() == ["hq", "depot"]
        assert fresh.manager.materialized("hq")
        assert fresh.manager.materialized("depot")


class TestRouting:
    def test_multi_site_routing_bit_identical_to_direct_calls(
        self, service, traces
    ):
        """The acceptance contract: answers routed through the service
        equal direct per-site TafLoc calls, bit for bit, on every site."""
        for site in service.sites():
            direct = direct_system(site)
            served = service.query_trace(site, traces[site])
            reference = direct.localize_trace(traces[site])
            np.testing.assert_array_equal(served.cells, reference.cells)
            np.testing.assert_array_equal(
                served.positions, reference.positions
            )
            np.testing.assert_array_equal(served.scores, reference.scores)

    def test_query_batch_matches_single_queries(self, service, traces):
        trace = traces["hq"]
        batch = service.query_batch("hq", trace.rss, 0.0)
        for index in range(len(trace.rss)):
            single = service.query("hq", trace.rss[index], 0.0)
            if single.cell == int(batch.cells[index]):
                continue
            # Batch-of-N and batch-of-1 BLAS rounding may break an exact
            # distance tie differently (same caveat as the benchmark);
            # only a genuine score gap is a disagreement.
            gap = abs(
                batch.scores[index][int(batch.cells[index])]
                - batch.scores[index][single.cell]
            )
            assert gap < 1e-6

    def test_sites_route_to_their_own_fingerprints(self, service):
        hq = service.pipeline("hq")
        depot = service.pipeline("depot")
        assert hq is not depot
        assert hq.deployment.cell_count != depot.deployment.cell_count

    def test_stats_count_queries_and_frames(self):
        fresh = LocalizationService.from_specs(
            SITES, protocol=PROTOCOL, seed=7
        )
        scenario = fresh.pipeline("hq").collector.scenario
        frames = np.zeros((4, scenario.deployment.link_count))
        fresh.query_batch("hq", frames, 0.0)
        fresh.query("hq", frames[0], 0.0)
        assert fresh.stats.queries == 2
        assert fresh.stats.frames == 5
        assert fresh.stats.frames_by_site == {"hq": 5}


class TestErrorContract:
    def test_unknown_site_raises_keyerror(self, service):
        with pytest.raises(KeyError, match="unknown site"):
            service.query("branch", np.zeros(10), 0.0)
        with pytest.raises(KeyError, match="unknown site"):
            service.query_batch("branch", np.zeros((1, 10)), 0.0)

    def test_pre_commission_query_raises_runtimeerror(self):
        raw = LocalizationService.from_specs(
            SITES, protocol=PROTOCOL, seed=7, auto_commission=False
        )
        with pytest.raises(RuntimeError, match="commission"):
            raw.query("hq", np.zeros(10), 0.0)
        with pytest.raises(RuntimeError, match="commission"):
            raw.query_batch("hq", np.zeros((2, 10)), 0.0)

    def test_query_before_first_epoch_raises_lookuperror(self, service):
        with pytest.raises(LookupError, match="no fingerprint epoch"):
            service.query("hq", np.zeros(10), -1.0)

    def test_malformed_rss_raises_valueerror(self, service):
        with pytest.raises(ValueError, match="shape"):
            service.query("hq", np.zeros(3), 0.0)


class TestEpochs:
    def test_update_serves_new_epoch_and_keeps_old_days(self):
        fresh = LocalizationService.from_specs(
            SITES, protocol=PROTOCOL, seed=7
        )
        fresh.warm(["hq"])
        fresh.update("hq", 30.0)
        system = fresh.pipeline("hq")
        assert system.database.epoch_count == 2
        early = system.matcher_for_day(10.0)
        late = system.matcher_for_day(45.0)
        assert early.fingerprint.day == 0.0
        assert late.fingerprint.day == 30.0

    def test_summary_reports_materialization_state(self):
        fresh = LocalizationService.from_specs(
            SITES, protocol=PROTOCOL, seed=7
        )
        before = {row["site"]: row for row in fresh.summary()}
        assert not before["hq"]["materialized"]
        fresh.warm(["hq"])
        after = fresh.site_summary("hq")
        assert after["materialized"] and after["commissioned"]
        assert after["scenario"] == "paper"
        assert after["epochs"] == 1
