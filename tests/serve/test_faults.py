"""Fault-tolerance gates: kill, hang, drop — lose no queries, no bits.

The headline contract (ISSUE acceptance): with R = 2 replicas over 3
shards and a snapshot directory, ``kill -9`` of *any* worker under load
loses zero queries, the victim respawns warm from snapshots, and every
post-recovery answer is bit-identical to an undisturbed in-process
service. Plus the supporting machinery: deterministic fault schedules,
wire-level drops absorbed by client retries, worker hangs caught by the
router's call timeout.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.serve import LocalizationService, ShardedService
from repro.serve.faults import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    FlakyService,
    corrupt_pipeline_state,
    corrupt_snapshot_file,
)
from repro.serve.frontend import HttpFrontend, ServiceClient
from repro.serve.protocol import DropResponse, ServiceUnavailable
from repro.serve.shard import WorkerTimeout
from repro.sim.collector import CollectionProtocol
from repro.util.rng import counter_stream

PROTOCOL = CollectionProtocol(samples_per_cell=2, empty_room_samples=5)
SITES = {"hq": "square-3m", "lab": "square-4m", "depot": "square-5m"}
SEED = 21


@pytest.fixture(scope="module")
def reference():
    svc = LocalizationService.from_specs(
        SITES, protocol=PROTOCOL, seed=SEED, share_pipelines=False
    )
    svc.warm()
    return svc


@pytest.fixture(scope="module")
def workloads(reference):
    out = {}
    for index, site in enumerate(SITES):
        links = reference.pipeline(site).deployment.link_count
        out[site] = counter_stream(SEED, 100 + index).normal(
            -55.0, 6.0, size=(6, links)
        )
    return out


@pytest.fixture(scope="module")
def expected(reference, workloads):
    return {
        site: reference.query_batch(site, rss, 0.0)
        for site, rss in workloads.items()
    }


@pytest.fixture()
def fleet(tmp_path):
    service = ShardedService(
        SITES,
        shards=3,
        replicas=2,
        snapshot_dir=tmp_path / "snapshots",
        call_timeout=30.0,
        protocol=PROTOCOL,
        seed=SEED,
    )
    service.warm()
    yield service
    service.close()


def _wait_recovered(fleet, deadline_s=60.0):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if all(shard.alive() for shard in fleet._shards):
            return True
        fleet.health()  # the monitoring poll drives secondary recovery
        time.sleep(0.05)
    return False


class TestKillNineFailover:
    @pytest.mark.parametrize("victim", [0, 1, 2])
    def test_kill_any_worker_loses_zero_queries(
        self, fleet, workloads, expected, victim
    ):
        injector = FaultInjector(fleet)
        assert injector.kill(victim)
        # Under load immediately after the kill: every query answers,
        # bit-identically — R=2 means some replica always owns the site.
        for _ in range(3):
            for site, rss in workloads.items():
                result = fleet.query_batch(site, rss, 0.0)
                assert np.array_equal(result.cells, expected[site].cells)
                assert np.array_equal(
                    result.positions, expected[site].positions
                )
        assert _wait_recovered(fleet)
        # The respawned worker warmed from snapshots, not a re-survey.
        worker_health = fleet._shards[victim].call("health")
        assert worker_health["snapshots_restored"] > 0
        assert fleet.router_stats.respawns >= 1
        # Post-recovery answers are still bit-identical.
        for site, rss in workloads.items():
            result = fleet.query_batch(site, rss, 0.0)
            assert np.array_equal(result.cells, expected[site].cells)

    def test_kill_mid_map_query_batch_retries_on_replicas(
        self, fleet, workloads, expected
    ):
        """A worker killed between fan-out calls: the lost requests are
        transparently retried on the sites' replicas — the batch still
        returns every answer, bit-identically."""
        requests = [
            (site, rss, 0.0) for site, rss in workloads.items()
        ] * 3
        os.kill(fleet._shards[0].process.pid, signal.SIGKILL)
        results = fleet.map_query_batch(requests)
        assert len(results) == len(requests)
        for (site, _, _), result in zip(requests, results):
            assert np.array_equal(result.cells, expected[site].cells)
        assert _wait_recovered(fleet)

    def test_health_degrades_then_recovers(self, fleet):
        assert fleet.health()["status"] == "ok"
        os.kill(fleet._shards[1].process.pid, signal.SIGKILL)
        fleet._shards[1].process.join(timeout=5.0)
        report = fleet.health()
        assert report["status"] in ("degraded", "unavailable")
        assert 1 in report["down_shards"] or fleet._shards[1].alive()
        assert _wait_recovered(fleet)
        report = fleet.health()
        assert report["status"] == "ok"
        assert report["shards"][1]["restarts"] == 1

    def test_update_refuses_degraded_replica_set(self, fleet, workloads):
        """Mutations need the full replica set (a partial update would let
        replicas drift); a degraded site refuses refreshes until the
        respawn completes, then accepts them."""
        site = next(iter(SITES))
        victims = set(fleet.replicas[site])
        for index in victims:
            os.kill(fleet._shards[index].process.pid, signal.SIGKILL)
            fleet._shards[index].process.join(timeout=5.0)
        with pytest.raises(ServiceUnavailable):
            fleet.update(site, 5.0)
        assert _wait_recovered(fleet)
        report = fleet.update(site, 5.0)
        assert report is not None and report.samples_taken > 0


class TestResize:
    def test_grow_and_shrink_keep_answers_bit_identical(
        self, fleet, workloads, expected
    ):
        grown = fleet.resize(5)
        assert grown["shards"] == 5 and grown["spawned"] == 2
        for site, rss in workloads.items():
            assert np.array_equal(
                fleet.query_batch(site, rss, 0.0).cells, expected[site].cells
            )
        shrunk = fleet.resize(2)
        assert shrunk["shards"] == 2 and shrunk["retired"] == 3
        for site, rss in workloads.items():
            assert np.array_equal(
                fleet.query_batch(site, rss, 0.0).cells, expected[site].cells
            )
        assert fleet.router_stats.resizes == 2
        assert len(fleet._shards) == 2

    def test_resize_is_minimal_movement(self, fleet):
        before = {site: set(order) for site, order in fleet.replicas.items()}
        result = fleet.resize(4)
        moved = set(result["moved_sites"])
        for site, order in fleet.replicas.items():
            if set(order) == before[site]:
                assert site not in moved
            else:
                assert site in moved
        assert fleet.resize(4)["moved_sites"] == []  # no-op resize

    def test_resize_to_zero_rejected(self, fleet):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            fleet.resize(0)


class TestWorkerHang:
    def test_hang_is_caught_by_call_timeout(self, tmp_path, workloads):
        service = ShardedService(
            SITES,
            shards=2,
            replicas=2,
            snapshot_dir=tmp_path / "snapshots",
            call_timeout=0.5,
            protocol=PROTOCOL,
            seed=SEED,
        )
        try:
            service.warm()
            injector = FaultInjector(service)
            site = next(iter(SITES))
            primary = service.assignment[site]
            assert injector.hang(primary, seconds=3.0)
            # The hung primary misses the 0.5 s budget; the call fails
            # over to the replica and still answers.
            result = service.query_batch(site, workloads[site], 0.0)
            assert result.frame_count == workloads[site].shape[0]
            assert service.router_stats.timeouts >= 1
        finally:
            service.close()

    def test_worker_timeout_is_a_timeout_error(self):
        assert issubclass(WorkerTimeout, TimeoutError)


class TestFaultSchedule:
    def test_generate_is_deterministic(self):
        a = FaultSchedule.generate(
            seed=9, operations=50, shards=3, faults=5,
            actions=("kill", "hang"),
        )
        b = FaultSchedule.generate(
            seed=9, operations=50, shards=3, faults=5,
            actions=("kill", "hang"),
        )
        assert a == b
        assert len(a.events) == 5
        assert len({event.at for event in a.events}) == 5  # no collisions
        for event in a.events:
            assert 0 <= event.at < 50
            assert 0 <= event.target < 3
            assert event.action in ("kill", "hang")

    def test_different_seed_different_plan(self):
        a = FaultSchedule.generate(seed=1, operations=100, shards=4, faults=6)
        b = FaultSchedule.generate(seed=2, operations=100, shards=4, faults=6)
        assert a != b

    def test_at_filters_by_operation(self):
        schedule = FaultSchedule(
            events=(
                FaultEvent(at=3, action="kill", target=1),
                FaultEvent(at=3, action="delay", target=0, seconds=0.1),
                FaultEvent(at=7, action="kill", target=0),
            )
        )
        assert len(schedule.at(3)) == 2
        assert schedule.at(7)[0].target == 0
        assert schedule.at(5) == []

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown action"):
            FaultSchedule.generate(
                seed=0, operations=10, shards=2, actions=("explode",)
            )


class TestFlakyWire:
    def test_dropped_responses_are_absorbed_by_client_retries(
        self, reference, workloads, expected
    ):
        flaky = FlakyService(
            reference, drop_calls={0, 2}, methods={"query_batch"}
        )
        with HttpFrontend(flaky) as frontend:
            client = ServiceClient(
                frontend.address, retries=3, backoff=0.01
            )
            try:
                for site, rss in workloads.items():
                    wire = client.query_batch(site, rss, 0.0)
                    assert np.array_equal(wire.cells, expected[site].cells)
            finally:
                client.close()
        assert flaky.dropped == 2

    def test_exhausted_retries_surface_service_unavailable(
        self, reference, workloads
    ):
        flaky = FlakyService(
            reference, drop_calls=set(range(10)), methods={"query_batch"}
        )
        site = next(iter(SITES))
        with HttpFrontend(flaky) as frontend:
            client = ServiceClient(
                frontend.address, retries=2, backoff=0.01
            )
            try:
                with pytest.raises(ServiceUnavailable):
                    client.query_batch(site, workloads[site], 0.0)
            finally:
                client.close()
        assert flaky.dropped == 3  # one per attempt, budget exhausted

    def test_drop_response_is_not_a_contract_error(self):
        assert not issubclass(DropResponse, (ValueError, OSError))

    def test_passthrough_preserves_non_filtered_methods(self, reference):
        flaky = FlakyService(
            reference, drop_calls={0}, methods={"query_batch"}
        )
        assert flaky.sites() == list(SITES)  # not filtered, never dropped
        assert flaky.calls == 0


class TestCorruptFault:
    """The seeded corrupt fault: silent, finite, and exactly replayable."""

    def _solo(self):
        svc = LocalizationService.from_specs(
            {"hq": "square-3m"},
            protocol=PROTOCOL,
            seed=SEED,
            share_pipelines=False,
        )
        svc.warm()
        return svc

    def test_state_flip_is_seed_deterministic(self):
        """Twin services, same seed: the identical (epoch, index, bit)
        is flipped — the whole fault schedule replays from one integer."""
        first = corrupt_pipeline_state(self._solo(), "hq", seed=4)
        second = corrupt_pipeline_state(self._solo(), "hq", seed=4)
        assert first == second
        other = corrupt_pipeline_state(self._solo(), "hq", seed=5)
        assert (other["index"], other["bit"]) != (
            first["index"],
            first["bit"],
        )

    def test_flip_is_silent_but_wrong(self, workloads):
        """The corrupted pipeline keeps answering (finite values, no
        exception) with changed bits — the failure mode the scrub owns."""
        service = self._solo()
        system = service.pipeline("hq")
        links = system.deployment.link_count
        rss = counter_stream(SEED, 400).normal(-55.0, 6.0, size=(4, links))
        before = service.query_batch("hq", rss, 0.0)
        version = system.database._version
        detail = corrupt_pipeline_state(service, "hq", seed=4)
        assert np.isfinite(detail["after"])
        assert detail["after"] != detail["before"]
        assert 2 <= detail["bit"] <= 51  # mantissa-only: stays finite
        assert system.database._version == version + 1  # cache dropped
        after = service.query_batch("hq", rss, 0.0)
        assert np.all(np.isfinite(after.scores))
        assert not np.array_equal(before.scores, after.scores)

    def test_corrupting_a_site_without_epochs_raises(self):
        class Empty:
            class database:
                @staticmethod
                def epochs():
                    return []

        class Stub:
            @staticmethod
            def pipeline(site):
                return Empty()

        with pytest.raises(RuntimeError, match="no epochs"):
            corrupt_pipeline_state(Stub(), "hq", seed=0)

    def test_snapshot_file_flip_is_seed_deterministic(self, tmp_path):
        payload = bytes(range(256)) * 4
        first = tmp_path / "a.snap.npz"
        second = tmp_path / "b.snap.npz"
        first.write_bytes(payload)
        second.write_bytes(payload)
        left = corrupt_snapshot_file(first, seed=3)
        # Same name + seed on the twin file: identical byte flipped.
        twin = tmp_path / "twin" / "a.snap.npz"
        twin.parent.mkdir()
        twin.write_bytes(payload)
        right = corrupt_snapshot_file(twin, seed=3)
        assert (left["offset"], left["bit"]) == (
            right["offset"],
            right["bit"],
        )
        assert first.read_bytes() == twin.read_bytes() != payload
        # The draw is keyed on the file *name* too, so sibling archives
        # corrupt at independent positions.
        other = corrupt_snapshot_file(second, seed=3)
        assert (other["offset"], other["bit"]) != (
            left["offset"],
            left["bit"],
        )

    def test_empty_snapshot_file_rejected(self, tmp_path):
        empty = tmp_path / "empty.snap.npz"
        empty.write_bytes(b"")
        with pytest.raises(ValueError, match="nothing to corrupt"):
            corrupt_snapshot_file(empty, seed=0)

    def test_schedule_can_carry_corrupt_events(self):
        schedule = FaultSchedule.generate(
            seed=6, operations=40, shards=3, faults=8, actions=("corrupt",)
        )
        assert all(event.action == "corrupt" for event in schedule.events)
        assert schedule == FaultSchedule.generate(
            seed=6, operations=40, shards=3, faults=8, actions=("corrupt",)
        )
