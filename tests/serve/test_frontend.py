"""Unit tests for the wire front-ends (HTTP + unix socket + client)."""

import json

import numpy as np
import pytest

from repro.serve import (
    HttpFrontend,
    LocalizationService,
    ServiceClient,
    UnixFrontend,
)
from repro.serve.protocol import (
    METHODS,
    ServiceUnavailable,
    dispatch,
    error_status,
)
from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.specs import get_scenario_spec

PROTOCOL = CollectionProtocol(samples_per_cell=2, empty_room_samples=5)
SITES = {"hq": "square-3m", "lab": "square-4m"}
SEED = 13


@pytest.fixture(scope="module")
def service():
    svc = LocalizationService.from_specs(SITES, protocol=PROTOCOL, seed=SEED)
    svc.warm()
    return svc


@pytest.fixture(scope="module")
def traces(service):
    out = {}
    for index, site in enumerate(service.sites()):
        scenario = service.pipeline(site).collector.scenario
        cells = list(range(0, scenario.deployment.cell_count, 3))
        out[site] = RssCollector(
            scenario, PROTOCOL, seed=90 + index
        ).live_trace(0.0, cells)
    return out


@pytest.fixture(scope="module")
def http_client(service):
    with HttpFrontend(service) as frontend:
        with ServiceClient(frontend.address) as client:
            yield client


@pytest.fixture(scope="module")
def unix_client(service, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("sock") / "serve.sock")
    with UnixFrontend(service, path) as frontend:
        with ServiceClient(frontend.address) as client:
            yield client


@pytest.fixture(scope="module", autouse=True)
def _eager_clients(http_client, unix_client):
    # The tests below select a client lazily via getfixturevalue; force
    # both module-scoped servers up-front so their listener sockets are
    # baseline state for the per-test leak sanitizer (conftest.py), not
    # mid-test arrivals flagged as leaks on whichever test runs first.
    # One throwaway request per client opens its persistent keep-alive
    # connection (and the server's accepted side) before any baseline.
    http_client.health()
    unix_client.health()
    yield


class TestProtocolDispatch:
    def test_unknown_method_is_404(self, service):
        status, body = dispatch(service, "teleport", {})
        assert status == 404
        assert body["error"] == "KeyError"

    def test_missing_params_is_400(self, service):
        status, body = dispatch(service, "query", {"site": "hq"})
        assert status == 400
        assert "missing required param" in body["message"]

    def test_non_dict_params_is_400(self, service):
        status, body = dispatch(service, "sites", [1, 2])
        assert status == 400

    def test_error_status_mapping_order(self):
        # KeyError is a LookupError subclass; the mapping must branch on
        # the subclass first.
        assert error_status(KeyError("x")) == 404
        assert error_status(LookupError("x")) == 409
        assert error_status(ValueError("x")) == 400
        assert error_status(TypeError("x")) == 400
        assert error_status(RuntimeError("x")) == 503
        assert error_status(ZeroDivisionError("x")) == 500

    def test_every_method_has_a_handler(self, service):
        for method in METHODS:
            status, _ = dispatch(service, method, {})
            assert status in (200, 400, 503), method

    def test_health_and_sites(self, service):
        assert dispatch(service, "health", {})[1]["sites"] == 2
        assert dispatch(service, "sites", {})[1]["sites"] == ["hq", "lab"]


@pytest.mark.parametrize("client_fixture", ["http_client", "unix_client"])
class TestWireIdentity:
    """The acceptance contract: wire answers == in-process answers, bits."""

    def test_query_batch_bit_identical(
        self, request, client_fixture, service, traces
    ):
        client = request.getfixturevalue(client_fixture)
        for site, trace in traces.items():
            wire = client.query_batch(
                site, trace.rss, 0.0, include_scores=True
            )
            reference = service.query_batch(site, trace.rss, 0.0)
            np.testing.assert_array_equal(wire.cells, reference.cells)
            np.testing.assert_array_equal(wire.positions, reference.positions)
            np.testing.assert_array_equal(wire.scores, reference.scores)

    def test_query_trace_bit_identical(
        self, request, client_fixture, service, traces
    ):
        client = request.getfixturevalue(client_fixture)
        wire = client.query_trace("hq", traces["hq"])
        reference = service.query_trace("hq", traces["hq"])
        np.testing.assert_array_equal(wire.cells, reference.cells)
        np.testing.assert_array_equal(wire.positions, reference.positions)

    def test_single_query_bit_identical(
        self, request, client_fixture, service, traces
    ):
        client = request.getfixturevalue(client_fixture)
        frame = traces["hq"].rss[0]
        wire = client.query("hq", frame, 0.0)
        reference = service.query("hq", frame, 0.0)
        assert wire.cell == reference.cell
        assert wire.position == (
            reference.position.x,
            reference.position.y,
        )
        assert wire.score == reference.scores[reference.cell]


@pytest.mark.parametrize("client_fixture", ["http_client", "unix_client"])
class TestWireErrorContract:
    """Remote errors arrive as the in-process exception types."""

    def test_unknown_site_keyerror(self, request, client_fixture):
        client = request.getfixturevalue(client_fixture)
        with pytest.raises(KeyError, match="unknown site"):
            client.query("nowhere", [0.0, 0.0], 0.0)

    def test_malformed_rss_valueerror(self, request, client_fixture):
        client = request.getfixturevalue(client_fixture)
        with pytest.raises(ValueError, match="shape"):
            client.query("hq", [0.0, 0.0, 0.0], 0.0)

    def test_pre_epoch_day_lookuperror(self, request, client_fixture):
        client = request.getfixturevalue(client_fixture)
        with pytest.raises(LookupError, match="no fingerprint epoch"):
            client.query_batch("hq", np.zeros((1, 2)), -5.0)

    def test_update_unknown_site_keyerror(self, request, client_fixture):
        client = request.getfixturevalue(client_fixture)
        with pytest.raises(KeyError):
            client.update("nowhere", 10.0)


class TestColdUpdateOverTheWire:
    def test_cold_update_maps_to_503_and_commission_path_works(self):
        cold_service = LocalizationService.from_specs(
            {"new-site": "square-3m"}, protocol=PROTOCOL, seed=SEED
        )
        with HttpFrontend(cold_service) as frontend:
            with ServiceClient(frontend.address) as client:
                with pytest.raises(RuntimeError, match="cold update"):
                    client.update("new-site", 5.0)
                body = client.update("new-site", 5.0, cold="commission")
                assert body["action"] == "commissioned"
                body = client.update("new-site", 35.0)
                assert body["action"] == "updated"
                assert body["savings_factor"] > 1.0
        system = cold_service.pipeline("new-site")
        assert system.database.days == [5.0, 35.0]


@pytest.mark.parametrize("client_fixture", ["http_client", "unix_client"])
class TestWireServiceSurface:
    def test_sites_and_summary(self, request, client_fixture):
        client = request.getfixturevalue(client_fixture)
        assert client.sites() == ["hq", "lab"]
        summary = client.summary()
        assert [row["site"] for row in summary] == ["hq", "lab"]
        assert all(row["materialized"] for row in summary)

    def test_site_summary_and_staleness(self, request, client_fixture):
        client = request.getfixturevalue(client_fixture)
        row = client.site_summary("hq")
        assert row["commissioned"] is True
        assert client.staleness("hq", 12.0) == 12.0

    def test_warm_and_health(self, request, client_fixture):
        client = request.getfixturevalue(client_fixture)
        assert client.warm(["hq"]) == ["hq"]
        assert client.health()["status"] == "ok"

    def test_stats_counts_served_frames(self, request, client_fixture):
        client = request.getfixturevalue(client_fixture)
        stats = client.stats()
        assert stats["frames"] >= 0 and "frames_by_site" in stats


class TestHttpSpecifics:
    def test_get_serves_readonly_methods(self, service):
        import urllib.request

        with HttpFrontend(service) as frontend:
            with urllib.request.urlopen(f"{frontend.address}/health") as resp:
                assert json.loads(resp.read())["status"] == "ok"
            url = f"{frontend.address}/staleness?site=hq&day=7"
            with urllib.request.urlopen(url) as resp:
                assert json.loads(resp.read())["staleness"] == 7.0

    def test_get_on_query_is_404(self, service):
        import urllib.error
        import urllib.request

        with HttpFrontend(service) as frontend:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{frontend.address}/query")
            assert excinfo.value.code == 404
            # HTTPError is itself an open response; close its socket so
            # the traceback kept by pytest doesn't pin it past teardown.
            excinfo.value.close()

    def test_malformed_json_body_is_400(self, service):
        import urllib.error
        import urllib.request

        with HttpFrontend(service) as frontend:
            request = urllib.request.Request(
                f"{frontend.address}/sites",
                data=b"{not json",
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 400
            excinfo.value.close()

    def test_ephemeral_port_is_reported(self, service):
        with HttpFrontend(service) as frontend:
            assert frontend.port > 0
            assert frontend.address.startswith("http://127.0.0.1:")

    def test_client_reconnects_after_server_restart(self, service, traces):
        frontend = HttpFrontend(service).start()
        client = ServiceClient(frontend.address)
        assert client.sites() == ["hq", "lab"]
        frontend.close()
        revived = HttpFrontend(service, port=frontend.port).start()
        try:
            # The kept-alive connection is stale; one retry must recover.
            assert client.sites() == ["hq", "lab"]
        finally:
            client.close()
            revived.close()

    def test_non_idempotent_calls_are_never_resent(self):
        """Regression: update/commission must not be transparently
        re-sent over a failed connection — the first copy may have
        executed, and a duplicate would append a second epoch. Counted
        against a server that drops every connection: idempotent methods
        get their full retry budget (retries + 1 attempts), non-idempotent
        exactly one attempt and the raw transport error."""
        import socket
        import threading

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        port = listener.getsockname()[1]
        attempts = []
        stop = threading.Event()

        def drop_everything():
            while not stop.is_set():
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return
                attempts.append(1)
                conn.close()

        thread = threading.Thread(target=drop_everything, daemon=True)
        thread.start()
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{port}",
                timeout=5.0,
                retries=2,
                backoff=0.01,
            )
            with pytest.raises((ConnectionError, OSError)):
                client.update("hq", 77.0)
            assert len(attempts) == 1  # non-idempotent: one try only
            with pytest.raises(ServiceUnavailable) as excinfo:
                client.sites()
            # idempotent: original + retries re-sends, each on a fresh
            # connection, then a clear exhaustion error chaining the
            # last transport failure.
            assert len(attempts) == 1 + 3
            assert "3 attempt(s)" in str(excinfo.value)
            assert excinfo.value.__cause__ is not None
            client.close()
        finally:
            stop.set()
            listener.close()
            thread.join(timeout=5.0)

    def test_retries_zero_makes_idempotent_single_attempt(self):
        """The retry budget is honest: retries=0 means one attempt even
        for idempotent methods (still wrapped as ServiceUnavailable)."""
        import socket
        import threading

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        port = listener.getsockname()[1]
        attempts = []
        stop = threading.Event()

        def drop_everything():
            while not stop.is_set():
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return
                attempts.append(1)
                conn.close()

        thread = threading.Thread(target=drop_everything, daemon=True)
        thread.start()
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{port}", timeout=5.0, retries=0
            )
            with pytest.raises(ServiceUnavailable):
                client.sites()
            assert len(attempts) == 1
            client.close()
        finally:
            stop.set()
            listener.close()
            thread.join(timeout=5.0)

    def test_non_object_params_value_is_400(self, service):
        import urllib.error
        import urllib.request

        with HttpFrontend(service) as frontend:
            request = urllib.request.Request(
                f"{frontend.address}/sites",
                data=json.dumps({"params": "abc"}).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 400
            body = json.loads(excinfo.value.read())
            assert "params must be a JSON object" in body["message"]
            excinfo.value.close()


class TestKeepAliveDesyncRecovery:
    """Satellite (PR-8): a server that drops the connection mid-response
    desyncs the client's keep-alive stream. The transport must poison
    its cached connection, re-dial lazily, and the idempotent retry
    must succeed — exactly two dials, no error to the caller."""

    @staticmethod
    def _read_http_request(conn):
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = conn.recv(4096)
            if not chunk:
                return None
            data += chunk
        head, _, body = data.partition(b"\r\n\r\n")
        length = 0
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length:"):
                length = int(line.split(b":", 1)[1])
        while len(body) < length:
            body += conn.recv(4096)
        return body

    def test_truncated_keepalive_response_recovers(self):
        import socket
        import threading

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        port = listener.getsockname()[1]
        dials = []
        payload = b'{"sites": ["hq"]}'
        full = (
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
            b"Content-Length: %d\r\n\r\n%s" % (len(payload), payload)
        )

        def serve():
            # Connection 1: one good keep-alive response, then a
            # truncated one (Content-Length promises 100 bytes, the
            # connection dies after 5) — the classic mid-response drop.
            conn, _ = listener.accept()
            dials.append(1)
            self._read_http_request(conn)
            conn.sendall(full)
            self._read_http_request(conn)
            conn.sendall(b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\n{\"si")
            conn.shutdown(socket.SHUT_RDWR)
            conn.close()
            # Connection 2: behave.
            conn, _ = listener.accept()
            dials.append(1)
            self._read_http_request(conn)
            conn.sendall(full)
            self._read_http_request(conn)  # wait for client close
            conn.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{port}",
                timeout=5.0,
                retries=2,
                backoff=0.01,
            )
            assert client.sites() == ["hq"]
            # The truncated response surfaces as http.client.
            # IncompleteRead (an HTTPException): retryable for an
            # idempotent method, and the poisoned connection re-dials.
            assert client.sites() == ["hq"]
            assert len(dials) == 2
            client.close()
        finally:
            listener.close()
            thread.join(timeout=5.0)


class TestRequestBodyCaps:
    """Satellite (PR-8): both threaded front-ends refuse oversized
    request bodies with a 400 instead of buffering them."""

    def test_http_oversized_body_is_400(self, service):
        import urllib.error
        import urllib.request

        with HttpFrontend(service, max_request_bytes=256) as frontend:
            request = urllib.request.Request(
                f"{frontend.address}/sites",
                data=b'{"params": {"pad": "' + b"x" * 1024 + b'"}}',
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 400
            body = json.loads(excinfo.value.read())
            assert "exceeds" in body["message"]
            excinfo.value.close()

    def test_http_within_cap_still_served(self, service):
        with HttpFrontend(service, max_request_bytes=4096) as frontend:
            with ServiceClient(frontend.address) as client:
                assert client.sites() == ["hq", "lab"]

    def test_unix_oversized_line_is_400_and_severed(self, service, tmp_path):
        import socket

        path = str(tmp_path / "capped.sock")
        with UnixFrontend(service, path, max_request_bytes=256):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(5.0)
            sock.connect(path)
            try:
                sock.sendall(
                    b'{"method": "sites", "params": {"pad": "'
                    + b"x" * 1024
                    + b'"}}\n'
                )
                reader = sock.makefile("rb")
                response = json.loads(reader.readline())
                assert response["status"] == 400
                assert "exceeds" in response["body"]["message"]
                assert reader.readline() == b""  # severed
            finally:
                sock.close()


class TestClientAddresses:
    def test_bad_scheme_rejected(self):
        with pytest.raises(ValueError, match="unsupported address"):
            ServiceClient("ftp://127.0.0.1:1")

    def test_http_without_port_rejected(self):
        with pytest.raises(ValueError, match="http"):
            ServiceClient("http://localhost")

    def test_empty_unix_path_rejected(self):
        with pytest.raises(ValueError, match="unix"):
            ServiceClient("unix://")


class TestConcurrentRefresh:
    """Queries keep answering while updates append epochs (the
    non-blocking contract the background scheduler relies on)."""

    def test_queries_survive_concurrent_updates(self):
        import threading

        svc = LocalizationService.from_specs(
            {"hq": get_scenario_spec("square-3m")},
            protocol=PROTOCOL,
            seed=SEED,
        )
        svc.warm()
        scenario = svc.pipeline("hq").collector.scenario
        trace = RssCollector(scenario, PROTOCOL, seed=77).live_trace(
            0.0, [0, 1, 2]
        )
        stop = threading.Event()
        errors = []

        def refresher():
            day = 0.0
            while not stop.is_set():
                day += 1.0
                try:
                    svc.update("hq", day)
                except Exception as error:  # pragma: no cover
                    errors.append(error)
                    return

        thread = threading.Thread(target=refresher, daemon=True)
        thread.start()
        try:
            for _ in range(200):
                result = svc.query_batch("hq", trace.rss, 0.0)
                assert result.frame_count == 3
        finally:
            stop.set()
            thread.join(timeout=10.0)
        assert not errors


class _FailingTransport:
    """Every attempt raises: isolates the client's retry policy."""

    def __init__(self, error=ConnectionError("injected")):
        self.error = error
        self.calls = 0

    def call(self, method, params):
        self.calls += 1
        raise self.error

    def close(self):
        pass


class _CannedTransport:
    """Answers every call with one fixed (status, body) pair."""

    def __init__(self, body, status=200):
        self.status, self.body = status, body

    def call(self, method, params):
        return self.status, self.body

    def close(self):
        pass


def _sleep_recorder(monkeypatch):
    import repro.serve.frontend as frontend_module

    sleeps = []
    monkeypatch.setattr(frontend_module.time, "sleep", sleeps.append)
    return sleeps


class TestRetryJitter:
    """The backoff schedule is exact under a seed — herd pacing is
    testable down to the float, while unseeded clients de-synchronize."""

    def _client(self, **kwargs):
        client = ServiceClient("http://127.0.0.1:9", **kwargs)
        client._transport = _FailingTransport()
        return client

    def _expected_schedule(self, seed, retries, backoff, max_backoff):
        import random

        draws = random.Random(seed)
        out = []
        for attempt in range(1, retries + 1):
            delay = min(backoff * (2 ** (attempt - 1)), max_backoff)
            out.append(delay * (0.5 + draws.random() / 2))
        return out

    def test_seeded_schedule_is_exact_and_reproducible(self, monkeypatch):
        sleeps = _sleep_recorder(monkeypatch)
        client = self._client(
            retries=3, backoff=0.05, max_backoff=0.08, jitter_seed=42
        )
        with pytest.raises(ServiceUnavailable):
            client.call("health")
        assert client._transport.calls == 4  # retries + 1
        assert sleeps == self._expected_schedule(42, 3, 0.05, 0.08)
        # Exponential growth up to the cap: 0.05, 0.08, 0.08 nominal.
        assert sleeps[1] > sleeps[0] * 0.5  # cap reached by retry 2
        # A second client with the same seed replays the same wall-clock
        # schedule — "deterministic retry timing" is a real contract.
        replay = _sleep_recorder(monkeypatch)
        again = self._client(
            retries=3, backoff=0.05, max_backoff=0.08, jitter_seed=42
        )
        with pytest.raises(ServiceUnavailable):
            again.call("health")
        assert replay == sleeps

    def test_different_seeds_de_synchronize(self, monkeypatch):
        schedules = []
        for seed in (1, 2):
            sleeps = _sleep_recorder(monkeypatch)
            client = self._client(retries=2, jitter_seed=seed)
            with pytest.raises(ServiceUnavailable):
                client.call("health")
            schedules.append(list(sleeps))
        assert schedules[0] != schedules[1]

    def test_every_delay_is_within_the_jitter_band(self, monkeypatch):
        sleeps = _sleep_recorder(monkeypatch)
        client = self._client(retries=4, backoff=0.1, max_backoff=0.3)
        with pytest.raises(ServiceUnavailable):
            client.call("health")
        for attempt, slept in enumerate(sleeps, start=1):
            nominal = min(0.1 * (2 ** (attempt - 1)), 0.3)
            assert nominal * 0.5 <= slept <= nominal

    def test_non_idempotent_methods_never_retry(self, monkeypatch):
        sleeps = _sleep_recorder(monkeypatch)
        client = self._client(retries=5, jitter_seed=0)
        with pytest.raises(ConnectionError, match="injected"):
            client.call("update", {"site": "hq", "day": 1.0})
        assert client._transport.calls == 1
        assert sleeps == []

    def test_timeouts_are_terminal_for_every_method(self, monkeypatch):
        sleeps = _sleep_recorder(monkeypatch)
        client = self._client(retries=5, jitter_seed=0)
        client._transport = _FailingTransport(TimeoutError("slow"))
        with pytest.raises(TimeoutError):
            client.call("health")
        assert client._transport.calls == 1
        assert sleeps == []

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            ServiceClient("http://127.0.0.1:9", retries=-1)


class TestStaleMarker:
    """The degraded-mode ``stale`` wire marker parses into the remote
    result types — and its absence means fresh."""

    def test_query_parses_stale_flag(self):
        client = ServiceClient("http://127.0.0.1:9")
        client._transport = _CannedTransport(
            {"cell": 3, "position": [1.5, 2.5], "score": -0.25, "stale": True}
        )
        result = client.query("hq", [0.0, 0.0], 0.0)
        assert result.stale is True
        assert result.cell == 3 and result.score == -0.25

    def test_batch_parses_stale_flag_and_defaults_false(self):
        body = {
            "cells": [1, 2],
            "positions": [[0.0, 0.0], [1.0, 1.0]],
            "scores": [-0.1, -0.2],
        }
        client = ServiceClient("http://127.0.0.1:9")
        client._transport = _CannedTransport(dict(body, stale=True))
        stale = client.query_batch("hq", np.zeros((2, 2)), 0.0)
        assert stale.stale is True and stale.frame_count == 2
        client._transport = _CannedTransport(body)
        fresh = client.query_batch("hq", np.zeros((2, 2)), 0.0)
        assert fresh.stale is False


class TestDriftAndScrubOverTheWire:
    def test_drift_reading_round_trips_bit_exactly(self, service, http_client):
        expected = service.drift("hq", 5.0, frames=8)
        reading = http_client.drift("hq", 5.0, frames=8)
        assert reading == expected  # JSON float64 round-trip is exact

    def test_drift_for_unknown_site_maps_to_keyerror(self, http_client):
        with pytest.raises(KeyError, match="unknown site"):
            http_client.drift("nowhere", 0.0)

    def test_scrub_on_unsharded_backend_is_a_runtime_error(self, http_client):
        with pytest.raises(RuntimeError, match="not a sharded service"):
            http_client.scrub()
