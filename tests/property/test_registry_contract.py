"""Property test for the scenario-registry error contract.

The serving layer validates site names by calling
:func:`repro.sim.specs.get_scenario_spec` and translating its documented
failures; that only works if the registry never leaks anything *but*
``KeyError`` / ``ValueError`` — for any string whatsoever. The PR-4 bug
("square-infm" → ``OverflowError`` from deep inside geometry construction)
is exactly the kind of leak this pins down.
"""

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.sim.specs import ScenarioSpec, get_scenario_spec


@given(name=st.text(max_size=40))
@example(name="square-infm")
@example(name="square-+infm")
@example(name="square--infm")
@example(name="square-nanm")
@example(name="square-1e400m")
@example(name="square-1e-400m")
@example(name="square-m")
@example(name="square-0m")
@example(name="square--0.0m")
@example(name="square-_m")
@example(name="paper")
@settings(max_examples=300, deadline=None)
def test_get_scenario_spec_raises_only_documented_errors(name):
    try:
        spec = get_scenario_spec(name)
    except (KeyError, ValueError):
        return
    assert isinstance(spec, ScenarioSpec)


@given(
    edge=st.floats(min_value=1.0, max_value=1e6, allow_nan=False,
                   allow_infinity=False),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=50, deadline=None)
def test_finite_square_edges_resolve(edge, seed):
    spec = get_scenario_spec(f"square-{edge}m", seed=seed)
    assert spec.geometry.width_m == spec.geometry.depth_m
    assert spec.geometry.link_count >= 2
    assert spec.seed == seed
