"""Property tests: shard routing is a pure, minimally-moving function.

The shard router and its workers never exchange an assignment table —
they independently evaluate :func:`repro.serve.shard.shard_for_site` and
must always agree. That only works if routing is a *pure function of the
site name and the shard count*, and re-sharding is only operable if
growing the fleet moves the bare minimum of sites. Hypothesis pins both,
for arbitrary unicode site names and shard counts.
"""

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.serve.shard import replica_shards, shard_for_site

sites = st.text(max_size=60)
counts = st.integers(min_value=1, max_value=64)
replica_counts = st.integers(min_value=1, max_value=5)


@given(site=sites, count=counts)
@example(site="", count=1)
@example(site="hq", count=16)
@settings(max_examples=300, deadline=None)
def test_shard_in_range_and_deterministic(site, count):
    shard = shard_for_site(site, count)
    assert 0 <= shard < count
    # Pure: recomputing (any process, any time) gives the same shard.
    assert shard == shard_for_site(site, count)


@given(site=sites, small=counts, growth=st.integers(min_value=0, max_value=64))
@settings(max_examples=300, deadline=None)
def test_resharding_moves_only_to_new_shards(site, small, growth):
    """Jump-consistent-hash property: growing ``n -> m`` shards either
    keeps a site where it was, or moves it to one of the *added* shards
    (index >= n) — never between surviving shards. Equivalently: every
    site maps to exactly one shard for any count, and the set of moved
    sites under a re-shard is exactly the set routed to new workers."""
    large = small + growth
    before = shard_for_site(site, small)
    after = shard_for_site(site, large)
    if after < small:
        assert after == before
    else:
        assert after != before  # it landed on a shard that did not exist


@given(count=st.integers(min_value=2, max_value=16))
@settings(max_examples=30, deadline=None)
def test_routing_spreads_a_fleet(count):
    """Sanity (not a hash-quality proof): a 256-site fleet never
    collapses onto a single shard."""
    names = [f"site-{index}" for index in range(256)]
    used = {shard_for_site(name, count) for name in names}
    assert len(used) > 1


def test_single_shard_owns_everything():
    for name in ("", "hq", "warehouse-7", "日本語サイト"):
        assert shard_for_site(name, 1) == 0


@given(site=sites, count=counts, replicas=replica_counts)
@example(site="", count=1, replicas=3)
@example(site="hq", count=3, replicas=2)
@settings(max_examples=300, deadline=None)
def test_replica_placement_distinct_primary_first_deterministic(
    site, count, replicas
):
    """R-way placement: exactly ``min(R, count)`` *distinct* shards, the
    primary (``shard_for_site``) first, all in range, and pure — the
    router and a monitoring process recomputing it always agree."""
    placement = replica_shards(site, count, replicas)
    assert len(placement) == min(replicas, count)
    assert len(set(placement)) == len(placement)
    assert placement[0] == shard_for_site(site, count)
    assert all(0 <= index < count for index in placement)
    assert placement == replica_shards(site, count, replicas)


@given(site=sites, count=counts)
@settings(max_examples=300, deadline=None)
def test_replicas_one_is_exactly_the_unreplicated_layout(site, count):
    assert replica_shards(site, count, 1) == (shard_for_site(site, count),)


@given(
    site=sites,
    small=st.integers(min_value=1, max_value=32),
    growth=st.integers(min_value=0, max_value=32),
    replicas=replica_counts,
)
@settings(max_examples=300, deadline=None)
def test_replica_resharding_is_not_wholesale(site, small, growth, replicas):
    """Under a grow, the *primary* keeps the jump-hash minimal-movement
    guarantee, and the replica set never moves wholesale: shards kept by
    the primary probe stay, and any shard that joins the set is either a
    brand-new index or admitted by a probe whose own jump hash moved."""
    large = small + growth
    before = replica_shards(site, small, replicas)
    after = replica_shards(site, large, replicas)
    # Primary minimal movement (inherited from shard_for_site).
    if after[0] < small:
        assert after[0] == before[0]
    else:
        assert after[0] != before[0]


@given(count=st.integers(min_value=2, max_value=16))
@settings(max_examples=30, deadline=None)
def test_replica_sets_spread_a_fleet(count):
    """With R = 2 over a 256-site fleet, secondary load does not collapse
    onto one shard."""
    names = [f"site-{index}" for index in range(256)]
    secondaries = {replica_shards(name, count, 2)[1] for name in names}
    assert len(secondaries) > 1
