"""Property tests: shard routing is a pure, minimally-moving function.

The shard router and its workers never exchange an assignment table —
they independently evaluate :func:`repro.serve.shard.shard_for_site` and
must always agree. That only works if routing is a *pure function of the
site name and the shard count*, and re-sharding is only operable if
growing the fleet moves the bare minimum of sites. Hypothesis pins both,
for arbitrary unicode site names and shard counts.
"""

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.serve.shard import shard_for_site

sites = st.text(max_size=60)
counts = st.integers(min_value=1, max_value=64)


@given(site=sites, count=counts)
@example(site="", count=1)
@example(site="hq", count=16)
@settings(max_examples=300, deadline=None)
def test_shard_in_range_and_deterministic(site, count):
    shard = shard_for_site(site, count)
    assert 0 <= shard < count
    # Pure: recomputing (any process, any time) gives the same shard.
    assert shard == shard_for_site(site, count)


@given(site=sites, small=counts, growth=st.integers(min_value=0, max_value=64))
@settings(max_examples=300, deadline=None)
def test_resharding_moves_only_to_new_shards(site, small, growth):
    """Jump-consistent-hash property: growing ``n -> m`` shards either
    keeps a site where it was, or moves it to one of the *added* shards
    (index >= n) — never between surviving shards. Equivalently: every
    site maps to exactly one shard for any count, and the set of moved
    sites under a re-shard is exactly the set routed to new workers."""
    large = small + growth
    before = shard_for_site(site, small)
    after = shard_for_site(site, large)
    if after < small:
        assert after == before
    else:
        assert after != before  # it landed on a shard that did not exist


@given(count=st.integers(min_value=2, max_value=16))
@settings(max_examples=30, deadline=None)
def test_routing_spreads_a_fleet(count):
    """Sanity (not a hash-quality proof): a 256-site fleet never
    collapses onto a single shard."""
    names = [f"site-{index}" for index in range(256)]
    used = {shard_for_site(name, count) for name in names}
    assert len(used) > 1


def test_single_shard_owns_everything():
    for name in ("", "hq", "warehouse-7", "日本語サイト"):
        assert shard_for_site(name, 1) == 0
