"""Property-based tests for the extension modules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detection import PresenceDetector
from repro.core.multi_target import pairing_error
from repro.sim.geometry import Point, Room
from repro.sim.interference import BurstyInterferenceModel
from repro.sim.mobility import RandomWalkModel, RandomWaypointModel, ScriptedRoute


class TestDetectorProperties:
    @given(st.integers(0, 10_000), st.floats(1.0, 8.0))
    @settings(max_examples=30, deadline=None)
    def test_threshold_above_calibration_mean(self, seed, k):
        rng = np.random.default_rng(seed)
        frames = rng.normal(-50.0, 1.0, size=(20, 6))
        detector = PresenceDetector(frames, k=k)
        scores = [detector.score(f) for f in frames]
        assert detector.threshold >= np.mean(scores) - 1e-9

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_score_nonnegative_and_zero_at_reference(self, seed):
        rng = np.random.default_rng(seed)
        frames = rng.normal(-50.0, 1.0, size=(10, 4))
        detector = PresenceDetector(frames)
        assert detector.score(detector.empty_rss) == pytest.approx(0.0)
        assert detector.score(frames[0]) >= 0.0

    @given(st.integers(0, 10_000), st.floats(0.5, 20.0))
    @settings(max_examples=30, deadline=None)
    def test_score_monotone_in_perturbation(self, seed, magnitude):
        rng = np.random.default_rng(seed)
        frames = rng.normal(-50.0, 0.5, size=(10, 4))
        detector = PresenceDetector(frames)
        base = detector.empty_rss
        small = detector.score(base - magnitude / 2)
        large = detector.score(base - magnitude)
        assert large >= small


class TestMobilityProperties:
    @given(st.integers(0, 10_000), st.integers(1, 80))
    @settings(max_examples=25, deadline=None)
    def test_waypoint_positions_in_bounds(self, seed, frames):
        room = Room(6.0, 4.0)
        model = RandomWaypointModel(room, margin_m=0.2, seed=seed)
        for p in model.positions(frames):
            assert room.contains(p)

    @given(st.integers(0, 10_000), st.integers(1, 80))
    @settings(max_examples=25, deadline=None)
    def test_random_walk_in_bounds(self, seed, frames):
        room = Room(5.0, 5.0)
        model = RandomWalkModel(room, seed=seed)
        for p in model.positions(frames):
            assert room.contains(p)

    @given(st.integers(1, 60), st.floats(0.1, 2.0))
    @settings(max_examples=25, deadline=None)
    def test_scripted_step_bound(self, frames, speed):
        route = ScriptedRoute(
            [Point(0, 0), Point(3, 0), Point(3, 3)], speed_mps=speed
        )
        positions = route.positions(frames)
        for a, b in zip(positions, positions[1:]):
            assert a.distance_to(b) <= speed + 1e-9

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_prefix_consistency(self, seed):
        """Asking for fewer frames yields a prefix of the longer trajectory."""
        room = Room(6.0, 4.0)
        short = RandomWaypointModel(room, seed=seed).positions(10)
        long = RandomWaypointModel(room, seed=seed).positions(25)
        assert [(p.x, p.y) for p in short] == [(p.x, p.y) for p in long[:10]]


class TestInterferenceProperties:
    @given(
        st.integers(0, 10_000),
        st.floats(0.0, 1.0),
        st.floats(0.0, 5.0),
        st.floats(0.0, 10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_offsets_within_magnitude_band(self, seed, prob, low, extra):
        model = BurstyInterferenceModel(
            links=6,
            burst_probability=prob,
            magnitude_db=(low, low + extra),
            seed=seed,
        )
        offsets = model.sample_offsets()
        nonzero = offsets[offsets != 0.0]
        if nonzero.size:
            assert np.all(np.abs(nonzero) >= low - 1e-12)
            assert np.all(np.abs(nonzero) <= low + extra + 1e-12)


class TestPairingErrorProperties:
    coords = st.floats(-10.0, 10.0)

    @given(coords, coords, coords, coords)
    @settings(max_examples=40, deadline=None)
    def test_symmetry_under_swap(self, ax, ay, bx, by):
        estimated = [Point(ax, ay), Point(bx, by)]
        truth = [Point(1.0, 1.0), Point(-1.0, 2.0)]
        assert pairing_error(estimated, truth) == pytest.approx(
            pairing_error(list(reversed(estimated)), truth)
        )

    @given(coords, coords, coords, coords)
    @settings(max_examples=40, deadline=None)
    def test_perfect_match_is_zero(self, ax, ay, bx, by):
        points = [Point(ax, ay), Point(bx, by)]
        assert pairing_error(points, list(points)) == pytest.approx(0.0)

    @given(coords, coords, coords, coords)
    @settings(max_examples=40, deadline=None)
    def test_nonnegative(self, ax, ay, bx, by):
        estimated = [Point(ax, ay), Point(bx, by)]
        truth = [Point(0.0, 0.0), Point(2.0, 2.0)]
        assert pairing_error(estimated, truth) >= 0.0
