"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.completion import mean_fill
from repro.core.fingerprint import FingerprintMatrix
from repro.core.loli_ir import LoliIrConfig, LoliIrProblem, LoliIrSolver
from repro.core.lrr import LrrConfig, fit_lrr
from repro.core.reference import select_references_pivoted_qr
from repro.eval.metrics import cdf_points, percentile
from repro.sim.geometry import Grid, Link, Point, Room
from repro.util.linalg import (
    conjugate_gradient,
    first_difference_matrix,
    soft_threshold,
    svd_shrink,
)

finite_floats = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)


def small_matrices(min_rows=2, max_rows=6, min_cols=2, max_cols=10):
    return st.integers(min_rows, max_rows).flatmap(
        lambda m: st.integers(min_cols, max_cols).flatmap(
            lambda n: arrays(np.float64, (m, n), elements=finite_floats)
        )
    )


class TestLinalgProperties:
    @given(small_matrices(), st.floats(0.0, 100.0))
    @settings(max_examples=50, deadline=None)
    def test_soft_threshold_shrinks_magnitude(self, matrix, threshold):
        out = soft_threshold(matrix, threshold)
        assert np.all(np.abs(out) <= np.abs(matrix) + 1e-12)

    @given(small_matrices(), st.floats(0.01, 50.0))
    @settings(max_examples=30, deadline=None)
    def test_svd_shrink_reduces_nuclear_norm(self, matrix, threshold):
        shrunk, _ = svd_shrink(matrix, threshold)
        before = np.linalg.svd(matrix, compute_uv=False).sum()
        after = np.linalg.svd(shrunk, compute_uv=False).sum()
        assert after <= before + 1e-8

    @given(st.integers(2, 20))
    @settings(max_examples=20, deadline=None)
    def test_first_difference_annihilates_constants(self, size):
        d = first_difference_matrix(size)
        np.testing.assert_allclose(d @ np.full(size, 2.5), 0.0, atol=1e-12)

    @given(st.integers(2, 10), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_cg_solves_random_spd(self, size, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((size, size))
        spd = a @ a.T + size * np.eye(size)
        x = rng.standard_normal(size)
        result = conjugate_gradient(lambda v: spd @ v, spd @ x, tol=1e-12,
                                    max_iter=500)
        np.testing.assert_allclose(result.solution, x, atol=1e-6)


class TestGeometryProperties:
    @given(
        st.floats(0.1, 50.0),
        st.floats(0.1, 50.0),
        st.floats(-100.0, 100.0),
        st.floats(-100.0, 100.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_excess_path_length_nonnegative(self, w, d, px, py):
        link = Link(index=0, tx=Point(0, 0), rx=Point(w, d))
        assert link.excess_path_length(Point(px, py)) >= 0.0

    @given(st.floats(1.0, 30.0), st.floats(1.0, 30.0), st.floats(0.2, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_grid_roundtrip(self, width, depth, cell):
        room = Room(width, depth)
        if cell > min(width, depth):
            return
        grid = Grid(room, cell)
        for index in range(0, grid.cell_count, max(1, grid.cell_count // 7)):
            assert grid.cell_at(grid.center_of(index)) == index

    @given(
        st.floats(-10.0, 10.0),
        st.floats(-10.0, 10.0),
        st.floats(-10.0, 10.0),
        st.floats(-10.0, 10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_distance_symmetry(self, ax, ay, bx, by):
        a, b = Point(ax, ay), Point(bx, by)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))
        assert a.distance_to(a) == 0.0


class TestMetricsProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_cdf_is_monotone_and_ends_at_one(self, values):
        _, fs = cdf_points(values)
        assert np.all(np.diff(fs) >= -1e-12)
        assert fs[-1] == pytest.approx(1.0)

    @given(
        st.lists(finite_floats, min_size=1, max_size=50),
        st.floats(0.0, 100.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_percentile_within_sample_range(self, values, q):
        p = percentile(values, q)
        assert min(values) - 1e-9 <= p <= max(values) + 1e-9


class TestCompletionProperties:
    @given(small_matrices(), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_mean_fill_keeps_observed(self, matrix, seed):
        rng = np.random.default_rng(seed)
        mask = rng.random(matrix.shape) < 0.5
        filled = mean_fill(matrix, mask)
        np.testing.assert_array_equal(filled[mask], matrix[mask])
        assert np.all(np.isfinite(filled))


class TestLrrProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_transfer_exactness_on_rank_limited_data(self, seed):
        """For any rank-r matrix and r spanning references, LRR transfer
        under arbitrary per-link offsets is exact (the paper's property ii
        in its idealized form)."""
        rng = np.random.default_rng(seed)
        links, cells, rank = 6, 15, 3
        matrix = rng.normal(size=(links, rank)) @ rng.normal(size=(rank, cells))
        refs = select_references_pivoted_qr(matrix, rank + 1).cells
        model = fit_lrr(matrix, refs, LrrConfig(ridge=1e-10))
        drift = rng.normal(0, 3, size=(links, 1))
        predicted = model.predict((matrix + drift)[:, refs])
        np.testing.assert_allclose(predicted, matrix + drift, atol=1e-4)


class TestLoliIrProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_objective_never_increases(self, seed):
        rng = np.random.default_rng(seed)
        links, cells, rank = 6, 12, 2
        truth = rng.normal(size=(links, rank)) @ rng.normal(size=(rank, cells))
        mask = rng.random((links, cells)) < 0.6
        if not mask.any():
            return
        problem = LoliIrProblem(
            observed_mask=mask,
            observed_values=np.where(mask, truth, 0.0),
            lrr_target=truth + 0.1 * rng.standard_normal(truth.shape),
        )
        result = LoliIrSolver(
            LoliIrConfig(rank=rank, outer_iterations=8)
        ).solve(problem)
        history = result.objective_history
        assert np.all(
            np.diff(history) <= 1e-6 * np.maximum(1.0, np.abs(history[:-1]))
        )


class TestFingerprintProperties:
    @given(small_matrices(min_rows=2, max_rows=5, min_cols=2, max_cols=8))
    @settings(max_examples=30, deadline=None)
    def test_dips_roundtrip(self, values):
        empty = values.max(axis=1) + 1.0
        fp = FingerprintMatrix(values=values, empty_rss=empty)
        reconstructed = empty[:, None] - fp.dips()
        np.testing.assert_allclose(reconstructed, values, atol=1e-9)
