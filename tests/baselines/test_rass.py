"""Unit tests for the RASS dynamic-fingerprint baseline."""

import numpy as np
import pytest

from repro.baselines.rass import RassConfig, RassLocalizer
from repro.core.fingerprint import FingerprintMatrix
from repro.sim.collector import RssCollector
from repro.sim.scenario import build_paper_scenario


@pytest.fixture(scope="module")
def scenario():
    return build_paper_scenario(seed=600)


@pytest.fixture(scope="module")
def fingerprint(scenario):
    return FingerprintMatrix(
        values=scenario.true_fingerprint_matrix(0.0),
        empty_rss=scenario.true_rss(0.0),
        day=0.0,
    )


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"affected_threshold_db": 0.0},
        {"k": 0},
        {"geometric_weight": 1.5},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            RassConfig(**kwargs)


class TestConstruction:
    def test_cell_count_mismatch_rejected(self, scenario, fingerprint):
        truncated = FingerprintMatrix(
            values=fingerprint.values[:, :50], empty_rss=fingerprint.empty_rss
        )
        with pytest.raises(ValueError, match="cells"):
            RassLocalizer(scenario.deployment, truncated)

    def test_live_empty_shape_validated(self, scenario, fingerprint):
        with pytest.raises(ValueError, match="live_empty_rss"):
            RassLocalizer(
                scenario.deployment, fingerprint, live_empty_rss=np.zeros(3)
            )


class TestDynamics:
    def test_live_dynamics_sign(self, scenario, fingerprint):
        rass = RassLocalizer(scenario.deployment, fingerprint)
        live = scenario.true_rss(0.0, cell=40)
        dynamics = rass.live_dynamics(live)
        # The target attenuates at least one link → positive dynamics there.
        assert dynamics.max() > 1.0

    def test_live_vector_shape_validated(self, scenario, fingerprint):
        rass = RassLocalizer(scenario.deployment, fingerprint)
        with pytest.raises(ValueError, match="live vector"):
            rass.live_dynamics(np.zeros(4))


class TestLocate:
    def test_exact_fingerprint_frames_localize_well(self, scenario, fingerprint):
        rass = RassLocalizer(scenario.deployment, fingerprint)
        grid = scenario.deployment.grid
        errors = []
        for cell in range(0, 96, 5):
            estimate = rass.locate(scenario.true_rss(0.0, cell=cell))
            errors.append(estimate.distance_to(grid.center_of(cell)))
        assert np.median(errors) < 1.0

    def test_estimates_inside_room(self, scenario, fingerprint):
        rass = RassLocalizer(scenario.deployment, fingerprint)
        collector = RssCollector(scenario, seed=1)
        trace = collector.live_trace(0.0, list(range(0, 96, 9)))
        for frame in trace.rss:
            assert scenario.deployment.room.contains(rass.locate(frame))

    def test_no_geometric_blend(self, scenario, fingerprint):
        config = RassConfig(geometric_weight=0.0)
        rass = RassLocalizer(scenario.deployment, fingerprint, config=config)
        estimate = rass.locate(scenario.true_rss(0.0, cell=40))
        assert scenario.deployment.room.contains(estimate)

    def test_reconstructed_beats_stale_at_long_gap(self, scenario):
        """The poster's plug-in experiment: RASS with reconstructed (fresh)
        fingerprints beats RASS with the stale day-0 matrix at 90 days."""
        day = 90.0
        stale = FingerprintMatrix(
            values=scenario.true_fingerprint_matrix(0.0),
            empty_rss=scenario.true_rss(0.0),
            day=0.0,
        )
        fresh = FingerprintMatrix(
            values=scenario.true_fingerprint_matrix(day),
            empty_rss=scenario.true_rss(day),
            day=day,
        )
        collector = RssCollector(scenario, seed=2)
        trace = collector.live_trace(day, [c for c in range(0, 96, 3)])

        rass_stale = RassLocalizer(scenario.deployment, stale)
        rass_fresh = RassLocalizer(
            scenario.deployment, fresh, live_empty_rss=fresh.empty_rss
        )
        err_stale = np.median(rass_stale.errors(trace))
        err_fresh = np.median(rass_fresh.errors(trace))
        assert err_fresh < err_stale

    def test_errors_interface(self, scenario, fingerprint):
        rass = RassLocalizer(scenario.deployment, fingerprint)
        collector = RssCollector(scenario, seed=3)
        trace = collector.live_trace(0.0, [10, 20, 30])
        errors = rass.errors(trace)
        assert errors.shape == (3,)
        assert np.all(errors >= 0)

    def test_errors_require_ground_truth(self, scenario, fingerprint):
        from repro.sim.trace import LiveTrace

        rass = RassLocalizer(scenario.deployment, fingerprint)
        bare = LiveTrace(day=0.0, rss=np.zeros((2, 10)))
        with pytest.raises(ValueError, match="ground-truth"):
            rass.errors(bare)
