"""Unit tests for the Radio Tomographic Imaging baseline."""

import numpy as np
import pytest

from repro.baselines.rti import RtiConfig, RtiLocalizer
from repro.sim.collector import RssCollector
from repro.sim.geometry import Point
from repro.sim.scenario import build_paper_scenario


@pytest.fixture(scope="module")
def scenario():
    return build_paper_scenario(seed=500)


@pytest.fixture(scope="module")
def rti(scenario):
    calibration = scenario.true_rss(0.0)
    return RtiLocalizer(scenario.deployment, calibration, RtiConfig())


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"lambda_m": 0.0},
        {"regularization": -1.0},
        {"peak_fraction": 0.0},
        {"peak_fraction": 1.5},
        {"min_change_db": -0.1},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            RtiConfig(**kwargs)


class TestImage:
    def test_image_shape(self, rti, scenario):
        image = rti.attenuation_image(scenario.true_rss(0.0, cell=40))
        assert image.shape == (scenario.deployment.cell_count,)

    def test_empty_room_gives_flat_image(self, rti, scenario):
        image = rti.attenuation_image(scenario.true_rss(0.0))
        assert np.abs(image).max() < 0.5

    def test_image_peaks_near_target(self, rti, scenario):
        target_cell = 40
        grid = scenario.deployment.grid
        image = rti.attenuation_image(scenario.true_rss(0.0, cell=target_cell))
        peak_cell = int(np.argmax(image))
        distance = grid.center_of(peak_cell).distance_to(grid.center_of(target_cell))
        assert distance < 1.5

    def test_live_vector_shape_validated(self, rti):
        with pytest.raises(ValueError, match="live vector"):
            rti.attenuation_image(np.zeros(3))


class TestLocate:
    def test_no_attenuation_returns_center(self, rti, scenario):
        estimate = rti.locate(scenario.true_rss(0.0))
        center = scenario.deployment.grid.room.center
        assert estimate.distance_to(center) < 1e-9

    def test_median_error_with_fresh_calibration(self, scenario):
        """Noise-free RTI on the paper deployment localizes within ~1.5 m."""
        rti = RtiLocalizer(
            scenario.deployment, scenario.true_rss(0.0), RtiConfig()
        )
        grid = scenario.deployment.grid
        errors = []
        for cell in range(0, scenario.deployment.cell_count, 5):
            estimate = rti.locate(scenario.true_rss(0.0, cell=cell))
            errors.append(estimate.distance_to(grid.center_of(cell)))
        assert np.median(errors) < 1.5

    def test_still_usable_after_long_gap_with_recalibration(self, scenario):
        """RTI recalibrated at day 60 remains usable (the property that makes
        it the paper's no-survey baseline). It does degrade somewhat — the
        target-present multipath drifts even though the empty room is
        re-measured — but stays within a sane band."""
        grid = scenario.deployment.grid
        rti = RtiLocalizer(
            scenario.deployment, scenario.true_rss(60.0), RtiConfig()
        )
        errors = []
        for cell in range(0, scenario.deployment.cell_count, 5):
            estimate = rti.locate(scenario.true_rss(60.0, cell=cell))
            errors.append(estimate.distance_to(grid.center_of(cell)))
        assert np.median(errors) < 2.5

    def test_corrupted_calibration_degrades(self, scenario):
        """A calibration that is badly off (e.g. months of unaccounted
        drift) corrupts the change vector and the image."""
        grid = scenario.deployment.grid

        def median_error(calibration):
            rti = RtiLocalizer(scenario.deployment, calibration, RtiConfig())
            errors = []
            for cell in range(0, scenario.deployment.cell_count, 5):
                estimate = rti.locate(scenario.true_rss(0.0, cell=cell))
                errors.append(estimate.distance_to(grid.center_of(cell)))
            return np.median(errors)

        fresh = median_error(scenario.true_rss(0.0))
        rng = np.random.default_rng(0)
        corrupted = scenario.true_rss(0.0) + rng.normal(
            0.0, 6.0, size=scenario.deployment.link_count
        )
        assert median_error(corrupted) > fresh

    def test_recalibrate(self, scenario):
        rti = RtiLocalizer(scenario.deployment, scenario.true_rss(0.0))
        rti.recalibrate(scenario.true_rss(30.0))
        np.testing.assert_array_equal(rti.calibration, scenario.true_rss(30.0))
        with pytest.raises(ValueError):
            rti.recalibrate(np.zeros(3))

    def test_noisy_measurements(self, scenario):
        """With live measurement noise the estimate stays in the room and
        lands within 2.5 m median."""
        collector = RssCollector(scenario, seed=0)
        calibration = collector.collect_empty_room(0.0)
        rti = RtiLocalizer(scenario.deployment, calibration)
        errors = []
        trace = collector.live_trace(0.0, list(range(0, 96, 7)))
        for frame, (x, y) in zip(trace.rss, trace.true_positions):
            estimate = rti.locate(frame)
            assert scenario.deployment.room.contains(estimate)
            errors.append(estimate.distance_to(Point(float(x), float(y))))
        assert np.median(errors) < 2.5

    def test_calibration_shape_validated(self, scenario):
        with pytest.raises(ValueError, match="calibration"):
            RtiLocalizer(scenario.deployment, np.zeros(3))
