"""Tests for the command-line interface."""

import itertools

import pytest

from repro.cli import _sub_seed, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["quickstart"],
            ["drift", "--days", "5", "45"],
            ["fig3", "--days", "3", "--cdf"],
            ["fig4", "--edges", "6", "12"],
            ["fig5", "--day", "30"],
            ["floorplan"],
            ["scenarios"],
            ["scenarios", "--describe"],
            ["serve", "--sites", "paper", "warehouse", "--frames", "50"],
            ["serve", "--update-days", "30", "60", "--day", "60"],
            ["query", "--day", "45", "--cells", "3", "17"],
            ["query", "--frames", "2", "--update-days", "30"],
            ["serve", "--listen", "127.0.0.1:0", "--shards", "2"],
            ["serve", "--listen", "127.0.0.1:8970", "--refresh-policy",
             "interval", "--refresh-interval-days", "15",
             "--refresh-budget", "2", "--days-per-second", "10"],
            ["serve", "--unix", "/tmp/serve.sock", "--max-seconds", "1"],
            ["query", "--connect", "http://127.0.0.1:8970", "--frames", "2"],
            ["loadgen", "--transport", "http", "--rate", "500",
             "--slo-ms", "50", "--sites", "8", "--zipf-s", "1.2"],
            ["loadgen", "--arrival", "closed", "--clients", "4",
             "--think-s", "0.001", "--transport", "aio"],
        ],
    )
    def test_commands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert args.command == argv[0]

    def test_seed_flag(self):
        args = build_parser().parse_args(["--seed", "99", "floorplan"])
        assert args.seed == 99

    def test_scenario_flag(self):
        args = build_parser().parse_args(["--scenario", "warehouse", "fig3"])
        assert args.scenario == "warehouse"

    def test_scenario_and_file_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["--scenario", "atrium", "--scenario-file", "x.json", "fig3"]
            )


class TestCommands:
    def test_floorplan(self, capsys):
        assert main(["floorplan"]) == 0
        out = capsys.readouterr().out
        assert "10" in out
        assert "L" in out

    def test_fig4(self, capsys):
        assert main(["fig4", "--edges", "6", "12"]) == 0
        out = capsys.readouterr().out
        assert "2.78" in out  # the paper's 6 m anchor

    def test_drift(self, capsys):
        assert main(["drift", "--days", "5", "--rooms", "2"]) == 0
        out = capsys.readouterr().out
        assert "measured" in out

    def test_fig3_smoke(self, capsys):
        assert main(["fig3", "--days", "3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out

    def test_fig5_smoke(self, capsys):
        assert main(["--seed", "1", "fig5", "--day", "30"]) == 0
        out = capsys.readouterr().out
        assert "TafLoc" in out
        assert "RASS" in out

    def test_quickstart_smoke(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "savings factor" in out

    def test_scenarios_listing(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("paper", "warehouse", "corridor", "atrium"):
            assert name in out

    def test_fig3_on_named_scenario(self, capsys):
        assert main(["--scenario", "corridor", "fig3", "--days", "5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out

    def test_floorplan_on_named_scenario(self, capsys):
        assert main(["--scenario", "corridor", "floorplan"]) == 0
        out = capsys.readouterr().out
        assert "corridor" in out

    def test_fig5_on_scenario_file(self, capsys, tmp_path):
        from repro.sim.specs import get_scenario_spec

        path = tmp_path / "site.json"
        path.write_text(get_scenario_spec("corridor").to_json())
        assert main(["--scenario-file", str(path), "fig5", "--day", "30"]) == 0
        out = capsys.readouterr().out
        assert "TafLoc" in out

    def test_serve_multi_site(self, capsys):
        assert main(
            ["serve", "--sites", "paper", "square-3m", "--frames", "20"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 site(s)" in out
        assert "paper" in out and "square-3m" in out
        assert "pipelines built: 2" in out

    def test_serve_listen_smoke(self, capsys):
        assert main(
            [
                "serve", "--sites", "square-3m", "--listen", "127.0.0.1:0",
                "--refresh-policy", "interval", "--days-per-second", "50",
                "--refresh-period-seconds", "0.05", "--max-seconds", "0.3",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "listening at http://127.0.0.1:" in out
        assert "refresh scheduler: interval" in out
        assert "scheduler ran" in out

    def test_serve_listen_sharded_smoke(self, capsys):
        assert main(
            [
                "serve", "--sites", "square-3m", "square-4m", "--shards",
                "2", "--listen", "127.0.0.1:0", "--max-seconds", "0.2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "across 2 shard worker(s)" in out
        assert "listening at http://127.0.0.1:" in out

    def test_loadgen_open_inproc(self, capsys):
        assert main(
            [
                "--scenario", "square-3m", "loadgen", "--transport",
                "inproc", "--rate", "400", "--requests", "40",
                "--sites", "2", "--frames", "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "2 site(s)" in out
        assert "1 pipeline(s)" in out
        assert "plan fingerprint" in out
        assert "failed 0, mismatched 0" in out

    def test_loadgen_closed_http(self, capsys):
        assert main(
            [
                "--scenario", "square-3m", "loadgen", "--arrival", "closed",
                "--transport", "http", "--clients", "2", "--requests", "16",
                "--sites", "2", "--frames", "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "closed/http" in out
        assert "failed 0, mismatched 0" in out

    def test_query_connect_round_trips_through_a_live_server(self):
        import os
        import re
        import subprocess
        import sys as _sys
        import time as _time
        from pathlib import Path

        src = str(Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        server = subprocess.Popen(
            [
                _sys.executable, "-u", "-m", "repro.cli", "serve",
                "--sites", "square-3m", "--listen", "127.0.0.1:0",
                "--max-seconds", "20",
            ],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            address = None
            deadline = _time.monotonic() + 15.0
            while _time.monotonic() < deadline:
                line = server.stdout.readline()
                match = re.search(r"listening at (http://\S+)", line or "")
                if match:
                    address = match.group(1)
                    break
            assert address, "server never reported its address"
            result = subprocess.run(
                [
                    _sys.executable, "-m", "repro.cli", "--scenario",
                    "square-3m", "query", "--connect", address,
                    "--frames", "2",
                ],
                capture_output=True,
                text=True,
                timeout=60,
                env=env,
            )
            assert result.returncode == 0, result.stderr
            assert "median error" in result.stdout
        finally:
            server.terminate()
            server.wait(timeout=10)

    def test_serve_with_updates(self, capsys):
        assert main(
            ["serve", "--sites", "square-3m", "--frames", "10",
             "--update-days", "30", "--day", "30"]
        ) == 0
        out = capsys.readouterr().out
        # commissioning epoch + one refresh
        assert " 2 " in out

    def test_serve_honors_global_scenario_flag(self, capsys):
        assert main(
            ["--scenario", "square-3m", "serve", "--frames", "10"]
        ) == 0
        out = capsys.readouterr().out
        assert "square-3m" in out
        assert "paper" not in out

    def test_serve_scenario_file_site(self, capsys, tmp_path):
        from repro.sim.specs import get_scenario_spec

        path = tmp_path / "site.json"
        path.write_text(get_scenario_spec("square-3m").to_json())
        assert main(
            ["--scenario-file", str(path), "serve", "--frames", "10"]
        ) == 0
        out = capsys.readouterr().out
        assert "square-3m" in out

    def test_query_explicit_cells(self, capsys):
        assert main(
            ["--scenario", "square-3m", "query", "--cells", "0", "7",
             "--day", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 frame(s)" in out
        assert "median error" in out

    def test_query_random_frames_with_update(self, capsys):
        assert main(
            ["--scenario", "square-3m", "query", "--frames", "2",
             "--update-days", "20", "--day", "20"]
        ) == 0
        out = capsys.readouterr().out
        assert "day 20" in out

    def test_query_unknown_scenario_fails_cleanly(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            main(["--scenario", "submarine", "query"])


class TestSubSeeds:
    def test_adjacent_master_seeds_cannot_collide(self):
        """The PR-4 bugfix: with the old ``seed + 1`` / ``seed + 2`` scheme,
        sweeping adjacent --seed values reused collector streams (seed 0's
        trace collector == seed 1's system collector). task_key-derived
        sub-seeds are distinct across both label and master seed."""
        labels = ("quickstart-system", "quickstart-trace")
        derived = [
            _sub_seed(seed, label)
            for seed, label in itertools.product(range(8), labels)
        ]
        assert len(set(derived)) == len(derived)

    def test_sub_seed_is_deterministic(self):
        assert _sub_seed(3, "quickstart-system") == _sub_seed(
            3, "quickstart-system"
        )
        assert _sub_seed(3, "a") != _sub_seed(3, "b")
