"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["quickstart"],
            ["drift", "--days", "5", "45"],
            ["fig3", "--days", "3", "--cdf"],
            ["fig4", "--edges", "6", "12"],
            ["fig5", "--day", "30"],
            ["floorplan"],
            ["scenarios"],
            ["scenarios", "--describe"],
        ],
    )
    def test_commands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert args.command == argv[0]

    def test_seed_flag(self):
        args = build_parser().parse_args(["--seed", "99", "floorplan"])
        assert args.seed == 99

    def test_scenario_flag(self):
        args = build_parser().parse_args(["--scenario", "warehouse", "fig3"])
        assert args.scenario == "warehouse"

    def test_scenario_and_file_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["--scenario", "atrium", "--scenario-file", "x.json", "fig3"]
            )


class TestCommands:
    def test_floorplan(self, capsys):
        assert main(["floorplan"]) == 0
        out = capsys.readouterr().out
        assert "10" in out
        assert "L" in out

    def test_fig4(self, capsys):
        assert main(["fig4", "--edges", "6", "12"]) == 0
        out = capsys.readouterr().out
        assert "2.78" in out  # the paper's 6 m anchor

    def test_drift(self, capsys):
        assert main(["drift", "--days", "5", "--rooms", "2"]) == 0
        out = capsys.readouterr().out
        assert "measured" in out

    def test_fig3_smoke(self, capsys):
        assert main(["fig3", "--days", "3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out

    def test_fig5_smoke(self, capsys):
        assert main(["--seed", "1", "fig5", "--day", "30"]) == 0
        out = capsys.readouterr().out
        assert "TafLoc" in out
        assert "RASS" in out

    def test_quickstart_smoke(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "savings factor" in out

    def test_scenarios_listing(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("paper", "warehouse", "corridor", "atrium"):
            assert name in out

    def test_fig3_on_named_scenario(self, capsys):
        assert main(["--scenario", "corridor", "fig3", "--days", "5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out

    def test_floorplan_on_named_scenario(self, capsys):
        assert main(["--scenario", "corridor", "floorplan"]) == 0
        out = capsys.readouterr().out
        assert "corridor" in out

    def test_fig5_on_scenario_file(self, capsys, tmp_path):
        from repro.sim.specs import get_scenario_spec

        path = tmp_path / "site.json"
        path.write_text(get_scenario_spec("corridor").to_json())
        assert main(["--scenario-file", str(path), "fig5", "--day", "30"]) == 0
        out = capsys.readouterr().out
        assert "TafLoc" in out
