"""Load drivers: zero failed/mismatched at tiny scale, honest counting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.loadgen.driver import expected_answers, run_closed_loop, run_open_loop
from repro.loadgen.plan import closed_loop_plan, open_loop_plan
from repro.serve import HttpFrontend, LocalizationService, ServiceClient
from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.specs import build_scenario, get_scenario_spec
from repro.util.rng import counter_stream, task_key

SEED = 2016
SITES = ("alpha", "beta")


@pytest.fixture(scope="module")
def serving():
    """A warm two-site service + workload frames + reference answers."""
    spec = get_scenario_spec("square-3m")
    protocol = CollectionProtocol(samples_per_cell=2, empty_room_samples=5)
    service = LocalizationService.from_specs(
        {site: spec for site in SITES}, protocol=protocol, seed=SEED
    )
    service.warm()
    scenario = build_scenario(spec.with_seed(SEED))
    cells = counter_stream(SEED, 77).integers(
        0, scenario.deployment.cell_count, size=4
    )
    trace = RssCollector(
        scenario, protocol, seed=task_key(SEED, "driver-test")
    ).live_trace(0.0, cells)
    workloads = {site: trace.rss for site in SITES}
    expected = expected_answers(service, workloads, 0.0)
    return service, workloads, expected


class _QueryOnly:
    """In-process connect target without ``close`` (the service outlives
    the driver)."""

    def __init__(self, service):
        self._service = service

    def query(self, site, rss, day):
        return self._service.query(site, rss, day)


def test_open_loop_inproc_is_clean(serving):
    service, workloads, expected = serving
    plan = open_loop_plan(
        sites=SITES, seed=SEED, rate_qps=800.0, requests=48, zipf_s=1.1
    )
    result = run_open_loop(
        plan,
        lambda: _QueryOnly(service),
        workloads,
        expected=expected,
        transport="inproc",
    )
    assert result.completed == 48
    assert result.failed == 0
    assert result.mismatched == 0
    assert result.histogram.count == 48
    summary = result.summary()
    assert summary["arrival"] == "open"
    assert summary["latency"]["p50_ms"] <= summary["latency"]["p99_ms"]


def test_open_loop_over_http_is_bit_identical(serving):
    service, workloads, expected = serving
    plan = open_loop_plan(
        sites=SITES, seed=SEED, rate_qps=400.0, requests=32, zipf_s=1.1
    )
    with HttpFrontend(service) as frontend:
        result = run_open_loop(
            plan,
            lambda: ServiceClient(frontend.address, retries=0),
            workloads,
            expected=expected,
            transport="http",
        )
    assert result.completed == 32
    assert result.failed == 0
    assert result.mismatched == 0


def test_open_loop_counts_mismatches(serving):
    service, workloads, expected = serving
    # Poison one expected answer: exactly the requests that hit that
    # (site, frame) slot must be counted as mismatched, nothing else.
    poisoned = {
        site: list(answers) for site, answers in expected.items()
    }
    poisoned["alpha"][0] = (poisoned["alpha"][0][0] + 1, (0.0, 0.0))
    plan = open_loop_plan(
        sites=SITES, seed=SEED, rate_qps=800.0, requests=48, zipf_s=1.1
    )
    hits = sum(
        1
        for index in range(plan.requests)
        if plan.site_name(index) == "alpha" and index % 4 == 0
    )
    assert hits > 0
    result = run_open_loop(
        plan,
        lambda: _QueryOnly(service),
        workloads,
        expected=poisoned,
        transport="inproc",
    )
    assert result.mismatched == hits
    assert result.failed == 0


def test_open_loop_counts_failures(serving):
    service, workloads, expected = serving

    class Flaky(_QueryOnly):
        def __init__(self, service):
            super().__init__(service)
            self._calls = 0

        def query(self, site, rss, day):
            self._calls += 1
            if self._calls % 4 == 0:
                raise ConnectionError("injected")
            return super().query(site, rss, day)

    plan = open_loop_plan(
        sites=SITES, seed=SEED, rate_qps=800.0, requests=40, clients=1
    )
    result = run_open_loop(
        plan, lambda: Flaky(service), workloads, expected=expected,
        transport="inproc",
    )
    assert result.failed == 10
    assert result.completed == 30


def test_open_loop_connect_failure_raises_not_hangs(serving):
    _, workloads, _ = serving
    plan = open_loop_plan(
        sites=SITES, seed=SEED, rate_qps=800.0, requests=8
    )

    def bad_connect():
        raise ConnectionRefusedError("no server")

    with pytest.raises(ConnectionRefusedError):
        run_open_loop(plan, bad_connect, workloads)


def test_open_loop_rejects_closed_plan(serving):
    service, workloads, _ = serving
    plan = closed_loop_plan(
        sites=SITES, seed=SEED, clients=2, requests_per_client=4
    )
    with pytest.raises(ValueError, match="open plan"):
        run_open_loop(plan, lambda: _QueryOnly(service), workloads)


def test_closed_loop_inproc_is_clean(serving):
    service, workloads, expected = serving
    plan = closed_loop_plan(
        sites=SITES, seed=SEED, clients=3, requests_per_client=8,
        think_s=0.0005, zipf_s=1.1,
    )
    result = run_closed_loop(
        plan,
        lambda: _QueryOnly(service),
        workloads,
        expected=expected,
        transport="inproc",
    )
    assert result.arrival == "closed"
    assert result.completed == 24
    assert result.failed == 0
    assert result.mismatched == 0
    assert result.offered_qps == 0.0


def test_closed_loop_rejects_open_plan(serving):
    service, workloads, _ = serving
    plan = open_loop_plan(
        sites=SITES, seed=SEED, rate_qps=100.0, requests=8
    )
    with pytest.raises(ValueError, match="closed plan"):
        run_closed_loop(plan, lambda: _QueryOnly(service), workloads)


def test_expected_answers_are_reused_across_identical_sites(serving):
    service, workloads, expected = serving
    # Both sites share one spec (and thus one deduped pipeline): the
    # reference answers must agree frame-for-frame.
    assert expected["alpha"] == expected["beta"]
    assert service.manager.stats.pipelines_built == 1
    assert len(expected["alpha"]) == len(workloads["alpha"])
