"""Loadgen suite fixtures: the serve leak sanitizer, re-applied.

The load drivers spawn worker threads, wire clients, and (in the soak)
a many-site service; a leaked thread or socket here poisons later tests
exactly as in ``tests/serve``, so the same autouse sanitizer guards
this suite.
"""

from __future__ import annotations

from tests.serve.conftest import _leak_sanitizer  # noqa: F401
