"""The registered-site soak: pipeline dedupe, routing math, no leaks.

The module runs under the autouse leak sanitizer from
``tests/serve/conftest`` (re-exported by this suite's conftest), so a
soak that left threads, processes, or sockets behind fails here.
"""

from __future__ import annotations

import pytest

from repro.loadgen.soak import run_site_soak, vm_rss_kb


@pytest.fixture(scope="module")
def soak_record():
    return run_site_soak(sites=200, seed=2016, queries=200, frames=8)


def test_one_spec_builds_one_pipeline(soak_record):
    # 200 sites share one square-3m spec: the fingerprint dedupe must
    # commission exactly one survey for the whole fleet.
    assert soak_record["sites"] == 200
    assert soak_record["pipelines_built"] == 1


def test_query_phase_is_clean(soak_record):
    phase = soak_record["query_phase"]
    assert phase["failed_queries"] == 0
    assert phase["completed"] == 200
    assert phase["distinct_sites_hit"] > 1
    assert phase["latency"]["p50_ms"] <= phase["latency"]["p99_ms"]


def test_routing_tables_cover_requested_shard_counts(soak_record):
    routing = soak_record["routing"]
    assert set(routing) == {"1", "2", "4", "8"}
    for stats in routing.values():
        assert (
            stats["min_sites"] <= stats["mean_sites"] <= stats["max_sites"]
        )
        assert stats["imbalance_x"] >= 1.0
    # Every site lands somewhere: shard loads sum to the fleet size.
    assert routing["1"]["max_sites"] == 200


def test_memory_samples_recorded(soak_record):
    rss = soak_record["rss_kb"]
    assert set(rss) == {"baseline", "registered", "warm", "queried"}
    if vm_rss_kb() is not None:  # Linux: per-site marginal cost recorded
        assert soak_record["rss_per_site_kb"] >= 0.0


def test_sites_must_be_positive():
    with pytest.raises(ValueError):
        run_site_soak(sites=0)
