"""Load plans: determinism, schedule shape, and validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.loadgen.plan import closed_loop_plan, open_loop_plan

SITES = ("site-a", "site-b", "site-c")


class TestOpenLoopPlan:
    def test_same_seed_is_bit_identical(self):
        kwargs = dict(
            sites=SITES, seed=7, rate_qps=200.0, requests=64,
            process="poisson", zipf_s=1.1, clients=4,
        )
        first = open_loop_plan(**kwargs)
        second = open_loop_plan(**kwargs)
        assert first.fingerprint() == second.fingerprint()
        np.testing.assert_array_equal(first.send_offset_s, second.send_offset_s)
        np.testing.assert_array_equal(first.site_index, second.site_index)
        np.testing.assert_array_equal(first.client_index, second.client_index)

    def test_different_seed_changes_schedule(self):
        kwargs = dict(sites=SITES, rate_qps=200.0, requests=64, zipf_s=1.1)
        assert (
            open_loop_plan(seed=7, **kwargs).fingerprint()
            != open_loop_plan(seed=8, **kwargs).fingerprint()
        )

    def test_rate_changes_fingerprint(self):
        kwargs = dict(sites=SITES, seed=7, requests=64)
        assert (
            open_loop_plan(rate_qps=100.0, **kwargs).fingerprint()
            != open_loop_plan(rate_qps=200.0, **kwargs).fingerprint()
        )

    def test_uniform_process_paces_exactly(self):
        plan = open_loop_plan(
            sites=SITES, seed=7, rate_qps=100.0, requests=10,
            process="uniform",
        )
        np.testing.assert_allclose(
            np.diff(plan.send_offset_s), np.full(9, 0.01)
        )
        assert plan.duration_s == pytest.approx(0.1)

    def test_poisson_offsets_increase_and_average_to_rate(self):
        plan = open_loop_plan(
            sites=SITES, seed=7, rate_qps=1000.0, requests=2000,
            process="poisson",
        )
        assert np.all(np.diff(plan.send_offset_s) >= 0)
        # Mean inter-arrival gap ~ 1/rate (law of large numbers budget).
        assert plan.duration_s / plan.requests == pytest.approx(
            1e-3, rel=0.15
        )

    def test_zipf_skew_prefers_rank_zero(self):
        plan = open_loop_plan(
            sites=SITES, seed=7, rate_qps=100.0, requests=3000, zipf_s=1.5
        )
        counts = np.bincount(plan.site_index, minlength=len(SITES))
        assert counts[0] > counts[1] > counts[2]
        assert plan.site_name(0) in SITES

    def test_zero_zipf_is_roughly_uniform(self):
        plan = open_loop_plan(
            sites=SITES, seed=7, rate_qps=100.0, requests=3000, zipf_s=0.0
        )
        counts = np.bincount(plan.site_index, minlength=len(SITES))
        assert counts.min() > 0.8 * counts.max()

    def test_clients_round_robin(self):
        plan = open_loop_plan(
            sites=SITES, seed=7, rate_qps=100.0, requests=8, clients=3
        )
        np.testing.assert_array_equal(
            plan.client_index, np.arange(8) % 3
        )

    def test_describe_round_trips_the_fingerprint(self):
        plan = open_loop_plan(
            sites=SITES, seed=7, rate_qps=100.0, requests=8
        )
        description = plan.describe()
        assert description["fingerprint"] == plan.fingerprint()
        assert description["arrival"] == "open"
        assert description["requests"] == 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(sites=(), seed=7, rate_qps=100.0, requests=8),
            dict(sites=SITES, seed=7, rate_qps=0.0, requests=8),
            dict(sites=SITES, seed=7, rate_qps=100.0, requests=0),
            dict(sites=SITES, seed=7, rate_qps=100.0, requests=8, clients=0),
            dict(
                sites=SITES, seed=7, rate_qps=100.0, requests=8,
                process="burst",
            ),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            open_loop_plan(**kwargs)


class TestClosedLoopPlan:
    def test_same_seed_is_bit_identical(self):
        kwargs = dict(
            sites=SITES, seed=7, clients=3, requests_per_client=16,
            think_s=0.002, zipf_s=1.1,
        )
        assert (
            closed_loop_plan(**kwargs).fingerprint()
            == closed_loop_plan(**kwargs).fingerprint()
        )

    def test_adding_clients_keeps_existing_sequences(self):
        small = closed_loop_plan(
            sites=SITES, seed=7, clients=2, requests_per_client=16, zipf_s=1.1
        )
        large = closed_loop_plan(
            sites=SITES, seed=7, clients=3, requests_per_client=16, zipf_s=1.1
        )
        # Per-client counter streams: client k's draw is independent of
        # the client count, so growing the fleet never reshuffles load.
        np.testing.assert_array_equal(
            small.site_index, large.site_index[:32]
        )

    def test_shape_and_think(self):
        plan = closed_loop_plan(
            sites=SITES, seed=7, clients=3, requests_per_client=16,
            think_s=0.002,
        )
        assert plan.arrival == "closed"
        assert plan.requests == 48
        assert plan.rate_qps == 0.0
        assert plan.duration_s == 0.0
        assert np.all(plan.think_delay_s > 0)
        np.testing.assert_array_equal(
            plan.client_index, np.repeat(np.arange(3), 16)
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(sites=(), seed=7, clients=2, requests_per_client=4),
            dict(sites=SITES, seed=7, clients=0, requests_per_client=4),
            dict(sites=SITES, seed=7, clients=2, requests_per_client=0),
            dict(
                sites=SITES, seed=7, clients=2, requests_per_client=4,
                think_s=-1.0,
            ),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            closed_loop_plan(**kwargs)
