"""SLO saturation search: pass criterion, convergence, monotonicity."""

from __future__ import annotations

import pytest

from repro.loadgen.slo import find_max_sustained_qps, sustains_slo


def synthetic_target(knee_qps: float, *, fail_above: float = float("inf")):
    """A latency model: flat 2 ms below the knee, then queueing blow-up.

    Deterministic and instant, so the search's control flow is tested
    against known ground truth instead of a noisy real server.
    """

    def run_at(rate: float) -> dict:
        if rate <= knee_qps:
            p99 = 2.0
        else:
            p99 = 2.0 + (rate - knee_qps) * 0.5
        return {
            "arrival": "open",
            "transport": "synthetic",
            "offered_qps": float(rate),
            "achieved_qps": float(min(rate, fail_above)),
            "failed_queries": 0 if rate <= fail_above else int(rate),
            "mismatched_queries": 0,
            "latency": {"p50_ms": 1.0, "p99_ms": p99},
        }

    return run_at


class TestSustainsSlo:
    def test_passing_summary(self):
        summary = synthetic_target(500.0)(100.0)
        assert sustains_slo(summary, slo_ms=50.0)

    def test_failed_queries_fail(self):
        summary = dict(synthetic_target(500.0)(100.0), failed_queries=1)
        assert not sustains_slo(summary, slo_ms=50.0)

    def test_mismatched_queries_fail(self):
        summary = dict(synthetic_target(500.0)(100.0), mismatched_queries=1)
        assert not sustains_slo(summary, slo_ms=50.0)

    def test_latency_over_bound_fails(self):
        summary = synthetic_target(500.0)(100.0)
        assert not sustains_slo(summary, slo_ms=1.0)

    def test_missing_percentile_fails(self):
        summary = synthetic_target(500.0)(100.0)
        assert not sustains_slo(summary, slo_ms=50.0, percentile="p999_ms")

    def test_lagging_achieved_rate_fails(self):
        summary = dict(synthetic_target(500.0)(100.0), achieved_qps=50.0)
        assert not sustains_slo(summary, slo_ms=50.0)


class TestSearch:
    def test_finds_the_knee(self):
        # knee at 500: p99 crosses 10 ms at 516. The search must land in
        # (last sustained, first failed] after the bisection refinement.
        search = find_max_sustained_qps(
            synthetic_target(500.0), slo_ms=10.0, start_qps=100.0
        )
        assert 400.0 <= search.max_sustained_qps <= 516.0
        assert search.sustained_summary is not None
        assert search.probes  # the whole curve is recorded

    def test_start_rate_failing_means_zero(self):
        search = find_max_sustained_qps(
            synthetic_target(10.0), slo_ms=3.0, start_qps=100.0
        )
        assert search.max_sustained_qps == 0.0
        assert search.sustained_summary is None

    def test_capped_by_max_qps(self):
        search = find_max_sustained_qps(
            synthetic_target(float("inf")),
            slo_ms=10.0,
            start_qps=100.0,
            max_qps=800.0,
        )
        assert search.max_sustained_qps == 800.0

    def test_monotone_in_slo_bound(self):
        # A looser SLO can only enlarge the passing set, so the found
        # maximum must be non-decreasing in slo_ms.
        target = synthetic_target(500.0)
        results = [
            find_max_sustained_qps(
                target, slo_ms=slo, start_qps=50.0
            ).max_sustained_qps
            for slo in (3.0, 10.0, 50.0, 200.0)
        ]
        assert results == sorted(results)

    def test_probes_tagged_with_verdict(self):
        search = find_max_sustained_qps(
            synthetic_target(500.0), slo_ms=10.0, start_qps=100.0
        )
        assert all(isinstance(row["sustained"], bool) for row in search.probes)

    def test_as_dict_schema(self):
        result = find_max_sustained_qps(
            synthetic_target(500.0), slo_ms=10.0, start_qps=100.0
        ).as_dict()
        assert set(result) == {
            "slo_ms", "percentile", "max_sustained_qps", "sustained", "probes",
        }

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(slo_ms=0.0),
            dict(slo_ms=10.0, start_qps=0.0),
            dict(slo_ms=10.0, start_qps=100.0, max_qps=50.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            find_max_sustained_qps(synthetic_target(500.0), **kwargs)
