"""Unit tests for the text reporting helpers."""

import numpy as np
import pytest

from repro.eval.reporting import (
    format_cdf_table,
    format_series,
    format_summary,
    format_table,
)


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["name", "value"], [["a", 1.5], ["bb", 20]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "name" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_numeric_precision(self):
        out = format_table(["x"], [[1.23456]], precision=2)
        assert "1.23" in out
        assert "1.235" not in out

    def test_integers_rendered_plain(self):
        out = format_table(["n"], [[42]])
        assert "42" in out
        assert "42.0" not in out

    def test_row_length_validated(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])


class TestFormatSeries:
    def test_pairs(self):
        out = format_series("cost", [1, 2], [10.0, 20.0])
        assert out.startswith("cost:")
        assert "(1, 10.000)" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            format_series("s", [1], [1, 2])


class TestFormatCdfTable:
    def test_columns_per_system(self):
        samples = {"A": np.array([1.0, 2.0]), "B": np.array([2.0, 4.0])}
        out = format_cdf_table(samples, grid=[1.5, 3.0], value_label="err")
        lines = out.splitlines()
        assert "err" in lines[0] and "A" in lines[0] and "B" in lines[0]
        # At 1.5: A has 1/2 below, B has 0.
        assert "0.500" in lines[2]
        assert "0.000" in lines[2]

    def test_fractions_monotone(self):
        samples = {"A": np.random.default_rng(0).normal(size=30)}
        out = format_cdf_table(samples, grid=[-1.0, 0.0, 1.0])
        values = [float(line.split()[-1]) for line in out.splitlines()[2:]]
        assert values == sorted(values)


class TestFormatSummary:
    def test_key_alignment(self):
        out = format_summary("Title", {"a": 1, "longer_key": 2.5})
        lines = out.splitlines()
        assert lines[0] == "Title"
        assert lines[1].index(":") == lines[2].index(":")
