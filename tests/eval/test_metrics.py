"""Unit tests for evaluation metrics."""

import numpy as np
import pytest

from repro.eval.metrics import (
    cdf_points,
    fraction_below,
    mean_absolute_error,
    median,
    percentile,
    reconstruction_error_matrix,
    rms_error,
)


class TestErrorMatrices:
    def test_reconstruction_error_matrix(self):
        a = np.array([[1.0, 2.0]])
        b = np.array([[3.0, 1.0]])
        np.testing.assert_allclose(
            reconstruction_error_matrix(a, b), [[2.0, 1.0]]
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            reconstruction_error_matrix(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_mean_absolute_error(self):
        assert mean_absolute_error([1, 2, 3], [2, 2, 2]) == pytest.approx(2 / 3)

    def test_rms_error(self):
        assert rms_error([0, 0], [3, 4]) == pytest.approx(np.sqrt(12.5))


class TestPercentiles:
    def test_median_odd(self):
        assert median([3, 1, 2]) == 2.0

    def test_percentile_bounds(self):
        data = list(range(101))
        assert percentile(data, 0) == 0
        assert percentile(data, 100) == 100

    def test_percentile_validates_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestCdf:
    def test_staircase_cdf(self):
        xs, fs = cdf_points([3.0, 1.0, 2.0])
        np.testing.assert_allclose(xs, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(fs, [1 / 3, 2 / 3, 1.0])

    def test_cdf_on_grid(self):
        xs, fs = cdf_points([1.0, 2.0, 3.0, 4.0], grid=[0.0, 2.5, 10.0])
        np.testing.assert_allclose(xs, [0.0, 2.5, 10.0])
        np.testing.assert_allclose(fs, [0.0, 0.5, 1.0])

    def test_monotone(self):
        rng = np.random.default_rng(0)
        _, fs = cdf_points(rng.normal(size=50))
        assert np.all(np.diff(fs) >= 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf_points([])

    def test_fraction_below(self):
        assert fraction_below([1, 2, 3, 4], 2.5) == pytest.approx(0.5)
        assert fraction_below([1, 2], 2.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            fraction_below([], 1.0)
