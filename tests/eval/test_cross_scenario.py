"""Cross-scenario smoke: every registered environment runs every figure.

The acceptance contract of the scenario registry: the figure experiments
run end-to-end on *any* registered spec, and the engine's parallel results
stay bit-identical to serial execution on every one of them. Workloads are
kept at reduced size (few days, thinned test cells) so the whole sweep
stays seconds-scale; correctness of the full-size workloads is covered by
the paper-scenario tests and the tier-2 benchmarks.
"""

import numpy as np
import pytest

from repro.eval.engine import ExperimentEngine
from repro.eval.experiments import (
    run_fig3_reconstruction_error,
    run_fig5_localization,
)
from repro.eval.tracking_experiments import run_tracking_experiment
from repro.sim.specs import build_scenario, get_scenario_spec, scenario_names

ALL_SCENARIOS = scenario_names()


def _thinned_cells(name, step=12):
    cells = build_scenario(get_scenario_spec(name)).deployment.cell_count
    return list(range(0, cells, step))


@pytest.mark.parametrize("name", ALL_SCENARIOS)
class TestParallelBitIdentityEverywhere:
    """jobs=2 equals jobs=1 exactly, on every registered scenario."""

    def test_fig3(self, name):
        kwargs = dict(days=(5.0, 45.0), seed=23, scenario_spec=name)
        serial = run_fig3_reconstruction_error(
            engine=ExperimentEngine(jobs=1), **kwargs
        )
        parallel = run_fig3_reconstruction_error(
            engine=ExperimentEngine(jobs=2), **kwargs
        )
        assert len(serial) == len(parallel) == 2
        for a, b in zip(serial, parallel):
            assert a.day == b.day
            np.testing.assert_array_equal(a.errors, b.errors)
            assert a.mean_error == b.mean_error
            assert a.stale_mean_error == b.stale_mean_error
            assert a.oracle_mean_error == b.oracle_mean_error

    def test_fig5(self, name):
        kwargs = dict(
            day=45.0,
            test_cells=_thinned_cells(name),
            frames_per_cell=1,
            seed=23,
            scenario_spec=name,
        )
        serial = run_fig5_localization(engine=ExperimentEngine(jobs=1), **kwargs)
        parallel = run_fig5_localization(
            engine=ExperimentEngine(jobs=2), **kwargs
        )
        assert set(serial.errors) == set(parallel.errors)
        for system in serial.errors:
            np.testing.assert_array_equal(
                serial.errors[system], parallel.errors[system]
            )


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_fig3_update_beats_staleness(name):
    """The reconstruction is sane in every environment: reconstructed
    fingerprints track the drifted world better than the stale day-0 survey
    at a long gap."""
    engine = ExperimentEngine(jobs=1)
    (result,) = run_fig3_reconstruction_error(
        days=(45.0,), seed=23, scenario_spec=name, engine=engine
    )
    assert np.isfinite(result.mean_error)
    assert result.mean_error < result.stale_mean_error


def test_tracking_runs_on_spec_with_declared_mobility():
    """Tracking consumes the spec's mobility regime (warehouse: waypoint)."""
    results = run_tracking_experiment(
        days=(30.0,),
        frames=12,
        burn_in=2,
        seed=5,
        scenario_spec="warehouse",
        engine=ExperimentEngine(jobs=1),
    )
    assert {r.arm for r in results} == {"updated", "stale"}
    for result in results:
        assert np.isfinite(result.errors).all()
