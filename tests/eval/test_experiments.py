"""Tests for the figure experiment runners (fast, reduced workloads)."""

import numpy as np
import pytest

from repro.eval.experiments import (
    run_fig3_reconstruction_error,
    run_fig5_localization,
    run_intext_drift,
)


class TestIntextDrift:
    def test_growth_with_gap(self):
        results = run_intext_drift(days=(5.0, 45.0), seeds=(0, 1, 2))
        assert results[45.0] > results[5.0]

    def test_anchor_band(self):
        """Ensemble drift magnitudes must be near the paper's anchors
        (2.5 dBm @ 5 days, 6 dBm @ 45 days)."""
        results = run_intext_drift(days=(5.0, 45.0), seeds=tuple(range(6)))
        assert results[5.0] == pytest.approx(2.5, abs=1.5)
        assert results[45.0] == pytest.approx(6.0, abs=3.0)


class TestFig3:
    @pytest.fixture(scope="class")
    def results(self):
        return run_fig3_reconstruction_error(days=(3.0, 45.0, 90.0), seed=0)

    def test_one_result_per_day(self, results):
        assert [r.day for r in results] == [3.0, 45.0, 90.0]

    def test_errors_grow_with_gap(self, results):
        means = [r.mean_error for r in results]
        assert means[0] < means[-1]

    def test_reconstruction_beats_stale_at_long_gap(self, results):
        last = results[-1]
        assert last.mean_error < last.stale_mean_error

    def test_mean_error_in_paper_band(self, results):
        """Paper band: 2.7 dB (3 days) to 4.1 dB (3 months). Shape tolerance
        of roughly 2x either way."""
        for result in results:
            assert 0.8 < result.mean_error < 8.0

    def test_cdf_accessible(self, results):
        xs, fs = results[0].cdf(grid=np.linspace(0, 15, 16))
        assert fs[-1] == pytest.approx(1.0, abs=0.01)

    def test_errors_flattened(self, results):
        assert results[0].errors.ndim == 1
        assert results[0].errors.size == 10 * 96


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5_localization(
            day=90.0, test_cells=list(range(0, 96, 4)), frames_per_cell=2, seed=0
        )

    def test_all_four_systems_present(self, result):
        assert set(result.errors) == {
            "TafLoc",
            "RTI",
            "RASS w/ rec.",
            "RASS w/o rec.",
        }

    def test_reconstruction_helps_rass(self, result):
        medians = result.median_errors()
        assert medians["RASS w/ rec."] < medians["RASS w/o rec."]

    def test_tafloc_beats_stale_rass(self, result):
        medians = result.median_errors()
        assert medians["TafLoc"] < medians["RASS w/o rec."]

    def test_errors_positive(self, result):
        for errors in result.errors.values():
            assert np.all(errors >= 0)

    def test_percentiles_and_cdf(self, result):
        p80 = result.percentile_errors(80.0)
        medians = result.median_errors()
        for name in result.errors:
            assert p80[name] >= medians[name]
        xs, fs = result.cdf("TafLoc", grid=np.linspace(0, 6, 7))
        assert np.all(np.diff(fs) >= 0)
