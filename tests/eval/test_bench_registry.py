"""The BenchSection registry: ordering, --only filtering, the facade."""

from __future__ import annotations

import pytest

import repro.eval.benchmark as facade
from repro.eval.bench import (
    get_section,
    run_perf_bench,
    section_names,
    sections,
    smoke_failures,
)

CANONICAL = [
    "solve",
    "engine",
    "serving",
    "frontend",
    "frontend_async",
    "resilience",
    "trust",
    "loadgen",
]


def test_every_section_registered_in_report_order():
    assert section_names() == CANONICAL


def test_sections_expose_their_report_keys():
    by_name = {section.name: section for section in sections()}
    assert by_name["solve"].report_key == "sizes"
    assert by_name["solve"].host_stamp == "rows"
    for name in CANONICAL[1:]:
        assert by_name[name].report_key == name
        assert by_name[name].host_stamp == "section"


def test_get_section_unknown_name():
    with pytest.raises(KeyError, match="unknown bench section"):
        get_section("warp-drive")


def test_only_unknown_name_rejected():
    with pytest.raises(ValueError, match="unknown bench section"):
        run_perf_bench(sizes=(), only=["warp-drive"])


def test_only_filters_sections():
    # Empty sizes keeps the solve section trivially cheap; every other
    # section's knob stays None, so `only` is the sole selector.
    report = run_perf_bench(
        sizes=(),
        only=["solve"],
        serving_sites=("square-3m",),  # would run without only=
    )
    assert "sizes" in report
    assert "serving" not in report
    assert set(report) == {"benchmark", "seed", "environment", "sizes"}


def test_none_knob_still_skips_inside_only():
    report = run_perf_bench(sizes=(), only=["solve", "serving"])
    assert "serving" not in report  # serving_sites=None skips it


def test_smoke_failures_skips_absent_sections():
    assert smoke_failures({"benchmark": "bench_perf"}) == []


def test_smoke_failures_surface_section_gates():
    # A loadgen record violating the determinism gate must be reported
    # through the aggregate registry path.
    report = {
        "loadgen": {
            "plan_bit_identical": False,
            "saturation": {},
            "closed_loop": None,
            "perturbation": None,
            "soak": None,
        }
    }
    failures = smoke_failures(report)
    assert any("bit-identical" in failure for failure in failures)


def test_facade_reexports_the_public_surface():
    for name in (
        "BENCH_SEED",
        "DEFAULT_SIZES",
        "bench_engine",
        "bench_frontend",
        "bench_frontend_async",
        "bench_loadgen",
        "bench_resilience",
        "bench_serving",
        "bench_size",
        "bench_trust",
        "build_bench_deployment",
        "format_bench_report",
        "run_perf_bench",
    ):
        assert hasattr(facade, name), name
    # The facade resolves to the same objects the registry package owns.
    from repro.eval.bench import run_perf_bench as canonical

    assert facade.run_perf_bench is canonical
