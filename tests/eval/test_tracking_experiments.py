"""Tests for the tracking-over-time extension experiment."""

import numpy as np
import pytest

from repro.eval.tracking_experiments import (
    run_tracking_experiment,
    summarize_tracking,
)


@pytest.fixture(scope="module")
def results():
    return run_tracking_experiment(days=(60.0,), frames=40, seed=3)


class TestRunTrackingExperiment:
    def test_both_arms_present(self, results):
        arms = {r.arm for r in results}
        assert arms == {"updated", "stale"}

    def test_error_arrays_shaped(self, results):
        for r in results:
            assert r.errors.shape == (35,)  # frames - burn_in
            assert np.all(r.errors >= 0)

    def test_updated_beats_stale(self, results):
        summary = summarize_tracking(results)
        assert summary["updated"][60.0] < summary["stale"][60.0]

    def test_updated_accuracy_reasonable(self, results):
        summary = summarize_tracking(results)
        assert summary["updated"][60.0] < 2.0

    def test_burn_in_validated(self):
        with pytest.raises(ValueError, match="burn_in"):
            run_tracking_experiment(days=(5.0,), frames=5, burn_in=5)


class TestSummarize:
    def test_structure(self, results):
        summary = summarize_tracking(results)
        assert set(summary) == {"updated", "stale"}
        assert set(summary["updated"]) == {60.0}
