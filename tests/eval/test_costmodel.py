"""Unit tests for the Fig. 4 cost model."""

import pytest

from repro.eval.costmodel import (
    CostModel,
    UpdateCostRow,
    reference_count_for_area,
    sweep_update_cost,
)


class TestCostModel:
    def test_paper_full_survey_example(self):
        """Paper: 6 m x 6 m area costs 100 * (6/0.6)^2 / 3600 ≈ 2.78 h."""
        model = CostModel()
        assert model.full_survey_hours(6.0) == pytest.approx(2.78, abs=0.01)

    def test_paper_tafloc_example(self):
        """Paper: 10 reference locations cost 100 * 10 / 3600 ≈ 0.28 h."""
        model = CostModel()
        assert model.tafloc_update_hours(10) == pytest.approx(0.28, abs=0.01)

    def test_cells_in_square(self):
        model = CostModel()
        assert model.cells_in_square(6.0) == 100
        assert model.cells_in_square(36.0) == 3600

    def test_survey_hours_linear_in_cells(self):
        model = CostModel()
        assert model.survey_hours(200) == pytest.approx(2 * model.survey_hours(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(samples_per_cell=0)
        with pytest.raises(ValueError):
            CostModel().survey_hours(-1)
        with pytest.raises(ValueError):
            CostModel().cells_in_square(0.0)


class TestReferenceScaling:
    def test_paper_testbed_floor(self):
        assert reference_count_for_area(96) == 10

    def test_sublinear_growth(self):
        small = reference_count_for_area(100)
        large = reference_count_for_area(3600)
        assert large > small
        assert large < 36 * small / (100 / 100)  # far below linear scaling

    def test_sqrt_scaling(self):
        base = reference_count_for_area(96)
        quadrupled = reference_count_for_area(4 * 96)
        assert quadrupled == pytest.approx(2 * base, abs=1)

    def test_invalid_cells(self):
        with pytest.raises(ValueError):
            reference_count_for_area(0)


class TestSweep:
    def test_fig4_sweep_shape(self):
        """The Fig. 4 qualitative claims: TafLoc is always cheaper, and the
        gap widens as the area grows (paper: "when the area size becomes
        bigger, TafLoc saves more time")."""
        rows = sweep_update_cost([6.0, 12.0, 18.0, 24.0, 30.0, 36.0])
        assert len(rows) == 6
        for row in rows:
            assert row.tafloc_hours < row.existing_hours
        savings = [row.savings_factor for row in rows]
        assert all(a < b for a, b in zip(savings, savings[1:]))

    def test_fig4_anchor_values(self):
        rows = sweep_update_cost([6.0])
        row = rows[0]
        assert row.existing_hours == pytest.approx(2.78, abs=0.01)
        assert row.tafloc_hours == pytest.approx(0.28, abs=0.01)

    def test_existing_cost_grows_quadratically(self):
        rows = sweep_update_cost([6.0, 12.0])
        assert rows[1].existing_hours == pytest.approx(
            4 * rows[0].existing_hours
        )

    def test_savings_factor_infinite_when_free(self):
        row = UpdateCostRow(
            edge_length_m=1.0,
            cell_count=1,
            reference_count=0,
            existing_hours=1.0,
            tafloc_hours=0.0,
        )
        assert row.savings_factor == float("inf")
