"""Tests for the parallel deterministic experiment engine."""

import numpy as np
import pytest

from repro.eval.engine import (
    ExperimentEngine,
    cached_scenario,
    task_fingerprint,
)
from repro.eval.experiments import (
    run_fig3_reconstruction_error,
    run_fig5_localization,
    run_intext_drift,
)
from repro.sim.specs import build_scenario, get_scenario_spec
from repro.util.rng import task_key


def _square(payload):
    return payload["value"] ** 2


def _boxed(payload):
    return [payload["value"]]


class TestTaskFingerprint:
    def test_plain_data_hashable_and_stable(self):
        payload = {
            "day": 3.0,
            "cells": (1, 2, 3),
            "nested": {"a": None, "b": True},
            "array": np.arange(4.0),
        }
        first = task_fingerprint(payload)
        second = task_fingerprint(
            {
                "array": np.arange(4.0),
                "nested": {"b": True, "a": None},
                "cells": (1, 2, 3),
                "day": 3.0,
            }
        )
        assert first is not None
        assert first == second

    def test_distinguishes_values_and_shapes(self):
        assert task_fingerprint({"v": 1}) != task_fingerprint({"v": 2})
        assert task_fingerprint({"v": 1}) != task_fingerprint({"v": 1.0})
        assert task_fingerprint({"v": np.zeros(4)}) != task_fingerprint(
            {"v": np.zeros((2, 2))}
        )

    def test_live_objects_unhashable(self):
        assert task_fingerprint({"rng": np.random.default_rng(0)}) is None
        assert task_fingerprint({"fn": _square}) is None


class TestTaskKey:
    def test_deterministic_and_label_sensitive(self):
        assert task_key(7, "fig3", 2) == task_key(7, "fig3", 2)
        assert task_key(7, "fig3", 2) != task_key(7, "fig3", 3)
        assert task_key(7, "fig3", 2) != task_key(7, "fig5", 2)
        assert task_key(7, "fig3", 2) != task_key(8, "fig3", 2)


class TestEngineMap:
    def test_order_preserved_serial_and_parallel(self):
        payloads = [{"value": v} for v in range(7)]
        serial = ExperimentEngine(jobs=1).map(_square, payloads)
        parallel = ExperimentEngine(jobs=2, chunk_size=2).map(_square, payloads)
        assert serial == [v**2 for v in range(7)]
        assert parallel == serial

    def test_cache_returns_identical_objects(self):
        engine = ExperimentEngine(jobs=1)
        payloads = [{"value": 3}]
        first = engine.map(_boxed, payloads)
        second = engine.map(_boxed, payloads)
        assert first[0] is second[0]
        assert engine.stats.cache_hits == 1
        assert engine.stats.tasks_run == 1

    def test_duplicate_payloads_computed_once(self):
        engine = ExperimentEngine(jobs=1)
        results = engine.map(_boxed, [{"value": 1}, {"value": 1}])
        assert results[0] is results[1]
        assert engine.stats.tasks_run == 1

    def test_cache_disabled(self):
        engine = ExperimentEngine(jobs=1, cache=False)
        first = engine.map(_boxed, [{"value": 1}])
        second = engine.map(_boxed, [{"value": 1}])
        assert first[0] is not second[0]

    def test_label_namespaces_cache(self):
        engine = ExperimentEngine(jobs=1)
        engine.map(_boxed, [{"value": 1}], label="a")
        engine.map(_boxed, [{"value": 1}], label="b")
        assert engine.stats.tasks_run == 2

    def test_jobs_validated(self):
        with pytest.raises(ValueError, match="jobs"):
            ExperimentEngine(jobs=0)
        with pytest.raises(ValueError, match="chunk_size"):
            ExperimentEngine(jobs=2, chunk_size=0)


class TestScenarioCache:
    def test_identical_objects_across_runs(self):
        spec = get_scenario_spec("paper", seed=123454321)
        first = cached_scenario(spec, build_scenario)
        second = cached_scenario(spec, build_scenario)
        assert first is second

    def test_distinct_specs_distinct_scenarios(self):
        a = cached_scenario(get_scenario_spec("paper", seed=1), build_scenario)
        b = cached_scenario(get_scenario_spec("paper", seed=2), build_scenario)
        assert a is not b

    def test_distinct_environments_distinct_scenarios(self):
        a = cached_scenario(get_scenario_spec("paper", seed=1), build_scenario)
        b = cached_scenario(get_scenario_spec("corridor", seed=1), build_scenario)
        assert a is not b
        assert a.deployment.cell_count != b.deployment.cell_count


def _pid_task(payload):
    import os

    return os.getpid()


class TestPersistentPool:
    def test_pool_reused_across_maps(self):
        """Two parallel maps share one pool (workers started once)."""
        with ExperimentEngine(jobs=2, cache=False) as engine:
            first = engine.map(_pid_task, [{"v": i} for i in range(6)])
            second = engine.map(_pid_task, [{"v": i} for i in range(6, 12)])
            assert engine.stats.pools_created == 1
            assert engine.stats.parallel_batches == 2
            # Both batches were served by the same (single) pool of at most
            # `jobs` workers — a fresh pool per map would have spawned new
            # processes with new pids.
            assert len(set(first) | set(second)) <= 2

    def test_shutdown_idempotent_and_restartable(self):
        engine = ExperimentEngine(jobs=2, cache=False)
        engine.map(_pid_task, [{"v": i} for i in range(4)])
        engine.shutdown()
        engine.shutdown()
        # A fresh pool is created on demand after shutdown.
        engine.map(_pid_task, [{"v": i} for i in range(4)])
        assert engine.stats.pools_created == 2
        engine.shutdown()

    def test_serial_engine_never_creates_a_pool(self):
        engine = ExperimentEngine(jobs=1)
        engine.map(_square, [{"value": v} for v in range(4)])
        assert engine.stats.pools_created == 0


def _fig3_equal(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.day == y.day
        np.testing.assert_array_equal(x.errors, y.errors)
        assert x.mean_error == y.mean_error
        assert x.stale_mean_error == y.stale_mean_error
        assert x.oracle_mean_error == y.oracle_mean_error


class TestParallelBitIdentity:
    """The acceptance contract: jobs=2 results equal jobs=1 results exactly."""

    def test_fig3_parallel_identical_to_serial(self):
        kwargs = dict(days=(3.0, 45.0), seed=11)
        serial = run_fig3_reconstruction_error(
            engine=ExperimentEngine(jobs=1), **kwargs
        )
        parallel = run_fig3_reconstruction_error(
            engine=ExperimentEngine(jobs=2), **kwargs
        )
        _fig3_equal(serial, parallel)

    def test_fig5_parallel_identical_to_serial(self):
        kwargs = dict(
            day=45.0, test_cells=list(range(0, 96, 8)), frames_per_cell=1, seed=11
        )
        serial = run_fig5_localization(engine=ExperimentEngine(jobs=1), **kwargs)
        parallel = run_fig5_localization(
            engine=ExperimentEngine(jobs=2), **kwargs
        )
        assert set(serial.errors) == set(parallel.errors)
        for name in serial.errors:
            np.testing.assert_array_equal(
                serial.errors[name], parallel.errors[name]
            )

    def test_drift_parallel_identical_to_serial(self):
        kwargs = dict(days=(5.0, 45.0), seeds=(0, 1, 2))
        serial = run_intext_drift(engine=ExperimentEngine(jobs=1), **kwargs)
        parallel = run_intext_drift(engine=ExperimentEngine(jobs=2), **kwargs)
        assert serial == parallel


class TestFigureRunCache:
    def test_repeated_fig3_runs_reuse_results(self):
        engine = ExperimentEngine(jobs=1)
        first = run_fig3_reconstruction_error(
            days=(3.0,), seed=5, engine=engine
        )
        second = run_fig3_reconstruction_error(
            days=(3.0,), seed=5, engine=engine
        )
        assert first[0] is second[0]
        assert engine.stats.cache_hits == 1

    def test_different_days_not_conflated(self):
        engine = ExperimentEngine(jobs=1)
        a = run_fig3_reconstruction_error(days=(3.0,), seed=5, engine=engine)
        b = run_fig3_reconstruction_error(days=(45.0,), seed=5, engine=engine)
        assert a[0].day != b[0].day
