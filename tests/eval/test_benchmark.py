"""Smoke tests for the perf benchmark harness (kept tiny — the real run is
``make bench``)."""

import json

import pytest

from repro.eval.benchmark import (
    bench_engine,
    build_bench_deployment,
    format_bench_report,
    run_perf_bench,
)


@pytest.fixture(scope="module")
def tiny_report(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "bench.json"
    report = run_perf_bench(
        sizes=("square-3m",),
        frames=24,
        samples_per_cell=2,
        repeat=1,
        out_path=out,
        serving_sites=("square-3m", "square-4m"),
    )
    return report, out


def test_deployment_sizes():
    paper = build_bench_deployment("paper")
    assert paper.cell_count == 96
    square = build_bench_deployment("square-6m")
    assert square.cell_count == 100
    # Any registered scenario benchmarks directly.
    warehouse = build_bench_deployment("warehouse")
    assert warehouse.link_count == 6
    with pytest.raises(ValueError, match="unknown scenario"):
        build_bench_deployment("mega")


def test_report_structure(tiny_report):
    report, out = tiny_report
    record = report["sizes"]["square-3m"]
    for stage in ("survey", "match_trace"):
        assert record[stage]["batch_s"] > 0
        assert record[stage]["loop_s"] > 0
        assert record[stage]["speedup"] > 0
    solve = record["solve"]
    assert len(solve["cold_iterations"]) == 4
    assert solve["legacy_cold_s"] > 0
    assert solve["speedup"] > 0
    assert isinstance(solve["warm_le_cold"], bool)
    persisted = json.loads(out.read_text())
    assert persisted["sizes"]["square-3m"]["frames"] == 24


def test_serving_section_structure(tiny_report):
    report, out = tiny_report
    serving = report["serving"]
    assert serving["sites"] == ["square-3m", "square-4m"]
    assert serving["multi_site"]["pipelines_built"] == 2
    for row in serving["per_site"].values():
        assert row["bit_identical"] is True
        assert row["cold_first_query_s"] > 0
        for key in ("warm_batch_qps", "warm_single_qps", "rebuild_single_qps",
                    "matcher_cache_speedup"):
            assert row[key] > 0
    assert serving["multi_site"]["interleaved_single_qps"] > 0
    assert serving["multi_site"]["batch_qps"] > 0
    persisted = json.loads(out.read_text())
    assert set(persisted["serving"]["per_site"]) == {"square-3m", "square-4m"}


def test_report_formatting_includes_serving(tiny_report):
    report, _ = tiny_report
    text = format_bench_report(report)
    assert "serving layer" in text
    assert "bit-identical" in text


def test_engine_section_bit_identical():
    record = bench_engine(jobs=2, seed=99, fig3_days=(3.0,), fig5_day=30.0)
    for name in ("fig3", "fig5"):
        assert record[name]["bit_identical"] is True
        assert record[name]["legacy_s"] > 0
        assert record[name]["serial_s"] > 0
        assert record[name]["parallel_s"] > 0


def test_format_report(tiny_report):
    report, _ = tiny_report
    text = format_bench_report(report)
    assert "square-3m" in text
    assert "survey x" in text
