"""Tests for the sensitivity-analysis sweeps."""

import numpy as np
import pytest

from repro.eval.sensitivity import (
    as_rows,
    sweep_link_count,
    sweep_noise,
    sweep_reference_budget,
)


@pytest.fixture(scope="module")
def noise_points():
    return sweep_noise(sigmas_db=(0.5, 4.0), seed=5)


@pytest.fixture(scope="module")
def budget_points():
    return sweep_reference_budget(budgets=(5, 20), seed=5)


class TestSweepNoise:
    def test_point_structure(self, noise_points):
        assert [p.value for p in noise_points] == [0.5, 4.0]
        for p in noise_points:
            assert p.knob == "noise_sigma_db"
            assert p.reconstruction_error_db > 0
            assert p.localization_median_m > 0

    def test_more_noise_not_better(self, noise_points):
        low, high = noise_points
        assert high.localization_median_m >= low.localization_median_m - 0.3

    def test_system_usable_across_band(self, noise_points):
        for p in noise_points:
            assert p.localization_median_m < 3.0  # far better than chance


class TestSweepReferenceBudget:
    def test_bigger_budget_reconstructs_better(self, budget_points):
        small, large = budget_points
        assert (
            large.reconstruction_error_db
            <= small.reconstruction_error_db + 0.2
        )

    def test_knob_labelled(self, budget_points):
        assert all(p.knob == "reference_count" for p in budget_points)


class TestSweepLinkCount:
    def test_runs_and_labels(self):
        points = sweep_link_count(link_counts=(6, 10), seed=5)
        assert [int(p.value) for p in points] == [6, 10]
        for p in points:
            assert p.knob == "link_count"
            assert np.isfinite(p.localization_median_m)


class TestAsRows:
    def test_row_shape(self, noise_points):
        rows = as_rows(noise_points)
        assert len(rows) == 2
        assert len(rows[0]) == 3
