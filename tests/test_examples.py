"""Smoke tests for the example scripts.

Full example runs take minutes (they use the paper's 100-sample protocol),
so these tests compile each script and execute its importable pieces; the
end-to-end behaviour the examples demonstrate is covered by the integration
tests with reduced protocols.
"""

import ast
import py_compile
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLE_SCRIPTS}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable floor


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=lambda p: p.name
)
def test_example_compiles(script, tmp_path):
    py_compile.compile(str(script), cfile=str(tmp_path / "out.pyc"), doraise=True)


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=lambda p: p.name
)
def test_example_structure(script):
    """Every example has a module docstring, a main(), and a run guard."""
    tree = ast.parse(script.read_text())
    assert ast.get_docstring(tree), f"{script.name} lacks a docstring"
    functions = {
        node.name for node in tree.body if isinstance(node, ast.FunctionDef)
    }
    assert "main" in functions, f"{script.name} lacks a main()"
    has_guard = any(
        isinstance(node, ast.If)
        and isinstance(node.test, ast.Compare)
        and getattr(node.test.left, "id", "") == "__name__"
        for node in tree.body
    )
    assert has_guard, f"{script.name} lacks an __main__ guard"


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=lambda p: p.name
)
def test_example_imports_resolve(script):
    """Every repro import the example makes actually exists."""
    import importlib

    tree = ast.parse(script.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and (
            node.module == "repro" or node.module.startswith("repro.")
        ):
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{script.name}: {node.module} has no {alias.name}"
                )
