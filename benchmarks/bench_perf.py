#!/usr/bin/env python
"""Run the batch-hot-path performance benchmark and write BENCH_PR1.json.

Usage::

    python benchmarks/bench_perf.py [--out BENCH_PR1.json]
        [--sizes paper square-6m square-12m] [--frames 500] [--repeat 3]

Times commissioning surveys, LoLi-IR updates (cold vs warm-started) and
trace-level matching, batch vs loop, on several deployment sizes. See
EXPERIMENTS.md for the recorded trajectory and how to read the numbers.
The file name is intentionally ``bench_*`` (not ``test_*``) so pytest's
benchmark collection does not pick it up.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Allow running straight from a checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.eval.benchmark import (  # noqa: E402
    DEFAULT_SIZES,
    format_bench_report,
    run_perf_bench,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default="BENCH_PR1.json",
        help="output JSON path (default: BENCH_PR1.json)",
    )
    parser.add_argument(
        "--sizes",
        nargs="+",
        default=list(DEFAULT_SIZES),
        help="deployment sizes: 'paper' or 'square-<edge>m'",
    )
    parser.add_argument("--frames", type=int, default=500)
    parser.add_argument("--samples-per-cell", type=int, default=10)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2016)
    args = parser.parse_args(argv)

    report = run_perf_bench(
        sizes=args.sizes,
        frames=args.frames,
        samples_per_cell=args.samples_per_cell,
        repeat=args.repeat,
        seed=args.seed,
        out_path=args.out,
    )
    print(format_bench_report(report))
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
