#!/usr/bin/env python
"""Run the performance benchmark and write BENCH_PR2.json.

Usage::

    python benchmarks/bench_perf.py [--out BENCH_PR2.json]
        [--sizes paper square-6m square-12m] [--frames 500] [--repeat 3]
        [--jobs 2] [--smoke]

Times commissioning surveys, LoLi-IR updates (legacy matrix-free CG vs the
Gram fast path, cold vs warm-started) and trace-level matching on several
deployment sizes, plus the Fig. 3/Fig. 5 experiments end-to-end through the
parallel experiment engine (with a serial-vs-parallel bit-identity check).
``--smoke`` runs a seconds-scale subset for CI. See EXPERIMENTS.md for the
recorded trajectory and how to read the numbers. The file name is
intentionally ``bench_*`` (not ``test_*``) so pytest's benchmark collection
does not pick it up.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Allow running straight from a checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.eval.benchmark import (  # noqa: E402
    DEFAULT_SIZES,
    format_bench_report,
    run_perf_bench,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default="BENCH_PR2.json",
        help="output JSON path (default: BENCH_PR2.json)",
    )
    parser.add_argument(
        "--sizes",
        nargs="+",
        default=list(DEFAULT_SIZES),
        help="deployment sizes: 'paper' or 'square-<edge>m'",
    )
    parser.add_argument("--frames", type=int, default=500)
    parser.add_argument("--samples-per-cell", type=int, default=10)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument(
        "--jobs", type=int, default=2,
        help="worker count for the engine benchmark section",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale subset for CI: one tiny size, no JSON output",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        report = run_perf_bench(
            sizes=("square-3m",),
            frames=24,
            samples_per_cell=2,
            repeat=1,
            seed=args.seed,
            out_path=None,
            engine_jobs=args.jobs,
        )
        print(format_bench_report(report))
        engine = report["engine"]
        if not all(engine[f]["bit_identical"] for f in ("fig3", "fig5")):
            print("FAIL: parallel results differ from serial", file=sys.stderr)
            return 1
        return 0

    report = run_perf_bench(
        sizes=args.sizes,
        frames=args.frames,
        samples_per_cell=args.samples_per_cell,
        repeat=args.repeat,
        seed=args.seed,
        out_path=args.out,
        engine_jobs=args.jobs,
    )
    print(format_bench_report(report))
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
