#!/usr/bin/env python
"""Run the performance benchmark and write BENCH_PR8.json.

Usage::

    python benchmarks/bench_perf.py [--out BENCH_PR8.json]
        [--sizes paper square-6m square-12m warehouse ...] [--frames 500]
        [--repeat 3] [--jobs 2] [--scenario paper] [--smoke]

Times commissioning surveys, LoLi-IR updates (legacy matrix-free CG vs the
Gram fast path, cold vs warm-started, PCG vs cached-splu coupled backend)
and trace-level matching on several deployment sizes — ``--sizes`` accepts
any scenario registry name, and every row records its scenario — plus the
Fig. 3/Fig. 5 experiments end-to-end through the parallel experiment engine
(one persistent pool shared across both figures, with a serial-vs-parallel
bit-identity check; ``--scenario`` selects the environment), plus the
multi-site serving layer (cold vs warm, single vs batch, matcher-cache
speedup, queries/sec across all ``--sizes`` in one process), plus the wire
front-end and shard layer (HTTP / unix-socket round-trip latency and q/s
vs in-process, shard fan-out scaling, all bit-identity-gated), plus the
asyncio front-end (closed-loop pipelined driver over 1/2/4 persistent
connections with p50/p95/p99 and sustained q/s, the aio-vs-threaded-HTTP
speedup, and the chunk-streamed ``query_trace`` path gated on bit-identity
and flat peak per-message buffering), plus the fault-tolerant fleet (failed-query count and tail-latency perturbation
across a ``kill -9`` under load, recovery time, snapshot-warm vs
cold-survey restore speedup — R >= 2 must lose zero queries), plus the
anti-entropy trust layer (quorum-read overhead vs failover, the corrupt
fault's detect-and-repair episode with the mismatched-answer count
clients saw, the keep-last-K snapshot soak, drift-probe cost). ``--smoke``
runs a seconds-scale subset for CI and honors ``--out`` so the workflow can
upload the JSON as an artifact (the CI convention is ``make bench-smoke``
→ ``BENCH_SMOKE.json``; the committed full run is ``BENCH_PR8.json``). See
EXPERIMENTS.md for the recorded trajectory and how to read the numbers.
The file name is intentionally ``bench_*`` (not ``test_*``) so pytest's
benchmark collection does not pick it up.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Allow running straight from a checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.eval.benchmark import (  # noqa: E402
    DEFAULT_SIZES,
    format_bench_report,
    run_perf_bench,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default: BENCH_PR8.json; with --smoke, no "
        "file is written unless --out is given)",
    )
    parser.add_argument(
        "--sizes",
        nargs="+",
        default=list(DEFAULT_SIZES),
        help="scenario names ('paper', 'warehouse', ...) or 'square-<edge>m'",
    )
    parser.add_argument("--frames", type=int, default=500)
    parser.add_argument("--samples-per-cell", type=int, default=10)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument(
        "--jobs", type=int, default=2,
        help="worker count for the engine benchmark section",
    )
    parser.add_argument(
        "--scenario", default="paper",
        help="scenario for the engine benchmark section",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale subset for CI: one tiny size (JSON still "
        "written to --out when given)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        report = run_perf_bench(
            sizes=("square-3m",),
            frames=24,
            samples_per_cell=2,
            repeat=1,
            seed=args.seed,
            out_path=args.out,
            engine_jobs=args.jobs,
            engine_scenario=args.scenario,
            serving_sites=("square-3m", "square-4m"),
            frontend_sites=("square-3m", "square-4m"),
            frontend_shards=(1, 2),
            frontend_async_sites=("square-3m",),
            frontend_async_connections=(1, 2),
            resilience_sites=("square-3m", "square-4m"),
            resilience_shards=2,
            resilience_replicas=2,
            trust_sites=("square-3m", "square-4m"),
        )
        print(format_bench_report(report))
        engine = report["engine"]
        if not all(engine[f]["bit_identical"] for f in ("fig3", "fig5")):
            print("FAIL: parallel results differ from serial", file=sys.stderr)
            return 1
        serving = report["serving"]["per_site"]
        if not all(row["bit_identical"] for row in serving.values()):
            print(
                "FAIL: serving answers differ from direct TafLoc calls",
                file=sys.stderr,
            )
            return 1
        frontend = report["frontend"]
        wire_ok = all(
            row["http_bit_identical"] and row["unix_bit_identical"]
            for row in frontend["per_site"].values()
        )
        shard_ok = all(
            row["bit_identical"] for row in frontend["shards"].values()
        )
        if not (wire_ok and shard_ok):
            print(
                "FAIL: wire/shard answers differ from in-process service",
                file=sys.stderr,
            )
            return 1
        frontend_async = report["frontend_async"]
        aio_ok = all(
            row["bit_identical"]
            for row in frontend_async["per_site"].values()
        )
        streaming = frontend_async["trace_streaming"]
        stream_ok = all(
            row["bit_identical"] for row in streaming["lengths"].values()
        )
        if not (aio_ok and stream_ok):
            print(
                "FAIL: asyncio front-end answers differ from in-process "
                "service",
                file=sys.stderr,
            )
            return 1
        if not streaming["buffering_flat"]:
            print(
                "FAIL: streamed query_trace peak buffering grows with "
                "trace length",
                file=sys.stderr,
            )
            return 1
        resilience = report["resilience"]
        if not (resilience["zero_loss"] and resilience["recovered"]):
            print(
                "FAIL: queries lost or worker never recovered under kill -9",
                file=sys.stderr,
            )
            return 1
        if not resilience["snapshot_warm_bit_identical"]:
            print(
                "FAIL: snapshot-warmed fleet answers differ",
                file=sys.stderr,
            )
            return 1
        trust = report["trust"]
        episode = trust["corruption_episode"]
        if (
            episode["mismatched_queries"] != 0
            or episode["failed_queries"] != 0
            or episode["read_divergences"] < 1
            or episode["repairs"] < 1
        ):
            print(
                "FAIL: corrupted replica leaked to clients or was never "
                "detected/repaired",
                file=sys.stderr,
            )
            return 1
        if not trust["snapshot_soak"]["bounded"]:
            print(
                "FAIL: snapshot directory grew past keep-last-K",
                file=sys.stderr,
            )
            return 1
        return 0

    out = args.out or "BENCH_PR8.json"
    report = run_perf_bench(
        sizes=args.sizes,
        frames=args.frames,
        samples_per_cell=args.samples_per_cell,
        repeat=args.repeat,
        seed=args.seed,
        out_path=out,
        engine_jobs=args.jobs,
        engine_scenario=args.scenario,
        serving_sites=tuple(args.sizes),
        frontend_sites=tuple(args.sizes),
        frontend_async_sites=tuple(args.sizes),
        resilience_sites=("square-3m", "square-4m", "square-5m"),
        trust_sites=("square-3m", "square-4m"),
    )
    print(format_bench_report(report))
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
