#!/usr/bin/env python
"""Run the performance benchmark and write BENCH_PR10.json.

Usage::

    python benchmarks/bench_perf.py [--out BENCH_PR10.json]
        [--sizes paper square-6m square-12m warehouse ...] [--frames 500]
        [--repeat 3] [--jobs 2] [--scenario paper] [--smoke]
        [--only SECTION [--only SECTION ...]]

A thin driver over the :mod:`repro.eval.bench` section registry. Each
registered section — ``solve`` (surveys / LoLi-IR updates / matching),
``engine`` (Fig. 3/5 end-to-end through the parallel engine), ``serving``
(multi-site in-process service), ``frontend`` (HTTP/unix wire + shard
fan-out), ``frontend_async`` (pipelined asyncio NDJSON), ``resilience``
(kill -9 under load), ``trust`` (quorum reads, corruption repair,
snapshot soak), ``loadgen`` (open/closed-loop load generation with the
SLO saturation search and the many-site soak) — owns its measurement,
its block of the printed report, and its ``--smoke`` CI gates.
``--only`` narrows a run to the named section(s); the default run emits
every section, key-for-key identical to the pre-registry reports.
``--smoke`` runs a seconds-scale subset and exits non-zero on any
registered smoke-gate failure; it honors ``--out`` so the workflow can
upload the JSON as an artifact (the CI convention is ``make bench-smoke``
→ ``BENCH_SMOKE.json``; the committed full run is ``BENCH_PR10.json``).
See EXPERIMENTS.md for the recorded trajectory and how to read the
numbers. The file name is intentionally ``bench_*`` (not ``test_*``) so
pytest's benchmark collection does not pick it up.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Allow running straight from a checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.eval.bench import (  # noqa: E402
    DEFAULT_SIZES,
    format_bench_report,
    run_perf_bench,
    section_names,
    smoke_failures,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default: BENCH_PR10.json; with --smoke, no "
        "file is written unless --out is given)",
    )
    parser.add_argument(
        "--sizes",
        nargs="+",
        default=list(DEFAULT_SIZES),
        help="scenario names ('paper', 'warehouse', ...) or 'square-<edge>m'",
    )
    parser.add_argument("--frames", type=int, default=500)
    parser.add_argument("--samples-per-cell", type=int, default=10)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument(
        "--jobs", type=int, default=2,
        help="worker count for the engine benchmark section",
    )
    parser.add_argument(
        "--scenario", default="paper",
        help="scenario for the engine benchmark section",
    )
    parser.add_argument(
        "--only",
        action="append",
        choices=section_names(),
        default=None,
        metavar="SECTION",
        help="run only the named section(s); repeatable "
        f"(registered: {', '.join(section_names())})",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale subset for CI: one tiny size, every section's "
        "smoke gates enforced (JSON still written to --out when given)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        report = run_perf_bench(
            sizes=("square-3m",),
            frames=24,
            samples_per_cell=2,
            repeat=1,
            seed=args.seed,
            out_path=args.out,
            engine_jobs=args.jobs,
            engine_scenario=args.scenario,
            serving_sites=("square-3m", "square-4m"),
            frontend_sites=("square-3m", "square-4m"),
            frontend_shards=(1, 2),
            frontend_async_sites=("square-3m",),
            frontend_async_connections=(1, 2),
            resilience_sites=("square-3m", "square-4m"),
            resilience_shards=2,
            resilience_replicas=2,
            trust_sites=("square-3m", "square-4m"),
            loadgen_sites=("square-3m",),
            loadgen_transports=("http", "aio"),
            loadgen_shards=(1,),
            loadgen_requests=60,
            loadgen_start_qps=50.0,
            loadgen_max_qps=2000.0,
            loadgen_soak_sites=200,
            only=args.only,
        )
        print(format_bench_report(report))
        failures = smoke_failures(report)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0

    out = args.out or "BENCH_PR10.json"
    report = run_perf_bench(
        sizes=args.sizes,
        frames=args.frames,
        samples_per_cell=args.samples_per_cell,
        repeat=args.repeat,
        seed=args.seed,
        out_path=out,
        engine_jobs=args.jobs,
        engine_scenario=args.scenario,
        serving_sites=tuple(args.sizes),
        frontend_sites=tuple(args.sizes),
        frontend_async_sites=tuple(args.sizes),
        resilience_sites=("square-3m", "square-4m", "square-5m"),
        trust_sites=("square-3m", "square-4m"),
        loadgen_sites=("square-3m", "square-4m"),
        loadgen_transports=("http", "aio"),
        loadgen_shards=(1, 2),
        loadgen_soak_sites=1000,
        only=args.only,
    )
    print(format_bench_report(report))
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
