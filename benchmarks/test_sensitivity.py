"""Robustness benchmark: sensitivity of the headline result to the
environment (noise level, link count, reference budget).

Not a figure in the poster; answers the reviewer question "does the cheap
update still work when the deployment is noisier / sparser / stingier?".
"""

import pytest

from benchmarks.conftest import BENCH_SEED, emit
from repro.eval.reporting import format_table
from repro.eval.sensitivity import (
    as_rows,
    sweep_noise,
    sweep_reference_budget,
)


@pytest.fixture(scope="module")
def noise_points():
    return sweep_noise(sigmas_db=(0.5, 1.0, 2.0, 4.0), seed=BENCH_SEED)


@pytest.fixture(scope="module")
def budget_points():
    return sweep_reference_budget(budgets=(5, 10, 20), seed=BENCH_SEED)


def test_sensitivity_benchmark(benchmark):
    points = benchmark.pedantic(
        sweep_noise,
        kwargs={"sigmas_db": (1.0,), "seed": BENCH_SEED + 1},
        rounds=1,
        iterations=1,
    )
    assert len(points) == 1


def test_sensitivity_report(benchmark, capsys, noise_points, budget_points):
    noise_rows = benchmark.pedantic(
        as_rows, args=(noise_points,), rounds=1, iterations=1
    )
    budget_rows = as_rows(budget_points)
    headers = ["setting", "45-d recon err [dB]", "45-d loc median [m]"]
    emit(
        capsys,
        "[Sensitivity] Measurement noise sigma (dB):\n"
        + format_table(headers, noise_rows, precision=2)
        + "\n\n[Sensitivity] Reference budget n:\n"
        + format_table(headers, budget_rows, precision=2),
    )

    # The headline survives the whole swept band.
    for p in (*noise_points, *budget_points):
        assert p.localization_median_m < 3.0
    # A larger reference budget does not hurt reconstruction.
    assert (
        budget_points[-1].reconstruction_error_db
        <= budget_points[0].reconstruction_error_db + 0.2
    )
