"""Ablation: reference-location count and selection strategy.

The paper selects "maximum linearly independent" columns (pivoted QR here)
and uses n = 10 for 96 cells. This benchmark sweeps both choices on the
45-day reconstruction workload and reports mean error, justifying the
defaults documented in EXPERIMENTS.md.
"""

import pytest

from benchmarks.conftest import BENCH_SEED, emit
from repro.core.pipeline import TafLocConfig
from repro.core.reconstruction import ReconstructionConfig
from repro.eval.experiments import run_fig3_reconstruction_error
from repro.eval.reporting import format_table
from repro.sim.scenario import build_paper_scenario

STRATEGIES = ("pivoted_qr", "greedy", "kmeans", "random")
COUNTS = (5, 10, 20)


def run_config(strategy: str, count: int, seed: int) -> float:
    scenario = build_paper_scenario(seed=seed)
    config = TafLocConfig(
        reconstruction=ReconstructionConfig(
            reference_strategy=strategy, reference_count=count
        )
    )
    results = run_fig3_reconstruction_error(
        days=(45.0,), seed=seed, scenario=scenario, config=config
    )
    return results[0].oracle_mean_error


@pytest.fixture(scope="module")
def strategy_results():
    return {
        strategy: run_config(strategy, 10, BENCH_SEED)
        for strategy in STRATEGIES
    }


@pytest.fixture(scope="module")
def count_results():
    return {count: run_config("pivoted_qr", count, BENCH_SEED) for count in COUNTS}


def test_reference_benchmark(benchmark):
    error = benchmark.pedantic(
        run_config, args=("pivoted_qr", 10, BENCH_SEED + 7), rounds=1,
        iterations=1,
    )
    assert error > 0


def test_reference_report(benchmark, capsys, strategy_results, count_results):
    strategy_rows = benchmark.pedantic(
        lambda: [[s, e] for s, e in strategy_results.items()],
        rounds=1,
        iterations=1,
    )
    count_rows = [[c, e] for c, e in count_results.items()]
    emit(
        capsys,
        "[Ablation] Reference selection, 45-day reconstruction error\n"
        + format_table(["strategy (n=10)", "mean err [dB]"], strategy_rows,
                       precision=2)
        + "\n\n"
        + format_table(["n (pivoted_qr)", "mean err [dB]"], count_rows,
                       precision=2),
    )

    # More references can't hurt much: n=20 is at least as good as n=5.
    assert count_results[20] <= count_results[5] + 0.3
    # The paper's criterion is competitive with the best arm.
    best = min(strategy_results.values())
    assert strategy_results["pivoted_qr"] <= best + 0.5
