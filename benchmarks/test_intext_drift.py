"""In-text measurement reproduction: slow RSS drift over days.

The paper's introduction reports: *"even without any change in the
environment, the RSS measurements still change slowly in the scale of days
... the RSS values change 2.5 dBm and 6 dBm respectively after 5 and 45
days."* This benchmark measures the same quantity on the simulated testbed
(ensemble mean over several rooms) and checks it lands near the anchors.
"""

from benchmarks.conftest import emit
from repro.eval.experiments import run_intext_drift
from repro.eval.reporting import format_table

PAPER_ANCHORS = {5.0: 2.5, 45.0: 6.0}


def test_intext_drift(benchmark, capsys):
    results = benchmark.pedantic(
        run_intext_drift,
        kwargs={"days": (3.0, 5.0, 15.0, 45.0, 90.0), "seeds": tuple(range(6))},
        rounds=1,
        iterations=1,
    )

    rows = []
    for day in sorted(results):
        paper = PAPER_ANCHORS.get(day, "-")
        rows.append([int(day), results[day], paper])
    emit(
        capsys,
        "[In-text] Mean |empty-room RSS change| vs time gap "
        "(paper anchors: 2.5 dBm @ 5 d, 6 dBm @ 45 d)\n"
        + format_table(["days", "measured [dB]", "paper [dB]"], rows, precision=2),
    )

    assert abs(results[5.0] - 2.5) < 1.5
    assert abs(results[45.0] - 6.0) < 3.0
    assert results[45.0] > results[5.0]
