"""Ablation: LoLi-IR convergence behaviour and runtime scaling.

DESIGN.md commits the solver to alternating conjugate-gradient steps with
a monotone objective; this benchmark records (a) the per-sweep objective
decrease on a real update instance and (b) wall-time scaling of one update
as the monitored area (and thus the matrix) grows.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SEED, emit
from repro.core.pipeline import TafLoc, TafLocConfig
from repro.eval.reporting import format_series, format_table
from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.deployment import build_square_deployment
from repro.sim.scenario import build_paper_scenario
from repro.util.rng import spawn_children


@pytest.fixture(scope="module")
def update_report(bench_scenario):
    collector_rng, system_rng = spawn_children(BENCH_SEED + 3, 2)
    system = TafLoc(
        RssCollector(
            bench_scenario,
            CollectionProtocol(samples_per_cell=20, empty_room_samples=20),
            seed=collector_rng,
        ),
        TafLocConfig(),
        seed=system_rng,
    )
    system.commission(0.0)
    return system.update(45.0)


def run_update_for_edge(edge: float, seed: int) -> float:
    """Seconds for one LoLi-IR update on a square area of the given edge."""
    deployment = build_square_deployment(edge)
    scenario = build_paper_scenario(seed=seed, deployment=deployment)
    collector_rng, system_rng = spawn_children(seed, 2)
    protocol = CollectionProtocol(samples_per_cell=3, empty_room_samples=5)
    system = TafLoc(
        RssCollector(scenario, protocol, seed=collector_rng),
        TafLocConfig(),
        seed=system_rng,
    )
    system.commission(0.0)
    start = time.perf_counter()
    system.update(30.0)
    return time.perf_counter() - start


def test_solver_convergence(benchmark, capsys, update_report):
    history = benchmark.pedantic(
        lambda: update_report.reconstruction.solver_result.objective_history,
        rounds=1,
        iterations=1,
    )
    emit(
        capsys,
        "[Ablation] LoLi-IR objective per outer sweep (45-day update)\n"
        + format_series(
            "objective", list(range(len(history))), history.tolist(), precision=1
        ),
    )
    # Monotone non-increasing, with a material drop from the warm start.
    assert np.all(np.diff(history) <= 1e-6 * np.maximum(1.0, history[:-1]))
    assert history[-1] < history[0]


def test_solver_runtime_scaling(benchmark, capsys):
    seconds = {}
    for edge in (6.0, 9.0, 12.0):
        seconds[edge] = run_update_for_edge(edge, BENCH_SEED)

    benchmark.pedantic(
        run_update_for_edge, args=(6.0, BENCH_SEED + 1), rounds=1, iterations=1
    )

    rows = [
        [int(edge), int((edge / 0.6) ** 2), secs]
        for edge, secs in seconds.items()
    ]
    emit(
        capsys,
        "[Ablation] One TafLoc update wall time vs area size\n"
        + format_table(["edge [m]", "cells", "update [s]"], rows, precision=2),
    )

    # The solve stays practical at 4x the paper's cell count.
    assert seconds[12.0] < 120.0
