"""Extension benchmark: continuous tracking quality vs fingerprint age.

Not a figure in the poster — the poster's applications (elderly care,
intrusion) need tracking, so this benchmark quantifies what the TafLoc
update buys a tracker: median tracking error on a random-waypoint walk at
30/90 days, with fingerprints refreshed by TafLoc vs left stale.
"""

import pytest

from benchmarks.conftest import BENCH_SEED, emit
from repro.eval.reporting import format_table
from repro.eval.tracking_experiments import (
    run_tracking_experiment,
    summarize_tracking,
)

DAYS = (30.0, 90.0)


@pytest.fixture(scope="module")
def tracking_results():
    return run_tracking_experiment(days=DAYS, frames=60, seed=BENCH_SEED)


def test_tracking_benchmark(benchmark):
    results = benchmark.pedantic(
        run_tracking_experiment,
        kwargs={"days": (30.0,), "frames": 30, "seed": BENCH_SEED + 1},
        rounds=1,
        iterations=1,
    )
    assert len(results) == 2


def test_tracking_report(benchmark, capsys, tracking_results):
    summary = benchmark.pedantic(
        summarize_tracking, args=(tracking_results,), rounds=1, iterations=1
    )
    rows = [
        [int(day), summary["updated"][day], summary["stale"][day]]
        for day in DAYS
    ]
    emit(
        capsys,
        "[Extension] Particle-filter tracking median error vs fingerprint "
        "age (random-waypoint walk)\n"
        + format_table(
            ["day", "TafLoc-updated [m]", "stale day-0 [m]"], rows, precision=2
        ),
    )
    for day in DAYS:
        # At short gaps the stale prints are still usable, so allow a tie;
        # the decisive win is at the long gap.
        assert summary["updated"][day] < summary["stale"][day] + 0.25
        assert summary["updated"][day] < 2.0
    assert summary["updated"][90.0] < summary["stale"][90.0]
