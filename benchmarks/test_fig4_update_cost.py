"""Fig. 4 reproduction: fingerprint-update time cost vs area size.

The paper's Fig. 4 sweeps the monitored area's edge length from 6 m to
36 m and compares the survey time of existing fingerprint systems (every
grid cell re-measured: 100 samples at 1 Hz each) against TafLoc (only the
reference locations re-measured). The in-text anchors: a 6 m x 6 m area
costs ≈2.78 h to survey from scratch but ≈0.28 h (10 reference cells) with
TafLoc, and "when the area size becomes bigger, TafLoc saves more time".

The cost model is exercised two ways: analytically (the sweep, as in the
paper) and empirically (the collector's sample accounting on an actual
update of the simulated testbed), and the two must agree.
"""

import pytest

from benchmarks.conftest import emit
from repro.eval.costmodel import CostModel, sweep_update_cost
from repro.eval.reporting import format_table

EDGES = (6.0, 12.0, 18.0, 24.0, 30.0, 36.0)


def test_fig4_update_cost(benchmark, capsys):
    rows_data = benchmark.pedantic(
        sweep_update_cost, args=(EDGES,), rounds=3, iterations=1
    )

    rows = [
        [
            int(row.edge_length_m),
            row.cell_count,
            row.reference_count,
            row.existing_hours,
            row.tafloc_hours,
            row.savings_factor,
        ]
        for row in rows_data
    ]
    emit(
        capsys,
        "[Fig. 4] Fingerprint update time cost vs area edge length "
        "(paper anchors @6 m: existing 2.78 h, TafLoc 0.28 h)\n"
        + format_table(
            [
                "edge [m]",
                "cells",
                "refs",
                "existing [h]",
                "TafLoc [h]",
                "savings x",
            ],
            rows,
            precision=2,
        ),
    )

    # Anchors from the paper's own arithmetic.
    assert rows_data[0].existing_hours == pytest.approx(2.78, abs=0.01)
    assert rows_data[0].tafloc_hours == pytest.approx(0.28, abs=0.01)
    # TafLoc is cheaper everywhere and the gap widens with the area.
    savings = [row.savings_factor for row in rows_data]
    assert all(s > 1.0 for s in savings)
    assert all(a < b for a, b in zip(savings, savings[1:]))


def test_fig4_empirical_accounting(benchmark, capsys, bench_system):
    """The collector's measured sample counts match the analytic model."""
    report = benchmark.pedantic(
        bench_system.update, args=(2.0,), rounds=1, iterations=1
    )
    model = CostModel()
    analytic_update = model.tafloc_update_hours(10) * 3600.0
    analytic_full = model.survey_hours(96) * 3600.0

    emit(
        capsys,
        "[Fig. 4] Empirical cost of one TafLoc update on the 96-cell "
        "testbed:\n"
        + format_table(
            ["quantity", "measured [s]", "analytic [s]"],
            [
                ["TafLoc update", report.seconds_spent, analytic_update],
                ["full survey", report.full_survey_seconds, analytic_full],
            ],
            precision=0,
        ),
    )

    assert report.seconds_spent == pytest.approx(analytic_update)
    assert report.full_survey_seconds == pytest.approx(analytic_full)
    assert report.savings_factor == pytest.approx(9.6)
