"""Fig. 5 reproduction: localization accuracy at 3 months.

The paper's Fig. 5 compares localization-error CDFs three months after the
initial survey: TafLoc (reconstruction-refreshed fingerprints) against RTI,
RASS with the reconstruction scheme plugged in, and RASS without it. The
published claims: *"TafLoc performs best"*, and the reconstruction scheme
*"significantly improves"* RASS's median accuracy — i.e. the method
transfers to other fingerprint systems.

Acceptance (shape): TafLoc has the lowest median among the fingerprint
systems and beats stale RASS clearly; RASS w/ rec. sits between; the
orderings hold on the seed-averaged medians.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SEED, emit
from repro.eval.experiments import run_fig5_localization
from repro.eval.reporting import format_cdf_table, format_table

SYSTEMS = ("TafLoc", "RTI", "RASS w/ rec.", "RASS w/o rec.")


@pytest.fixture(scope="module")
def fig5_results():
    """Three independent room realizations, errors pooled per system."""
    pooled = {name: [] for name in SYSTEMS}
    medians = {name: [] for name in SYSTEMS}
    for offset in range(3):
        result = run_fig5_localization(day=90.0, seed=BENCH_SEED + offset)
        for name in SYSTEMS:
            pooled[name].append(result.errors[name])
            medians[name].append(float(np.median(result.errors[name])))
    return (
        {name: np.concatenate(arrays) for name, arrays in pooled.items()},
        {name: float(np.mean(values)) for name, values in medians.items()},
    )


def test_fig5_benchmark(benchmark, bench_scenario):
    result = benchmark.pedantic(
        run_fig5_localization,
        kwargs={
            "day": 90.0,
            "seed": BENCH_SEED,
            "scenario": bench_scenario,
            "test_cells": list(range(0, 96, 6)),
            "frames_per_cell": 2,
        },
        rounds=1,
        iterations=1,
    )
    assert set(result.errors) == set(SYSTEMS)


def test_fig5_report(benchmark, capsys, fig5_results):
    pooled, medians = fig5_results
    benchmark.pedantic(
        lambda: np.percentile(pooled["TafLoc"], 50), rounds=1, iterations=1
    )

    rows = [
        [
            name,
            medians[name],
            float(np.percentile(pooled[name], 80)),
            float(np.percentile(pooled[name], 95)),
        ]
        for name in SYSTEMS
    ]
    table = format_table(
        ["system", "median [m]", "80th [m]", "95th [m]"], rows, precision=2
    )
    grid = np.arange(0.0, 6.1, 0.5)
    cdf = format_cdf_table(pooled, grid, value_label="err [m]")
    emit(
        capsys,
        "[Fig. 5] Localization error at 3 months (3 rooms pooled; paper: "
        "TafLoc best, reconstruction also rescues RASS)\n"
        f"{table}\n\nCDF (fraction of frames with error <= x):\n{cdf}",
    )

    # Who wins: TafLoc leads the fingerprint systems, and the reconstruction
    # scheme clearly rescues RASS.
    assert medians["TafLoc"] <= medians["RASS w/ rec."] + 0.1
    assert medians["TafLoc"] < medians["RASS w/o rec."] * 0.8
    assert medians["RASS w/ rec."] < medians["RASS w/o rec."]
    # TafLoc also edges out the model-based RTI at this time horizon.
    assert medians["TafLoc"] < medians["RTI"] + 0.05
