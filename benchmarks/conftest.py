"""Shared fixtures for the figure-reproduction benchmarks.

Heavy artifacts (scenario, commissioned system) are session-cached so each
figure's benchmark measures its own work, not repeated setup.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import TafLoc, TafLocConfig
from repro.sim.collector import RssCollector
from repro.sim.scenario import build_paper_scenario
from repro.util.rng import spawn_children

#: One seed shared by every figure benchmark → a single coherent "testbed".
BENCH_SEED = 2016  # the paper's year


@pytest.fixture(scope="session")
def bench_scenario():
    return build_paper_scenario(seed=BENCH_SEED)


@pytest.fixture(scope="session")
def bench_system(bench_scenario):
    """A commissioned TafLoc system on the benchmark scenario."""
    collector_rng, system_rng = spawn_children(BENCH_SEED, 2)
    system = TafLoc(
        RssCollector(bench_scenario, seed=collector_rng),
        TafLocConfig(),
        seed=system_rng,
    )
    system.commission(0.0)
    return system


def emit(capsys, text: str) -> None:
    """Print a report so it lands in the captured bench output."""
    with capsys.disabled():
        print(f"\n{text}")
