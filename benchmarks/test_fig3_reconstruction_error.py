"""Fig. 3 reproduction: fingerprint reconstruction error vs time gap.

The paper reports average reconstruction errors of 2.7 / 3.3 / 3.6 /
4.1 dBm after 3 / 15 / 45 days / 3 months, with full CDFs spanning roughly
0-15 dBm, and argues the reconstruction is usable because noise is itself
1-4 dBm. This benchmark re-runs that protocol end to end on the simulated
testbed: full survey at day 0, cheap TafLoc update at each gap (empty room
+ 10 reference cells only), scored entry-wise against a freshly measured
full survey of the same day.

Acceptance (shape, per the reproduction brief): error grows monotonically
with the gap, lands within ~2x of the paper's band, and always beats the
stale do-nothing baseline at long gaps.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SEED, emit
from repro.eval.experiments import run_fig3_reconstruction_error
from repro.eval.reporting import format_cdf_table, format_table

PAPER_MEANS = {3.0: 2.7, 15.0: 3.3, 45.0: 3.6, 90.0: 4.1}
DAYS = (3.0, 5.0, 15.0, 45.0, 90.0)


@pytest.fixture(scope="module")
def fig3_results(bench_scenario):
    return run_fig3_reconstruction_error(
        days=DAYS, seed=BENCH_SEED, scenario=bench_scenario
    )


def test_fig3_reconstruction_error(benchmark, capsys, bench_scenario):
    results = benchmark.pedantic(
        run_fig3_reconstruction_error,
        kwargs={"days": (45.0,), "seed": BENCH_SEED + 1, "scenario": bench_scenario},
        rounds=1,
        iterations=1,
    )
    assert len(results) == 1


def test_fig3_report(benchmark, capsys, fig3_results):
    benchmark.pedantic(lambda: fig3_results[0].cdf(), rounds=1, iterations=1)
    rows = []
    for result in fig3_results:
        rows.append(
            [
                int(result.day),
                result.mean_error,
                PAPER_MEANS.get(result.day, "-"),
                result.oracle_mean_error,
                result.stale_mean_error,
            ]
        )
    table = format_table(
        [
            "days",
            "mean err [dB]",
            "paper [dB]",
            "vs oracle [dB]",
            "stale (no update) [dB]",
        ],
        rows,
        precision=2,
    )

    grid = np.arange(0.0, 15.1, 1.5)
    cdf = format_cdf_table(
        {f"{int(r.day)} d": r.errors for r in fig3_results},
        grid,
        value_label="err [dB]",
    )
    emit(
        capsys,
        "[Fig. 3] Fingerprint reconstruction error vs time gap\n"
        f"{table}\n\nCDF (fraction of entries with error <= x):\n{cdf}",
    )

    means = [r.mean_error for r in fig3_results]
    # Shape: monotone-ish growth with the gap; endpoints strictly ordered.
    assert means[0] < means[-1]
    # Band: within ~2x of the paper's reported means.
    for result in fig3_results:
        paper = PAPER_MEANS.get(result.day)
        if paper is not None:
            assert paper / 2.2 < result.mean_error < paper * 2.2
    # The update must beat doing nothing at the long gaps.
    for result in fig3_results[-3:]:
        assert result.mean_error < result.stale_mean_error
