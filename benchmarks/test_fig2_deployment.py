"""Fig. 2 reproduction: the testbed deployment.

The paper's Fig. 2 shows a 9 m x 12 m room with 10 WiFi links whose
transceivers ring a monitored region of 96 grid cells (0.6 m x 0.6 m).
This benchmark rebuilds that deployment, checks every published count, and
renders the floor plan.
"""

from benchmarks.conftest import emit
from repro.eval.reporting import format_summary
from repro.sim.deployment import build_paper_deployment


def test_fig2_deployment(benchmark, capsys):
    deployment = benchmark.pedantic(
        build_paper_deployment, rounds=3, iterations=1
    )

    emit(
        capsys,
        format_summary(
            "[Fig. 2] Testbed deployment (paper: 10 links, 96 grids of "
            "0.6 m, 9 m x 12 m room)",
            {
                "links": deployment.link_count,
                "grid cells": deployment.cell_count,
                "cell size [m]": deployment.grid.cell_size,
                "grid layout": f"{deployment.grid.rows} x {deployment.grid.columns}",
                "monitored area [m^2]": deployment.room.area,
                "mean link length [m]": float(deployment.link_lengths().mean()),
                "adjacent link pairs": len(deployment.adjacent_link_pairs()),
            },
        )
        + "\n\nFloor plan (L = transceiver, . = grid cell):\n"
        + deployment.ascii_floor_plan(),
    )

    assert deployment.link_count == 10
    assert deployment.cell_count == 96
    assert deployment.grid.cell_size == 0.6
