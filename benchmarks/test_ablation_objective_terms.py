"""Ablation: which terms of the TafLoc objective earn their keep.

The objective stacks three priors — rank minimization (property i), the
low-rank representation anchor (property ii), and the continuity/similarity
smoothers (property iii). The poster motivates each but publishes no
ablation; DESIGN.md calls this out as a design-choice experiment. We rerun
the Fig. 3 workload at a 45-day gap with terms toggled and report the mean
reconstruction error of each arm.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SEED, emit
from repro.core.pipeline import TafLocConfig
from repro.core.reconstruction import ReconstructionConfig
from repro.eval.experiments import run_fig3_reconstruction_error
from repro.eval.reporting import format_table
from repro.sim.scenario import build_paper_scenario

ARMS = {
    "full objective": ReconstructionConfig(),
    "no smoothness": ReconstructionConfig(use_smoothness=False),
    "no LRR": ReconstructionConfig(use_lrr=False),
    "rank-min only": ReconstructionConfig(use_lrr=False, use_smoothness=False),
}


def run_arm(config: ReconstructionConfig, seed: int) -> float:
    scenario = build_paper_scenario(seed=seed)
    results = run_fig3_reconstruction_error(
        days=(45.0,),
        seed=seed,
        scenario=scenario,
        config=TafLocConfig(reconstruction=config),
    )
    return results[0].oracle_mean_error


@pytest.fixture(scope="module")
def ablation_results():
    seeds = (BENCH_SEED, BENCH_SEED + 1)
    return {
        name: float(np.mean([run_arm(config, seed) for seed in seeds]))
        for name, config in ARMS.items()
    }


def test_ablation_benchmark(benchmark):
    error = benchmark.pedantic(
        run_arm, args=(ARMS["full objective"], BENCH_SEED + 9), rounds=1,
        iterations=1,
    )
    assert error > 0


def test_ablation_report(benchmark, capsys, ablation_results):
    rows = benchmark.pedantic(
        lambda: [[name, err] for name, err in ablation_results.items()],
        rounds=1,
        iterations=1,
    )
    emit(
        capsys,
        "[Ablation] Objective terms, 45-day reconstruction error vs "
        "noise-free truth (2-seed mean)\n"
        + format_table(["arm", "mean err [dB]"], rows, precision=2),
    )

    full = ablation_results["full objective"]
    rank_only = ablation_results["rank-min only"]
    no_lrr = ablation_results["no LRR"]
    # The full objective beats the property-(i)-only arm, and removing the
    # LRR anchor (the paper's central labor-saving idea) hurts the most.
    assert full < rank_only
    assert no_lrr > full
