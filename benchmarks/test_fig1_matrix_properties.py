"""Fig. 1 reproduction: the structural properties of the fingerprint matrix.

The paper's Fig. 1 is a schematic of the fingerprint matrix and the three
observations TafLoc builds on. This benchmark verifies each observation
*quantitatively* on a surveyed matrix from the simulated testbed:

  (i)   the matrix is approximately low rank;
  (ii)  it is well represented as a linear combination of a few of its own
        columns (small LRR residual at n = 10 of 96);
  (iii) the largely-distorted entries are continuous along a link and
        similar across adjacent links (smoothness ratios << 1 vs. a
        column-shuffled control).
"""

import numpy as np

from benchmarks.conftest import emit
from repro.core.distortion import build_distortion_profile
from repro.core.lrr import LrrConfig, fit_lrr
from repro.core.operators import continuity_operator, similarity_operator
from repro.core.reference import select_references
from repro.eval.reporting import format_summary, format_table
from repro.util.linalg import effective_rank


def analyze_matrix_properties(system, deployment):
    fingerprint = system.database.initial()
    matrix = fingerprint.values
    centered = matrix - matrix.mean(axis=1, keepdims=True)

    # Property (i): low rank.
    sigma = np.linalg.svd(centered, compute_uv=False)
    energy_top4 = float(np.sum(sigma[:4] ** 2) / np.sum(sigma**2))

    # Property (ii): LRR with few reference columns.
    lrr_residuals = {}
    for n in (5, 10, 20):
        refs = select_references(matrix, n)
        model = fit_lrr(matrix, refs.cells, LrrConfig())
        lrr_residuals[n] = model.training_residual

    # Property (iii): smoothness of the largely-distorted entries. Compare
    # |difference| across *adjacent* cell pairs (same link, both distorted)
    # against *random* same-link distorted pairs; continuity predicts the
    # adjacent differences are smaller. Similarity does the same across
    # adjacent links at one cell.
    profile = build_distortion_profile(fingerprint)
    dips = profile.dips
    mask = profile.largely_distorted
    rng = np.random.default_rng(0)

    adjacent_diffs, random_diffs = [], []
    g = continuity_operator(deployment.grid)
    for p in range(g.shape[1]):
        a, b = np.flatnonzero(g[:, p])
        for i in range(dips.shape[0]):
            if mask[i, a] and mask[i, b]:
                adjacent_diffs.append(abs(dips[i, a] - dips[i, b]))
    for i in range(dips.shape[0]):
        cells = np.flatnonzero(mask[i])
        for _ in range(len(cells)):
            if len(cells) >= 2:
                a, b = rng.choice(cells, size=2, replace=False)
                random_diffs.append(abs(dips[i, a] - dips[i, b]))

    link_diffs, link_random = [], []
    h = similarity_operator(deployment)
    for p in range(h.shape[0]):
        a, b = np.flatnonzero(h[p])
        for j in range(dips.shape[1]):
            if mask[a, j] and mask[b, j]:
                link_diffs.append(abs(dips[a, j] - dips[b, j]))
                other = rng.integers(0, dips.shape[0])
                link_random.append(abs(dips[a, j] - dips[other, j]))

    def safe_mean(values):
        return float(np.mean(values)) if values else float("nan")

    return {
        "effective_rank_99": effective_rank(centered, 0.99),
        "top4_energy": energy_top4,
        "lrr_residuals": lrr_residuals,
        "continuity_ratio": safe_mean(adjacent_diffs)
        / max(safe_mean(random_diffs), 1e-12),
        "similarity_ratio": safe_mean(link_diffs)
        / max(safe_mean(link_random), 1e-12),
    }


def test_fig1_matrix_properties(benchmark, capsys, bench_system, bench_scenario):
    deployment = bench_scenario.deployment
    stats = benchmark.pedantic(
        analyze_matrix_properties,
        args=(bench_system, deployment),
        rounds=1,
        iterations=1,
    )

    emit(
        capsys,
        format_summary(
            "[Fig. 1] Fingerprint-matrix structural properties "
            "(10 links x 96 cells survey)",
            {
                "(i) effective rank @99% energy": stats["effective_rank_99"],
                "(i) energy in top-4 components": stats["top4_energy"],
                "(ii) LRR rms residual, n=5 [dB]": stats["lrr_residuals"][5],
                "(ii) LRR rms residual, n=10 [dB]": stats["lrr_residuals"][10],
                "(ii) LRR rms residual, n=20 [dB]": stats["lrr_residuals"][20],
                "(iii) continuity roughness vs shuffled": stats[
                    "continuity_ratio"
                ],
                "(iii) similarity roughness vs shuffled": stats[
                    "similarity_ratio"
                ],
            },
        ),
    )

    # Property (i): far fewer than min(M, N) = 10 directions carry the mass.
    assert stats["top4_energy"] > 0.6
    # Property (ii): 10 reference columns explain the matrix to ~noise level,
    # and more references help.
    assert stats["lrr_residuals"][10] < 2.5
    assert stats["lrr_residuals"][20] <= stats["lrr_residuals"][5]
    # Property (iii): real distorted entries are smoother than shuffled ones.
    assert stats["continuity_ratio"] < 1.0


def test_fig1_table(benchmark, capsys, bench_system):
    """Render the Fig. 1 concept as an actual matrix excerpt."""
    fingerprint = bench_system.database.initial()

    def build_table():
        rows = []
        for link in range(min(4, fingerprint.link_count)):
            rows.append(
                [f"link {link}"]
                + [fingerprint.values[link, cell] for cell in range(6)]
            )
        return format_table(
            ["", *[f"cell {j}" for j in range(6)]], rows, precision=1
        )

    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit(capsys, f"[Fig. 1] Fingerprint matrix excerpt (dBm):\n{table}")
    assert fingerprint.values.shape == (10, 96)
