"""Intruder detection: presence sensing plus localization with zone alarms.

The paper's second motivating application: an intruder cannot be asked to
carry a tag. This example builds a detector on top of the library —
presence is declared when live link dynamics exceed the empty-room noise
envelope, and a detected target is localized against TafLoc-maintained
fingerprints and mapped to a named security zone.

Run with:  python examples/intruder_detection.py
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import RssCollector, TafLoc, build_paper_scenario
from repro.core.detection import PresenceDetector
from repro.eval.reporting import format_table
from repro.sim.geometry import Point

ZONES = {
    "entrance": (0.0, 0.0, 2.4, 4.8),     # x_min, y_min, x_max, y_max
    "hallway": (2.4, 0.0, 4.8, 4.8),
    "vault": (4.8, 0.0, 7.2, 4.8),
}


def zone_of(point: Point) -> str:
    for name, (x0, y0, x1, y1) in ZONES.items():
        if x0 <= point.x <= x1 and y0 <= point.y <= y1:
            return name
    return "outside"


def main() -> None:
    scenario = build_paper_scenario(seed=23)
    system = TafLoc(RssCollector(scenario, seed=1))
    system.commission(day=0.0)
    system.update(day=60.0)  # keep fingerprints fresh the cheap way

    # Calibrate the presence detector on 30 empty-room frames at day 60.
    calibration_collector = RssCollector(scenario, seed=3)
    empty_frames = np.vstack(
        [calibration_collector.live_vector(60.0) for _ in range(30)]
    )
    detector = PresenceDetector(empty_frames)

    # Overnight feed: mostly empty frames, one intrusion through the room.
    feed_collector = RssCollector(scenario, seed=4)
    events: list[tuple[str, Optional[int], float, str]] = []
    frame_log = []

    # 10 empty frames...
    for t in range(10):
        frame = feed_collector.live_vector(60.0)
        frame_log.append((f"23:0{t % 10}", frame, None))
    # ...then the intruder crosses entrance → hallway → vault.
    intrusion_cells = [25, 28, 41, 44, 67, 70, 93]
    intrusion = feed_collector.live_trace(60.0, intrusion_cells)
    for t, frame in enumerate(intrusion.rss):
        frame_log.append((f"02:1{t % 10}", frame, intrusion.true_cells[t]))

    rows = []
    for stamp, frame, true_cell in frame_log:
        if not detector.detect(frame).present:
            continue
        result = system.localize(frame, day=60.0)
        zone = zone_of(result.position)
        rows.append(
            [
                stamp,
                f"{detector.score(frame):.0f}",
                f"({result.position.x:.1f}, {result.position.y:.1f})",
                zone,
                "ALARM" if zone == "vault" else "watch",
            ]
        )
        events.append((stamp, true_cell, detector.score(frame), zone))

    print(f"Presence threshold: {detector.threshold:.1f} dB (sum over links)\n")
    if rows:
        print(
            format_table(
                ["time", "score", "position [m]", "zone", "action"], rows
            )
        )
    else:
        print("No presence detected (unexpected).")

    detections = len(events)
    alarms = sum(1 for *_, zone in events if zone == "vault")
    false_alarms = sum(1 for _, true_cell, *_ in events if true_cell is None)
    print(
        f"\n{detections} detections across {len(frame_log)} frames; "
        f"{alarms} vault alarm(s); {false_alarms} false alarm(s) on the "
        f"{len(frame_log) - len(intrusion_cells)} empty frames."
    )


if __name__ == "__main__":
    main()
