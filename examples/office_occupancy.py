"""Office occupancy: count and localize up to two people at once.

A multi-target extension demo: a meeting-room deployment wants to know how
many people are inside and roughly where (free desk? huddle at the
whiteboard?). The :class:`~repro.core.multi_target.MultiTargetMatcher`
jointly decides between the 0-, 1- and 2-person hypotheses by dip
superposition over TafLoc-maintained fingerprints.

Run with:  python examples/office_occupancy.py
"""

from __future__ import annotations


from repro import RssCollector, TafLoc, build_paper_scenario
from repro.core.multi_target import MultiTargetMatcher, pairing_error
from repro.eval.reporting import format_table

SCENES = [
    ("room empty", []),
    ("one at desk A", [14]),
    ("one at whiteboard", [78]),
    ("two: desks A+B", [14, 21]),
    ("two: desk A + whiteboard", [14, 78]),
    ("two: far corners", [1, 94]),
]


def main() -> None:
    scenario = build_paper_scenario(seed=33)
    system = TafLoc(RssCollector(scenario, seed=1))
    system.commission(day=0.0)
    report = system.update(day=30.0)
    fingerprint = report.reconstruction.fingerprint

    matcher = MultiTargetMatcher(
        fingerprint,
        scenario.deployment.grid,
        live_empty_rss=fingerprint.empty_rss,
    )
    grid = scenario.deployment.grid
    live = RssCollector(scenario, seed=9)

    rows = []
    correct_counts = 0
    for label, cells in SCENES:
        if not cells:
            frame = live.live_vector(30.0, averaging=3)
        elif len(cells) == 1:
            frame = live.live_vector(30.0, cell=cells[0], averaging=3)
        else:
            frame = live.live_vector_multi(30.0, cells, averaging=3)
        result = matcher.match(frame)
        truth = [grid.center_of(c) for c in cells]
        error = pairing_error(list(result.positions), truth)
        error_text = "-" if error == float("inf") else f"{error:.2f}"
        if result.count == len(cells):
            correct_counts += 1
        rows.append(
            [
                label,
                len(cells),
                result.count,
                ", ".join(str(c) for c in result.cells) or "-",
                error_text,
            ]
        )

    print(
        format_table(
            ["scene", "true count", "est count", "est cells", "mean err [m]"],
            rows,
        )
    )
    print(
        f"\nOccupancy count correct in {correct_counts}/{len(SCENES)} scenes "
        f"(30-day-old deployment, fingerprints TafLoc-refreshed)."
    )


if __name__ == "__main__":
    main()
