"""Quickstart: commission, update, localize.

The 60-second tour of the library: build the paper's testbed (simulated),
run the one expensive full survey, refresh fingerprints 45 days later by
measuring only 10 reference cells, then localize a person standing in the
room.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import RssCollector, TafLoc, build_paper_scenario
from repro.eval.reporting import format_summary


def main() -> None:
    # A simulated 10-link / 96-cell testbed (the paper's Fig. 2 geometry).
    scenario = build_paper_scenario(seed=7)
    system = TafLoc(RssCollector(scenario, seed=1))

    # Day 0: the one full survey (96 cells x 100 samples — the costly part).
    fingerprint = system.commission(day=0.0)
    print(
        format_summary(
            "Commissioned",
            {
                "links": fingerprint.link_count,
                "cells": fingerprint.cell_count,
                "survey cost [h]": 96 * 100 / 3600.0,
            },
        )
    )

    # Day 45: fingerprints have drifted. A TafLoc update visits only the 10
    # reference cells (plus a person-free empty-room calibration).
    report = system.update(day=45.0)
    print(
        format_summary(
            "Updated at day 45",
            {
                "cells re-measured": len(system.reconstructor.references.cells),
                "update cost [h]": report.seconds_spent / 3600.0,
                "full survey would cost [h]": report.full_survey_seconds / 3600.0,
                "savings factor": report.savings_factor,
                "solver iterations": report.reconstruction.solver_result.iterations,
            },
        )
    )

    # Someone walks in and stands in cell 37; localize them.
    live_collector = RssCollector(scenario, seed=2)
    trace = live_collector.live_trace(45.0, [37])
    result = system.localize(trace.rss[0], day=45.0)
    true_x, true_y = trace.true_positions[0]
    error = np.hypot(result.position.x - true_x, result.position.y - true_y)
    print(
        format_summary(
            "Localized",
            {
                "estimated cell": result.cell,
                "estimated position [m]": f"({result.position.x:.2f}, {result.position.y:.2f})",
                "true position [m]": f"({true_x:.2f}, {true_y:.2f})",
                "error [m]": error,
            },
        )
    )


if __name__ == "__main__":
    main()
