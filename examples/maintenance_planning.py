"""Maintenance planning: what does a year of fingerprint upkeep cost?

An operational view of the paper's Fig. 4: a facilities team must keep a
DfL deployment accurate for a year. This example simulates three policies
on the same room —

* **never update** — survey once, live with the drift;
* **quarterly re-survey** — the pre-TafLoc answer: redo the full survey;
* **monthly TafLoc update** — 10 reference cells + empty-room calibration.

— and reports the person-hours spent against the localization accuracy
measured at the end of each quarter.

Run with:  python examples/maintenance_planning.py
"""

from __future__ import annotations

import numpy as np

from repro import RssCollector, TafLoc, TafLocConfig, build_paper_scenario
from repro.eval.reporting import format_table
from repro.util.rng import spawn_children

CHECKPOINTS = (90.0, 180.0, 270.0, 360.0)


def median_error_at(system: TafLoc, scenario, day: float, seed: int) -> float:
    cells = list(range(0, scenario.deployment.cell_count, 3))
    trace = RssCollector(scenario, seed=seed).live_trace(day, cells)
    return float(np.median(system.localization_errors(trace)))


def run_policy(scenario, policy: str, seed: int):
    """Returns (hours_spent, {checkpoint_day: median_error})."""
    collector_rng, system_rng = spawn_children(seed, 2)
    collector = RssCollector(scenario, seed=collector_rng)
    system = TafLoc(collector, TafLocConfig(), seed=system_rng)
    system.commission(0.0)
    hours = 96 * 100 / 3600.0  # the unavoidable initial survey

    errors = {}
    eval_seed = 1000
    for day in np.arange(30.0, 361.0, 30.0):
        if policy == "tafloc-monthly":
            report = system.update(float(day))
            hours += report.seconds_spent / 3600.0
        elif policy == "resurvey-quarterly" and day % 90 == 0:
            fingerprint = system.commission(float(day))
            del fingerprint
            hours += 96 * 100 / 3600.0
        if day in CHECKPOINTS:
            eval_seed += 1
            errors[float(day)] = median_error_at(
                system, scenario, float(day), eval_seed
            )
    return hours, errors


def main() -> None:
    scenario = build_paper_scenario(seed=42)
    policies = ("never", "resurvey-quarterly", "tafloc-monthly")

    results = {}
    for policy in policies:
        results[policy] = run_policy(scenario, policy, seed=17)

    rows = []
    for policy in policies:
        hours, errors = results[policy]
        rows.append(
            [
                policy,
                hours,
                *[errors[day] for day in CHECKPOINTS],
            ]
        )
    print(
        format_table(
            [
                "policy",
                "labor [h/yr]",
                *[f"err @{int(d)}d [m]" for d in CHECKPOINTS],
            ],
            rows,
            precision=2,
        )
    )

    never_hours, never_errors = results["never"]
    taf_hours, taf_errors = results["tafloc-monthly"]
    resurvey_hours, _ = results["resurvey-quarterly"]
    print(
        f"\nTafLoc keeps year-end accuracy within "
        f"{taf_errors[360.0]:.2f} m for {taf_hours:.1f} h/yr of labor — "
        f"vs {resurvey_hours:.1f} h/yr for quarterly re-surveys and "
        f"{never_errors[360.0]:.2f} m year-end error when never updating."
    )


if __name__ == "__main__":
    main()
