"""Elderly-care tracking: follow a resident through a room, months after
the fingerprint survey.

The paper motivates device-free localization with elderly care — the
resident wears no device, and nobody wants to re-survey their living room
every week. This example runs three months of simulated time:

1. Commission the system on move-in day.
2. Every 30 days, run the cheap TafLoc update (10 reference cells).
3. On day 90, track the resident walking their usual morning route with a
   particle filter on top of the reconstructed fingerprints, and compare
   against tracking on the *stale* day-0 fingerprints.

Run with:  python examples/elderly_care_tracking.py
"""

from __future__ import annotations

import numpy as np

from repro import RssCollector, TafLoc, build_paper_scenario
from repro.core.matching import ProbabilisticMatcher
from repro.core.tracking import ParticleFilterTracker, TrackerConfig
from repro.eval.reporting import format_summary, format_table
from repro.sim.geometry import Point

MORNING_ROUTE = [
    Point(1.2, 1.0),   # bedroom door
    Point(5.8, 1.0),   # along the south wall
    Point(5.8, 3.8),   # to the kitchen corner
    Point(2.0, 3.8),   # along the north side
    Point(1.2, 1.8),   # back toward the armchair
]


def track_route(scenario, fingerprint, walk, seed: int) -> np.ndarray:
    """Track a walk with a particle filter on the given fingerprints."""
    matcher = ProbabilisticMatcher(
        fingerprint, scenario.deployment.grid, sigma_db=3.0
    )
    tracker = ParticleFilterTracker(
        matcher,
        scenario.deployment.room,
        TrackerConfig(process_sigma_m=0.5),
        seed=seed,
    )
    estimates = tracker.run(walk.rss)
    return np.array(
        [
            estimate.distance_to(Point(float(x), float(y)))
            for estimate, (x, y) in zip(estimates, walk.true_positions)
        ]
    )


def main() -> None:
    scenario = build_paper_scenario(seed=11)
    system = TafLoc(RssCollector(scenario, seed=1))

    stale_fingerprint = system.commission(day=0.0)
    print("Day 0: commissioned (full survey).")

    for day in (30.0, 60.0, 90.0):
        report = system.update(day)
        print(
            f"Day {day:.0f}: fingerprints refreshed in "
            f"{report.seconds_spent / 60:.0f} min "
            f"(a re-survey would take {report.full_survey_seconds / 3600:.1f} h)."
        )

    # Day 90: the resident's morning route.
    walk = RssCollector(scenario, seed=5).walk_trace(
        90.0, MORNING_ROUTE, step_m=0.4
    )
    print(f"\nTracking the morning route ({walk.frame_count} frames) on day 90:")

    fresh = system.database.at(90.0)
    errors_fresh = track_route(scenario, fresh, walk, seed=21)
    errors_stale = track_route(scenario, stale_fingerprint, walk, seed=21)

    # Skip the filter's burn-in frames when reporting.
    settled_fresh = errors_fresh[5:]
    settled_stale = errors_stale[5:]
    print(
        format_table(
            ["fingerprints", "median err [m]", "80th pct [m]", "worst [m]"],
            [
                [
                    "TafLoc-updated (day 90)",
                    float(np.median(settled_fresh)),
                    float(np.percentile(settled_fresh, 80)),
                    float(settled_fresh.max()),
                ],
                [
                    "stale (day 0)",
                    float(np.median(settled_stale)),
                    float(np.percentile(settled_stale, 80)),
                    float(settled_stale.max()),
                ],
            ],
            precision=2,
        )
    )

    print(
        "\n"
        + format_summary(
            "Season summary",
            {
                "updates run": len(system.update_reports),
                "total update time [h]": sum(
                    r.seconds_spent for r in system.update_reports
                )
                / 3600.0,
                "re-survey alternative [h]": 3
                * system.update_reports[0].full_survey_seconds
                / 3600.0,
            },
        )
    )


if __name__ == "__main__":
    main()
