# Developer entry points. `make test` is the tier-1 gate; `make bench`
# produces the committed perf-trajectory point (BENCH_PR1.json).

PYTHON ?= python

.PHONY: test bench bench-figures

test:
	$(PYTHON) -m pytest -q

bench:
	$(PYTHON) benchmarks/bench_perf.py --out BENCH_PR1.json

bench-figures:
	$(PYTHON) -m pytest benchmarks -q -p no:cacheprovider
