# Developer entry points. `make test` is the tier-1 gate; `make bench`
# produces the committed perf-trajectory point (BENCH_PR10.json — every
# registered bench section: solve, engine, serving, frontend,
# frontend_async, resilience, trust, loadgen; narrow a run with
# `make bench BENCH_ONLY="--only loadgen"`). CI runs `make bench-smoke`
# (writes BENCH_SMOKE.json — PR-agnostic, never clobbers a committed
# BENCH_PR*.json), `make frontend-smoke` (the wire/shard/aio
# bit-identity gate), `make resilience-smoke` (kill -9 /
# snapshot-restore / resize gate plus the PR-7 anti-entropy trust gates:
# quorum read-repair under a corrupted replica, scrub detection of
# silent corruption, degraded-mode stale serving, snapshot keep-last-K
# retention) and `make loadgen-smoke` (the PR-10 load-generator gate:
# open-loop SLO saturation search with bit-for-bit answer checks,
# plan determinism, the 200-site registration soak).

PYTHON ?= python
PYTHONPATH_SRC = PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint typecheck analyze bench bench-smoke bench-figures \
	frontend-smoke resilience-smoke loadgen-smoke

test:
	$(PYTHON) -m pytest -q

# Mirrors CI's lint job (requires ruff; `pip install -r requirements-dev.txt`).
lint:
	ruff check .
	ruff format --check .

# Static type gate (requires mypy): strict on util/, serve/protocol.py and
# the analysis/ package, permissive elsewhere (config in pyproject.toml).
typecheck:
	mypy src/repro

# repro-lint: AST-based invariant checks (determinism RL-D*, lock
# discipline RL-C*, wire contract RL-W*) over src/repro. Fails on any
# finding not suppressed inline or grandfathered (with a reason) in
# analysis-baseline.json; always writes the full JSON report to
# ANALYSIS_FINDINGS.json (CI uploads it on failure). Needs only the
# stdlib + the repo itself — no third-party deps.
analyze:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.analysis --format text \
		--out ANALYSIS_FINDINGS.json

bench:
	$(PYTHON) benchmarks/bench_perf.py --out BENCH_PR10.json $(BENCH_ONLY)

# Writes to BENCH_SMOKE.json (gitignored territory) so a local smoke run
# never clobbers the committed full-bench BENCH_PR6.json; CI uploads the
# same file under the PR-agnostic `bench-smoke` artifact name.
bench-smoke:
	$(PYTHON) benchmarks/bench_perf.py --smoke --jobs 2 --out BENCH_SMOKE.json

# Start a wire server + sharded workers at toy scale and assert the
# answers are bit-identical to the in-process service (CI's guard on the
# serving front-end). Runs the wire + shard sections only; the fault
# gates live in resilience-smoke.
frontend-smoke:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.serve.check --only wire --only shards

# The PR-6 + PR-7 acceptance gate: on a 3-shard R=2 snapshot-backed
# fleet, kill -9 each worker under load (zero lost queries, bit-identical
# answers, snapshot-warmed respawn), resize the fleet live, then the
# anti-entropy episode — corrupt a replica's fingerprint state and prove
# quorum reads deliver zero mismatched answers while the scrub alarms,
# quarantines, and read-repairs; degraded mode serves stale-marked
# snapshot answers when every replica is down; keep-last-K retention
# holds the snapshot directory bounded. On failure the fault-schedule
# seed lands in RESILIENCE_SEED.json (CI uploads it) for local replay.
resilience-smoke:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.serve.check --only resilience \
		--seed-out RESILIENCE_SEED.json

# The PR-10 load-generator gate: a seconds-scale open-loop SLO
# saturation search over the http front-end with every answer checked
# bit-for-bit, a closed-loop comparison, the same-seed plan-determinism
# check, and a 200-site registration soak (one shared spec must dedupe
# to ONE pipeline). The gates are the `loadgen` bench section's own
# smoke gates via the section registry; the full record always lands in
# LOADGEN_SMOKE.json (CI uploads it on failure).
loadgen-smoke:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.loadgen.check --out LOADGEN_SMOKE.json

bench-figures:
	$(PYTHON) -m pytest benchmarks -q -p no:cacheprovider
