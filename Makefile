# Developer entry points. `make test` is the tier-1 gate; `make bench`
# produces the committed perf-trajectory point (BENCH_PR3.json).

PYTHON ?= python

.PHONY: test bench bench-smoke bench-figures

test:
	$(PYTHON) -m pytest -q

bench:
	$(PYTHON) benchmarks/bench_perf.py --out BENCH_PR3.json

bench-smoke:
	$(PYTHON) benchmarks/bench_perf.py --smoke --jobs 2 --out BENCH_SMOKE.json

bench-figures:
	$(PYTHON) -m pytest benchmarks -q -p no:cacheprovider
