# Developer entry points. `make test` is the tier-1 gate; `make bench`
# produces the committed perf-trajectory point (BENCH_PR4.json, which now
# includes the multi-site serving section).

PYTHON ?= python

.PHONY: test bench bench-smoke bench-figures

test:
	$(PYTHON) -m pytest -q

bench:
	$(PYTHON) benchmarks/bench_perf.py --out BENCH_PR4.json

# Writes to BENCH_SMOKE.json (gitignored territory) so a local smoke run
# never clobbers the committed full-bench BENCH_PR4.json; CI uses its own
# --out for the artifact upload.
bench-smoke:
	$(PYTHON) benchmarks/bench_perf.py --smoke --jobs 2 --out BENCH_SMOKE.json

bench-figures:
	$(PYTHON) -m pytest benchmarks -q -p no:cacheprovider
