"""Legacy setup shim.

The sandboxed environment ships setuptools without the ``wheel`` package, so
PEP 517 editable installs fail; this shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` take the
``setup.py develop`` path. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
