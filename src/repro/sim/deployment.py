"""Deployment builders: place links around a gridded room.

The paper's testbed (its Fig. 2) deploys 10 links "on the two sides of the
monitoring area" of a 9 m x 12 m room and divides the monitored region into
96 grids of 0.6 m x 0.6 m. :func:`build_paper_deployment` reproduces that
layout; :func:`build_square_deployment` parameterizes the area size for the
Fig. 4 cost sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.sim.geometry import Grid, Link, Point, Room
from repro.util.validation import check_positive


@dataclass(frozen=True)
class Deployment:
    """A monitored area: room, grid of candidate target cells, radio links."""

    room: Room
    grid: Grid
    links: Sequence[Link]

    def __post_init__(self) -> None:
        if len(self.links) == 0:
            raise ValueError("a deployment needs at least one link")
        for link in self.links:
            if not self.room.contains(link.tx) or not self.room.contains(link.rx):
                raise ValueError(
                    f"link {link.index} endpoints {link.tx}/{link.rx} lie outside "
                    f"the {self.room.width} x {self.room.depth} room"
                )

    @property
    def link_count(self) -> int:
        return len(self.links)

    @property
    def cell_count(self) -> int:
        return self.grid.cell_count

    def link_lengths(self) -> np.ndarray:
        return np.array([link.length for link in self.links], dtype=float)

    def adjacent_link_pairs(self) -> List[tuple]:
        """Pairs of link indices whose paths are spatially adjacent.

        Links are grouped by orientation (parallel links only — a horizontal
        and a vertical link see a target very differently, so the similarity
        property does not relate them), each group is sorted by its
        perpendicular offset, and consecutive links within a group are
        paired. The similarity operator H of the TafLoc objective penalizes
        RSS differences across these pairs.
        """
        groups: dict = {}
        for i, link in enumerate(self.links):
            dx, dy = link.rx.x - link.tx.x, link.rx.y - link.tx.y
            angle = np.arctan2(dy, dx) % np.pi  # undirected orientation
            key = round(angle / (np.pi / 180.0) / 5.0)  # 5-degree buckets
            mid = link.midpoint
            # Perpendicular offset of the midpoint along the link normal.
            normal = (-np.sin(angle), np.cos(angle))
            offset = mid.x * normal[0] + mid.y * normal[1]
            groups.setdefault(key, []).append((offset, i))
        pairs: List[tuple] = []
        for members in groups.values():
            members.sort()
            pairs.extend(
                (members[k][1], members[k + 1][1])
                for k in range(len(members) - 1)
            )
        return pairs

    def ascii_floor_plan(self, *, columns: int = 48) -> str:
        """Text rendering of the room, links (L) and grid extent (.) —
        the reproduction of the paper's Fig. 2 deployment diagram."""
        rows = max(8, int(columns * self.room.depth / self.room.width / 2))
        canvas = [[" " for _ in range(columns)] for _ in range(rows)]

        def to_canvas(p: Point) -> tuple:
            cx = int(round(p.x / self.room.width * (columns - 1)))
            cy = int(round(p.y / self.room.depth * (rows - 1)))
            return min(cx, columns - 1), min(cy, rows - 1)

        for j in range(self.grid.cell_count):
            cx, cy = to_canvas(self.grid.center_of(j))
            canvas[cy][cx] = "."
        for link in self.links:
            for endpoint in (link.tx, link.rx):
                cx, cy = to_canvas(endpoint)
                canvas[cy][cx] = "L"
        border = "+" + "-" * columns + "+"
        body = "\n".join("|" + "".join(row) + "|" for row in reversed(canvas))
        return f"{border}\n{body}\n{border}"


def build_paper_deployment(
    *,
    room_width: float = 9.0,
    room_depth: float = 12.0,
    link_count: int = 10,
    cell_size: float = 0.6,
    monitored_columns: int = 12,
    monitored_rows: int = 8,
) -> Deployment:
    """The testbed of the paper's Fig. 2.

    9 m x 12 m room; 10 links spanning the room between transceivers on the
    left and right walls; the monitored region is a centered
    ``monitored_columns x monitored_rows`` patch of 0.6 m cells — with the
    defaults, 96 cells, matching the paper.
    """
    Room(room_width, room_depth)  # rejects non-positive dimensions early
    monitored_width = monitored_columns * cell_size
    monitored_depth = monitored_rows * cell_size
    if monitored_width > room_width or monitored_depth > room_depth:
        raise ValueError(
            f"monitored region {monitored_width} x {monitored_depth} does not fit "
            f"in room {room_width} x {room_depth}"
        )
    # The grid models the monitored sub-region; link geometry lives in room
    # coordinates, so we offset cell coordinates when building the grid room.
    grid = Grid(Room(monitored_width, monitored_depth), cell_size)

    # Everything in the library shares the monitored region's frame (grid
    # origin at (0, 0)); transceivers sit on the region's perimeter.
    links = _crossing_links(link_count, width=monitored_width, depth=monitored_depth)
    frame = Room(monitored_width, monitored_depth)
    return Deployment(room=frame, grid=grid, links=links)


def build_square_deployment(
    edge_length: float,
    *,
    cell_size: float = 0.6,
    link_spacing: float = 1.2,
) -> Deployment:
    """A square monitored area of the given edge length, links wall-to-wall.

    Used by the Fig. 4 sweep (edge length 6 m - 36 m). Link count scales with
    the edge so that coverage density stays constant, mirroring how a real
    deployment would grow.
    """
    check_positive("edge_length", edge_length)
    check_positive("link_spacing", link_spacing)
    return build_perimeter_deployment(
        edge_length,
        edge_length,
        cell_size=cell_size,
        link_count=max(2, int(round(edge_length / link_spacing))),
    )


def build_perimeter_deployment(
    width: float,
    depth: float,
    *,
    cell_size: float = 0.6,
    link_count: int = 10,
) -> Deployment:
    """A rectangular monitored area fully gridded, links on the perimeter.

    The general-geometry builder behind the scenario registry: the grid
    covers the whole ``width x depth`` room, and ``link_count`` crossing
    links (interleaved horizontal/vertical, evenly spaced) span it
    wall-to-wall. A 1 m x 24 m corridor and a 20 m x 5 m warehouse aisle
    block are both just parameter choices here.
    """
    check_positive("width", width)
    check_positive("depth", depth)
    room = Room(width, depth)
    grid = Grid(room, cell_size)
    links = _crossing_links(link_count, width=width, depth=depth)
    return Deployment(room=room, grid=grid, links=links)


def _crossing_links(link_count: int, *, width: float, depth: float) -> List[Link]:
    """A perimeter deployment: horizontal and vertical wall-to-wall links.

    Horizontal links resolve the target's y coordinate, vertical links its x
    coordinate — the standard crossing geometry of DfL testbeds (and what the
    paper's Fig. 2 transceiver ring provides). Links are interleaved
    horizontal-first and evenly spaced along their respective walls.
    """
    if link_count < 2:
        raise ValueError(f"link_count must be >= 2 for 2-D coverage, got {link_count}")
    horizontal_count = (link_count + 1) // 2
    vertical_count = link_count - horizontal_count
    ys = np.linspace(0.0, depth, horizontal_count + 2)[1:-1]
    xs = np.linspace(0.0, width, vertical_count + 2)[1:-1]
    links: List[Link] = []
    for y in ys:
        links.append(
            Link(index=len(links), tx=Point(0.0, float(y)), rx=Point(width, float(y)))
        )
    for x in xs:
        links.append(
            Link(index=len(links), tx=Point(float(x), 0.0), rx=Point(float(x), depth))
        )
    return links
