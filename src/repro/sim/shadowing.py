"""Target-induced link attenuation ("shadowing") models.

When a human body stands on or near the direct path of a link, the received
signal drops sharply; as the body moves away from the path the effect decays
smoothly. Two standard DfL models are provided:

* :class:`KnifeEdgeShadowingModel` — diffraction-inspired: attenuation decays
  exponentially with the *excess path length* of the TX-target-RX detour.
  This is the model behind the elliptical weighting of radio tomographic
  imaging (Wilson & Patwari 2010) and produces exactly the structure the
  paper's property (iii) describes: along one link, attenuation varies
  continuously from cell to cell; at one cell, adjacent links see similar
  attenuation.
* :class:`EllipseShadowingModel` — the binarized RTI variant: full
  attenuation inside the Fresnel-like ellipse, zero outside, with optional
  smooth rolloff.

Both are deterministic in the target position; per-sample randomness comes
from the channel noise so that repeated samples at one cell fluctuate the way
the 100-samples-per-grid protocol of the paper expects.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.sim.geometry import (
    Link,
    Point,
    excess_path_lengths,
    projection_parameters,
)
from repro.util.validation import check_positive


class ShadowingModel(abc.ABC):
    """Maps a target position to per-link RSS perturbation in dB.

    Positive values *reduce* the link's RSS (attenuation); negative values
    model constructive scattering (a body near a link can raise RSS by
    reflecting extra energy into the receiver). Pure blocking models return
    non-negative values; the scattering component is signed.
    """

    @abc.abstractmethod
    def attenuation(self, link: Link, target: Point) -> float:
        """Signed RSS perturbation (dB, positive = attenuation) on ``link``."""

    def attenuation_vector(self, links: Sequence[Link], target: Point) -> np.ndarray:
        """Perturbation across a sequence of links."""
        return np.array([self.attenuation(link, target) for link in links])

    def attenuation_matrix(
        self, links: Sequence[Link], points_xy: np.ndarray
    ) -> np.ndarray:
        """Perturbation for many target positions at once.

        Args:
            links: The links.
            points_xy: Target coordinates, shape ``(n_points, 2)``.
        Returns:
            Array of shape ``(n_points, n_links)``. The base implementation
            loops over :meth:`attenuation`; the concrete models override it
            with broadcasted array math (identical values up to float
            associativity), which is what the batched collector hot path
            relies on.
        """
        xy = np.asarray(points_xy, dtype=float).reshape(-1, 2)
        return np.array(
            [
                [self.attenuation(link, Point(float(x), float(y))) for link in links]
                for x, y in xy
            ]
        ).reshape(len(xy), len(links))


@dataclass(frozen=True)
class KnifeEdgeShadowingModel(ShadowingModel):
    """Exponential excess-path-length attenuation.

    ``A(link, p) = peak_db * exp(-excess(link, p) / decay_m) * taper(p)``

    where ``excess`` is the TX-p-RX detour length minus the direct path and
    ``taper`` fades the effect near the link endpoints (a body next to an
    antenna blocks less of the first Fresnel zone than one at mid-link).

    Attributes:
        peak_db: Attenuation when the target stands exactly on the path at
            mid-link. Human bodies at 2.4 GHz typically cost 5-12 dB.
        decay_m: Excess-path-length scale of the exponential decay; smaller
            values make the shadow hug the direct path more tightly.
        endpoint_taper: Strength of the mid-link taper in [0, 1]; 0 disables
            it, 1 makes attenuation vanish at the endpoints.
    """

    peak_db: float = 9.0
    decay_m: float = 0.35
    endpoint_taper: float = 0.5

    def __post_init__(self) -> None:
        check_positive("peak_db", self.peak_db)
        check_positive("decay_m", self.decay_m)
        if not 0.0 <= self.endpoint_taper <= 1.0:
            raise ValueError(
                f"endpoint_taper must lie in [0, 1], got {self.endpoint_taper}"
            )

    def attenuation(self, link: Link, target: Point) -> float:
        excess = link.excess_path_length(target)
        base = self.peak_db * float(np.exp(-excess / self.decay_m))
        if self.endpoint_taper == 0.0:
            return base
        t = link.projection_parameter(target)
        # 4t(1-t) is 1 at mid-link and 0 at the endpoints.
        taper = 1.0 - self.endpoint_taper * (1.0 - 4.0 * t * (1.0 - t))
        return base * taper

    def attenuation_matrix(
        self, links: Sequence[Link], points_xy: np.ndarray
    ) -> np.ndarray:
        return _knife_edge_matrix(
            links, points_xy, self.peak_db, self.decay_m, self.endpoint_taper
        )


@dataclass(frozen=True)
class EllipseShadowingModel(ShadowingModel):
    """Ellipse (RTI-style) attenuation: constant inside, zero outside.

    The ellipse is defined by excess path length <= ``lambda_m`` — the
    standard RTI weighting region. ``rolloff_m > 0`` replaces the hard edge
    with a linear fade over that excess-length band, which keeps the
    fingerprint matrix's continuity property while staying close to the
    binary RTI weight.
    """

    peak_db: float = 8.0
    lambda_m: float = 0.25
    rolloff_m: float = 0.15

    def __post_init__(self) -> None:
        check_positive("peak_db", self.peak_db)
        check_positive("lambda_m", self.lambda_m)
        check_positive("rolloff_m", self.rolloff_m, strict=False)

    def attenuation(self, link: Link, target: Point) -> float:
        excess = link.excess_path_length(target)
        if excess <= self.lambda_m:
            return self.peak_db
        if self.rolloff_m == 0.0:
            return 0.0
        over = excess - self.lambda_m
        if over >= self.rolloff_m:
            return 0.0
        return self.peak_db * (1.0 - over / self.rolloff_m)

    def attenuation_matrix(
        self, links: Sequence[Link], points_xy: np.ndarray
    ) -> np.ndarray:
        excess = excess_path_lengths(links, points_xy)
        if self.rolloff_m == 0.0:
            return np.where(excess <= self.lambda_m, self.peak_db, 0.0)
        over = excess - self.lambda_m
        fade = np.clip(1.0 - over / self.rolloff_m, 0.0, None) * self.peak_db
        return np.where(excess <= self.lambda_m, self.peak_db, fade)


@dataclass(frozen=True)
class CompositeShadowingModel(ShadowingModel):
    """Sum of component models (e.g. body blockage + scattered reflection)."""

    components: Sequence[ShadowingModel]

    def __post_init__(self) -> None:
        if len(self.components) == 0:
            raise ValueError("composite model needs at least one component")

    def attenuation(self, link: Link, target: Point) -> float:
        return float(sum(c.attenuation(link, target) for c in self.components))

    def attenuation_matrix(
        self, links: Sequence[Link], points_xy: np.ndarray
    ) -> np.ndarray:
        total = self.components[0].attenuation_matrix(links, points_xy)
        for component in self.components[1:]:
            total = total + component.attenuation_matrix(links, points_xy)
        return total


class HeterogeneousBlockingModel(ShadowingModel):
    """Knife-edge blocking with per-link peak attenuation.

    On real hardware, how strongly a body on the direct path attenuates a
    link varies link to link (antenna patterns, polarization, how much of
    the received energy actually travels the direct path vs. multipath);
    reported values span roughly 4-12 dB. This wrapper draws one peak per
    link at construction and otherwise behaves like
    :class:`KnifeEdgeShadowingModel`. The heterogeneity is invisible to
    fingerprints (they measure it) but violates the uniform-weight
    assumption of model-based tomography.

    Args:
        links: Deployment links (peaks are drawn per link index).
        peak_range_db: (low, high) of the uniform per-link peak draw.
        decay_m / endpoint_taper: As in :class:`KnifeEdgeShadowingModel`.
        seed: Randomness for the frozen peak draw.
    """

    def __init__(
        self,
        links: Sequence[Link],
        *,
        peak_range_db: tuple = (4.0, 12.0),
        decay_m: float = 0.35,
        endpoint_taper: float = 0.5,
        seed=None,
    ) -> None:
        from repro.util.rng import as_generator  # local import avoids a cycle

        low, high = peak_range_db
        check_positive("peak_range_db low", low)
        if high < low:
            raise ValueError(f"peak_range_db must be (low, high), got {peak_range_db}")
        rng = as_generator(seed)
        self.peak_range_db = (float(low), float(high))
        self.decay_m = decay_m
        self.endpoint_taper = endpoint_taper
        self._models = {
            link.index: KnifeEdgeShadowingModel(
                peak_db=float(rng.uniform(low, high)),
                decay_m=decay_m,
                endpoint_taper=endpoint_taper,
            )
            for link in links
        }

    def peak_for(self, link: Link) -> float:
        """The frozen peak attenuation of ``link``."""
        return self._model_for(link).peak_db

    def attenuation(self, link: Link, target: Point) -> float:
        return self._model_for(link).attenuation(link, target)

    def attenuation_matrix(
        self, links: Sequence[Link], points_xy: np.ndarray
    ) -> np.ndarray:
        peaks = np.array([self._model_for(link).peak_db for link in links])
        return _knife_edge_matrix(
            links, points_xy, peaks, self.decay_m, self.endpoint_taper
        )

    def _model_for(self, link: Link) -> KnifeEdgeShadowingModel:
        try:
            return self._models[link.index]
        except KeyError:
            raise ValueError(
                f"link {link.index} was not part of this blocking model"
            ) from None


class ScatteringModel(ShadowingModel):
    """Signed multipath-scattering perturbation of nearby links.

    A body close to (but not necessarily on) a link reflects energy that
    combines with the direct and existing multipath components, perturbing
    RSS up or down in a pattern that depends sensitively on position — the
    part of the device-free signature that *defies* clean propagation models.
    Fingerprints capture it; model-based tomography (RTI) treats it as noise.
    This asymmetry is what gives fingerprint systems their accuracy edge in
    the paper's Fig. 5.

    Model: for each link, a fixed pseudo-random smooth field
    ``f_i(p) = Σ_k a_k sin(u_k · p / λ + φ_k)`` (random directions
    ``u_k``, phases ``φ_k``, amplitudes ``a_k``; spatial scale λ),
    multiplied by an exponential envelope in the excess path length so the
    effect fades away from the link. The field is frozen at construction:
    every query is deterministic, so surveys at different times see the same
    spatial pattern (it drifts only through the scenario's drift processes).

    Args:
        links: The deployment's links (fields are drawn per link index).
        amplitude_db: RMS-scale amplitude of the perturbation near the link.
        wavelength_m: Spatial scale of the field's variation.
        decay_m: Excess-path-length scale of the envelope.
        components: Number of sinusoidal components per link.
        seed: Randomness for the frozen field coefficients.
    """

    def __init__(
        self,
        links: Sequence[Link],
        *,
        amplitude_db: float = 2.5,
        wavelength_m: float = 0.8,
        decay_m: float = 0.5,
        components: int = 3,
        seed=None,
    ) -> None:
        from repro.util.rng import as_generator  # local import avoids a cycle

        check_positive("amplitude_db", amplitude_db, strict=False)
        check_positive("wavelength_m", wavelength_m)
        check_positive("decay_m", decay_m)
        if components < 1:
            raise ValueError(f"components must be >= 1, got {components}")
        self.amplitude_db = amplitude_db
        self.wavelength_m = wavelength_m
        self.decay_m = decay_m
        self.components = components
        rng = as_generator(seed)
        self._fields = {}
        for link in links:
            angles = rng.uniform(0.0, 2.0 * np.pi, size=components)
            directions = np.column_stack((np.cos(angles), np.sin(angles)))
            phases = rng.uniform(0.0, 2.0 * np.pi, size=components)
            amplitudes = rng.normal(0.0, 1.0, size=components)
            # Normalize so the field has unit RMS regardless of `components`.
            norm = np.sqrt(np.sum(amplitudes**2) / 2.0) or 1.0
            self._fields[link.index] = (directions, phases, amplitudes / norm)

    def attenuation(self, link: Link, target: Point) -> float:
        try:
            directions, phases, amplitudes = self._fields[link.index]
        except KeyError:
            raise ValueError(
                f"link {link.index} was not part of this scattering model"
            ) from None
        excess = link.excess_path_length(target)
        envelope = float(np.exp(-excess / self.decay_m))
        position = np.array([target.x, target.y])
        arguments = (
            2.0 * np.pi * (directions @ position) / self.wavelength_m + phases
        )
        field = float(np.dot(amplitudes, np.sin(arguments)))
        return self.amplitude_db * field * envelope

    def attenuation_matrix(
        self, links: Sequence[Link], points_xy: np.ndarray
    ) -> np.ndarray:
        xy = np.asarray(points_xy, dtype=float).reshape(-1, 2)
        coefficients = []
        for link in links:
            try:
                coefficients.append(self._fields[link.index])
            except KeyError:
                raise ValueError(
                    f"link {link.index} was not part of this scattering model"
                ) from None
        directions = np.stack([c[0] for c in coefficients])  # (L, K, 2)
        phases = np.stack([c[1] for c in coefficients])  # (L, K)
        amplitudes = np.stack([c[2] for c in coefficients])  # (L, K)
        envelope = np.exp(-excess_path_lengths(links, xy) / self.decay_m)
        arguments = (
            2.0 * np.pi * np.einsum("lkd,pd->plk", directions, xy)
            / self.wavelength_m
            + phases[None, :, :]
        )
        field = np.einsum("lk,plk->pl", amplitudes, np.sin(arguments))
        return self.amplitude_db * field * envelope


def _knife_edge_matrix(
    links: Sequence[Link],
    points_xy: np.ndarray,
    peak_db,
    decay_m: float,
    endpoint_taper: float,
) -> np.ndarray:
    """Broadcasted knife-edge attenuation; ``peak_db`` is scalar or per-link."""
    excess = excess_path_lengths(links, points_xy)
    base = peak_db * np.exp(-excess / decay_m)
    if endpoint_taper == 0.0:
        return base
    t = projection_parameters(links, points_xy)
    taper = 1.0 - endpoint_taper * (1.0 - 4.0 * t * (1.0 - t))
    return base * taper
