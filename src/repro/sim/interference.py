"""Interference injection: bursty co-channel disturbances.

Real 2.4 GHz deployments share the band with neighboring WiFi, Bluetooth
and microwave ovens. Interference shows up as bursts of large one-sided
RSS perturbations on a subset of links — very different from the Gaussian
measurement noise the channel model carries — and is the standard failure
mode detection/robustness code must survive.

:class:`BurstyInterferenceModel` produces per-sample offsets: each link is
independently in a *burst* with some probability per sample (bursts are
drawn i.i.d. per sample for simplicity — at a 1 Hz sampling rate, bursts
shorter than a sample are indistinguishable from that anyway), and a burst
adds a one-sided offset of configurable magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_positive, check_probability


@dataclass(frozen=True)
class InterferenceSpec:
    """Declarative (serializable) description of the interference regime.

    A :class:`~repro.sim.scenario.Scenario` may carry one of these; any
    :class:`~repro.sim.collector.RssCollector` built on such a scenario
    materializes a :class:`BurstyInterferenceModel` from it automatically,
    so high-interference environments (e.g. the ``atrium`` registry
    scenario) disturb every measurement stream without call sites opting
    in. All fields are plain data — the spec travels through engine task
    payloads and JSON scenario files.
    """

    burst_probability: float = 0.05
    magnitude_low_db: float = 3.0
    magnitude_high_db: float = 10.0
    direction: str = "negative"

    def __post_init__(self) -> None:
        check_probability("burst_probability", self.burst_probability)
        if self.magnitude_high_db < self.magnitude_low_db:
            raise ValueError(
                f"magnitude range inverted: ({self.magnitude_low_db}, "
                f"{self.magnitude_high_db})"
            )

    def build(self, links: int, *, seed: RandomState = None) -> "BurstyInterferenceModel":
        """Materialize the model for a deployment of ``links`` links."""
        return BurstyInterferenceModel(
            links=links,
            burst_probability=self.burst_probability,
            magnitude_db=(self.magnitude_low_db, self.magnitude_high_db),
            direction=self.direction,
            seed=seed,
        )


@dataclass
class BurstyInterferenceModel:
    """Per-sample bursty RSS offsets.

    Attributes:
        links: Number of links.
        burst_probability: Probability a given link is hit on a given sample.
        magnitude_db: (low, high) of the uniform burst magnitude draw.
        direction: ``"negative"`` (collisions lower measured RSS of the
            probe traffic — the common case), ``"positive"``, or ``"both"``.
        seed: Randomness.
    """

    links: int
    burst_probability: float = 0.05
    magnitude_db: tuple = (3.0, 10.0)
    direction: str = "negative"
    seed: RandomState = None

    def __post_init__(self) -> None:
        if self.links < 1:
            raise ValueError(f"links must be >= 1, got {self.links}")
        check_probability("burst_probability", self.burst_probability)
        low, high = self.magnitude_db
        check_positive("magnitude low", low, strict=False)
        if high < low:
            raise ValueError(f"magnitude range inverted: {self.magnitude_db}")
        if self.direction not in ("negative", "positive", "both"):
            raise ValueError(
                f"direction must be negative/positive/both, got "
                f"{self.direction!r}"
            )
        self._rng = as_generator(self.seed)

    def sample_offsets(self) -> np.ndarray:
        """Offsets (dB) for one RSS sample across all links."""
        hit = self._rng.random(self.links) < self.burst_probability
        magnitudes = self._rng.uniform(*self.magnitude_db, size=self.links)
        if self.direction == "negative":
            signs = -1.0
        elif self.direction == "positive":
            signs = 1.0
        else:
            signs = self._rng.choice((-1.0, 1.0), size=self.links)
        return np.where(hit, signs * magnitudes, 0.0)

    def sample_offsets_batch(self, count: int) -> np.ndarray:
        """Offsets for ``count`` consecutive samples, shape ``(count, links)``.

        Statistically identical to ``count`` :meth:`sample_offsets` calls but
        drawn as whole arrays (burst indicators first, then magnitudes), so
        the exact realization for a given seed differs from the one-by-one
        sequence; batch consumers should draw all their interference through
        this method.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        shape = (count, self.links)
        hit = self._rng.random(shape) < self.burst_probability
        magnitudes = self._rng.uniform(*self.magnitude_db, size=shape)
        if self.direction == "negative":
            signs = -1.0
        elif self.direction == "positive":
            signs = 1.0
        else:
            signs = self._rng.choice((-1.0, 1.0), size=shape)
        return np.where(hit, signs * magnitudes, 0.0)
