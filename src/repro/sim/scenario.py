"""Scenario: a deployment plus everything that happens to it over time.

A :class:`Scenario` binds together the deployment geometry, the channel
realization, the target shadowing model, the slow drift process, and discrete
*structural events* (furniture moved, door opened) that add step changes to
particular links. It exposes one query — the noise-free RSS of every link at
a given day with a target at a given cell (or absent) — which the collector
turns into noisy measurement streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.sim.channel import ChannelModel, ChannelParams
from repro.sim.deployment import Deployment
from repro.sim.drift import DriftProcess, EntryFieldDrift
from repro.sim.geometry import Point
from repro.sim.interference import InterferenceSpec
from repro.sim.shadowing import ShadowingModel
from repro.util.rng import RandomState


@dataclass(frozen=True)
class StructuralEvent:
    """A persistent environmental change beginning at ``day``.

    ``link_offsets_db`` adds a constant per-link offset from ``day`` onward —
    the signature of moved furniture or a door left open, which shifts the
    multipath of nearby links but not the geometry of target blocking.
    """

    day: float
    link_offsets_db: np.ndarray
    label: str = "structural-change"

    def __post_init__(self) -> None:
        if self.day < 0:
            raise ValueError(f"event day must be >= 0, got {self.day}")
        offsets = np.asarray(self.link_offsets_db, dtype=float)
        object.__setattr__(self, "link_offsets_db", offsets)


@dataclass
class Scenario:
    """The simulated world an experiment runs against.

    Attributes:
        deployment: Geometry (room, grid, links).
        channel: Empty-room channel realization.
        shadowing: Target-induced attenuation model.
        drift: Per-link slow environmental drift (affects everything, target
            or not — recoverable from a fresh empty-room calibration).
        entry_drift: Optional per-(link, cell) drift of the *target-present*
            RSS — the component a cheap recalibration cannot recover. Scaled
            per entry by how strongly the target at that cell interacts with
            that link (see :meth:`entry_drift_weights`).
        events: Persistent structural changes (furniture, doors).
        interference_spec: Optional declarative interference regime
            (:class:`~repro.sim.interference.InterferenceSpec`). Collectors
            built on this scenario materialize it automatically, so
            high-interference environments disturb every measurement stream
            without call sites opting in.
    """

    deployment: Deployment
    channel: ChannelModel
    shadowing: ShadowingModel
    drift: DriftProcess
    entry_drift: Optional[EntryFieldDrift] = None
    events: List[StructuralEvent] = field(default_factory=list)
    interference_spec: Optional[InterferenceSpec] = None

    def __post_init__(self) -> None:
        self._entry_weights: Optional[np.ndarray] = None
        if self.entry_drift is not None and (
            self.entry_drift.links != self.deployment.link_count
            or self.entry_drift.cells != self.deployment.cell_count
        ):
            raise ValueError(
                f"entry_drift shape ({self.entry_drift.links}, "
                f"{self.entry_drift.cells}) does not match deployment "
                f"({self.deployment.link_count}, {self.deployment.cell_count})"
            )
        if self.drift.link_count != self.deployment.link_count:
            raise ValueError(
                f"drift covers {self.drift.link_count} links but deployment has "
                f"{self.deployment.link_count}"
            )
        for event in self.events:
            if event.link_offsets_db.shape != (self.deployment.link_count,):
                raise ValueError(
                    f"event {event.label!r} offsets shape "
                    f"{event.link_offsets_db.shape} does not match link count "
                    f"{self.deployment.link_count}"
                )

    # ------------------------------------------------------------------
    # world state queries
    # ------------------------------------------------------------------
    def environment_offsets(self, day: float) -> np.ndarray:
        """Total slow-drift + structural offset per link at ``day``."""
        offsets = self.drift.offsets(day)
        for event in self.events:
            if day >= event.day:
                offsets = offsets + event.link_offsets_db
        return offsets

    def shadow_at_cell(self, cell: int) -> np.ndarray:
        """Target-induced attenuation per link with the target at ``cell``."""
        target = self.deployment.grid.center_of(cell)
        return self.shadowing.attenuation_vector(self.deployment.links, target)

    def shadow_at_point(self, point: Point) -> np.ndarray:
        """Target-induced attenuation per link with the target at ``point``."""
        return self.shadowing.attenuation_vector(self.deployment.links, point)

    def shadow_matrix(self, points_xy: np.ndarray) -> np.ndarray:
        """Per-link attenuation for many target positions at once.

        Args:
            points_xy: Target coordinates, shape ``(n_points, 2)``.
        Returns:
            Array of shape ``(n_points, links)`` — the batched counterpart
            of :meth:`shadow_at_point`, computed in one broadcasted pass.
        """
        return self.shadowing.attenuation_matrix(self.deployment.links, points_xy)

    def entry_drift_weights(self) -> np.ndarray:
        """Per-entry scale of the target-multipath drift, in [floor, 1].

        An entry where the target barely interacts with the link (tiny
        noise-free dip) keeps its RSS pinned to the empty-room value even as
        the environment drifts, so its entry drift is scaled down to a small
        floor; strongly blocked entries get the full drift. This preserves
        the paper's observation that undistorted entries stay (approximately)
        equal to the fresh empty-room RSS.
        """
        if self._entry_weights is None:
            dips = self.shadow_matrix(self.deployment.grid.centers_array()).T
            floor = 0.15
            interaction = np.minimum(np.abs(dips) / 6.0, 1.0)
            self._entry_weights = floor + (1.0 - floor) * interaction
        return self._entry_weights

    def entry_drift_at(self, day: float, cell: int) -> np.ndarray:
        """Per-link target-present drift with the target at ``cell``."""
        if self.entry_drift is None:
            return np.zeros(self.deployment.link_count)
        weights = self.entry_drift_weights()
        return weights[:, cell] * self.entry_drift.offsets(day)[:, cell]

    def entry_drift_matrix(self, day: float, cells: np.ndarray) -> np.ndarray:
        """Per-link target-present drift for many target cells at once.

        Args:
            day: Query day.
            cells: Target cell per row, shape ``(n,)``.
        Returns:
            Array of shape ``(n, links)`` whose row ``i`` equals
            :meth:`entry_drift_at` ``(day, cells[i])`` — but the underlying
            drift field is evaluated once instead of once per row.
        """
        cells = np.asarray(cells, dtype=int)
        if self.entry_drift is None:
            return np.zeros((len(cells), self.deployment.link_count))
        weights = self.entry_drift_weights()
        offsets = self.entry_drift.offsets(day)
        return (weights[:, cells] * offsets[:, cells]).T

    def true_rss(
        self, day: float, *, cell: Optional[int] = None, point: Optional[Point] = None
    ) -> np.ndarray:
        """Noise-free RSS vector at ``day`` (target at cell/point, or absent)."""
        if cell is not None and point is not None:
            raise ValueError("pass at most one of cell/point")
        shadow = None
        extra_drift = np.zeros(self.deployment.link_count)
        if cell is not None:
            shadow = self.shadow_at_cell(cell)
            extra_drift = self.entry_drift_at(day, cell)
        elif point is not None:
            shadow = self.shadow_at_point(point)
            extra_drift = self.entry_drift_at(
                day, self.deployment.grid.cell_at(point)
            )
        return self.channel.sample(
            shadow_db=shadow,
            drift_db=self.environment_offsets(day) + extra_drift,
            rng=None,
            quantize=False,
        )

    def true_rss_multi(self, day: float, cells: Sequence[int]) -> np.ndarray:
        """Noise-free RSS with several targets present simultaneously.

        Per-target shadows and entry drifts superpose — the first-order
        model valid while the bodies do not shadow each other's dominant
        paths (the sparse-occupancy regime multi-target DfL assumes).
        """
        shadow = np.zeros(self.deployment.link_count)
        extra_drift = np.zeros(self.deployment.link_count)
        for cell in cells:
            shadow = shadow + self.shadow_at_cell(int(cell))
            extra_drift = extra_drift + self.entry_drift_at(day, int(cell))
        return self.channel.sample(
            shadow_db=shadow,
            drift_db=self.environment_offsets(day) + extra_drift,
            rng=None,
            quantize=False,
        )

    def true_fingerprint_matrix(self, day: float) -> np.ndarray:
        """Noise-free fingerprint matrix (links x cells) at ``day``.

        This is the ground truth the reconstruction benchmarks score against.
        """
        centers = self.deployment.grid.centers_array()
        shadows = self.shadow_matrix(centers)  # (cells, links)
        drift = self.environment_offsets(day)[None, :] + self.entry_drift_matrix(
            day, np.arange(self.deployment.cell_count)
        )
        batch = self.channel.sample_batch(
            self.deployment.cell_count,
            shadow_db=shadows,
            drift_db=drift,
            rng=None,
            quantize=False,
        )
        return batch.T

    def add_event(self, event: StructuralEvent) -> None:
        if event.link_offsets_db.shape != (self.deployment.link_count,):
            raise ValueError(
                f"event offsets shape {event.link_offsets_db.shape} does not match "
                f"link count {self.deployment.link_count}"
            )
        self.events.append(event)


def build_paper_scenario(
    *,
    seed: RandomState = 0,
    deployment: Optional[Deployment] = None,
    shadowing: Optional[ShadowingModel] = None,
    channel_params: Optional[ChannelParams] = None,
    events: Optional[Sequence[StructuralEvent]] = None,
) -> Scenario:
    """The default simulated version of the paper's testbed.

    10 links / 96 cells / 0.6 m grid (Fig. 2 geometry), calibrated drift
    (2.5 dB @ 5 d, 6 dB @ 45 d ensemble means), knife-edge body shadowing.
    All randomness derives from ``seed``. A thin wrapper over the ``paper``
    entry of the scenario registry (:mod:`repro.sim.specs`) — the generic
    spec compiler is the single implementation.
    """
    from repro.sim.specs import build_scenario, get_scenario_spec

    return build_scenario(
        get_scenario_spec("paper"),
        seed=seed,
        deployment=deployment,
        shadowing=shadowing,
        channel_params=channel_params,
        events=events,
    )
