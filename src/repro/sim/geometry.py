"""Planar geometry primitives for the monitored area.

The paper's deployment (its Fig. 2) is a rectangular room whose floor is
divided into square grid cells, with WiFi transceivers placed around the
perimeter forming links across the area. Everything downstream (channel
model, shadowing, tomography baselines) works in terms of these primitives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.util.validation import check_positive


@dataclass(frozen=True, order=True)
class Point:
    """A point in the room's floor plane, in meters."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance in meters."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_array(self) -> np.ndarray:
        return np.array([self.x, self.y], dtype=float)

    def translated(self, dx: float, dy: float) -> "Point":
        return Point(self.x + dx, self.y + dy)


@dataclass(frozen=True)
class Link:
    """A directional radio link between a transmitter and a receiver."""

    index: int
    tx: Point
    rx: Point

    @property
    def length(self) -> float:
        """Link length (TX-RX distance) in meters."""
        return self.tx.distance_to(self.rx)

    @property
    def midpoint(self) -> Point:
        return Point((self.tx.x + self.rx.x) / 2.0, (self.tx.y + self.rx.y) / 2.0)

    def distance_from_path(self, point: Point) -> float:
        """Perpendicular distance from ``point`` to the TX-RX segment."""
        px, py = point.x - self.tx.x, point.y - self.tx.y
        dx, dy = self.rx.x - self.tx.x, self.rx.y - self.tx.y
        seg_sq = dx * dx + dy * dy
        if seg_sq == 0.0:
            return point.distance_to(self.tx)
        t = max(0.0, min(1.0, (px * dx + py * dy) / seg_sq))
        closest = Point(self.tx.x + t * dx, self.tx.y + t * dy)
        return point.distance_to(closest)

    def excess_path_length(self, point: Point) -> float:
        """Extra distance of the TX → point → RX detour over the direct path.

        This is the quantity that parameterizes both the ellipse weighting
        model of radio tomography and our knife-edge shadowing model: it is
        zero exactly on the direct path and grows with the perpendicular
        offset.
        """
        detour = self.tx.distance_to(point) + point.distance_to(self.rx)
        return max(0.0, detour - self.length)

    def projection_parameter(self, point: Point) -> float:
        """Normalized position of ``point``'s projection on the link.

        0 at the transmitter, 1 at the receiver; values are clamped to
        [0, 1] so off-segment points project onto the nearest endpoint.
        """
        dx, dy = self.rx.x - self.tx.x, self.rx.y - self.tx.y
        seg_sq = dx * dx + dy * dy
        if seg_sq == 0.0:
            return 0.0
        t = ((point.x - self.tx.x) * dx + (point.y - self.tx.y) * dy) / seg_sq
        return max(0.0, min(1.0, t))


@dataclass(frozen=True)
class Room:
    """A rectangular monitored area with its origin at (0, 0)."""

    width: float
    depth: float

    def __post_init__(self) -> None:
        check_positive("width", self.width)
        check_positive("depth", self.depth)

    @property
    def area(self) -> float:
        return self.width * self.depth

    @property
    def center(self) -> Point:
        return Point(self.width / 2.0, self.depth / 2.0)

    def contains(self, point: Point, *, tolerance: float = 1e-9) -> bool:
        return (
            -tolerance <= point.x <= self.width + tolerance
            and -tolerance <= point.y <= self.depth + tolerance
        )


@dataclass(frozen=True)
class Grid:
    """A regular division of a :class:`Room` floor into square cells.

    Cells are indexed row-major: cell ``j`` has column ``j % columns`` and
    row ``j // columns``. The paper uses 0.6 m x 0.6 m cells; 96 of them
    cover the monitored part of the 9 m x 12 m room.
    """

    room: Room
    cell_size: float
    columns: int = field(init=False)
    rows: int = field(init=False)

    def __post_init__(self) -> None:
        check_positive("cell_size", self.cell_size)
        if self.cell_size > min(self.room.width, self.room.depth):
            raise ValueError(
                f"cell_size {self.cell_size} exceeds room dimensions "
                f"{self.room.width} x {self.room.depth}"
            )
        # A tolerance guards against float artifacts like 7.2 // 0.6 == 11.
        object.__setattr__(
            self, "columns", int(np.floor(self.room.width / self.cell_size + 1e-9))
        )
        object.__setattr__(
            self, "rows", int(np.floor(self.room.depth / self.cell_size + 1e-9))
        )

    @property
    def cell_count(self) -> int:
        return self.columns * self.rows

    def center_of(self, cell: int) -> Point:
        """Center point of cell ``cell`` (row-major index)."""
        self._check_cell(cell)
        col, row = cell % self.columns, cell // self.columns
        return Point(
            (col + 0.5) * self.cell_size,
            (row + 0.5) * self.cell_size,
        )

    def centers_array(self) -> np.ndarray:
        """Centers of all cells as a ``(cell_count, 2)`` array, row-major."""
        cells = np.arange(self.cell_count)
        cols = cells % self.columns
        rows = cells // self.columns
        return np.column_stack(
            ((cols + 0.5) * self.cell_size, (rows + 0.5) * self.cell_size)
        )

    def cells_at(self, points_xy: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`cell_at`: ``(n, 2)`` coordinates to cell indices.

        Matches the scalar method's clamping of out-of-grid points.
        """
        xy = np.asarray(points_xy, dtype=float)
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise ValueError(f"points_xy must have shape (n, 2), got {xy.shape}")
        cols = np.clip(xy[:, 0] // self.cell_size, 0, self.columns - 1).astype(int)
        rows = np.clip(xy[:, 1] // self.cell_size, 0, self.rows - 1).astype(int)
        return rows * self.columns + cols

    def cell_at(self, point: Point) -> int:
        """Row-major index of the cell containing ``point``.

        Points outside the gridded region are clamped to the nearest cell.
        """
        col = int(min(max(point.x // self.cell_size, 0), self.columns - 1))
        row = int(min(max(point.y // self.cell_size, 0), self.rows - 1))
        return row * self.columns + col

    def neighbors_of(self, cell: int) -> List[int]:
        """4-connected neighbor cells (used by the similarity operator)."""
        self._check_cell(cell)
        col, row = cell % self.columns, cell // self.columns
        out: List[int] = []
        for dc, dr in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            nc, nr = col + dc, row + dr
            if 0 <= nc < self.columns and 0 <= nr < self.rows:
                out.append(nr * self.columns + nc)
        return out

    def centers(self) -> List[Point]:
        """Centers of all cells in row-major order."""
        return [self.center_of(j) for j in range(self.cell_count)]

    def iter_cells(self) -> Iterator[Tuple[int, Point]]:
        for j in range(self.cell_count):
            yield j, self.center_of(j)

    def _check_cell(self, cell: int) -> None:
        if not 0 <= cell < self.cell_count:
            raise IndexError(
                f"cell {cell} out of range for a {self.rows} x {self.columns} grid"
            )


def link_endpoint_arrays(links: Sequence[Link]) -> Tuple[np.ndarray, np.ndarray]:
    """TX and RX coordinates of ``links`` as two ``(n_links, 2)`` arrays."""
    tx = np.array([[link.tx.x, link.tx.y] for link in links], dtype=float)
    rx = np.array([[link.rx.x, link.rx.y] for link in links], dtype=float)
    return tx.reshape(-1, 2), rx.reshape(-1, 2)


def excess_path_lengths(
    links: Sequence[Link], points_xy: np.ndarray
) -> np.ndarray:
    """Vectorized :meth:`Link.excess_path_length` over points x links.

    Args:
        links: The links.
        points_xy: Target coordinates, shape ``(n_points, 2)``.
    Returns:
        Excess detour lengths, shape ``(n_points, n_links)``. Uses
        ``np.hypot`` so each entry matches the scalar method bit for bit.
    """
    tx, rx = link_endpoint_arrays(links)
    xy = np.asarray(points_xy, dtype=float).reshape(-1, 2)
    to_tx = np.hypot(xy[:, None, 0] - tx[None, :, 0], xy[:, None, 1] - tx[None, :, 1])
    to_rx = np.hypot(xy[:, None, 0] - rx[None, :, 0], xy[:, None, 1] - rx[None, :, 1])
    lengths = np.hypot(rx[:, 0] - tx[:, 0], rx[:, 1] - tx[:, 1])
    return np.maximum(0.0, to_tx + to_rx - lengths[None, :])


def projection_parameters(
    links: Sequence[Link], points_xy: np.ndarray
) -> np.ndarray:
    """Vectorized :meth:`Link.projection_parameter` over points x links.

    Returns ``(n_points, n_links)`` values clamped to [0, 1]; degenerate
    (zero-length) links map to 0 like the scalar method.
    """
    tx, rx = link_endpoint_arrays(links)
    xy = np.asarray(points_xy, dtype=float).reshape(-1, 2)
    seg = rx - tx
    seg_sq = np.sum(seg**2, axis=1)
    numerator = (xy[:, None, 0] - tx[None, :, 0]) * seg[None, :, 0] + (
        xy[:, None, 1] - tx[None, :, 1]
    ) * seg[None, :, 1]
    with np.errstate(divide="ignore", invalid="ignore"):
        t = np.where(seg_sq[None, :] > 0.0, numerator / seg_sq[None, :], 0.0)
    return np.clip(t, 0.0, 1.0)


def pairwise_distances(points: Sequence[Point]) -> np.ndarray:
    """Dense symmetric distance matrix between a sequence of points."""
    coords = np.array([[p.x, p.y] for p in points], dtype=float)
    if coords.size == 0:
        return np.zeros((0, 0))
    deltas = coords[:, None, :] - coords[None, :, :]
    return np.sqrt(np.sum(deltas**2, axis=-1))
