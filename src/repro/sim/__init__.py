"""Radio-testbed substrate: geometry, channel, target shadowing, drift.

This subpackage stands in for the paper's Atheros AR9331 testbed (see
DESIGN.md section 2). It produces RSS measurement streams with the same
structural properties the TafLoc solver exploits: an approximately low-rank
fingerprint matrix, linear correlation between reference columns and the rest,
and continuity/similarity of the target-blocked ("largely distorted")
entries.
"""

from repro.sim.channel import ChannelModel, ChannelParams
from repro.sim.collector import CollectionProtocol, RssCollector, SurveyResult
from repro.sim.deployment import (
    Deployment,
    build_paper_deployment,
    build_perimeter_deployment,
    build_square_deployment,
)
from repro.sim.drift import (
    CompositeDrift,
    EntryFieldDrift,
    GaussMarkovDrift,
    LinearDrift,
    RandomWalkDrift,
)
from repro.sim.geometry import Grid, Link, Point, Room
from repro.sim.interference import BurstyInterferenceModel, InterferenceSpec
from repro.sim.mobility import (
    MobilityModel,
    MobilitySpec,
    RandomWalkModel,
    RandomWaypointModel,
    ScriptedRoute,
    collect_mobility_trace,
)
from repro.sim.scenario import Scenario, StructuralEvent, build_paper_scenario
from repro.sim.specs import (
    DriftSpec,
    EntryDriftSpec,
    EventSpec,
    GeometrySpec,
    ScenarioSpec,
    ShadowingSpec,
    as_scenario_spec,
    build_deployment,
    build_scenario,
    get_scenario_spec,
    list_scenarios,
    register_scenario,
    scenario_names,
)
from repro.sim.shadowing import (
    CompositeShadowingModel,
    EllipseShadowingModel,
    HeterogeneousBlockingModel,
    KnifeEdgeShadowingModel,
    ScatteringModel,
    ShadowingModel,
)
from repro.sim.trace import FingerprintSurvey, LiveTrace

__all__ = [
    "BurstyInterferenceModel",
    "ChannelModel",
    "ChannelParams",
    "CollectionProtocol",
    "CompositeDrift",
    "CompositeShadowingModel",
    "Deployment",
    "DriftSpec",
    "EllipseShadowingModel",
    "EntryDriftSpec",
    "EntryFieldDrift",
    "EventSpec",
    "FingerprintSurvey",
    "GaussMarkovDrift",
    "GeometrySpec",
    "Grid",
    "HeterogeneousBlockingModel",
    "InterferenceSpec",
    "KnifeEdgeShadowingModel",
    "LinearDrift",
    "Link",
    "LiveTrace",
    "MobilityModel",
    "MobilitySpec",
    "Point",
    "RandomWalkDrift",
    "RandomWalkModel",
    "RandomWaypointModel",
    "Room",
    "RssCollector",
    "ScenarioSpec",
    "ScriptedRoute",
    "ScatteringModel",
    "Scenario",
    "ShadowingModel",
    "ShadowingSpec",
    "StructuralEvent",
    "SurveyResult",
    "as_scenario_spec",
    "build_deployment",
    "build_paper_deployment",
    "build_paper_scenario",
    "build_perimeter_deployment",
    "build_scenario",
    "build_square_deployment",
    "collect_mobility_trace",
    "get_scenario_spec",
    "list_scenarios",
    "register_scenario",
    "scenario_names",
]
