"""RSS collection: turn a scenario into surveys and live traces.

The collector implements the paper's measurement protocol — "for each grid,
100 continuous RSS are collected one per second" — and keeps an account of
every sample taken, so the Fig. 4 labor-cost numbers fall straight out of the
recorded sample counts instead of being asserted separately.

The hot paths (:meth:`RssCollector.collect_survey`,
:meth:`RssCollector.live_vector_multi`, :meth:`RssCollector.walk_trace`,
:meth:`RssCollector.live_trace`) are *batched*: all randomness for an
operation is drawn up front in a fixed layout, and the physics — shadowing
geometry, channel gain, quantization — runs as broadcasted array ops over
every (cell, link, sample) triple at once. A reference loop implementation
(``vectorized=False``) consumes the identical pre-drawn randomness and
applies the scalar physics APIs cell by cell; the equivalence tests assert
both paths agree, which pins the batched math to the original semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.sim.geometry import Point
from repro.sim.interference import BurstyInterferenceModel
from repro.sim.scenario import Scenario
from repro.sim.trace import FingerprintSurvey, LiveTrace
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_index_array, check_positive


@dataclass(frozen=True)
class CollectionProtocol:
    """Sampling protocol parameters (paper defaults).

    The jitter fields model where a person actually stands, uniformly within
    that fraction of the cell around its center (1.0 = anywhere in the
    cell), one draw per visit. Surveys are a controlled procedure — the
    surveyor deliberately stands mid-cell — so ``survey_jitter`` is small;
    a live target walks wherever they please, so ``live_jitter`` spans the
    whole cell. Stance variation is the dominant "noise" between two surveys
    of the same room and contributes the dB-scale floor that
    fingerprint-vs-fingerprint comparisons show even at short time gaps.
    """

    samples_per_cell: int = 100
    sample_period_s: float = 1.0
    empty_room_samples: int = 60
    survey_jitter: float = 0.25
    live_jitter: float = 1.0

    def __post_init__(self) -> None:
        if self.samples_per_cell < 1:
            raise ValueError(
                f"samples_per_cell must be >= 1, got {self.samples_per_cell}"
            )
        check_positive("sample_period_s", self.sample_period_s)
        if self.empty_room_samples < 1:
            raise ValueError(
                f"empty_room_samples must be >= 1, got {self.empty_room_samples}"
            )
        for name, value in (
            ("survey_jitter", self.survey_jitter),
            ("live_jitter", self.live_jitter),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {value}")

    def survey_seconds(self, cell_count: int) -> float:
        """Wall-clock seconds to survey ``cell_count`` cells."""
        return cell_count * self.samples_per_cell * self.sample_period_s


@dataclass(frozen=True)
class SurveyResult:
    """A survey plus its cost accounting."""

    survey: FingerprintSurvey
    samples_taken: int
    seconds_spent: float


@dataclass
class RssCollector:
    """Collects noisy RSS measurements from a :class:`Scenario`.

    All randomness flows through the generator created from ``seed`` at
    construction, so a collector replays identically for the same seed and
    call sequence. An optional :class:`BurstyInterferenceModel` injects
    co-channel disturbance into every sample drawn (failure-injection for
    robustness tests).

    ``vectorized`` selects between the batched physics implementation
    (default; one broadcasted pass over all cells/frames) and the reference
    per-cell loop. Both consume the exact same random draws, so they produce
    the same measurements — the loop exists as the executable specification
    the batch path is tested against.
    """

    scenario: Scenario
    protocol: CollectionProtocol = field(default_factory=CollectionProtocol)
    seed: RandomState = None
    interference: Optional[BurstyInterferenceModel] = None
    vectorized: bool = True

    def __post_init__(self) -> None:
        self._rng = as_generator(self.seed)
        self._samples_taken = 0
        if self.interference is None and self.scenario.interference_spec is not None:
            # The scenario declares its interference regime; materialize it
            # on this collector's stream so the realization replays with the
            # collector seed like every other draw.
            self.interference = self.scenario.interference_spec.build(
                self.scenario.deployment.link_count, seed=self._rng
            )
        if self.interference is not None and (
            self.interference.links != self.scenario.deployment.link_count
        ):
            raise ValueError(
                f"interference covers {self.interference.links} links, "
                f"deployment has {self.scenario.deployment.link_count}"
            )

    @property
    def samples_taken(self) -> int:
        """Total number of RSS samples drawn so far (all calls)."""
        return self._samples_taken

    # ------------------------------------------------------------------
    # surveys
    # ------------------------------------------------------------------
    def collect_empty_room(self, day: float) -> np.ndarray:
        """Averaged empty-room calibration vector at ``day``."""
        samples = self._draw_samples(day, cell=None, count=self.protocol.empty_room_samples)
        return samples.mean(axis=0)

    def collect_full_survey(self, day: float) -> SurveyResult:
        """Survey every grid cell — the expensive operation TafLoc avoids."""
        cells = np.arange(self.scenario.deployment.cell_count)
        return self.collect_survey(day, cells)

    def collect_survey(self, day: float, cells: Sequence[int]) -> SurveyResult:
        """Survey a subset of cells (e.g. just the reference locations)."""
        cell_indices = check_index_array(
            "cells", cells, upper=self.scenario.deployment.cell_count
        )
        empty = self.collect_empty_room(day)
        link_count = self.scenario.deployment.link_count
        count = len(cell_indices)
        samples_per_cell = self.protocol.samples_per_cell
        if count == 0:
            matrix = np.zeros((link_count, 0))
        else:
            spots, noise = self._survey_draws(cell_indices)
            offsets = self._interference_offsets(count * samples_per_cell)
            if offsets is not None:
                offsets = offsets.reshape(count, samples_per_cell, link_count)
            if self.vectorized:
                matrix = self._survey_matrix_batch(
                    day, cell_indices, spots, noise, offsets
                )
            else:
                matrix = self._survey_matrix_loop(
                    day, cell_indices, spots, noise, offsets
                )
            self._samples_taken += count * samples_per_cell
        survey = FingerprintSurvey(
            day=day,
            matrix=matrix,
            empty_rss=empty,
            samples_per_cell=samples_per_cell,
            sample_period_s=self.protocol.sample_period_s,
            cells=cell_indices,
        )
        survey_samples = count * samples_per_cell
        seconds = survey_samples * self.protocol.sample_period_s
        # Cost accounting counts the person-time of walking the grid; the
        # empty-room calibration needs nobody in the room and is excluded,
        # matching the paper's 100*N/3600 accounting.
        return SurveyResult(
            survey=survey, samples_taken=survey_samples, seconds_spent=seconds
        )

    # ------------------------------------------------------------------
    # live measurement
    # ------------------------------------------------------------------
    def live_vector(
        self,
        day: float,
        *,
        cell: Optional[int] = None,
        point: Optional[Point] = None,
        averaging: int = 1,
    ) -> np.ndarray:
        """One live RSS vector (optionally averaged over several samples)."""
        if averaging < 1:
            raise ValueError(f"averaging must be >= 1, got {averaging}")
        samples = self._draw_samples(day, cell=cell, point=point, count=averaging)
        return samples.mean(axis=0)

    def live_vector_multi(
        self,
        day: float,
        cells: Sequence[int],
        *,
        averaging: int = 1,
    ) -> np.ndarray:
        """One live RSS vector with several targets present at once.

        Each target stands at a jittered spot in its cell; shadows and
        entry drifts superpose (see
        :meth:`repro.sim.scenario.Scenario.true_rss_multi`).
        """
        if averaging < 1:
            raise ValueError(f"averaging must be >= 1, got {averaging}")
        cell_array = check_index_array(
            "cells", cells, upper=self.scenario.deployment.cell_count
        )
        spots = np.array(
            [
                self._jittered_point_xy(int(cell), self.protocol.live_jitter)
                for cell in cell_array
            ]
        ).reshape(len(cell_array), 2)
        if self.vectorized:
            shadow = self.scenario.shadow_matrix(spots).sum(axis=0)
            drift = self.scenario.environment_offsets(day)
            drift = drift + self.scenario.entry_drift_matrix(day, cell_array).sum(
                axis=0
            )
        else:
            shadow = np.zeros(self.scenario.deployment.link_count)
            drift = self.scenario.environment_offsets(day)
            for index, cell in enumerate(cell_array):
                shadow = shadow + self.scenario.shadow_at_point(
                    Point(*spots[index])
                )
                drift = drift + self.scenario.entry_drift_at(day, int(cell))
        rows = self.scenario.channel.sample_batch(
            averaging, shadow_db=shadow, drift_db=drift, rng=self._noise_rng()
        )
        offsets = self._interference_offsets(averaging)
        if offsets is not None:
            rows = rows + offsets
        self._samples_taken += averaging
        return rows.mean(axis=0)

    def live_trace(
        self,
        day: float,
        cells: Sequence[int],
        *,
        averaging: int = 1,
    ) -> LiveTrace:
        """A trace of live vectors with the target visiting ``cells`` in order.

        The target stands at a jittered spot inside each visited cell (per
        the protocol), and ``true_positions`` records the *actual* spots, so
        localization errors are measured against where the person really
        stood, not an idealized cell center.
        """
        if averaging < 1:
            raise ValueError(f"averaging must be >= 1, got {averaging}")
        cell_array = check_index_array(
            "cells",
            cells,
            upper=self.scenario.deployment.cell_count,
            allow_duplicates=True,
        )
        frames = len(cell_array)
        link_count = self.scenario.deployment.link_count
        sigma = self.scenario.channel.params.noise_sigma_db
        spots = np.empty((frames, 2))
        noise = None
        if sigma > 0:
            noise = np.empty((frames, averaging, link_count))
        # Jitter and noise interleave frame by frame, exactly like repeated
        # live_vector() calls, so traces replay identically per seed.
        for index, cell in enumerate(cell_array):
            spots[index] = self._jittered_point_xy(
                int(cell), self.protocol.live_jitter
            )
            if noise is not None:
                noise[index] = self._rng.normal(
                    0.0, sigma, size=(averaging, link_count)
                )
        rss = self._frames_at_points(day, spots, noise, cell_array, averaging)
        return LiveTrace(
            day=day,
            rss=rss,
            true_cells=cell_array,
            true_positions=spots.copy(),
        )

    def walk_trace(
        self,
        day: float,
        waypoints: Sequence[Point],
        *,
        step_m: float = 0.3,
        averaging: int = 1,
    ) -> LiveTrace:
        """A trace along a continuous path through ``waypoints``.

        The path is sampled every ``step_m`` meters; frames carry continuous
        ground-truth positions and the containing cell, which exercises the
        "fine-grained" (off-grid-center) localization regime.
        """
        check_positive("step_m", step_m)
        if averaging < 1:
            raise ValueError(f"averaging must be >= 1, got {averaging}")
        if len(waypoints) < 2:
            raise ValueError("need at least two waypoints to walk")
        path_points: List[List[float]] = []
        for start, end in zip(waypoints[:-1], waypoints[1:]):
            span = start.distance_to(end)
            steps = max(1, int(np.ceil(span / step_m)))
            for k in range(steps):
                t = k / steps
                path_points.append(
                    [start.x + t * (end.x - start.x), start.y + t * (end.y - start.y)]
                )
        path_points.append([waypoints[-1].x, waypoints[-1].y])
        points = np.array(path_points)

        sigma = self.scenario.channel.params.noise_sigma_db
        noise = None
        if sigma > 0:
            # One array op over every (frame, sample, link) triple; fills the
            # generator's stream in the same order as per-frame draws.
            noise = self._rng.normal(
                0.0,
                sigma,
                size=(len(points), averaging, self.scenario.deployment.link_count),
            )
        cells = self.scenario.deployment.grid.cells_at(points)
        rss = self._frames_at_points(day, points, noise, cells, averaging)
        return LiveTrace(
            day=day,
            rss=rss,
            true_cells=cells,
            true_positions=points,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _jittered_point(self, cell: int, jitter: float) -> Point:
        """Where the person actually stands during a visit to ``cell``."""
        grid = self.scenario.deployment.grid
        center = grid.center_of(cell)
        if jitter == 0.0:
            return center
        half = 0.5 * grid.cell_size * jitter
        return Point(
            center.x + self._rng.uniform(-half, half),
            center.y + self._rng.uniform(-half, half),
        )

    def _jittered_point_xy(self, cell: int, jitter: float) -> List[float]:
        point = self._jittered_point(cell, jitter)
        return [point.x, point.y]

    def _noise_rng(self) -> Optional[np.random.Generator]:
        """The generator channel sampling should draw noise from."""
        return self._rng

    def _interference_offsets(self, count: int) -> Optional[np.ndarray]:
        if self.interference is None:
            return None
        return self.interference.sample_offsets_batch(count)

    def _survey_draws(self, cell_indices: np.ndarray):
        """Pre-draw all survey randomness in the canonical per-cell order."""
        link_count = self.scenario.deployment.link_count
        samples_per_cell = self.protocol.samples_per_cell
        sigma = self.scenario.channel.params.noise_sigma_db
        spots = np.empty((len(cell_indices), 2))
        noise = None
        if sigma > 0:
            noise = np.empty((len(cell_indices), samples_per_cell, link_count))
        for index, cell in enumerate(cell_indices):
            spots[index] = self._jittered_point_xy(
                int(cell), self.protocol.survey_jitter
            )
            if noise is not None:
                noise[index] = self._rng.normal(
                    0.0, sigma, size=(samples_per_cell, link_count)
                )
        return spots, noise

    def _survey_matrix_batch(
        self,
        day: float,
        cell_indices: np.ndarray,
        spots: np.ndarray,
        noise: Optional[np.ndarray],
        offsets: Optional[np.ndarray],
    ) -> np.ndarray:
        """All survey physics as one broadcasted (cell, sample, link) pass."""
        scenario = self.scenario
        shadows = scenario.shadow_matrix(spots)  # (cells, links)
        drift = scenario.environment_offsets(day)[None, :]
        drift = drift + scenario.entry_drift_matrix(day, cell_indices)
        base = scenario.channel.empty_room_rss()[None, :] - shadows + drift
        frames = base[:, None, :]
        if noise is not None:
            frames = frames + noise
        frames = self._quantize(frames)
        if offsets is not None:
            frames = frames + offsets
        return frames.mean(axis=1).T

    def _survey_matrix_loop(
        self,
        day: float,
        cell_indices: np.ndarray,
        spots: np.ndarray,
        noise: Optional[np.ndarray],
        offsets: Optional[np.ndarray],
    ) -> np.ndarray:
        """Reference per-cell loop over the scalar physics APIs."""
        scenario = self.scenario
        columns: List[np.ndarray] = []
        for index, cell in enumerate(cell_indices):
            shadow = scenario.shadow_at_point(Point(*spots[index]))
            drift = scenario.environment_offsets(day)
            drift = drift + scenario.entry_drift_at(day, int(cell))
            rows = []
            for s in range(self.protocol.samples_per_cell):
                sample = scenario.channel.sample(
                    shadow_db=shadow, drift_db=drift, rng=None, quantize=False
                )
                if noise is not None:
                    sample = sample + noise[index, s]
                sample = self._quantize(sample)
                if offsets is not None:
                    sample = sample + offsets[index, s]
                rows.append(sample)
            columns.append(np.vstack(rows).mean(axis=0))
        return np.column_stack(columns)

    def _frames_at_points(
        self,
        day: float,
        points: np.ndarray,
        noise: Optional[np.ndarray],
        cells: np.ndarray,
        averaging: int,
    ) -> np.ndarray:
        """Measured frames at ``points`` from pre-drawn noise, batched."""
        frames = len(points)
        offsets = self._interference_offsets(frames * averaging)
        if self.vectorized:
            scenario = self.scenario
            shadows = scenario.shadow_matrix(points)  # (frames, links)
            drift = scenario.environment_offsets(day)[None, :]
            drift = drift + scenario.entry_drift_matrix(day, cells)
            base = scenario.channel.empty_room_rss()[None, :] - shadows + drift
            stack = base[:, None, :]
            if noise is not None:
                stack = stack + noise
            else:
                stack = np.repeat(stack, averaging, axis=1)
            stack = self._quantize(stack)
            if offsets is not None:
                stack = stack + offsets.reshape(frames, averaging, -1)
            rss = stack.mean(axis=1)
        else:
            rows = []
            for index in range(len(points)):
                shadow = self.scenario.shadow_at_point(Point(*points[index]))
                drift = self.scenario.environment_offsets(day)
                drift = drift + self.scenario.entry_drift_at(day, int(cells[index]))
                samples = []
                for s in range(averaging):
                    sample = self.scenario.channel.sample(
                        shadow_db=shadow, drift_db=drift, rng=None, quantize=False
                    )
                    if noise is not None:
                        sample = sample + noise[index, s]
                    sample = self._quantize(sample)
                    if offsets is not None:
                        sample = sample + offsets[index * averaging + s]
                    samples.append(sample)
                rows.append(np.vstack(samples).mean(axis=0))
            rss = np.vstack(rows)
        self._samples_taken += len(points) * averaging
        return rss

    def _quantize(self, rss: np.ndarray) -> np.ndarray:
        quantum = self.scenario.channel.params.rssi_quantum_db
        if quantum > 0:
            return np.round(rss / quantum) * quantum
        return rss

    def _draw_samples(
        self,
        day: float,
        *,
        cell: Optional[int] = None,
        point: Optional[Point] = None,
        count: int = 1,
    ) -> np.ndarray:
        shadow = None
        if cell is not None and point is not None:
            raise ValueError("pass at most one of cell/point")
        drift = self.scenario.environment_offsets(day)
        if cell is not None:
            # Cell-addressed draws are survey visits: one (small) jittered
            # stance per visit, held for all `count` samples.
            spot = self._jittered_point(cell, self.protocol.survey_jitter)
            shadow = self.scenario.shadow_at_point(spot)
            drift = drift + self.scenario.entry_drift_at(day, cell)
        elif point is not None:
            shadow = self.scenario.shadow_at_point(point)
            drift = drift + self.scenario.entry_drift_at(
                day, self.scenario.deployment.grid.cell_at(point)
            )
        samples = self.scenario.channel.sample_batch(
            count, shadow_db=shadow, drift_db=drift, rng=self._noise_rng()
        )
        offsets = self._interference_offsets(count)
        if offsets is not None:
            samples = samples + offsets
        self._samples_taken += count
        return samples
