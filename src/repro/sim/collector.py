"""RSS collection: turn a scenario into surveys and live traces.

The collector implements the paper's measurement protocol — "for each grid,
100 continuous RSS are collected one per second" — and keeps an account of
every sample taken, so the Fig. 4 labor-cost numbers fall straight out of the
recorded sample counts instead of being asserted separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.sim.geometry import Point
from repro.sim.interference import BurstyInterferenceModel
from repro.sim.scenario import Scenario
from repro.sim.trace import FingerprintSurvey, LiveTrace
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_index_array, check_positive


@dataclass(frozen=True)
class CollectionProtocol:
    """Sampling protocol parameters (paper defaults).

    The jitter fields model where a person actually stands, uniformly within
    that fraction of the cell around its center (1.0 = anywhere in the
    cell), one draw per visit. Surveys are a controlled procedure — the
    surveyor deliberately stands mid-cell — so ``survey_jitter`` is small;
    a live target walks wherever they please, so ``live_jitter`` spans the
    whole cell. Stance variation is the dominant "noise" between two surveys
    of the same room and contributes the dB-scale floor that
    fingerprint-vs-fingerprint comparisons show even at short time gaps.
    """

    samples_per_cell: int = 100
    sample_period_s: float = 1.0
    empty_room_samples: int = 60
    survey_jitter: float = 0.25
    live_jitter: float = 1.0

    def __post_init__(self) -> None:
        if self.samples_per_cell < 1:
            raise ValueError(
                f"samples_per_cell must be >= 1, got {self.samples_per_cell}"
            )
        check_positive("sample_period_s", self.sample_period_s)
        if self.empty_room_samples < 1:
            raise ValueError(
                f"empty_room_samples must be >= 1, got {self.empty_room_samples}"
            )
        for name, value in (
            ("survey_jitter", self.survey_jitter),
            ("live_jitter", self.live_jitter),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {value}")

    def survey_seconds(self, cell_count: int) -> float:
        """Wall-clock seconds to survey ``cell_count`` cells."""
        return cell_count * self.samples_per_cell * self.sample_period_s


@dataclass(frozen=True)
class SurveyResult:
    """A survey plus its cost accounting."""

    survey: FingerprintSurvey
    samples_taken: int
    seconds_spent: float


@dataclass
class RssCollector:
    """Collects noisy RSS measurements from a :class:`Scenario`.

    All randomness flows through the generator created from ``seed`` at
    construction, so a collector replays identically for the same seed and
    call sequence. An optional :class:`BurstyInterferenceModel` injects
    co-channel disturbance into every sample drawn (failure-injection for
    robustness tests).
    """

    scenario: Scenario
    protocol: CollectionProtocol = field(default_factory=CollectionProtocol)
    seed: RandomState = None
    interference: Optional[BurstyInterferenceModel] = None

    def __post_init__(self) -> None:
        self._rng = as_generator(self.seed)
        self._samples_taken = 0
        if self.interference is not None and (
            self.interference.links != self.scenario.deployment.link_count
        ):
            raise ValueError(
                f"interference covers {self.interference.links} links, "
                f"deployment has {self.scenario.deployment.link_count}"
            )

    @property
    def samples_taken(self) -> int:
        """Total number of RSS samples drawn so far (all calls)."""
        return self._samples_taken

    # ------------------------------------------------------------------
    # surveys
    # ------------------------------------------------------------------
    def collect_empty_room(self, day: float) -> np.ndarray:
        """Averaged empty-room calibration vector at ``day``."""
        samples = self._draw_samples(day, cell=None, count=self.protocol.empty_room_samples)
        return samples.mean(axis=0)

    def collect_full_survey(self, day: float) -> SurveyResult:
        """Survey every grid cell — the expensive operation TafLoc avoids."""
        cells = np.arange(self.scenario.deployment.cell_count)
        return self.collect_survey(day, cells)

    def collect_survey(self, day: float, cells: Sequence[int]) -> SurveyResult:
        """Survey a subset of cells (e.g. just the reference locations)."""
        cell_indices = check_index_array(
            "cells", cells, upper=self.scenario.deployment.cell_count
        )
        before = self._samples_taken
        empty = self.collect_empty_room(day)
        columns: List[np.ndarray] = []
        for cell in cell_indices:
            samples = self._draw_samples(
                day, cell=int(cell), count=self.protocol.samples_per_cell
            )
            columns.append(samples.mean(axis=0))
        matrix = np.column_stack(columns) if columns else np.zeros(
            (self.scenario.deployment.link_count, 0)
        )
        survey = FingerprintSurvey(
            day=day,
            matrix=matrix,
            empty_rss=empty,
            samples_per_cell=self.protocol.samples_per_cell,
            sample_period_s=self.protocol.sample_period_s,
            cells=cell_indices,
        )
        survey_samples = len(cell_indices) * self.protocol.samples_per_cell
        seconds = survey_samples * self.protocol.sample_period_s
        # Cost accounting counts the person-time of walking the grid; the
        # empty-room calibration needs nobody in the room and is excluded,
        # matching the paper's 100*N/3600 accounting.
        del before
        return SurveyResult(
            survey=survey, samples_taken=survey_samples, seconds_spent=seconds
        )

    # ------------------------------------------------------------------
    # live measurement
    # ------------------------------------------------------------------
    def live_vector(
        self,
        day: float,
        *,
        cell: Optional[int] = None,
        point: Optional[Point] = None,
        averaging: int = 1,
    ) -> np.ndarray:
        """One live RSS vector (optionally averaged over several samples)."""
        if averaging < 1:
            raise ValueError(f"averaging must be >= 1, got {averaging}")
        samples = self._draw_samples(day, cell=cell, point=point, count=averaging)
        return samples.mean(axis=0)

    def live_vector_multi(
        self,
        day: float,
        cells: Sequence[int],
        *,
        averaging: int = 1,
    ) -> np.ndarray:
        """One live RSS vector with several targets present at once.

        Each target stands at a jittered spot in its cell; shadows and
        entry drifts superpose (see
        :meth:`repro.sim.scenario.Scenario.true_rss_multi`).
        """
        if averaging < 1:
            raise ValueError(f"averaging must be >= 1, got {averaging}")
        cell_array = check_index_array(
            "cells", cells, upper=self.scenario.deployment.cell_count
        )
        shadow = np.zeros(self.scenario.deployment.link_count)
        drift = self.scenario.environment_offsets(day)
        for cell in cell_array:
            spot = self._jittered_point(int(cell), self.protocol.live_jitter)
            shadow = shadow + self.scenario.shadowing.attenuation_vector(
                self.scenario.deployment.links, spot
            )
            drift = drift + self.scenario.entry_drift_at(day, int(cell))
        rows = []
        for _ in range(averaging):
            sample = self.scenario.channel.sample(
                shadow_db=shadow, drift_db=drift, rng=self._rng
            )
            if self.interference is not None:
                sample = sample + self.interference.sample_offsets()
            rows.append(sample)
        self._samples_taken += averaging
        return np.vstack(rows).mean(axis=0)

    def live_trace(
        self,
        day: float,
        cells: Sequence[int],
        *,
        averaging: int = 1,
    ) -> LiveTrace:
        """A trace of live vectors with the target visiting ``cells`` in order.

        The target stands at a jittered spot inside each visited cell (per
        the protocol), and ``true_positions`` records the *actual* spots, so
        localization errors are measured against where the person really
        stood, not an idealized cell center.
        """
        cell_array = check_index_array(
            "cells",
            cells,
            upper=self.scenario.deployment.cell_count,
            allow_duplicates=True,
        )
        frames: List[np.ndarray] = []
        positions: List[List[float]] = []
        for c in cell_array:
            spot = self._jittered_point(int(c), self.protocol.live_jitter)
            frames.append(
                self.live_vector(day, point=spot, averaging=averaging)
            )
            positions.append([spot.x, spot.y])
        return LiveTrace(
            day=day,
            rss=np.vstack(frames),
            true_cells=cell_array,
            true_positions=np.array(positions),
        )

    def walk_trace(
        self,
        day: float,
        waypoints: Sequence[Point],
        *,
        step_m: float = 0.3,
        averaging: int = 1,
    ) -> LiveTrace:
        """A trace along a continuous path through ``waypoints``.

        The path is sampled every ``step_m`` meters; frames carry continuous
        ground-truth positions and the containing cell, which exercises the
        "fine-grained" (off-grid-center) localization regime.
        """
        check_positive("step_m", step_m)
        if len(waypoints) < 2:
            raise ValueError("need at least two waypoints to walk")
        path_points: List[Point] = []
        for start, end in zip(waypoints[:-1], waypoints[1:]):
            span = start.distance_to(end)
            steps = max(1, int(np.ceil(span / step_m)))
            for k in range(steps):
                t = k / steps
                path_points.append(
                    Point(start.x + t * (end.x - start.x), start.y + t * (end.y - start.y))
                )
        path_points.append(waypoints[-1])

        grid = self.scenario.deployment.grid
        frames = [
            self.live_vector(day, point=p, averaging=averaging) for p in path_points
        ]
        return LiveTrace(
            day=day,
            rss=np.vstack(frames),
            true_cells=np.array([grid.cell_at(p) for p in path_points]),
            true_positions=np.array([[p.x, p.y] for p in path_points]),
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _jittered_point(self, cell: int, jitter: float) -> Point:
        """Where the person actually stands during a visit to ``cell``."""
        grid = self.scenario.deployment.grid
        center = grid.center_of(cell)
        if jitter == 0.0:
            return center
        half = 0.5 * grid.cell_size * jitter
        return Point(
            center.x + self._rng.uniform(-half, half),
            center.y + self._rng.uniform(-half, half),
        )

    def _draw_samples(
        self,
        day: float,
        *,
        cell: Optional[int] = None,
        point: Optional[Point] = None,
        count: int = 1,
    ) -> np.ndarray:
        shadow = None
        if cell is not None and point is not None:
            raise ValueError("pass at most one of cell/point")
        drift = self.scenario.environment_offsets(day)
        if cell is not None:
            # Cell-addressed draws are survey visits: one (small) jittered
            # stance per visit, held for all `count` samples.
            spot = self._jittered_point(cell, self.protocol.survey_jitter)
            shadow = self.scenario.shadow_at_point(spot)
            drift = drift + self.scenario.entry_drift_at(day, cell)
        elif point is not None:
            shadow = self.scenario.shadow_at_point(point)
            drift = drift + self.scenario.entry_drift_at(
                day, self.scenario.deployment.grid.cell_at(point)
            )
        rows = []
        for _ in range(count):
            sample = self.scenario.channel.sample(
                shadow_db=shadow, drift_db=drift, rng=self._rng
            )
            if self.interference is not None:
                sample = sample + self.interference.sample_offsets()
            rows.append(sample)
        self._samples_taken += count
        return np.vstack(rows)
