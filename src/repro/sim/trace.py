"""Dataset containers: fingerprint surveys and live RSS traces.

These are the interchange objects between the simulator (or, in principle, a
real testbed log) and the TafLoc core. They serialize to ``.npz`` so surveys
can be captured once and replayed by tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.util.validation import check_finite, check_matrix


@dataclass(frozen=True)
class FingerprintSurvey:
    """A full fingerprint survey: per-cell averaged RSS plus raw samples.

    Attributes:
        day: Day offset (from deployment time) at which the survey ran.
        matrix: Averaged fingerprint matrix, shape ``(links, cells)``.
        empty_rss: Empty-room calibration vector, shape ``(links,)``.
        samples_per_cell: How many raw RSS samples were averaged per cell.
        sample_period_s: Seconds between consecutive samples (1.0 in the
            paper's protocol: "100 continuous RSS are collected one per
            second").
        cells: Cell indices actually surveyed, in column order of ``matrix``.
            ``None`` means all cells 0..N-1 in order.
    """

    day: float
    matrix: np.ndarray
    empty_rss: np.ndarray
    samples_per_cell: int = 100
    sample_period_s: float = 1.0
    cells: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        matrix = check_finite("matrix", check_matrix("matrix", self.matrix))
        empty = check_finite("empty_rss", np.asarray(self.empty_rss, dtype=float))
        if empty.shape != (matrix.shape[0],):
            raise ValueError(
                f"empty_rss shape {empty.shape} does not match link count "
                f"{matrix.shape[0]}"
            )
        object.__setattr__(self, "matrix", matrix)
        object.__setattr__(self, "empty_rss", empty)
        if self.cells is not None:
            cells = np.asarray(self.cells, dtype=int)
            if cells.shape != (matrix.shape[1],):
                raise ValueError(
                    f"cells shape {cells.shape} does not match column count "
                    f"{matrix.shape[1]}"
                )
            object.__setattr__(self, "cells", cells)
        if self.samples_per_cell < 1:
            raise ValueError(
                f"samples_per_cell must be >= 1, got {self.samples_per_cell}"
            )

    @property
    def link_count(self) -> int:
        return self.matrix.shape[0]

    @property
    def cell_count(self) -> int:
        return self.matrix.shape[1]

    @property
    def collection_seconds(self) -> float:
        """Wall-clock time the survey took under the sampling protocol."""
        return self.cell_count * self.samples_per_cell * self.sample_period_s

    def column_for_cell(self, cell: int) -> np.ndarray:
        """Fingerprint column of a given cell index."""
        if self.cells is None:
            if not 0 <= cell < self.cell_count:
                raise IndexError(f"cell {cell} not in survey")
            return self.matrix[:, cell]
        matches = np.flatnonzero(self.cells == cell)
        if matches.size == 0:
            raise IndexError(f"cell {cell} not in survey")
        return self.matrix[:, matches[0]]

    def save(self, path: Union[str, Path]) -> None:
        """Persist to ``.npz``."""
        payload: Dict[str, np.ndarray] = {
            "day": np.array(self.day),
            "matrix": self.matrix,
            "empty_rss": self.empty_rss,
            "samples_per_cell": np.array(self.samples_per_cell),
            "sample_period_s": np.array(self.sample_period_s),
        }
        if self.cells is not None:
            payload["cells"] = self.cells
        np.savez(Path(path), **payload)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FingerprintSurvey":
        """Load a survey previously written by :meth:`save`."""
        with np.load(Path(path)) as data:
            return cls(
                day=float(data["day"]),
                matrix=data["matrix"],
                empty_rss=data["empty_rss"],
                samples_per_cell=int(data["samples_per_cell"]),
                sample_period_s=float(data["sample_period_s"]),
                cells=data["cells"] if "cells" in data else None,
            )


@dataclass(frozen=True)
class LiveTrace:
    """A sequence of live RSS vectors with (optional) ground-truth positions.

    Attributes:
        day: Day offset of the trace.
        rss: Measurements, shape ``(frames, links)``.
        true_cells: Ground-truth cell per frame (or -1 when absent/unknown).
        true_positions: Ground-truth (x, y) per frame, shape ``(frames, 2)``;
            NaN rows mean unknown.
    """

    day: float
    rss: np.ndarray
    true_cells: Optional[np.ndarray] = None
    true_positions: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        rss = check_finite("rss", check_matrix("rss", self.rss))
        object.__setattr__(self, "rss", rss)
        if self.true_cells is not None:
            cells = np.asarray(self.true_cells, dtype=int)
            if cells.shape != (rss.shape[0],):
                raise ValueError(
                    f"true_cells shape {cells.shape} does not match frame count "
                    f"{rss.shape[0]}"
                )
            object.__setattr__(self, "true_cells", cells)
        if self.true_positions is not None:
            pos = np.asarray(self.true_positions, dtype=float)
            if pos.shape != (rss.shape[0], 2):
                raise ValueError(
                    f"true_positions shape {pos.shape} must be "
                    f"({rss.shape[0]}, 2)"
                )
            object.__setattr__(self, "true_positions", pos)

    @property
    def frame_count(self) -> int:
        return self.rss.shape[0]

    @property
    def link_count(self) -> int:
        return self.rss.shape[1]

    def frame(self, index: int) -> np.ndarray:
        return self.rss[index]

    def save(self, path: Union[str, Path]) -> None:
        payload: Dict[str, np.ndarray] = {"day": np.array(self.day), "rss": self.rss}
        if self.true_cells is not None:
            payload["true_cells"] = self.true_cells
        if self.true_positions is not None:
            payload["true_positions"] = self.true_positions
        np.savez(Path(path), **payload)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "LiveTrace":
        with np.load(Path(path)) as data:
            return cls(
                day=float(data["day"]),
                rss=data["rss"],
                true_cells=data["true_cells"] if "true_cells" in data else None,
                true_positions=(
                    data["true_positions"] if "true_positions" in data else None
                ),
            )


def concatenate_traces(traces: Sequence[LiveTrace]) -> LiveTrace:
    """Concatenate traces frame-wise (they must share day and link count)."""
    if len(traces) == 0:
        raise ValueError("need at least one trace")
    days = {t.day for t in traces}
    if len(days) != 1:
        raise ValueError(f"traces span multiple days: {sorted(days)}")
    links = {t.link_count for t in traces}
    if len(links) != 1:
        raise ValueError(f"traces disagree on link count: {sorted(links)}")
    rss = np.vstack([t.rss for t in traces])
    cells: Optional[np.ndarray] = None
    if all(t.true_cells is not None for t in traces):
        cells = np.concatenate([t.true_cells for t in traces])
    positions: Optional[np.ndarray] = None
    if all(t.true_positions is not None for t in traces):
        positions = np.vstack([t.true_positions for t in traces])
    return LiveTrace(
        day=traces[0].day, rss=rss, true_cells=cells, true_positions=positions
    )
