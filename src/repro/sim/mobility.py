"""Mobility models: generate realistic target paths through the room.

Tracking evaluations need walks, not just static stands. Three standard
models are provided:

* :class:`RandomWaypointModel` — pick a uniform destination, walk straight
  to it at a sampled speed, pause, repeat. The classic mobility benchmark.
* :class:`ScriptedRoute` — a fixed waypoint sequence (daily routines,
  patrol routes); deterministic.
* :class:`RandomWalkModel` — heading-preserving random walk with bounce at
  walls; models aimless wandering.

All produce a list of positions sampled at a fixed frame period, ready for
:meth:`repro.sim.collector.RssCollector.walk_trace`-style collection via
:func:`collect_mobility_trace`.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.sim.collector import RssCollector
from repro.sim.geometry import Point, Room
from repro.sim.trace import LiveTrace
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_positive


class MobilityModel(abc.ABC):
    """Generates target positions sampled at a fixed frame period."""

    @abc.abstractmethod
    def positions(self, frames: int) -> List[Point]:
        """The first ``frames`` positions of a trajectory."""


@dataclass(frozen=True)
class MobilitySpec:
    """Declarative (serializable) description of how targets move.

    Scenario specs carry one of these so tracking experiments can default
    to environment-appropriate motion (a warehouse picker walks faster and
    straighter than an office worker) without the caller wiring a model.
    ``model`` selects :class:`RandomWaypointModel` (``"waypoint"``) or
    :class:`RandomWalkModel` (``"walk"``).
    """

    model: str = "waypoint"
    speed_min_mps: float = 0.4
    speed_max_mps: float = 1.2
    pause_min_s: float = 0.0
    pause_max_s: float = 2.0
    heading_sigma_rad: float = 0.5

    def __post_init__(self) -> None:
        if self.model not in ("waypoint", "walk"):
            raise ValueError(
                f"model must be waypoint or walk, got {self.model!r}"
            )
        check_positive("speed_min_mps", self.speed_min_mps)
        if self.speed_max_mps < self.speed_min_mps:
            raise ValueError(
                f"speed range inverted: ({self.speed_min_mps}, "
                f"{self.speed_max_mps})"
            )
        if self.pause_min_s < 0 or self.pause_max_s < self.pause_min_s:
            raise ValueError(
                f"pause range invalid: ({self.pause_min_s}, {self.pause_max_s})"
            )

    def build(self, room: Room, *, seed: RandomState = None) -> MobilityModel:
        """Materialize the model for ``room``."""
        if self.model == "walk":
            return RandomWalkModel(
                room,
                speed_mps=0.5 * (self.speed_min_mps + self.speed_max_mps),
                heading_sigma_rad=self.heading_sigma_rad,
                seed=seed,
            )
        return RandomWaypointModel(
            room,
            speed_range_mps=(self.speed_min_mps, self.speed_max_mps),
            pause_range_s=(self.pause_min_s, self.pause_max_s),
            seed=seed,
        )


@dataclass
class RandomWaypointModel(MobilityModel):
    """Random waypoint mobility inside a room.

    Attributes:
        room: The area to roam.
        speed_range_mps: (min, max) walking speed, sampled per leg.
        pause_range_s: (min, max) pause at each waypoint.
        frame_period_s: Seconds between consecutive position samples.
        margin_m: Keep-out margin from the walls (people don't hug walls).
        seed: Randomness.
    """

    room: Room
    speed_range_mps: tuple = (0.4, 1.2)
    pause_range_s: tuple = (0.0, 2.0)
    frame_period_s: float = 1.0
    margin_m: float = 0.3
    seed: RandomState = None

    def __post_init__(self) -> None:
        lo, hi = self.speed_range_mps
        check_positive("speed min", lo)
        if hi < lo:
            raise ValueError(f"speed range inverted: {self.speed_range_mps}")
        p_lo, p_hi = self.pause_range_s
        if p_lo < 0 or p_hi < p_lo:
            raise ValueError(f"pause range invalid: {self.pause_range_s}")
        check_positive("frame_period_s", self.frame_period_s)
        if self.margin_m < 0 or 2 * self.margin_m >= min(
            self.room.width, self.room.depth
        ):
            raise ValueError(
                f"margin {self.margin_m} leaves no roaming area in a "
                f"{self.room.width} x {self.room.depth} room"
            )
        self._rng = as_generator(self.seed)

    def positions(self, frames: int) -> List[Point]:
        if frames < 1:
            raise ValueError(f"frames must be >= 1, got {frames}")
        rng = self._rng
        current = self._random_point(rng)
        out: List[Point] = []
        target = self._random_point(rng)
        speed = rng.uniform(*self.speed_range_mps)
        pause_left = 0.0
        while len(out) < frames:
            out.append(current)
            if pause_left > 0:
                pause_left -= self.frame_period_s
                continue
            step = speed * self.frame_period_s
            distance = current.distance_to(target)
            if distance <= step:
                current = target
                target = self._random_point(rng)
                speed = rng.uniform(*self.speed_range_mps)
                pause_left = rng.uniform(*self.pause_range_s)
            else:
                t = step / distance
                current = Point(
                    current.x + t * (target.x - current.x),
                    current.y + t * (target.y - current.y),
                )
        return out[:frames]

    def _random_point(self, rng: np.random.Generator) -> Point:
        m = self.margin_m
        return Point(
            rng.uniform(m, self.room.width - m),
            rng.uniform(m, self.room.depth - m),
        )


@dataclass
class ScriptedRoute(MobilityModel):
    """Deterministic walk through fixed waypoints at constant speed."""

    waypoints: Sequence[Point]
    speed_mps: float = 0.8
    frame_period_s: float = 1.0
    loop: bool = False

    def __post_init__(self) -> None:
        if len(self.waypoints) < 2:
            raise ValueError("need at least two waypoints")
        check_positive("speed_mps", self.speed_mps)
        check_positive("frame_period_s", self.frame_period_s)

    def positions(self, frames: int) -> List[Point]:
        if frames < 1:
            raise ValueError(f"frames must be >= 1, got {frames}")
        step = self.speed_mps * self.frame_period_s
        out: List[Point] = []
        leg = 0
        finished = False
        current = self.waypoints[0]
        while len(out) < frames:
            out.append(current)
            if finished:
                continue  # hold at the final waypoint
            target = self.waypoints[(leg + 1) % len(self.waypoints)]
            remaining = current.distance_to(target)
            advance = step
            while advance >= remaining and not finished:
                advance -= remaining
                current = target
                leg += 1
                if leg >= len(self.waypoints) - 1 and not self.loop:
                    finished = True
                    break
                target = self.waypoints[(leg + 1) % len(self.waypoints)]
                remaining = current.distance_to(target)
            if not finished and advance > 0 and remaining > 0:
                t = advance / remaining
                current = Point(
                    current.x + t * (target.x - current.x),
                    current.y + t * (target.y - current.y),
                )
        return out[:frames]


@dataclass
class RandomWalkModel(MobilityModel):
    """Heading-preserving random walk with reflection at the walls."""

    room: Room
    speed_mps: float = 0.6
    heading_sigma_rad: float = 0.5
    frame_period_s: float = 1.0
    margin_m: float = 0.2
    seed: RandomState = None

    def __post_init__(self) -> None:
        check_positive("speed_mps", self.speed_mps)
        check_positive("heading_sigma_rad", self.heading_sigma_rad, strict=False)
        check_positive("frame_period_s", self.frame_period_s)
        self._rng = as_generator(self.seed)

    def positions(self, frames: int) -> List[Point]:
        if frames < 1:
            raise ValueError(f"frames must be >= 1, got {frames}")
        rng = self._rng
        m = self.margin_m
        x = rng.uniform(m, self.room.width - m)
        y = rng.uniform(m, self.room.depth - m)
        heading = rng.uniform(0, 2 * math.pi)
        out: List[Point] = []
        step = self.speed_mps * self.frame_period_s
        for _ in range(frames):
            out.append(Point(x, y))
            heading += rng.normal(0.0, self.heading_sigma_rad)
            x += step * math.cos(heading)
            y += step * math.sin(heading)
            # Reflect off the keep-out boundary.
            if x < m or x > self.room.width - m:
                heading = math.pi - heading
                x = min(max(x, m), self.room.width - m)
            if y < m or y > self.room.depth - m:
                heading = -heading
                y = min(max(y, m), self.room.depth - m)
        return out


def collect_mobility_trace(
    collector: RssCollector,
    model: MobilityModel,
    *,
    day: float,
    frames: int,
    averaging: int = 1,
) -> LiveTrace:
    """Sample RSS along a mobility model's trajectory.

    Returns a :class:`LiveTrace` whose ground truth is the model's exact
    positions (and their containing cells).
    """
    positions = model.positions(frames)
    grid = collector.scenario.deployment.grid
    rss = np.vstack(
        [
            collector.live_vector(day, point=p, averaging=averaging)
            for p in positions
        ]
    )
    return LiveTrace(
        day=day,
        rss=rss,
        true_cells=np.array([grid.cell_at(p) for p in positions]),
        true_positions=np.array([[p.x, p.y] for p in positions]),
    )
