"""Slow temporal drift of RSS, the phenomenon that expires fingerprints.

The paper's motivating measurement: *"even without any change in the
environment, the RSS measurements still change slowly in the scale of days due
to temperature and humidity changes. In our experiments, the RSS values change
2.5 dBm and 6 dBm respectively after 5 and 45 days."*

We model per-link drift as a continuous-time stochastic process sampled at
arbitrary day offsets. The default :class:`GaussMarkovDrift` is an
Ornstein-Uhlenbeck-like process whose increment variance is calibrated so the
mean absolute drift magnitude reproduces the paper's two anchor points
(≈2.5 dBm @ 5 days, ≈6 dBm @ 45 days); see :func:`calibrated_paper_drift`.

Drift processes are deterministic functions of (seed, day): querying the same
day twice returns identical offsets, and days may be queried out of order.
This is achieved by generating the process on a fixed daily lattice at
construction time and interpolating.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_positive


class DriftProcess(abc.ABC):
    """Per-link additive RSS offset as a function of time (days)."""

    @abc.abstractmethod
    def offsets(self, day: float) -> np.ndarray:
        """Drift offsets (dB) of every link at ``day`` days after the survey."""

    @property
    @abc.abstractmethod
    def link_count(self) -> int:
        """Number of links the process covers."""


@dataclass
class GaussMarkovDrift(DriftProcess):
    """Mean-reverting (AR(1)) daily drift with cross-link correlation.

    Each day ``d``: ``x_d = rho * x_{d-1} + w_d`` where ``w_d`` is Gaussian
    with standard deviation ``sigma_daily`` and cross-link correlation
    ``link_correlation`` (temperature and humidity move all links together,
    antenna-specific aging does not). Mean reversion keeps long-horizon drift
    bounded the way real environmental drift is.

    Query times between lattice days are linearly interpolated.
    """

    links: int
    sigma_daily: float = 0.9
    rho: float = 0.985
    link_correlation: float = 0.6
    horizon_days: int = 400
    seed: RandomState = None
    _lattice: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.links < 1:
            raise ValueError(f"links must be >= 1, got {self.links}")
        check_positive("sigma_daily", self.sigma_daily, strict=False)
        if not 0.0 <= self.rho < 1.0:
            raise ValueError(f"rho must lie in [0, 1), got {self.rho}")
        if not 0.0 <= self.link_correlation <= 1.0:
            raise ValueError(
                f"link_correlation must lie in [0, 1], got {self.link_correlation}"
            )
        if self.horizon_days < 1:
            raise ValueError(f"horizon_days must be >= 1, got {self.horizon_days}")
        self._lattice = self._simulate(as_generator(self.seed))

    @property
    def link_count(self) -> int:
        return self.links

    def offsets(self, day: float) -> np.ndarray:
        if day < 0:
            raise ValueError(f"day must be >= 0, got {day}")
        if day > self.horizon_days:
            raise ValueError(
                f"day {day} beyond simulated horizon of {self.horizon_days} days"
            )
        low = int(np.floor(day))
        high = min(low + 1, self.horizon_days)
        frac = day - low
        return (1.0 - frac) * self._lattice[low] + frac * self._lattice[high]

    def _simulate(self, rng: np.random.Generator) -> np.ndarray:
        days = self.horizon_days + 1
        lattice = np.zeros((days, self.links))
        common_weight = np.sqrt(self.link_correlation)
        private_weight = np.sqrt(1.0 - self.link_correlation)
        for d in range(1, days):
            common = rng.normal(0.0, self.sigma_daily)
            private = rng.normal(0.0, self.sigma_daily, size=self.links)
            innovation = common_weight * common + private_weight * private
            lattice[d] = self.rho * lattice[d - 1] + innovation
        return lattice


@dataclass
class RandomWalkDrift(DriftProcess):
    """Pure random-walk drift (no mean reversion); grows like sqrt(day).

    Kept as an alternative for ablations — it stresses the reconstruction
    harder at long horizons than the mean-reverting default.
    """

    links: int
    sigma_daily: float = 0.35
    link_correlation: float = 0.6
    horizon_days: int = 400
    seed: RandomState = None
    _lattice: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.links < 1:
            raise ValueError(f"links must be >= 1, got {self.links}")
        check_positive("sigma_daily", self.sigma_daily, strict=False)
        if not 0.0 <= self.link_correlation <= 1.0:
            raise ValueError(
                f"link_correlation must lie in [0, 1], got {self.link_correlation}"
            )
        rng = as_generator(self.seed)
        common_weight = np.sqrt(self.link_correlation)
        private_weight = np.sqrt(1.0 - self.link_correlation)
        days = self.horizon_days + 1
        steps = np.empty((days, self.links))
        steps[0] = 0.0
        for d in range(1, days):
            common = rng.normal(0.0, self.sigma_daily)
            private = rng.normal(0.0, self.sigma_daily, size=self.links)
            steps[d] = common_weight * common + private_weight * private
        self._lattice = np.cumsum(steps, axis=0)

    @property
    def link_count(self) -> int:
        return self.links

    def offsets(self, day: float) -> np.ndarray:
        if day < 0:
            raise ValueError(f"day must be >= 0, got {day}")
        if day > self.horizon_days:
            raise ValueError(
                f"day {day} beyond simulated horizon of {self.horizon_days} days"
            )
        low = int(np.floor(day))
        high = min(low + 1, self.horizon_days)
        frac = day - low
        return (1.0 - frac) * self._lattice[low] + frac * self._lattice[high]


@dataclass
class LinearDrift(DriftProcess):
    """Deterministic linear drift — handy for exact-value unit tests."""

    links: int
    slope_db_per_day: float = 0.1

    def __post_init__(self) -> None:
        if self.links < 1:
            raise ValueError(f"links must be >= 1, got {self.links}")

    @property
    def link_count(self) -> int:
        return self.links

    def offsets(self, day: float) -> np.ndarray:
        if day < 0:
            raise ValueError(f"day must be >= 0, got {day}")
        return np.full(self.links, self.slope_db_per_day * day)


@dataclass
class CompositeDrift(DriftProcess):
    """Sum of component drift processes over the same links."""

    components: Sequence[DriftProcess]

    def __post_init__(self) -> None:
        if len(self.components) == 0:
            raise ValueError("composite drift needs at least one component")
        counts = {c.link_count for c in self.components}
        if len(counts) != 1:
            raise ValueError(f"components disagree on link count: {sorted(counts)}")

    @property
    def link_count(self) -> int:
        return self.components[0].link_count

    def offsets(self, day: float) -> np.ndarray:
        total = np.zeros(self.link_count)
        for component in self.components:
            total = total + component.offsets(day)
        return total


@dataclass
class EntryFieldDrift:
    """Per-entry (link x cell) drift of the *target-present* RSS.

    Physics: the empty-room RSS of a link drifts with temperature/humidity
    (modeled by the per-link processes above), but the multipath interaction
    between a *body at a specific cell* and a specific link drifts too — and
    that component is not expressible as a per-link offset, so it cannot be
    recovered from a fresh empty-room calibration alone. It is exactly this
    component that limits fingerprint-reconstruction accuracy over time
    (the paper's Fig. 3 growth).

    Model: each matrix entry follows the sum of two independent stationary
    AR(1) processes:

    * a *fast* component (time constant of days): short-term weather swings
      whose spatial pattern is rough — entry-to-entry independent — and
      therefore unrecoverable by any reconstruction. This is what makes even
      a 3-day-old fingerprint imperfect.
    * a *slow* component (time constant of months): structural change of the
      room's multipath whose spatial pattern is *smooth over the grid*
      (temperature affects neighboring locations alike). Its smoothness is
      exactly what the paper's continuity/similarity properties and the LRR
      transfer capture, so a good reconstruction recovers much — not all —
      of it.

    Parameterized by stationary standard deviations, so calibration is
    direct: ``std(day) = stat_std * sqrt(1 - rho^(2*day))``.

    When ``grid_rows``/``grid_columns`` are provided, the slow component's
    innovations are drawn as Gaussian-filtered fields over the cell grid
    (``slow_smooth_sigma_cells``); otherwise both components are rough.

    The lattice is simulated lazily day by day; innovations for step ``d``
    derive from ``(seed, d)``, so query order never changes results.
    """

    links: int
    cells: int
    fast_stat_std: float = 3.6
    fast_rho: float = 0.6
    slow_stat_std: float = 10.0
    slow_rho: float = 0.99
    grid_rows: int = 0
    grid_columns: int = 0
    slow_smooth_sigma_cells: float = 1.5
    seed: RandomState = None

    def __post_init__(self) -> None:
        if self.links < 1 or self.cells < 1:
            raise ValueError(
                f"links and cells must be >= 1, got {self.links}, {self.cells}"
            )
        for name, rho in (("fast_rho", self.fast_rho), ("slow_rho", self.slow_rho)):
            if not 0.0 <= rho < 1.0:
                raise ValueError(f"{name} must lie in [0, 1), got {rho}")
        check_positive("fast_stat_std", self.fast_stat_std, strict=False)
        check_positive("slow_stat_std", self.slow_stat_std, strict=False)
        check_positive(
            "slow_smooth_sigma_cells", self.slow_smooth_sigma_cells, strict=False
        )
        if self.grid_rows and self.grid_columns:
            if self.grid_rows * self.grid_columns != self.cells:
                raise ValueError(
                    f"grid {self.grid_rows} x {self.grid_columns} does not tile "
                    f"{self.cells} cells"
                )
        if isinstance(self.seed, np.random.Generator):
            self._entropy = int(self.seed.integers(0, 2**31 - 1))
        elif self.seed is None:
            self._entropy = 0
        elif isinstance(self.seed, np.random.SeedSequence):
            entropy = self.seed.entropy
            self._entropy = int(entropy) & 0x7FFFFFFF if isinstance(entropy, int) else 0
        else:
            self._entropy = int(self.seed) & 0x7FFFFFFF
        shape = (self.links, self.cells)
        self._fast: List[np.ndarray] = [np.zeros(shape)]
        self._slow: List[np.ndarray] = [np.zeros(shape)]

    @property
    def link_count(self) -> int:
        return self.links

    def offsets(self, day: float) -> np.ndarray:
        """Entry drift matrix (links x cells, dB) at ``day``."""
        if day < 0:
            raise ValueError(f"day must be >= 0, got {day}")
        high = int(np.ceil(day))
        self._extend_to(high)
        low = int(np.floor(day))
        frac = day - low
        lattice_low = self._fast[low] + self._slow[low]
        if frac == 0.0:
            return lattice_low
        lattice_high = self._fast[high] + self._slow[high]
        return (1.0 - frac) * lattice_low + frac * lattice_high

    def _slow_innovation(self, rng: np.random.Generator) -> np.ndarray:
        """Unit-variance slow-innovation field, smooth when a grid is known."""
        if not (self.grid_rows and self.grid_columns and self.slow_smooth_sigma_cells):
            return rng.standard_normal((self.links, self.cells))
        from scipy.ndimage import gaussian_filter  # deferred: keep import light

        white = rng.standard_normal((self.links, self.grid_rows, self.grid_columns))
        sigma = self.slow_smooth_sigma_cells
        smooth = gaussian_filter(white, sigma=(0.0, sigma, sigma), mode="nearest")
        scale = smooth.std()
        if scale > 0:
            smooth = smooth / scale
        return smooth.reshape(self.links, self.cells)

    def _extend_to(self, day: int) -> None:
        fast_innov = self.fast_stat_std * np.sqrt(1.0 - self.fast_rho**2)
        slow_innov = self.slow_stat_std * np.sqrt(1.0 - self.slow_rho**2)
        shape = (self.links, self.cells)
        while len(self._fast) <= day:
            step = len(self._fast)
            rng = np.random.default_rng(
                np.random.SeedSequence([self._entropy, step])
            )
            self._fast.append(
                self.fast_rho * self._fast[-1]
                + fast_innov * rng.standard_normal(shape)
            )
            self._slow.append(
                self.slow_rho * self._slow[-1]
                + slow_innov * self._slow_innovation(rng)
            )


def calibrated_paper_drift(links: int, seed: RandomState = None) -> GaussMarkovDrift:
    """Drift process calibrated to the paper's anchor magnitudes.

    The defaults of :class:`GaussMarkovDrift` were fit (by the calibration
    test in ``tests/sim/test_drift.py``) so that the ensemble mean absolute
    offset is ≈2.5 dB at 5 days and ≈6 dB at 45 days, the paper's in-text
    figures. Absolute per-run values vary with the seed, as they do on air.
    """
    return GaussMarkovDrift(
        links=links,
        sigma_daily=1.35,
        rho=0.988,
        link_correlation=0.6,
        seed=seed,
    )
