"""Baseline radio channel: path loss, static multipath gain, thermal noise.

The channel model produces the *empty-room* RSS of each link and the
per-sample measurement noise. Target-induced attenuation is layered on top by
:mod:`repro.sim.shadowing`, and slow temporal drift by :mod:`repro.sim.drift`;
keeping the three orthogonal mirrors how the physical effects compose and
lets tests probe each in isolation.

Model per link ``i`` at time ``t`` with target at position ``p``::

    rss_i(t, p) = P_tx - PL(d_i) + m_i + drift_i(t) - shadow_i(p) + noise

* ``PL(d) = PL0 + 10 * eta * log10(d / d0)`` — log-distance path loss.
* ``m_i`` — static multipath/antenna gain of the link, drawn once per
  deployment from a spatially correlated Gaussian field so nearby links have
  similar gains (this is what makes the fingerprint matrix approximately low
  rank across links).
* ``noise`` — i.i.d. Gaussian measurement noise, quantized to the RSSI
  granularity of the NIC (whole dBm on the AR9331).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

import numpy as np

from repro.sim.geometry import Link, Point, pairwise_distances
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_positive


@dataclass(frozen=True)
class ChannelParams:
    """Physical parameters of the baseline channel.

    Defaults are typical for 2.4 GHz indoor WiFi and produce empty-room RSS
    in the -55 .. -35 dBm range over the paper's room, comparable to reported
    AR9331 readings.
    """

    tx_power_dbm: float = 15.0
    path_loss_exponent: float = 2.2
    reference_distance_m: float = 1.0
    reference_loss_db: float = 40.0
    multipath_sigma_db: float = 2.5
    multipath_correlation_m: float = 3.0
    noise_sigma_db: float = 1.0
    rssi_quantum_db: float = 1.0

    def __post_init__(self) -> None:
        check_positive("path_loss_exponent", self.path_loss_exponent)
        check_positive("reference_distance_m", self.reference_distance_m)
        check_positive("multipath_correlation_m", self.multipath_correlation_m)
        check_positive("multipath_sigma_db", self.multipath_sigma_db, strict=False)
        check_positive("noise_sigma_db", self.noise_sigma_db, strict=False)
        check_positive("rssi_quantum_db", self.rssi_quantum_db, strict=False)

    def with_noise_sigma(self, sigma: float) -> "ChannelParams":
        return replace(self, noise_sigma_db=sigma)


@dataclass
class ChannelModel:
    """Per-deployment channel realization.

    The static multipath gains are drawn at construction from a Gaussian
    process over link midpoints with an exponential covariance, so the
    realization is frozen and every later query is deterministic given the
    noise generator passed in.
    """

    links: Sequence[Link]
    params: ChannelParams = field(default_factory=ChannelParams)
    seed: RandomState = None

    def __post_init__(self) -> None:
        if len(self.links) == 0:
            raise ValueError("channel needs at least one link")
        rng = as_generator(self.seed)
        self._multipath = self._draw_multipath(rng)
        losses = np.array([self.path_loss_db(link.length) for link in self.links])
        self._empty_rss = self.params.tx_power_dbm - losses + self._multipath

    # ------------------------------------------------------------------
    # deterministic components
    # ------------------------------------------------------------------
    def path_loss_db(self, distance_m: float) -> float:
        """Log-distance path loss at ``distance_m`` meters."""
        d = max(distance_m, self.params.reference_distance_m)
        return self.params.reference_loss_db + 10.0 * self.params.path_loss_exponent * np.log10(
            d / self.params.reference_distance_m
        )

    def empty_room_rss(self) -> np.ndarray:
        """Noise-free empty-room RSS of every link, in dBm."""
        return self._empty_rss.copy()

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample(
        self,
        *,
        shadow_db: Optional[np.ndarray] = None,
        drift_db: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
        quantize: bool = True,
    ) -> np.ndarray:
        """One RSS measurement vector (dBm) across all links.

        Args:
            shadow_db: Target-induced attenuation per link (positive values
                reduce RSS). Defaults to zero (no target).
            drift_db: Slow environmental offset per link. Defaults to zero.
            rng: Noise generator; when omitted, the sample is noise-free.
            quantize: Round to the NIC's RSSI granularity.
        """
        rss = self._empty_rss
        if shadow_db is not None:
            rss = rss - np.asarray(shadow_db, dtype=float)
        if drift_db is not None:
            rss = rss + np.asarray(drift_db, dtype=float)
        if rng is not None and self.params.noise_sigma_db > 0:
            rss = rss + rng.normal(0.0, self.params.noise_sigma_db, size=rss.shape)
        if quantize and self.params.rssi_quantum_db > 0:
            q = self.params.rssi_quantum_db
            rss = np.round(rss / q) * q
        return rss if rss is not self._empty_rss else rss.copy()

    def sample_batch(
        self,
        count: int,
        *,
        shadow_db: Optional[np.ndarray] = None,
        drift_db: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
        quantize: bool = True,
    ) -> np.ndarray:
        """``count`` RSS measurement vectors in one array op.

        ``shadow_db`` / ``drift_db`` may be per-link ``(links,)`` vectors or
        anything broadcastable against ``(count, links)`` (e.g. per-sample
        shadows). With a per-link shadow/drift, the result is bit-identical
        to ``count`` successive :meth:`sample` calls on the same generator:
        the noise is drawn as one ``(count, links)`` block, which consumes
        the generator's stream in the same order as per-sample draws.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        rss = np.broadcast_to(
            self._empty_rss, (count, len(self.links))
        ).astype(float)
        if shadow_db is not None:
            rss = rss - np.asarray(shadow_db, dtype=float)
        if drift_db is not None:
            rss = rss + np.asarray(drift_db, dtype=float)
        if rng is not None and self.params.noise_sigma_db > 0:
            rss = rss + rng.normal(
                0.0, self.params.noise_sigma_db, size=(count, len(self.links))
            )
        if quantize and self.params.rssi_quantum_db > 0:
            q = self.params.rssi_quantum_db
            rss = np.round(rss / q) * q
        return rss

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _draw_multipath(self, rng: np.random.Generator) -> np.ndarray:
        sigma = self.params.multipath_sigma_db
        if sigma == 0.0:
            return np.zeros(len(self.links))
        midpoints = [link.midpoint for link in self.links]
        distances = pairwise_distances(midpoints)
        covariance = sigma**2 * np.exp(-distances / self.params.multipath_correlation_m)
        # Jitter for numerical positive definiteness.
        covariance += 1e-9 * np.eye(len(self.links))
        chol = np.linalg.cholesky(covariance)
        return chol @ rng.standard_normal(len(self.links))


def midpoint_of(point_a: Point, point_b: Point) -> Point:
    """Convenience midpoint helper (exposed for the RASS baseline)."""
    return Point((point_a.x + point_b.x) / 2.0, (point_a.y + point_b.y) / 2.0)
