"""Declarative scenario specs and the named-scenario registry.

The paper evaluates one office room; the reproduction's north star is to run
every experiment on *any* environment. This module is the layer that makes
that possible:

* :class:`ScenarioSpec` — a frozen, fully serializable (dict / JSON)
  description of a simulated world: deployment geometry, channel physics,
  body shadowing, the drift regime, interference, mobility, and structural
  events. A spec plus its integer ``seed`` determines a
  :class:`~repro.sim.scenario.Scenario` realization bit for bit, which is
  what lets the experiment engine ship specs through process pools and
  memoize realizations by structural fingerprint
  (:func:`repro.eval.engine.cached_scenario`).
* :func:`build_scenario` — the single spec-to-world compiler every library
  call site goes through (``build_paper_scenario`` is now a thin wrapper
  over the ``paper`` spec).
* The **registry** — named spec builders (``paper``, ``square-6m``,
  ``warehouse``, ``corridor``, ``atrium``, ``dense-office``, …) plus the
  generic ``square-<edge>m`` pattern, resolvable by name from the CLI
  (``--scenario``), the benchmark harness, and user code. User-supplied
  environments load from JSON files (``--scenario-file``) via
  :meth:`ScenarioSpec.from_json`.

Randomness layout: :func:`build_scenario` spawns five child streams from the
seed — channel, drift, entry drift, shadowing, events — in a fixed order, so
adding spec features never perturbs existing realizations, and the ``paper``
spec reproduces the pre-registry ``build_paper_scenario`` output exactly
(asserted by ``tests/sim/test_specs.py``).
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.sim.channel import ChannelModel, ChannelParams
from repro.sim.deployment import (
    Deployment,
    build_paper_deployment,
    build_perimeter_deployment,
)
from repro.sim.drift import (
    DriftProcess,
    EntryFieldDrift,
    GaussMarkovDrift,
    LinearDrift,
    RandomWalkDrift,
)
from repro.sim.interference import InterferenceSpec
from repro.sim.mobility import MobilitySpec
from repro.sim.scenario import Scenario, StructuralEvent
from repro.sim.shadowing import (
    CompositeShadowingModel,
    HeterogeneousBlockingModel,
    ScatteringModel,
    ShadowingModel,
)
from repro.util.rng import RandomState, spawn_children
from repro.util.validation import check_positive

__all__ = [
    "DriftSpec",
    "EntryDriftSpec",
    "EventSpec",
    "GeometrySpec",
    "ScenarioSpec",
    "ShadowingSpec",
    "as_scenario_spec",
    "build_deployment",
    "build_scenario",
    "get_scenario_spec",
    "list_scenarios",
    "register_scenario",
    "scenario_names",
]


# ----------------------------------------------------------------------
# component specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GeometrySpec:
    """Deployment geometry.

    ``kind="paper"`` reproduces the testbed of the paper's Fig. 2 (room with
    a centered monitored sub-region); ``kind="perimeter"`` grids the whole
    ``width x depth`` area with crossing wall-to-wall links — the general
    builder behind squares, corridors and warehouse blocks.
    """

    kind: str = "paper"
    width_m: float = 9.0
    depth_m: float = 12.0
    cell_size_m: float = 0.6
    link_count: int = 10
    monitored_columns: int = 12
    monitored_rows: int = 8

    def __post_init__(self) -> None:
        if self.kind not in ("paper", "perimeter"):
            raise ValueError(f"kind must be paper or perimeter, got {self.kind!r}")
        check_positive("width_m", self.width_m)
        check_positive("depth_m", self.depth_m)
        check_positive("cell_size_m", self.cell_size_m)
        if self.link_count < 2:
            raise ValueError(f"link_count must be >= 2, got {self.link_count}")


@dataclass(frozen=True)
class DriftSpec:
    """Per-link slow drift regime (the paper's 2.5 dB @ 5 d / 6 dB @ 45 d).

    ``model`` selects :class:`~repro.sim.drift.GaussMarkovDrift`
    (``"gauss-markov"``, mean-reverting — calm environments),
    :class:`~repro.sim.drift.RandomWalkDrift` (``"random-walk"``, unbounded —
    structurally unstable environments like an atrium under renovation), or
    :class:`~repro.sim.drift.LinearDrift` (``"linear"``, deterministic — unit
    tests). The defaults are the calibrated paper values.
    """

    model: str = "gauss-markov"
    sigma_daily: float = 1.35
    rho: float = 0.988
    link_correlation: float = 0.6
    slope_db_per_day: float = 0.1

    def __post_init__(self) -> None:
        if self.model not in ("gauss-markov", "random-walk", "linear"):
            raise ValueError(
                f"model must be gauss-markov, random-walk or linear, "
                f"got {self.model!r}"
            )

    def build(self, links: int, *, seed: RandomState = None) -> DriftProcess:
        if self.model == "random-walk":
            return RandomWalkDrift(
                links=links,
                sigma_daily=self.sigma_daily,
                link_correlation=self.link_correlation,
                seed=seed,
            )
        if self.model == "linear":
            return LinearDrift(links=links, slope_db_per_day=self.slope_db_per_day)
        return GaussMarkovDrift(
            links=links,
            sigma_daily=self.sigma_daily,
            rho=self.rho,
            link_correlation=self.link_correlation,
            seed=seed,
        )


@dataclass(frozen=True)
class EntryDriftSpec:
    """Per-(link, cell) target-present drift (see
    :class:`~repro.sim.drift.EntryFieldDrift`). Defaults are the paper
    calibration."""

    fast_stat_std: float = 3.6
    fast_rho: float = 0.6
    slow_stat_std: float = 10.0
    slow_rho: float = 0.99
    slow_smooth_sigma_cells: float = 1.5

    def build(
        self, deployment: Deployment, *, seed: RandomState = None
    ) -> EntryFieldDrift:
        return EntryFieldDrift(
            links=deployment.link_count,
            cells=deployment.cell_count,
            fast_stat_std=self.fast_stat_std,
            fast_rho=self.fast_rho,
            slow_stat_std=self.slow_stat_std,
            slow_rho=self.slow_rho,
            grid_rows=deployment.grid.rows,
            grid_columns=deployment.grid.columns,
            slow_smooth_sigma_cells=self.slow_smooth_sigma_cells,
            seed=seed,
        )


@dataclass(frozen=True)
class ShadowingSpec:
    """Body-shadowing model: heterogeneous knife-edge blocking plus a frozen
    multipath-scattering field. Defaults are the paper composite."""

    blocking_peak_low_db: float = 4.0
    blocking_peak_high_db: float = 12.0
    blocking_decay_m: float = 0.35
    endpoint_taper: float = 0.5
    scatter_amplitude_db: float = 3.0
    scatter_decay_m: float = 1.0
    scatter_wavelength_m: float = 3.0

    def __post_init__(self) -> None:
        if self.blocking_peak_high_db < self.blocking_peak_low_db:
            raise ValueError(
                f"blocking peak range inverted: ({self.blocking_peak_low_db}, "
                f"{self.blocking_peak_high_db})"
            )

    def build(
        self,
        deployment: Deployment,
        *,
        blocking_seed: RandomState = None,
        field_seed: RandomState = None,
    ) -> ShadowingModel:
        return CompositeShadowingModel(
            components=(
                HeterogeneousBlockingModel(
                    deployment.links,
                    peak_range_db=(
                        self.blocking_peak_low_db,
                        self.blocking_peak_high_db,
                    ),
                    decay_m=self.blocking_decay_m,
                    endpoint_taper=self.endpoint_taper,
                    seed=blocking_seed,
                ),
                ScatteringModel(
                    deployment.links,
                    amplitude_db=self.scatter_amplitude_db,
                    decay_m=self.scatter_decay_m,
                    wavelength_m=self.scatter_wavelength_m,
                    seed=field_seed,
                ),
            )
        )


@dataclass(frozen=True)
class EventSpec:
    """A seeded structural change: at ``day``, a ``link_fraction`` subset of
    links shifts by a uniform ±``magnitude_db`` offset (moved furniture,
    re-racked pallets). Offsets are drawn from the scenario's event stream,
    so the realization is pinned by the scenario seed."""

    day: float
    magnitude_db: float = 3.0
    link_fraction: float = 0.5
    label: str = "structural-change"

    def __post_init__(self) -> None:
        if self.day < 0:
            raise ValueError(f"day must be >= 0, got {self.day}")
        check_positive("magnitude_db", self.magnitude_db)
        if not 0.0 < self.link_fraction <= 1.0:
            raise ValueError(
                f"link_fraction must lie in (0, 1], got {self.link_fraction}"
            )

    def build(self, links: int, rng: np.random.Generator) -> StructuralEvent:
        hit = rng.random(links) < self.link_fraction
        offsets = rng.uniform(-self.magnitude_db, self.magnitude_db, size=links)
        return StructuralEvent(
            day=self.day,
            link_offsets_db=np.where(hit, offsets, 0.0),
            label=self.label,
        )


# ----------------------------------------------------------------------
# the scenario spec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """Everything needed to realize a simulated deployment environment.

    Frozen and built from plain data only, so a spec can travel through
    process-pool task payloads (fingerprintable by
    :func:`repro.eval.engine.task_fingerprint`), be committed as JSON, and
    be diffed meaningfully. ``seed`` pins the realization; experiment
    runners fold their own seed in via :meth:`with_seed`.
    """

    name: str = "custom"
    description: str = ""
    seed: int = 0
    geometry: GeometrySpec = field(default_factory=GeometrySpec)
    channel: ChannelParams = field(default_factory=ChannelParams)
    drift: DriftSpec = field(default_factory=DriftSpec)
    entry_drift: Optional[EntryDriftSpec] = field(default_factory=EntryDriftSpec)
    shadowing: ShadowingSpec = field(default_factory=ShadowingSpec)
    interference: Optional[InterferenceSpec] = None
    mobility: Optional[MobilitySpec] = None
    events: Tuple[EventSpec, ...] = ()

    def __post_init__(self) -> None:
        # JSON round-trips hand back lists; normalize so equality and
        # fingerprinting see one canonical form.
        object.__setattr__(self, "events", tuple(self.events))
        object.__setattr__(self, "seed", int(self.seed))

    def with_seed(self, seed: int) -> "ScenarioSpec":
        """The same environment, realized from a different seed."""
        return replace(self, seed=int(seed))

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        out = asdict(self)
        out["events"] = [asdict(event) for event in self.events]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        payload = dict(data)

        def sub(key: str, klass, optional: bool = False):
            value = payload.get(key)
            if value is None:
                return None if optional else klass()
            return value if isinstance(value, klass) else klass(**value)

        payload["geometry"] = sub("geometry", GeometrySpec)
        payload["channel"] = sub("channel", ChannelParams)
        payload["drift"] = sub("drift", DriftSpec)
        payload["entry_drift"] = sub("entry_drift", EntryDriftSpec, optional=True)
        payload["shadowing"] = sub("shadowing", ShadowingSpec)
        payload["interference"] = sub("interference", InterferenceSpec, optional=True)
        payload["mobility"] = sub("mobility", MobilitySpec, optional=True)
        payload["events"] = tuple(
            event if isinstance(event, EventSpec) else EventSpec(**event)
            for event in payload.get("events", ())
        )
        return cls(**payload)

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ScenarioSpec":
        return cls.from_json(Path(path).read_text())


# ----------------------------------------------------------------------
# spec -> world compilation
# ----------------------------------------------------------------------
def build_deployment(geometry: GeometrySpec) -> Deployment:
    """Materialize the deployment geometry of a spec."""
    if geometry.kind == "paper":
        return build_paper_deployment(
            room_width=geometry.width_m,
            room_depth=geometry.depth_m,
            link_count=geometry.link_count,
            cell_size=geometry.cell_size_m,
            monitored_columns=geometry.monitored_columns,
            monitored_rows=geometry.monitored_rows,
        )
    return build_perimeter_deployment(
        geometry.width_m,
        geometry.depth_m,
        cell_size=geometry.cell_size_m,
        link_count=geometry.link_count,
    )


def build_scenario(
    spec: Union["ScenarioSpec", dict, str],
    *,
    seed: RandomState = None,
    deployment: Optional[Deployment] = None,
    shadowing: Optional[ShadowingModel] = None,
    channel_params: Optional[ChannelParams] = None,
    events: Optional[Sequence[StructuralEvent]] = None,
) -> Scenario:
    """Realize a :class:`Scenario` from a spec (object, dict, or name).

    Pure in ``(spec, seed)``: the same inputs produce a bit-identical world,
    which is the contract :func:`repro.eval.engine.cached_scenario` memoizes
    on. ``seed`` overrides ``spec.seed`` (and may be a live generator, in
    which case the result is not cacheable but still deterministic in the
    generator state). The keyword overrides exist for harnesses that swap
    one live component (e.g. the benchmark's pre-built deployments) while
    keeping the rest of the recipe.
    """
    spec = as_scenario_spec(spec)
    if seed is None:
        seed = spec.seed
    deployment = deployment or build_deployment(spec.geometry)
    # Fixed spawn order; the trailing events stream leaves the first four
    # children — hence every event-free realization — byte-stable.
    channel_rng, drift_rng, entry_rng, scatter_rng, events_rng = spawn_children(
        seed, 5
    )
    channel = ChannelModel(
        links=deployment.links,
        params=channel_params or spec.channel,
        seed=channel_rng,
    )
    drift = spec.drift.build(deployment.link_count, seed=drift_rng)
    entry_drift = (
        spec.entry_drift.build(deployment, seed=entry_rng)
        if spec.entry_drift is not None
        else None
    )
    if shadowing is None:
        blocking_rng, field_rng = spawn_children(scatter_rng, 2)
        shadowing = spec.shadowing.build(
            deployment, blocking_seed=blocking_rng, field_seed=field_rng
        )
    if events is None:
        events = [
            event.build(deployment.link_count, events_rng) for event in spec.events
        ]
    return Scenario(
        deployment=deployment,
        channel=channel,
        shadowing=shadowing,
        drift=drift,
        entry_drift=entry_drift,
        events=list(events),
        interference_spec=spec.interference,
    )


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Callable[[], ScenarioSpec]] = {}


def register_scenario(name: str):
    """Decorator registering a zero-argument :class:`ScenarioSpec` builder."""

    def wrap(builder: Callable[[], ScenarioSpec]):
        _REGISTRY[name] = builder
        return builder

    return wrap


def scenario_names() -> List[str]:
    """Registered scenario names, in registration order."""
    return list(_REGISTRY)


def list_scenarios() -> Dict[str, ScenarioSpec]:
    """Name -> spec for every registered scenario (seed 0)."""
    return {name: builder() for name, builder in _REGISTRY.items()}


def get_scenario_spec(name: str, *, seed: int = 0) -> ScenarioSpec:
    """Resolve a registered name (or ``square-<edge>m`` pattern) to a spec.

    Error contract (relied on by the serving layer's input validation):
    every failure is a :class:`KeyError` (unresolvable name) or a
    :class:`ValueError` (resolvable pattern with an unusable edge) — never
    anything else, for any string input.
    """
    if name in _REGISTRY:
        spec = _REGISTRY[name]()
    elif name.startswith("square-") and name.endswith("m"):
        try:
            edge = float(name[len("square-") : -1])
        except ValueError:
            raise KeyError(
                f"unknown scenario {name!r}; known: {', '.join(_REGISTRY)}"
            ) from None
        # Reject non-finite edges here: 'square-infm' would otherwise leak
        # an OverflowError out of geometry construction, breaking the
        # KeyError/ValueError contract above.
        if not math.isfinite(edge):
            raise ValueError(
                f"square edge must be finite and positive, got {edge!r} "
                f"(from scenario name {name!r})"
            )
        spec = _square_spec(edge)
    else:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(_REGISTRY)} "
            f"(or the pattern 'square-<edge>m')"
        )
    return spec.with_seed(seed) if seed else spec


def as_scenario_spec(value: Union[ScenarioSpec, dict, str]) -> ScenarioSpec:
    """Normalize a spec object / dict / registry name into a spec."""
    if isinstance(value, ScenarioSpec):
        return value
    if isinstance(value, str):
        return get_scenario_spec(value)
    if isinstance(value, dict):
        return ScenarioSpec.from_dict(value)
    raise TypeError(
        f"expected ScenarioSpec, dict, or registry name, got {type(value).__name__}"
    )


@register_scenario("paper")
def _paper_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="paper",
        description=(
            "The paper's Fig. 2 office testbed: 9 m x 12 m room, 10 links, "
            "96 cells of 0.6 m, calibrated Gauss-Markov drift."
        ),
    )


def _square_spec(edge: float) -> ScenarioSpec:
    check_positive("edge", edge)
    return ScenarioSpec(
        name=f"square-{edge:g}m",
        description=(
            f"A {edge:g} m x {edge:g} m open square with paper physics; "
            "link count scales with the edge (Fig. 4 regime)."
        ),
        geometry=GeometrySpec(
            kind="perimeter",
            width_m=edge,
            depth_m=edge,
            link_count=max(2, int(round(edge / 1.2))),
        ),
    )


@register_scenario("square-6m")
def _square_6m_spec() -> ScenarioSpec:
    return _square_spec(6.0)


@register_scenario("square-12m")
def _square_12m_spec() -> ScenarioSpec:
    return _square_spec(12.0)


@register_scenario("warehouse")
def _warehouse_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="warehouse",
        description=(
            "Long-aisle storage block: 19.2 m x 4.8 m, sparse links "
            "(6 across 256 cells), aisle waveguiding, strong pallet "
            "blocking, livelier drift, and a mid-life re-racking event."
        ),
        geometry=GeometrySpec(
            kind="perimeter", width_m=19.2, depth_m=4.8, link_count=6
        ),
        channel=ChannelParams(
            path_loss_exponent=1.9,
            multipath_sigma_db=3.5,
            multipath_correlation_m=5.0,
            noise_sigma_db=1.2,
        ),
        drift=DriftSpec(sigma_daily=1.6, rho=0.985),
        shadowing=ShadowingSpec(
            blocking_peak_low_db=6.0,
            blocking_peak_high_db=14.0,
            scatter_amplitude_db=4.0,
            scatter_wavelength_m=2.0,
        ),
        mobility=MobilitySpec(
            model="waypoint", speed_min_mps=0.6, speed_max_mps=1.6, pause_max_s=4.0
        ),
        events=(EventSpec(day=40.0, magnitude_db=3.0, label="re-racking"),),
    )


@register_scenario("corridor")
def _corridor_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="corridor",
        description=(
            "1-D dense grid: a 14.4 m x 1.2 m hallway (48 cells) saturated "
            "with 8 links, waveguide propagation, gentle drift."
        ),
        geometry=GeometrySpec(
            kind="perimeter", width_m=14.4, depth_m=1.2, link_count=8
        ),
        channel=ChannelParams(
            path_loss_exponent=1.7,
            multipath_sigma_db=2.0,
            multipath_correlation_m=4.0,
        ),
        drift=DriftSpec(sigma_daily=1.0, rho=0.99),
        shadowing=ShadowingSpec(
            blocking_peak_low_db=6.0,
            blocking_peak_high_db=12.0,
            scatter_amplitude_db=2.0,
            scatter_wavelength_m=1.5,
        ),
        mobility=MobilitySpec(model="walk", heading_sigma_rad=0.2),
    )


@register_scenario("atrium")
def _atrium_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="atrium",
        description=(
            "9.6 m x 9.6 m open atrium (256 cells, 8 links) under heavy "
            "co-channel interference, unbounded random-walk drift, and two "
            "furniture-shift events — the stress regime for detection and "
            "robustness."
        ),
        geometry=GeometrySpec(
            kind="perimeter", width_m=9.6, depth_m=9.6, link_count=8
        ),
        channel=ChannelParams(noise_sigma_db=1.5, multipath_sigma_db=3.0),
        drift=DriftSpec(model="random-walk", sigma_daily=0.5),
        shadowing=ShadowingSpec(scatter_amplitude_db=3.5),
        interference=InterferenceSpec(
            burst_probability=0.15, magnitude_low_db=3.0, magnitude_high_db=12.0
        ),
        mobility=MobilitySpec(model="waypoint", pause_max_s=6.0),
        events=(
            EventSpec(day=20.0, magnitude_db=3.0, label="kiosk-moved"),
            EventSpec(day=60.0, magnitude_db=4.0, label="exhibit-installed"),
        ),
    )


@register_scenario("dense-office")
def _dense_office_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="dense-office",
        description=(
            "The paper office at double link density (20 links over the "
            "same 96 cells) — the over-provisioned deployment regime."
        ),
        geometry=GeometrySpec(kind="paper", link_count=20),
    )
