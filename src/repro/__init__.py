"""TafLoc reproduction: time-adaptive device-free localization.

A from-scratch reproduction of *TafLoc: Time-adaptive and Fine-grained
Device-free Localization with Little Cost* (SIGCOMM 2016), including the
radio-testbed substrate, the fingerprint-matrix reconstruction scheme
(LoLi-IR), the RTI and RASS comparators, and the evaluation harness that
regenerates every figure of the paper.

Quickstart::

    from repro import build_paper_scenario, RssCollector, TafLoc

    scenario = build_paper_scenario(seed=0)
    system = TafLoc(RssCollector(scenario, seed=1))
    system.commission(day=0.0)          # one full survey
    system.update(day=45.0)             # cheap refresh: 10 cells, not 96
    live = RssCollector(scenario, seed=2).live_vector(45.0, cell=37)
    print(system.localize(live, day=45.0).position)
"""

from repro.baselines import RassConfig, RassLocalizer, RtiConfig, RtiLocalizer
from repro.core import (
    FingerprintDatabase,
    FingerprintMatrix,
    KnnMatcher,
    LoliIrConfig,
    LoliIrSolver,
    NearestNeighborMatcher,
    ProbabilisticMatcher,
    ReconstructionConfig,
    Reconstructor,
    TafLoc,
    TafLocConfig,
    select_references,
)
from repro.sim import (
    ChannelModel,
    ChannelParams,
    Deployment,
    FingerprintSurvey,
    KnifeEdgeShadowingModel,
    LiveTrace,
    RssCollector,
    Scenario,
    ScenarioSpec,
    build_paper_deployment,
    build_scenario,
    build_square_deployment,
    get_scenario_spec,
    list_scenarios,
    scenario_names,
)
from repro.sim.scenario import build_paper_scenario

__version__ = "1.0.0"

__all__ = [
    "ChannelModel",
    "ChannelParams",
    "Deployment",
    "FingerprintDatabase",
    "FingerprintMatrix",
    "FingerprintSurvey",
    "KnifeEdgeShadowingModel",
    "KnnMatcher",
    "LiveTrace",
    "LoliIrConfig",
    "LoliIrSolver",
    "NearestNeighborMatcher",
    "ProbabilisticMatcher",
    "RassConfig",
    "RassLocalizer",
    "ReconstructionConfig",
    "Reconstructor",
    "RssCollector",
    "RtiConfig",
    "RtiLocalizer",
    "Scenario",
    "ScenarioSpec",
    "TafLoc",
    "TafLocConfig",
    "build_paper_deployment",
    "build_paper_scenario",
    "build_scenario",
    "build_square_deployment",
    "get_scenario_spec",
    "list_scenarios",
    "scenario_names",
    "select_references",
]
