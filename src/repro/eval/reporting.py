"""Plain-text rendering of experiment results.

The benchmarks print their rows through these helpers so every figure
reproduction emits a consistent, diff-friendly report (captured into
``bench_output.txt`` at the end of a run).
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    precision: int = 3,
) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    rendered_rows = [
        [_render(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    separator = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        for row in rendered_rows
    )
    return f"{header_line}\n{separator}\n{body}"


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[float], *, precision: int = 3
) -> str:
    """One named (x, y) series as aligned columns."""
    if len(xs) != len(ys):
        raise ValueError(f"series length mismatch: {len(xs)} xs vs {len(ys)} ys")
    pairs = "  ".join(
        f"({_render(x, precision)}, {_render(y, precision)})"
        for x, y in zip(xs, ys)
    )
    return f"{name}: {pairs}"


def format_cdf_table(
    samples: Mapping[str, np.ndarray],
    grid: Sequence[float],
    *,
    value_label: str = "value",
) -> str:
    """CDF of several samples evaluated on a shared grid, one system per column."""
    names = list(samples)
    headers = [value_label, *names]
    rows = []
    for x in grid:
        row: list = [x]
        for name in names:
            data = np.asarray(samples[name], dtype=float)
            row.append(float(np.mean(data <= x)))
        rows.append(row)
    return format_table(headers, rows)


def format_summary(title: str, entries: Dict[str, object], *, precision: int = 3) -> str:
    """A titled key/value block."""
    width = max((len(k) for k in entries), default=0)
    lines = [title]
    for key, value in entries.items():
        lines.append(f"  {key.ljust(width)} : {_render(value, precision)}")
    return "\n".join(lines)


def _render(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    if isinstance(value, (float, np.floating)):
        return f"{float(value):.{precision}f}"
    return str(value)
