"""Extension experiment: continuous tracking quality over deployment age.

The poster localizes static frames; its motivating applications (elderly
care, intrusion) actually need *tracking*. This runner measures how the
particle-filter tracker's accuracy ages with the fingerprint database —
with and without TafLoc updates — over mobility-model walks. It is the
quantitative backbone of the elderly-care example and of the tracking
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.matching import ProbabilisticMatcher
from repro.core.pipeline import TafLoc, TafLocConfig
from repro.core.tracking import ParticleFilterTracker, TrackerConfig
from repro.sim.collector import RssCollector
from repro.sim.geometry import Point
from repro.sim.mobility import MobilityModel, RandomWaypointModel, collect_mobility_trace
from repro.sim.scenario import Scenario, build_paper_scenario
from repro.util.rng import RandomState, spawn_children


@dataclass(frozen=True)
class TrackingResult:
    """Tracking errors of one arm at one evaluation day.

    Attributes:
        day: Evaluation day.
        arm: ``"updated"`` (TafLoc refresh before tracking) or ``"stale"``.
        errors: Per-frame Euclidean error (m), burn-in excluded.
    """

    day: float
    arm: str
    errors: np.ndarray

    @property
    def median(self) -> float:
        return float(np.median(self.errors))


def run_tracking_experiment(
    *,
    days: Sequence[float] = (30.0, 90.0),
    frames: int = 60,
    burn_in: int = 5,
    seed: RandomState = 0,
    scenario: Optional[Scenario] = None,
    mobility: Optional[MobilityModel] = None,
    tracker_config: Optional[TrackerConfig] = None,
) -> List[TrackingResult]:
    """Track a mobility-model walk at each day, fresh vs stale fingerprints.

    Both arms share the same walk (identical RSS frames), so the comparison
    isolates fingerprint freshness.
    """
    if burn_in >= frames:
        raise ValueError(f"burn_in {burn_in} must be < frames {frames}")
    scenario = scenario or build_paper_scenario(seed=seed)
    collector_rng, system_rng, walk_rng, tracker_seed = spawn_children(seed, 4)
    system = TafLoc(RssCollector(scenario, seed=collector_rng),
                    TafLocConfig(), seed=system_rng)
    stale = system.commission(0.0)

    mobility = mobility or RandomWaypointModel(
        scenario.deployment.room, seed=walk_rng
    )
    tracker_config = tracker_config or TrackerConfig(process_sigma_m=0.6)

    results: List[TrackingResult] = []
    for day in days:
        system.update(float(day))
        fresh = system.database.at(float(day))
        walk_collector = RssCollector(scenario, seed=spawn_children(seed, 5)[4])
        walk = collect_mobility_trace(
            walk_collector, mobility, day=float(day), frames=frames
        )
        for arm, fingerprint in (("updated", fresh), ("stale", stale)):
            matcher = ProbabilisticMatcher(
                fingerprint, scenario.deployment.grid, sigma_db=3.0
            )
            tracker = ParticleFilterTracker(
                matcher, scenario.deployment.room, tracker_config,
                seed=tracker_seed,
            )
            estimates = tracker.run(walk.rss)
            errors = np.array(
                [
                    estimate.distance_to(Point(float(x), float(y)))
                    for estimate, (x, y) in zip(estimates, walk.true_positions)
                ]
            )[burn_in:]
            results.append(
                TrackingResult(day=float(day), arm=arm, errors=errors)
            )
    return results


def summarize_tracking(results: Sequence[TrackingResult]) -> Dict[str, Dict[float, float]]:
    """Median error per arm per day: ``{arm: {day: median}}``."""
    summary: Dict[str, Dict[float, float]] = {}
    for result in results:
        summary.setdefault(result.arm, {})[result.day] = result.median
    return summary
