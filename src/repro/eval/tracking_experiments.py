"""Extension experiment: continuous tracking quality over deployment age.

The poster localizes static frames; its motivating applications (elderly
care, intrusion) actually need *tracking*. This runner measures how the
particle-filter tracker's accuracy ages with the fingerprint database —
with and without TafLoc updates — over mobility-model walks. It is the
quantitative backbone of the elderly-care example and of the tracking
benchmark.

Each evaluation day is one :class:`~repro.eval.engine.ExperimentEngine`
task (both arms share the task, and the walk, so the comparison stays
controlled); pass ``engine=`` to parallelize over days.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.matching import ProbabilisticMatcher
from repro.core.pipeline import TafLoc, TafLocConfig
from repro.core.tracking import ParticleFilterTracker, TrackerConfig
from repro.eval.engine import ExperimentEngine
from repro.sim.collector import RssCollector
from repro.sim.geometry import Point
from repro.sim.mobility import MobilityModel, RandomWaypointModel, collect_mobility_trace
from repro.sim.scenario import Scenario
from repro.util.rng import RandomState, counter_stream, task_key

from repro.eval.experiments import (  # shared stream-slot conventions
    _STREAM_COMMISSION,
    _STREAM_SYSTEM,
    _STREAM_TRACKER,
    _STREAM_UPDATE,
    _STREAM_WALK,
    SpecLike,
    _day_token,
    _resolve_scenario,
    _scenario_payload,
)


@dataclass(frozen=True)
class TrackingResult:
    """Tracking errors of one arm at one evaluation day.

    Attributes:
        day: Evaluation day.
        arm: ``"updated"`` (TafLoc refresh before tracking) or ``"stale"``.
        errors: Per-frame Euclidean error (m), burn-in excluded.
    """

    day: float
    arm: str
    errors: np.ndarray

    @property
    def median(self) -> float:
        return float(np.median(self.errors))


def _tracking_task(payload: dict) -> List[TrackingResult]:
    """Track one evaluation day, fresh vs stale fingerprints."""
    scenario = _resolve_scenario(payload)
    base = payload["base_key"]
    day = payload["day"]
    day_key = task_key(base, "day", _day_token(day))
    frames = payload["frames"]
    burn_in = payload["burn_in"]

    system = TafLoc(
        RssCollector(scenario, seed=counter_stream(base, _STREAM_COMMISSION)),
        TafLocConfig(),
        seed=counter_stream(base, _STREAM_SYSTEM),
    )
    stale = system.commission(0.0)
    system.collector = RssCollector(
        scenario, seed=counter_stream(day_key, _STREAM_UPDATE)
    )
    system.update(day)
    fresh = system.database.at(day)

    spec = payload.get("scenario_spec")
    if payload["mobility"] is not None:
        # A caller-supplied model is stateful; copy it so this task cannot
        # leak draws into other days (or other engine workers), and re-key
        # the copy's stream per day so each evaluation day gets its own walk
        # (the model supplies the motion parameters, the engine supplies the
        # randomness). Deterministic models (scripted routes) have no stream
        # and replay their route unchanged.
        mobility = copy.deepcopy(payload["mobility"])
        if isinstance(getattr(mobility, "_rng", None), np.random.Generator):
            mobility._rng = counter_stream(day_key, _STREAM_WALK)
    elif spec is not None and spec.mobility is not None:
        # The scenario declares how its occupants move (a warehouse picker
        # is not an office worker); realize that model on this day's stream.
        mobility = spec.mobility.build(
            scenario.deployment.room,
            seed=counter_stream(day_key, _STREAM_WALK),
        )
    else:
        mobility = RandomWaypointModel(
            scenario.deployment.room,
            seed=counter_stream(day_key, _STREAM_WALK),
        )
    walk_collector = RssCollector(
        scenario, seed=counter_stream(day_key, _STREAM_WALK, 1)
    )
    walk = collect_mobility_trace(walk_collector, mobility, day=day, frames=frames)

    tracker_config = payload["tracker_config"] or TrackerConfig(
        process_sigma_m=0.6
    )
    results: List[TrackingResult] = []
    for arm, fingerprint in (("updated", fresh), ("stale", stale)):
        matcher = ProbabilisticMatcher(
            fingerprint, scenario.deployment.grid, sigma_db=3.0
        )
        tracker = ParticleFilterTracker(
            matcher,
            scenario.deployment.room,
            tracker_config,
            seed=counter_stream(base, _STREAM_TRACKER),
        )
        estimates = tracker.run(walk.rss)
        errors = np.array(
            [
                estimate.distance_to(Point(float(x), float(y)))
                for estimate, (x, y) in zip(estimates, walk.true_positions)
            ]
        )[burn_in:]
        results.append(TrackingResult(day=day, arm=arm, errors=errors))
    return results


def run_tracking_experiment(
    *,
    days: Sequence[float] = (30.0, 90.0),
    frames: int = 60,
    burn_in: int = 5,
    seed: RandomState = 0,
    scenario: Optional[Scenario] = None,
    scenario_spec: Optional[SpecLike] = None,
    mobility: Optional[MobilityModel] = None,
    tracker_config: Optional[TrackerConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> List[TrackingResult]:
    """Track a mobility-model walk at each day, fresh vs stale fingerprints.

    Both arms share the same walk (identical RSS frames), so the comparison
    isolates fingerprint freshness. One engine task per day. When no
    ``mobility`` model is passed, the spec's declared mobility regime (if
    any) is used, falling back to a random-waypoint walk.
    """
    if burn_in >= frames:
        raise ValueError(f"burn_in {burn_in} must be < frames {frames}")
    engine = engine or ExperimentEngine()
    base = task_key(seed, "tracking")
    scenario_part = _scenario_payload(scenario, seed, scenario_spec)
    payloads = [
        {
            **scenario_part,
            "day": float(day),
            "base_key": base,
            "frames": int(frames),
            "burn_in": int(burn_in),
            "mobility": mobility,
            "tracker_config": tracker_config,
        }
        for day in days
    ]
    per_day = engine.map(_tracking_task, payloads, label="tracking")
    return [result for day_results in per_day for result in day_results]


def summarize_tracking(results: Sequence[TrackingResult]) -> Dict[str, Dict[float, float]]:
    """Median error per arm per day: ``{arm: {day: median}}``."""
    summary: Dict[str, Dict[float, float]] = {}
    for result in results:
        summary.setdefault(result.arm, {})[result.day] = result.median
    return summary
