"""Performance benchmark harness for the batched hot paths.

Times the three production-critical operations — commissioning survey
(simulation), LoLi-IR solve (reconstruction), and trace-level matching
(serving) — on several deployment sizes, comparing the fast implementations
against their reference counterparts (per-frame/per-cell loops; the
matrix-free CG solver; the cached-splu coupled backend), plus the figure
experiments end-to-end through the parallel experiment engine (legacy solver
+ serial loop vs fast solver with ``--jobs`` workers sharing one persistent
pool, with a serial-vs-parallel bit-identity check). Sizes are scenario
registry names (any registered environment benchmarks directly), and every
row records its scenario. :func:`bench_serving` additionally measures the
multi-site serving layer (cold vs warm, single vs batch, matcher-cache
speedup, queries/sec with many sites in one process). The results feed
``BENCH_PR6.json`` (committed trajectory point; see ``EXPERIMENTS.md``)
and the ``tafloc-repro bench`` CLI command. :func:`bench_frontend` measures
the wire front-ends (HTTP / unix-socket round-trip latency and queries/sec
vs in-process calls) and the shard layer's fan-out scaling, all gated on
bit-identity with the in-process service. :func:`bench_frontend_async`
measures the asyncio front-end (persistent pipelined NDJSON connections)
with a closed-loop multi-connection driver — sustained q/s plus
p50/p95/p99 latency per connection count, the aio-vs-threaded-HTTP
speedup on the same host, and the chunk-streamed ``query_trace`` path
(bit-identity + flat peak per-message buffering). :func:`bench_resilience`
measures the fault-tolerant fleet: failed/mismatched query counts and
tail-latency perturbation across a ``kill -9`` of a worker under load,
recovery time, and the snapshot-warm vs cold-survey restore speedup.

Run via ``make bench`` or ``python benchmarks/bench_perf.py``.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.fingerprint import FingerprintMatrix
from repro.core.loli_ir import LoliIrConfig
from repro.core.matching import KnnMatcher
from repro.core.pipeline import TafLoc, TafLocConfig
from repro.core.reconstruction import ReconstructionConfig
from repro.eval.engine import ExperimentEngine, cached_scenario
from repro.eval.experiments import (
    run_fig3_reconstruction_error,
    run_fig5_localization,
)
from repro.serve import (
    AioFrontend,
    AsyncServiceClient,
    HttpFrontend,
    LocalizationService,
    ServiceClient,
    ShardedService,
    UnixFrontend,
    pipeline_seed,
    reconstructor_seed,
)
from repro.serve.faults import FaultInjector, FaultSchedule
from repro.sim.collector import CollectionProtocol, LiveTrace, RssCollector
from repro.sim.deployment import Deployment
from repro.sim.scenario import Scenario
from repro.sim.specs import (
    ScenarioSpec,
    build_deployment,
    build_scenario,
    get_scenario_spec,
)
from repro.util.rng import counter_stream, task_key

#: The PR-1 solver configuration: matrix-free CG half-steps, no outer
#: extrapolation, tight inner tolerance — the baseline every fast-path
#: speedup in the committed benchmarks is measured against.
LEGACY_SOLVER = LoliIrConfig(
    method="cg", accelerate=False, cg_tol=1e-9, tol=1e-7
)

#: Deployment sizes benchmarked by default; the 6 m square is the 100-cell
#: grid of the PR-1 acceptance criterion.
DEFAULT_SIZES = ("paper", "square-6m", "square-12m")

_BENCH_SEED = 2016


@dataclass(frozen=True)
class StageTiming:
    """Batch-vs-loop wall time of one benchmark stage."""

    batch_s: float
    loop_s: float

    @property
    def speedup(self) -> float:
        if self.batch_s <= 0:
            return float("inf")
        return self.loop_s / self.batch_s

    def as_dict(self) -> Dict[str, float]:
        return {
            "batch_s": self.batch_s,
            "loop_s": self.loop_s,
            "speedup": self.speedup,
        }


def bench_spec(size: str) -> ScenarioSpec:
    """Scenario spec for a named benchmark size.

    Any registered scenario name works (``warehouse``, ``atrium``, …), plus
    the generic ``square-<edge>m`` pattern — the bench rows carry the
    resolved scenario name so cross-environment runs stay attributable.
    """
    try:
        return get_scenario_spec(size)
    except KeyError as error:
        raise ValueError(str(error)) from None


def build_bench_deployment(size: str) -> Deployment:
    """Deployment for a named benchmark size."""
    return build_deployment(bench_spec(size).geometry)


def _best_of(fn: Callable[[], object], repeat: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _host_metadata() -> Dict[str, object]:
    """Host facts stamped into every benchmark section.

    Throughput numbers from a 1-core CI container and a 16-core
    workstation are not comparable; recording ``cpu_count`` and the
    platform string next to every section keeps the committed
    ``BENCH_*`` trajectory attributable to the host that produced it.
    """
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
    }


def _timed_singles(
    call: Callable[[object], object], frames: Sequence[object]
) -> List[float]:
    """Per-query wall times for one sequential pass over ``frames``."""
    latencies: List[float] = []
    for frame in frames:
        start = time.perf_counter()
        call(frame)
        latencies.append(time.perf_counter() - start)
    return latencies


def bench_size(
    size: str,
    *,
    frames: int = 500,
    samples_per_cell: int = 10,
    repeat: int = 3,
    seed: int = _BENCH_SEED,
) -> Dict[str, object]:
    """Benchmark one scenario/size; returns a plain-data record."""
    spec = bench_spec(size)
    scenario: Scenario = build_scenario(spec.with_seed(seed))
    deployment = scenario.deployment
    protocol = CollectionProtocol(
        samples_per_cell=samples_per_cell, empty_room_samples=10
    )

    # --- simulation: full commissioning survey, batch vs per-cell loop ---
    # Both sides get the same best-of treatment so warm-up noise cannot
    # inflate the reported speedup.
    survey = StageTiming(
        batch_s=_best_of(
            lambda: RssCollector(
                scenario, protocol, seed=1, vectorized=True
            ).collect_full_survey(0.0),
            repeat,
        ),
        loop_s=_best_of(
            lambda: RssCollector(
                scenario, protocol, seed=1, vectorized=False
            ).collect_full_survey(0.0),
            repeat,
        ),
    )

    # --- reconstruction: LoLi-IR update, legacy vs fast, cold vs warm ---
    def updates(warm_start: bool, solver: Optional[LoliIrConfig] = None) -> List[int]:
        config = TafLocConfig(
            reconstruction=ReconstructionConfig(
                warm_start=warm_start,
                solver=solver if solver is not None else LoliIrConfig(),
            )
        )
        system = TafLoc(
            RssCollector(scenario, protocol, seed=2), config, seed=3
        )
        system.commission(0.0)
        iterations = []
        # A high-frequency refresh loop: 6-hourly updates, the regime the
        # warm start is built for.
        for step in range(4):
            report = system.update(30.0 + 0.25 * step)
            iterations.append(report.reconstruction.solver_result.iterations)
        return iterations

    start = time.perf_counter()
    legacy_iterations = updates(False, LEGACY_SOLVER)
    legacy_cold_s = time.perf_counter() - start
    start = time.perf_counter()
    cold_iterations = updates(False)
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    warm_iterations = updates(True)
    warm_s = time.perf_counter() - start
    # Coupled-solver cross-check: the cached-splu direct backend vs the
    # default PCG on the same refresh loop (the PR-3 measurement that
    # settled "auto" on PCG — keep recording both so a future structural
    # change that flips the balance shows up in the committed numbers).
    start = time.perf_counter()
    updates(False, LoliIrConfig(coupled_solver="direct"))
    direct_cold_s = time.perf_counter() - start

    # --- serving: trace-level matching, batch vs per-frame loop ---------
    workload_rng = counter_stream(seed, 1)
    cells = workload_rng.integers(0, deployment.cell_count, size=frames)
    collector = RssCollector(scenario, protocol, seed=4)
    result = collector.collect_full_survey(0.0)
    fingerprint = FingerprintMatrix(
        values=result.survey.matrix, empty_rss=result.survey.empty_rss
    )
    trace = collector.live_trace(0.0, cells)
    matcher = KnnMatcher(fingerprint, deployment.grid)
    batch_out = matcher.match_batch(trace.rss)
    loop_out = [matcher.match(frame) for frame in trace.rss]
    for index, single in enumerate(loop_out):
        if int(batch_out.cells[index]) == single.cell:
            continue
        # Quantized RSS makes exact distance ties possible; batch-of-N and
        # batch-of-1 BLAS rounding may break such a tie differently. Either
        # winner is correct — only a genuine score gap is a disagreement.
        gap = abs(
            batch_out.scores[index][int(batch_out.cells[index])]
            - batch_out.scores[index][single.cell]
        )
        if gap > 1e-6:
            raise AssertionError(
                f"batch and per-frame matching disagree on frame {index}"
            )
    matching = StageTiming(
        batch_s=_best_of(lambda: matcher.match_batch(trace.rss), repeat),
        loop_s=_best_of(
            lambda: [matcher.match(frame) for frame in trace.rss], repeat
        ),
    )

    return {
        "scenario": spec.name,
        "links": deployment.link_count,
        "cells": deployment.cell_count,
        "frames": int(frames),
        "samples_per_cell": int(samples_per_cell),
        "survey": survey.as_dict(),
        "solve": {
            "cold_s": cold_s,
            "warm_s": warm_s,
            "legacy_cold_s": legacy_cold_s,
            "coupled_direct_s": direct_cold_s,
            "speedup": legacy_cold_s / cold_s if cold_s > 0 else float("inf"),
            "cold_iterations": cold_iterations,
            "warm_iterations": warm_iterations,
            "legacy_iterations": legacy_iterations,
            "warm_le_cold": all(
                w <= c for w, c in zip(warm_iterations, cold_iterations)
            ),
        },
        "match_trace": matching.as_dict(),
    }


def _fig3_identical(a, b) -> bool:
    return all(
        x.day == y.day
        and np.array_equal(x.errors, y.errors)
        and x.mean_error == y.mean_error
        and x.stale_mean_error == y.stale_mean_error
        and x.oracle_mean_error == y.oracle_mean_error
        for x, y in zip(a, b)
    )


def _fig5_identical(a, b) -> bool:
    return set(a.errors) == set(b.errors) and all(
        np.array_equal(a.errors[name], b.errors[name]) for name in a.errors
    )


def bench_engine(
    *,
    jobs: int = 2,
    seed: int = _BENCH_SEED,
    fig3_days: Sequence[float] = (3.0, 15.0, 45.0, 90.0),
    fig5_day: float = 90.0,
    scenario: Union[str, ScenarioSpec] = "paper",
) -> Dict[str, object]:
    """Benchmark the figure experiments end-to-end through the engine.

    Three configurations per figure, on ``scenario`` (a registry name or a
    :class:`~repro.sim.specs.ScenarioSpec`, e.g. one loaded from a user's
    ``--scenario-file``):

    * ``legacy_s`` — the PR-1 code path: matrix-free CG solver, serial loop.
    * ``serial_s`` — fast solver, engine with ``jobs=1``.
    * ``parallel_s`` — fast solver, engine with ``jobs`` workers. One
      persistent engine serves *both* figures, so the pool starts once and
      the second figure measures the amortized regime; on a single-core
      host this is serial time plus residual overhead, on a multi-core
      host it scales with the core count.

    ``speedup`` is what a PR-1 user gains by upgrading and passing
    ``--jobs``: ``legacy_s / parallel_s``. ``bit_identical`` asserts the
    acceptance contract that parallel results equal serial results exactly.
    Caching is disabled so every configuration does full work.
    """
    legacy_config = TafLocConfig(
        reconstruction=ReconstructionConfig(solver=LEGACY_SOLVER)
    )

    def run_fig3(engine, config=None):
        return run_fig3_reconstruction_error(
            days=fig3_days, seed=seed, config=config, engine=engine,
            scenario_spec=scenario,
        )

    def run_fig5(engine, config=None):
        return run_fig5_localization(
            day=fig5_day, seed=seed, config=config, engine=engine,
            scenario_spec=scenario,
        )

    scenario_name = (
        scenario if isinstance(scenario, str) else scenario.name
    )
    record: Dict[str, object] = {"jobs": int(jobs), "scenario": scenario_name}
    with ExperimentEngine(jobs=jobs, cache=False) as parallel_engine:
        for name, runner, legacy_kwargs, identical in (
            ("fig3", run_fig3, {"config": legacy_config}, _fig3_identical),
            ("fig5", run_fig5, {"config": legacy_config}, _fig5_identical),
        ):
            start = time.perf_counter()
            runner(ExperimentEngine(jobs=1, cache=False), **legacy_kwargs)
            legacy_s = time.perf_counter() - start
            start = time.perf_counter()
            serial = runner(ExperimentEngine(jobs=1, cache=False))
            serial_s = time.perf_counter() - start
            start = time.perf_counter()
            parallel = runner(parallel_engine)
            parallel_s = time.perf_counter() - start
            record[name] = {
                "legacy_s": legacy_s,
                "serial_s": serial_s,
                "parallel_s": parallel_s,
                "speedup": legacy_s / parallel_s if parallel_s > 0 else float("inf"),
                "bit_identical": bool(identical(serial, parallel)),
            }
        record["pools_created"] = parallel_engine.stats.pools_created
    return record


def bench_serving(
    *,
    sites: Sequence[str] = DEFAULT_SIZES,
    frames: int = 500,
    samples_per_cell: int = 10,
    repeat: int = 3,
    seed: int = _BENCH_SEED,
) -> Dict[str, object]:
    """Benchmark the multi-site serving layer (queries/sec).

    One :class:`~repro.serve.service.LocalizationService` holds every site.
    Per site:

    * ``cold_first_query_s`` — a fresh service answering its first query:
      pipeline materialization + commissioning survey + matcher build.
    * ``warm_batch_qps`` / ``warm_single_qps`` — steady-state throughput of
      the batch entry point and of the per-query path (which rides the
      epoch-keyed matcher cache).
    * ``rebuild_single_qps`` — the per-query path with
      ``matcher_for_day(refresh=True)``, i.e. the pre-PR4 behavior of
      rebuilding the matcher on every call; ``matcher_cache_speedup`` is
      what the cache bugfix buys on the warm single-query path.
    * ``bit_identical`` — service answers equal a standalone
      :class:`~repro.core.pipeline.TafLoc` built with the same derived
      seeds (:func:`repro.serve.manager.pipeline_seed` /
      :func:`~repro.serve.manager.reconstructor_seed`).

    ``multi_site`` then measures one process serving *all* sites: a
    round-robin single-query mix and per-site batches back to back.
    """
    protocol = CollectionProtocol(
        samples_per_cell=samples_per_cell, empty_room_samples=10
    )
    specs = {name: bench_spec(name) for name in sites}
    service = LocalizationService.from_specs(
        specs, protocol=protocol, seed=seed
    )
    record: Dict[str, object] = {
        "sites": list(sites),
        "frames": int(frames),
        "samples_per_cell": int(samples_per_cell),
        "per_site": {},
    }
    traces = {}
    for index, (site, spec) in enumerate(specs.items()):
        # Cold start: a fresh single-site service timed through its first
        # query (materialize + commission + matcher build).
        fresh = LocalizationService.from_specs(
            {site: spec}, protocol=protocol, seed=seed
        )
        scenario = cached_scenario(spec, build_scenario)
        workload_cells = counter_stream(seed, 100 + index).integers(
            0, scenario.deployment.cell_count, size=frames
        )
        trace = RssCollector(
            scenario, protocol, seed=task_key(seed, "serving-workload", site)
        ).live_trace(0.0, workload_cells)
        traces[site] = trace
        start = time.perf_counter()
        fresh.query(site, trace.rss[0], 0.0)
        cold_first_query_s = time.perf_counter() - start

        service.warm([site])
        system = service.pipeline(site)
        direct = TafLoc(
            RssCollector(
                cached_scenario(spec, build_scenario),
                protocol,
                seed=pipeline_seed(spec, seed),
            ),
            seed=reconstructor_seed(spec, seed),
        )
        direct.commission(0.0)
        served = service.query_batch(site, trace.rss, 0.0)
        reference = direct.localize_trace(trace)
        bit_identical = bool(
            np.array_equal(served.cells, reference.cells)
            and np.array_equal(served.positions, reference.positions)
        )

        batch_s = _best_of(
            lambda: service.query_batch(site, trace.rss, 0.0), repeat
        )
        singles = trace.rss[: min(frames, 200)]
        single_s = _best_of(
            lambda: [service.query(site, frame, 0.0) for frame in singles],
            repeat,
        )
        rebuild_s = _best_of(
            lambda: [
                system.matcher_for_day(0.0, refresh=True).match(frame)
                for frame in singles
            ],
            repeat,
        )
        record["per_site"][site] = {
            "scenario": spec.name,
            "links": scenario.deployment.link_count,
            "cells": scenario.deployment.cell_count,
            "cold_first_query_s": cold_first_query_s,
            "warm_batch_qps": frames / batch_s if batch_s > 0 else float("inf"),
            "warm_single_qps": (
                len(singles) / single_s if single_s > 0 else float("inf")
            ),
            "rebuild_single_qps": (
                len(singles) / rebuild_s if rebuild_s > 0 else float("inf")
            ),
            "matcher_cache_speedup": (
                rebuild_s / single_s if single_s > 0 else float("inf")
            ),
            "bit_identical": bit_identical,
        }

    # One process, every site: round-robin singles and back-to-back batches.
    site_list = list(specs)
    mix = []
    for index in range(min(frames, 200)):
        site = site_list[index % len(site_list)]
        trace = traces[site]
        mix.append((site, trace.rss[index % trace.frame_count]))
    mixed_s = _best_of(
        lambda: [service.query(site, frame, 0.0) for site, frame in mix],
        repeat,
    )
    batches_s = _best_of(
        lambda: [
            service.query_batch(site, traces[site].rss, 0.0)
            for site in site_list
        ],
        repeat,
    )
    total_frames = sum(traces[site].frame_count for site in site_list)
    record["multi_site"] = {
        "interleaved_single_qps": (
            len(mix) / mixed_s if mixed_s > 0 else float("inf")
        ),
        "batch_qps": total_frames / batches_s if batches_s > 0 else float("inf"),
        "pipelines_built": service.manager.stats.pipelines_built,
    }
    return record


def bench_frontend(
    *,
    sites: Sequence[str] = ("paper", "square-6m"),
    frames: int = 500,
    samples_per_cell: int = 10,
    repeat: int = 3,
    seed: int = _BENCH_SEED,
    shard_counts: Sequence[int] = (1, 2),
    singles: int = 100,
) -> Dict[str, object]:
    """Benchmark the wire front-end and the shard layer.

    Three comparisons, all on the same per-site workloads:

    * **wire vs in-process** — the HTTP and unix-socket transports answer
      the same single queries and batches as direct
      :class:`~repro.serve.service.LocalizationService` calls;
      ``wire_overhead_x`` is in-process single-query throughput over HTTP
      single-query throughput (i.e. what one JSON round trip costs), and
      ``http_roundtrip_ms`` is the measured per-query wire latency.
    * **shard scaling** — a :class:`~repro.serve.shard.ShardedService`
      fans per-site batches out to ``n`` worker processes
      (:meth:`~repro.serve.shard.ShardedService.map_query_batch`);
      ``scaling_x`` is the fan-out throughput of ``n`` workers over 1
      worker (≈1 on a single core, → min(shards, cores, sites) on a
      multi-core host because workers own disjoint site sets).
    * **bit-identity** — every transport and every shard count must
      reproduce the in-process answers exactly; the smoke run gates CI
      on these flags.
    """
    protocol = CollectionProtocol(
        samples_per_cell=samples_per_cell, empty_room_samples=10
    )
    specs = {name: bench_spec(name) for name in sites}
    service = LocalizationService.from_specs(
        specs, protocol=protocol, seed=seed
    )
    service.warm()
    workloads: Dict[str, np.ndarray] = {}
    for index, (site, spec) in enumerate(specs.items()):
        scenario = cached_scenario(spec, build_scenario)
        cells = counter_stream(seed, 300 + index).integers(
            0, scenario.deployment.cell_count, size=frames
        )
        workloads[site] = RssCollector(
            scenario, protocol, seed=task_key(seed, "frontend-workload", site)
        ).live_trace(0.0, cells).rss
    reference = {
        site: service.query_batch(site, rss, 0.0)
        for site, rss in workloads.items()
    }

    record: Dict[str, object] = {
        "sites": list(sites),
        "frames": int(frames),
        "singles": int(singles),
        "per_site": {},
        "shards": {},
    }

    def wire_rates(client) -> Dict[str, Dict[str, float]]:
        rates: Dict[str, Dict[str, float]] = {}
        for site, rss in workloads.items():
            wire = client.query_batch(site, rss, 0.0)  # warm-up + identity
            identical = bool(
                np.array_equal(wire.cells, reference[site].cells)
                and np.array_equal(wire.positions, reference[site].positions)
            )
            batch_s = _best_of(
                lambda: client.query_batch(site, rss, 0.0), repeat
            )
            head = rss[: min(frames, singles)]
            single_s = _best_of(
                lambda: [client.query(site, frame, 0.0) for frame in head],
                repeat,
            )
            latencies = _timed_singles(
                lambda frame: client.query(site, frame, 0.0), head
            )
            rates[site] = {
                "batch_qps": frames / batch_s if batch_s > 0 else float("inf"),
                "single_qps": (
                    len(head) / single_s if single_s > 0 else float("inf")
                ),
                "roundtrip_ms": 1000.0 * single_s / len(head),
                "latency": _latency_summary(latencies),
                "bit_identical": identical,
            }
        return rates

    # In-process baseline on identical workloads.
    for site, rss in workloads.items():
        batch_s = _best_of(lambda: service.query_batch(site, rss, 0.0), repeat)
        head = rss[: min(frames, singles)]
        single_s = _best_of(
            lambda: [service.query(site, frame, 0.0) for frame in head],
            repeat,
        )
        record["per_site"][site] = {
            "inproc_batch_qps": (
                frames / batch_s if batch_s > 0 else float("inf")
            ),
            "inproc_single_qps": (
                len(head) / single_s if single_s > 0 else float("inf")
            ),
            "inproc_latency": _latency_summary(
                _timed_singles(
                    lambda frame: service.query(site, frame, 0.0), head
                )
            ),
        }

    with HttpFrontend(service) as frontend:
        with ServiceClient(frontend.address) as client:
            for site, rates in wire_rates(client).items():
                row = record["per_site"][site]
                row["http_batch_qps"] = rates["batch_qps"]
                row["http_single_qps"] = rates["single_qps"]
                row["http_roundtrip_ms"] = rates["roundtrip_ms"]
                row["http_latency"] = rates["latency"]
                row["http_bit_identical"] = rates["bit_identical"]
                row["wire_overhead_x"] = (
                    row["inproc_single_qps"] / rates["single_qps"]
                    if rates["single_qps"] > 0
                    else float("inf")
                )

    with tempfile.TemporaryDirectory() as tmp:
        with UnixFrontend(service, str(Path(tmp) / "bench.sock")) as frontend:
            with ServiceClient(frontend.address) as client:
                for site, rates in wire_rates(client).items():
                    row = record["per_site"][site]
                    row["unix_batch_qps"] = rates["batch_qps"]
                    row["unix_single_qps"] = rates["single_qps"]
                    row["unix_roundtrip_ms"] = rates["roundtrip_ms"]
                    row["unix_latency"] = rates["latency"]
                    row["unix_bit_identical"] = rates["bit_identical"]

    # Shard scaling: fan the per-site batches out to n worker processes.
    requests = [(site, rss, 0.0) for site, rss in workloads.items()]
    total_frames = frames * len(workloads)
    base_qps: Optional[float] = None
    for count in shard_counts:
        with ShardedService(
            specs, shards=count, protocol=protocol, seed=seed
        ) as sharded:
            start = time.perf_counter()
            sharded.warm()
            warm_s = time.perf_counter() - start
            results = sharded.map_query_batch(requests)  # warm-up + identity
            identical = all(
                np.array_equal(result.cells, reference[site].cells)
                and np.array_equal(result.positions, reference[site].positions)
                for (site, _, _), result in zip(requests, results)
            )
            fanout_s = _best_of(
                lambda: sharded.map_query_batch(requests), repeat
            )
            qps = total_frames / fanout_s if fanout_s > 0 else float("inf")
            if base_qps is None:
                base_qps = qps
            record["shards"][str(count)] = {
                "warm_s": warm_s,
                "fanout_batch_qps": qps,
                "scaling_x": qps / base_qps if base_qps > 0 else float("inf"),
                "bit_identical": bool(identical),
            }
    return record


async def _aio_closed_loop(
    address: str,
    site: str,
    frames: np.ndarray,
    requests: int,
    connections: int,
    depth: int,
) -> Tuple[List[float], float]:
    """Closed-loop load driver for the asyncio front-end.

    ``connections`` persistent connections each keep up to ``depth``
    single queries in flight and issue ``requests`` requests; returns
    (per-request latencies in seconds, wall seconds). Latency is
    measured send-to-response per request — queueing behind the depth
    window is excluded, pipelined server time is not.
    """
    rows = [row.tolist() for row in np.asarray(frames, dtype=float)]
    latencies: List[float] = []

    async def one_connection(offset: int) -> None:
        async with AsyncServiceClient(address) as client:
            window = asyncio.Semaphore(depth)

            async def one_request(index: int) -> None:
                frame = rows[(offset + index) % len(rows)]
                async with window:
                    start = time.perf_counter()
                    await client.query(site, frame, 0.0)
                    latencies.append(time.perf_counter() - start)

            await asyncio.gather(*(one_request(i) for i in range(requests)))

    start = time.perf_counter()
    await asyncio.gather(
        *(one_connection(k * 37) for k in range(max(1, connections)))
    )
    return latencies, time.perf_counter() - start


async def _aio_pipeline_probe(
    address: str, site: str, frames: np.ndarray, day: float, depth: int
) -> List[object]:
    async with AsyncServiceClient(address) as client:
        return await client.pipeline_queries(site, frames, day, depth=depth)


async def _aio_trace_probe(
    address: str, site: str, frames: np.ndarray, chunk: int
) -> Tuple[object, int, float]:
    """Stream one trace; returns (result, peak message bytes, seconds)."""
    async with AsyncServiceClient(address) as client:
        client.reset_peak()
        start = time.perf_counter()
        result = await client.query_trace(site, frames, 0.0, chunk=chunk)
        return result, client.peak_message_bytes, time.perf_counter() - start


def bench_frontend_async(
    *,
    sites: Sequence[str] = ("paper", "square-6m"),
    frames: int = 500,
    samples_per_cell: int = 10,
    repeat: int = 3,
    seed: int = _BENCH_SEED,
    connections: Sequence[int] = (1, 2, 4),
    depth: int = 16,
    singles: int = 200,
    trace_multipliers: Sequence[int] = (1, 8),
    stream_chunk: int = 32,
) -> Dict[str, object]:
    """Benchmark the asyncio front-end (:class:`~repro.serve.aio.AioFrontend`).

    The closed-loop multi-connection driver: for each count ``c`` in
    ``connections``, ``c`` persistent :class:`AsyncServiceClient`
    connections each keep ``depth`` single queries in flight against one
    event-loop server, and every request's send-to-response latency is
    recorded — so each row reports p50/p95/p99/max alongside the
    sustained queries/sec (total requests over wall clock), not just a
    mean round trip. Baselines measured on the same host and workloads:
    in-process singles, the threaded PR-5 HTTP front-end
    (``speedup_vs_http_x`` is the PR-8 acceptance ratio), and the sync
    :class:`ServiceClient` over ``tcp://`` one request at a time (what
    pipelining alone buys over the shared NDJSON protocol).
    ``trace_streaming`` pushes a short and an N×-longer ``query_trace``
    through the chunked NDJSON path, gating bit-identity with the
    in-process answer and that the client's peak per-message bytes stay
    flat in trace length (``buffering_flat``).
    """
    protocol = CollectionProtocol(
        samples_per_cell=samples_per_cell, empty_room_samples=10
    )
    specs = {name: bench_spec(name) for name in sites}
    service = LocalizationService.from_specs(
        specs, protocol=protocol, seed=seed
    )
    service.warm()
    workloads: Dict[str, np.ndarray] = {}
    for index, (site, spec) in enumerate(specs.items()):
        scenario = cached_scenario(spec, build_scenario)
        cells = counter_stream(seed, 300 + index).integers(
            0, scenario.deployment.cell_count, size=frames
        )
        workloads[site] = RssCollector(
            scenario, protocol, seed=task_key(seed, "frontend-workload", site)
        ).live_trace(0.0, cells).rss
    heads = {
        site: rss[: min(frames, singles)] for site, rss in workloads.items()
    }

    record: Dict[str, object] = {
        "sites": list(sites),
        "frames": int(frames),
        "singles": int(singles),
        "depth": int(depth),
        "connections": [int(count) for count in connections],
        "per_site": {},
    }

    # In-process + threaded-HTTP baselines on identical workloads; the
    # HTTP number is the same-host PR-5 figure the aio speedup is
    # measured against.
    for site, head in heads.items():
        single_s = _best_of(
            lambda: [service.query(site, frame, 0.0) for frame in head],
            repeat,
        )
        record["per_site"][site] = {
            "inproc_single_qps": (
                len(head) / single_s if single_s > 0 else float("inf")
            ),
        }
    with HttpFrontend(service) as frontend:
        with ServiceClient(frontend.address) as client:
            for site, head in heads.items():
                client.query(site, head[0], 0.0)  # warm up the connection
                single_s = _best_of(
                    lambda: [client.query(site, frame, 0.0) for frame in head],
                    repeat,
                )
                row = record["per_site"][site]
                row["http_single_qps"] = (
                    len(head) / single_s if single_s > 0 else float("inf")
                )
                row["http_latency"] = _latency_summary(
                    _timed_singles(
                        lambda frame: client.query(site, frame, 0.0), head
                    )
                )

    max_sustained = 0.0
    with AioFrontend(service) as frontend:
        address = frontend.address
        # Sync one-at-a-time over the same NDJSON/TCP path: separates
        # protocol cost from what pipelining buys on top.
        with ServiceClient(address) as client:
            for site, head in heads.items():
                client.query(site, head[0], 0.0)  # warm up the connection
                single_s = _best_of(
                    lambda: [client.query(site, frame, 0.0) for frame in head],
                    repeat,
                )
                record["per_site"][site]["aio_sync_single_qps"] = (
                    len(head) / single_s if single_s > 0 else float("inf")
                )

        for site, head in heads.items():
            row = record["per_site"][site]
            # Identity gate: pipelined answers (out-of-order completion,
            # matched by request id) equal sequential in-process singles.
            wire = asyncio.run(
                _aio_pipeline_probe(address, site, head, 0.0, depth)
            )
            singles_ref = [service.query(site, frame, 0.0) for frame in head]
            row["bit_identical"] = bool(
                all(
                    one.cell == int(ref.cell)
                    and one.position
                    == (float(ref.position.x), float(ref.position.y))
                    and one.score == float(ref.scores[ref.cell])
                    for one, ref in zip(wire, singles_ref)
                )
            )
            row["pipelined"] = {}
            for count in connections:
                best_qps, best_latencies = 0.0, [0.0]
                for _ in range(max(1, repeat)):
                    latencies, wall = asyncio.run(
                        _aio_closed_loop(
                            address, site, head, len(head), count, depth
                        )
                    )
                    qps = len(latencies) / wall if wall > 0 else float("inf")
                    if qps > best_qps:
                        best_qps, best_latencies = qps, latencies
                row["pipelined"][str(count)] = {
                    "connections": int(count),
                    "depth": int(depth),
                    "sustained_qps": best_qps,
                    "latency": _latency_summary(best_latencies),
                }
                max_sustained = max(max_sustained, best_qps)
            best = max(
                pipe["sustained_qps"] for pipe in row["pipelined"].values()
            )
            row["aio_best_qps"] = best
            row["speedup_vs_http_x"] = (
                best / row["http_single_qps"]
                if row["http_single_qps"] > 0
                else float("inf")
            )
            top = row["pipelined"][str(max(connections))]
            row["wire_vs_inproc_x"] = (
                row["inproc_single_qps"] / top["sustained_qps"]
                if top["sustained_qps"] > 0
                else float("inf")
            )

        # Streamed query_trace: bit-identity + flat peak buffering. The
        # trace is localized in ONE backend call (chunking only the JSON
        # encoding), so the answer must match in-process exactly.
        site, rss = next(iter(workloads.items()))
        lengths: Dict[str, object] = {}
        peaks: List[int] = []
        for multiplier in trace_multipliers:
            trace = np.concatenate([rss] * max(1, multiplier), axis=0)
            reference = service.query_trace(
                site, LiveTrace(day=0.0, rss=trace)
            )
            streamed, peak, elapsed = asyncio.run(
                _aio_trace_probe(address, site, trace, stream_chunk)
            )
            identical = bool(
                np.array_equal(streamed.cells, reference.cells)
                and np.array_equal(streamed.positions, reference.positions)
            )
            peaks.append(int(peak))
            lengths[str(trace.shape[0])] = {
                "frames": int(trace.shape[0]),
                "peak_message_bytes": int(peak),
                "bit_identical": identical,
                "stream_s": elapsed,
                "frames_per_s": (
                    trace.shape[0] / elapsed if elapsed > 0 else float("inf")
                ),
            }
        record["trace_streaming"] = {
            "site": site,
            "chunk": int(stream_chunk),
            "lengths": lengths,
            # Flat buffering: peak per-message bytes is set by the chunk
            # size, not the trace length.
            "buffering_flat": bool(max(peaks) <= 2 * min(peaks)),
        }

    record["max_sustained_qps"] = max_sustained
    return record


def _latency_summary(latencies_s: Sequence[float]) -> Dict[str, float]:
    if not latencies_s:
        return {"count": 0}
    arr = np.asarray(latencies_s, dtype=float) * 1000.0
    return {
        "count": int(arr.size),
        "p50_ms": float(np.percentile(arr, 50)),
        "p95_ms": float(np.percentile(arr, 95)),
        "p99_ms": float(np.percentile(arr, 99)),
        "max_ms": float(arr.max()),
        "mean_ms": float(arr.mean()),
    }


def bench_resilience(
    *,
    sites: Sequence[str] = ("square-3m", "square-4m", "square-5m"),
    shards: int = 3,
    replicas: int = 2,
    frames: int = 24,
    samples_per_cell: int = 2,
    operations: int = 30,
    seed: int = _BENCH_SEED,
    recovery_timeout_s: float = 120.0,
) -> Dict[str, object]:
    """Benchmark the fleet's fault tolerance: kill a worker, count losses.

    The measurement behind the PR-6 acceptance claims, all on one
    snapshot-backed :class:`~repro.serve.shard.ShardedService` fleet
    (``shards`` workers, R = ``replicas``):

    * **failed / mismatched queries** — a round-robin ``query_batch``
      workload runs before, immediately after a seed-scheduled
      (:class:`~repro.serve.faults.FaultSchedule`) ``kill -9`` of a
      worker, and again after recovery; every answer is checked
      bit-for-bit against an undisturbed in-process service. With
      R >= 2 the target is zero failures and zero mismatches in every
      phase.
    * **recovery** — wall time from the SIGKILL to the victim answering
      again, plus how many of its sites the respawn restored from
      snapshots (vs re-surveying).
    * **tail latency** — p50/p99 per phase, so the perturbation the
      failover + background respawn causes is a number, not a vibe.
    * **warm paths** — ``cold_warm_s`` (first fleet warm: full
      commissioning surveys) vs ``snapshot_warm_s`` (a second fleet over
      the same snapshot directory), the restore-vs-rebuild speedup a
      respawn rides.
    """
    protocol = CollectionProtocol(
        samples_per_cell=samples_per_cell, empty_room_samples=5
    )
    specs = {f"site-{name}": bench_spec(name) for name in sites}
    reference = LocalizationService.from_specs(
        specs, protocol=protocol, seed=seed, share_pipelines=False
    )
    reference.warm()
    workloads: Dict[str, np.ndarray] = {}
    for index, (site, spec) in enumerate(specs.items()):
        scenario = cached_scenario(spec, build_scenario)
        cells = counter_stream(seed, 500 + index).integers(
            0, scenario.deployment.cell_count, size=frames
        )
        workloads[site] = RssCollector(
            scenario,
            protocol,
            seed=task_key(seed, "resilience-workload", site),
        ).live_trace(0.0, cells).rss
    expected = {
        site: reference.query_batch(site, rss, 0.0)
        for site, rss in workloads.items()
    }
    site_list = list(specs)

    record: Dict[str, object] = {
        "sites": site_list,
        "shards": int(shards),
        "replicas": int(replicas),
        "frames": int(frames),
        "operations": int(operations),
    }

    with tempfile.TemporaryDirectory() as tmp:
        snapshot_dir = Path(tmp) / "snapshots"
        fleet = ShardedService(
            specs,
            shards=shards,
            replicas=replicas,
            snapshot_dir=snapshot_dir,
            call_timeout=60.0,
            protocol=protocol,
            seed=seed,
        )
        try:
            start = time.perf_counter()
            fleet.warm()
            record["cold_warm_s"] = time.perf_counter() - start

            def run_phase(count: int) -> Dict[str, object]:
                latencies: List[float] = []
                failed = 0
                mismatched = 0
                for op in range(count):
                    site = site_list[op % len(site_list)]
                    rss = workloads[site]
                    begin = time.perf_counter()
                    try:
                        result = fleet.query_batch(site, rss, 0.0)
                    except OSError:
                        failed += 1
                        continue
                    latencies.append(time.perf_counter() - begin)
                    if not (
                        np.array_equal(result.cells, expected[site].cells)
                        and np.array_equal(
                            result.positions, expected[site].positions
                        )
                    ):
                        mismatched += 1
                return {
                    "failed_queries": failed,
                    "mismatched_queries": mismatched,
                    "latency": _latency_summary(latencies),
                }

            record["before"] = run_phase(operations)

            schedule = FaultSchedule.generate(
                seed=seed, operations=operations, shards=shards, faults=1
            )
            victim = schedule.events[0].target
            injector = FaultInjector(fleet)
            killed_at = time.perf_counter()
            injector.kill(victim)
            record["victim_shard"] = int(victim)
            # Under load straight through the outage: with R >= 2 every
            # query fails over to a live replica and still answers.
            record["during"] = run_phase(operations)

            recovered = False
            deadline = time.monotonic() + recovery_timeout_s
            while time.monotonic() < deadline:
                fleet.health()  # the monitoring poll drives the respawn
                if fleet._shards[victim].alive():
                    recovered = True
                    break
                time.sleep(0.02)
            record["recovery_s"] = time.perf_counter() - killed_at
            record["recovered"] = bool(recovered)
            if recovered:
                worker_health = fleet._shards[victim].call("health")
                record["snapshots_restored"] = int(
                    worker_health["snapshots_restored"]
                )
            record["after"] = run_phase(operations)
            record["router_stats"] = {
                "failovers": fleet.router_stats.failovers,
                "timeouts": fleet.router_stats.timeouts,
                "respawns": fleet.router_stats.respawns,
                "respawn_failures": fleet.router_stats.respawn_failures,
            }
        finally:
            fleet.close()

        # A second fleet over the same snapshot directory: the warm that a
        # respawn rides, vs the cold commissioning surveys above.
        revived = ShardedService(
            specs,
            shards=shards,
            replicas=replicas,
            snapshot_dir=snapshot_dir,
            call_timeout=60.0,
            protocol=protocol,
            seed=seed,
        )
        try:
            start = time.perf_counter()
            revived.warm()
            record["snapshot_warm_s"] = time.perf_counter() - start
            record["snapshot_warm_restored"] = int(
                sum(
                    shard.call("health")["snapshots_restored"]
                    for shard in revived._shards
                )
            )
            record["snapshot_warm_bit_identical"] = bool(
                all(
                    np.array_equal(
                        revived.query_batch(site, rss, 0.0).cells,
                        expected[site].cells,
                    )
                    for site, rss in workloads.items()
                )
            )
        finally:
            revived.close()

    cold = record["cold_warm_s"]
    warm = record["snapshot_warm_s"]
    record["restore_speedup"] = cold / warm if warm > 0 else float("inf")
    record["zero_loss"] = bool(
        all(
            record[phase]["failed_queries"] == 0
            and record[phase]["mismatched_queries"] == 0
            for phase in ("before", "during", "after")
        )
    )
    return record


def bench_trust(
    *,
    sites: Sequence[str] = ("square-3m", "square-4m"),
    shards: int = 3,
    replicas: int = 2,
    frames: int = 24,
    operations: int = 20,
    samples_per_cell: int = 2,
    soak_days: int = 8,
    snapshot_keep: int = 2,
    seed: int = _BENCH_SEED,
) -> Dict[str, object]:
    """Benchmark the anti-entropy trust layer (the PR-7 sections).

    * **quorum overhead** — the same workload through a failover fleet
      and a quorum fleet over identical snapshots: what cross-checking
      every read against all replicas costs in p50/p99 and q/s.
    * **corruption episode** — a seed-deterministic bit flip in one
      replica's fingerprint state, then the workload: wall time until
      the divergence is detected and the liar repaired, with the
      mismatched-answer count clients saw (the target is zero), plus a
      clean-scrub pass time for scale.
    * **snapshot soak** — ``soak_days`` of daily update + lifecycle
      maintenance under keep-last-``snapshot_keep``: max files on disk,
      prune totals, final directory bytes — the boundedness record the
      PR-7 acceptance criterion points at.
    * **drift sentinel** — one measured-drift probe per site: reading
      and wall time (what a ``policy="drift"`` scheduler tick pays).
    """
    protocol = CollectionProtocol(
        samples_per_cell=samples_per_cell, empty_room_samples=5
    )
    specs = {f"site-{name}": bench_spec(name) for name in sites}
    reference = LocalizationService.from_specs(
        specs, protocol=protocol, seed=seed, share_pipelines=False
    )
    reference.warm()
    workloads: Dict[str, np.ndarray] = {}
    for index, (site, spec) in enumerate(specs.items()):
        scenario = cached_scenario(spec, build_scenario)
        cells = counter_stream(seed, 700 + index).integers(
            0, scenario.deployment.cell_count, size=frames
        )
        workloads[site] = RssCollector(
            scenario,
            protocol,
            seed=task_key(seed, "trust-workload", site),
        ).live_trace(0.0, cells).rss
    expected = {
        site: reference.query_batch(site, rss, 0.0)
        for site, rss in workloads.items()
    }
    site_list = list(specs)

    record: Dict[str, object] = {
        "sites": site_list,
        "shards": int(shards),
        "replicas": int(replicas),
        "frames": int(frames),
        "operations": int(operations),
    }

    def run_phase(fleet: ShardedService, count: int) -> Dict[str, object]:
        latencies: List[float] = []
        failed = 0
        mismatched = 0
        for op in range(count):
            site = site_list[op % len(site_list)]
            rss = workloads[site]
            begin = time.perf_counter()
            try:
                result = fleet.query_batch(site, rss, 0.0)
            except OSError:
                failed += 1
                continue
            latencies.append(time.perf_counter() - begin)
            if not (
                np.array_equal(result.cells, expected[site].cells)
                and np.array_equal(
                    result.positions, expected[site].positions
                )
            ):
                mismatched += 1
        return {
            "failed_queries": failed,
            "mismatched_queries": mismatched,
            "latency": _latency_summary(latencies),
        }

    for read_mode in ("failover", "quorum"):
        with tempfile.TemporaryDirectory() as tmp:
            fleet = ShardedService(
                specs,
                shards=shards,
                replicas=replicas,
                snapshot_dir=Path(tmp) / "snapshots",
                read_mode=read_mode,
                call_timeout=60.0,
                protocol=protocol,
                seed=seed,
            )
            try:
                fleet.warm()
                record[read_mode] = run_phase(fleet, operations)
                if read_mode == "quorum":
                    # The corruption episode, on the quorum fleet.
                    injector = FaultInjector(fleet)
                    target = site_list[0]
                    begin = time.perf_counter()
                    injector.corrupt(
                        fleet.replicas[target][0], site=target, seed=seed
                    )
                    episode = run_phase(fleet, operations)
                    record["corruption_episode"] = {
                        **episode,
                        "detect_and_repair_s": time.perf_counter() - begin,
                        "read_divergences": fleet.router_stats.read_divergences,
                        "quarantines": fleet.router_stats.quarantines,
                        "repairs": fleet.router_stats.repairs,
                    }
                    begin = time.perf_counter()
                    scrub = fleet.scrub()
                    record["scrub"] = {
                        "pass_s": time.perf_counter() - begin,
                        "sites_checked": scrub["sites_checked"],
                        "divergent_sites": scrub["divergent_sites"],
                    }
            finally:
                fleet.close()
    failover_p50 = record["failover"]["latency"].get("p50_ms", 0.0)
    quorum_p50 = record["quorum"]["latency"].get("p50_ms", 0.0)
    record["quorum_overhead_x"] = (
        quorum_p50 / failover_p50 if failover_p50 > 0 else float("inf")
    )

    # Snapshot-lifecycle soak: the directory must stay bounded.
    with tempfile.TemporaryDirectory() as tmp:
        soak = LocalizationService.from_specs(
            {site_list[0]: specs[site_list[0]]},
            protocol=protocol,
            seed=seed,
            snapshot_dir=tmp,
            snapshot_keep=snapshot_keep,
        )
        soak.warm()
        store = soak.manager.snapshot_store
        max_files = 0
        for day in range(1, soak_days + 1):
            soak.update(site_list[0], float(day))
            maintenance = soak.manager.snapshot_maintenance()
            max_files = max(max_files, len(store.files()))
        record["snapshot_soak"] = {
            "days": int(soak_days),
            "keep_last": int(snapshot_keep),
            "max_files_on_disk": int(max_files),
            "files_pruned": int(store.pruned_files),
            "bytes_reclaimed": int(store.pruned_bytes),
            "final_bytes": int(maintenance["total_bytes"]),
            "bounded": bool(max_files <= snapshot_keep),
        }

    # Drift sentinel: the cost and reading of one measured-drift probe.
    drift: Dict[str, object] = {}
    for site in site_list:
        begin = time.perf_counter()
        reading = reference.drift(site, 0.0, frames=frames)
        drift[site] = {
            "probe_s": time.perf_counter() - begin,
            "degradation_m": float(reading["degradation_m"]),
        }
    record["drift"] = drift
    return record


def run_perf_bench(
    *,
    sizes: Sequence[str] = DEFAULT_SIZES,
    frames: int = 500,
    samples_per_cell: int = 10,
    repeat: int = 3,
    seed: int = _BENCH_SEED,
    out_path: Optional[Union[str, Path]] = None,
    engine_jobs: Optional[int] = None,
    engine_scenario: Union[str, ScenarioSpec] = "paper",
    serving_sites: Optional[Sequence[str]] = None,
    frontend_sites: Optional[Sequence[str]] = None,
    frontend_shards: Sequence[int] = (1, 2),
    frontend_async_sites: Optional[Sequence[str]] = None,
    frontend_async_connections: Sequence[int] = (1, 2, 4),
    resilience_sites: Optional[Sequence[str]] = None,
    resilience_replicas: int = 2,
    resilience_shards: int = 3,
    trust_sites: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Run the benchmark over ``sizes``; optionally write the JSON report.

    ``sizes`` accepts any registered scenario name (plus ``square-<edge>m``),
    and each row records the resolved scenario. ``engine_jobs`` additionally
    runs the end-to-end figure/engine benchmark with that worker count on
    ``engine_scenario`` (``None`` skips it — the unit-test path).
    ``serving_sites`` additionally runs the multi-site serving benchmark
    over those scenario names (``None`` skips it). ``frontend_sites``
    additionally runs the wire/shard front-end benchmark
    (:func:`bench_frontend`) over those names with ``frontend_shards``
    worker counts (``None`` skips it). ``frontend_async_sites``
    additionally runs the asyncio front-end benchmark
    (:func:`bench_frontend_async`): the closed-loop pipelined driver
    over ``frontend_async_connections`` connection counts plus the
    streamed-``query_trace`` gates (``None`` skips it). Every section
    of the report carries the :func:`_host_metadata` stamp
    (``cpu_count``, platform) so committed numbers stay attributable
    to the host that produced them. ``resilience_sites`` additionally
    runs the fault-tolerance benchmark (:func:`bench_resilience`) on a
    ``resilience_shards``-worker, R = ``resilience_replicas`` fleet
    (``None`` skips it). ``trust_sites`` additionally runs the
    anti-entropy trust benchmark (:func:`bench_trust`): quorum-read
    overhead, the corruption detect-and-repair episode, the snapshot
    retention soak, and the drift-sentinel probe cost (``None`` skips
    it).
    """
    host = _host_metadata()
    report: Dict[str, object] = {
        "benchmark": "bench_perf",
        "seed": int(seed),
        "environment": dict(host, numpy=np.__version__),
        "sizes": {},
    }
    for size in sizes:
        report["sizes"][size] = bench_size(
            size,
            frames=frames,
            samples_per_cell=samples_per_cell,
            repeat=repeat,
            seed=seed,
        )
    if engine_jobs is not None:
        report["engine"] = bench_engine(
            jobs=engine_jobs, seed=seed, scenario=engine_scenario
        )
    if serving_sites is not None:
        report["serving"] = bench_serving(
            sites=serving_sites,
            frames=frames,
            samples_per_cell=samples_per_cell,
            repeat=repeat,
            seed=seed,
        )
    if frontend_sites is not None:
        report["frontend"] = bench_frontend(
            sites=frontend_sites,
            frames=frames,
            samples_per_cell=samples_per_cell,
            repeat=repeat,
            seed=seed,
            shard_counts=frontend_shards,
        )
    if frontend_async_sites is not None:
        report["frontend_async"] = bench_frontend_async(
            sites=frontend_async_sites,
            frames=frames,
            samples_per_cell=samples_per_cell,
            repeat=repeat,
            seed=seed,
            connections=frontend_async_connections,
        )
    if resilience_sites is not None:
        report["resilience"] = bench_resilience(
            sites=resilience_sites,
            shards=resilience_shards,
            replicas=resilience_replicas,
            samples_per_cell=samples_per_cell,
            seed=seed,
        )
    if trust_sites is not None:
        report["trust"] = bench_trust(
            sites=trust_sites,
            samples_per_cell=samples_per_cell,
            seed=seed,
        )
    # Stamp host facts into every section (satellite of PR-8): each
    # section may end up compared across machines, so each carries its
    # own provenance, not just the top-level environment.
    for size_record in report["sizes"].values():
        size_record["host"] = dict(host)
    for section in (
        "engine",
        "serving",
        "frontend",
        "frontend_async",
        "resilience",
        "trust",
    ):
        if section in report:
            report[section]["host"] = dict(host)
    if out_path is not None:
        Path(out_path).write_text(json.dumps(report, indent=2) + "\n")
    return report


def format_bench_report(report: Dict[str, object]) -> str:
    """Human-readable summary of a :func:`run_perf_bench` report."""
    lines = ["bench_perf: fast vs reference wall time (best-of runs)"]
    header = (
        f"{'size':<12} {'links':>5} {'cells':>6} "
        f"{'survey x':>9} {'match x':>8} {'solve x':>8} "
        f"{'cold/warm [s]':>14}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for size, record in report["sizes"].items():
        survey = record["survey"]
        match = record["match_trace"]
        solve = record["solve"]
        lines.append(
            f"{size:<12} {record['links']:>5} {record['cells']:>6} "
            f"{survey['speedup']:>9.1f} {match['speedup']:>8.1f} "
            f"{solve.get('speedup', float('nan')):>8.1f} "
            f"{solve['cold_s']:>7.2f}/{solve['warm_s']:.2f}"
        )
    engine = report.get("engine")
    if engine:
        lines.append("")
        lines.append(
            f"figure experiments through the engine (jobs={engine['jobs']}, "
            f"scenario={engine.get('scenario', 'paper')}, one shared pool):"
        )
        for name in ("fig3", "fig5"):
            record = engine[name]
            identical = "bit-identical" if record["bit_identical"] else "MISMATCH"
            lines.append(
                f"  {name}: legacy {record['legacy_s']:.2f}s -> serial "
                f"{record['serial_s']:.2f}s -> parallel {record['parallel_s']:.2f}s "
                f"({record['speedup']:.1f}x vs legacy, {identical})"
            )
    serving = report.get("serving")
    if serving:
        lines.append("")
        lines.append(
            f"serving layer ({len(serving['sites'])} site(s), "
            f"{serving['frames']} frames/site, warm queries/sec):"
        )
        for site, row in serving["per_site"].items():
            identical = "bit-identical" if row["bit_identical"] else "MISMATCH"
            lines.append(
                f"  {site:<12} cold {row['cold_first_query_s']:.2f}s | "
                f"batch {row['warm_batch_qps']:,.0f} q/s | "
                f"single {row['warm_single_qps']:,.0f} q/s "
                f"(rebuild {row['rebuild_single_qps']:,.0f} q/s, "
                f"cache {row['matcher_cache_speedup']:.1f}x, {identical})"
            )
        multi = serving["multi_site"]
        lines.append(
            f"  all sites, one process: interleaved "
            f"{multi['interleaved_single_qps']:,.0f} q/s | batch "
            f"{multi['batch_qps']:,.0f} q/s "
            f"({multi['pipelines_built']} pipeline(s) built)"
        )
    frontend = report.get("frontend")
    if frontend:
        lines.append("")
        lines.append(
            f"wire front-end ({len(frontend['sites'])} site(s), "
            f"{frontend['frames']} frames/batch, "
            f"{frontend['singles']} single round trips):"
        )
        for site, row in frontend["per_site"].items():
            identical = (
                "bit-identical"
                if row.get("http_bit_identical")
                and row.get("unix_bit_identical")
                else "MISMATCH"
            )
            latency = row.get("http_latency", {})
            lines.append(
                f"  {site:<12} in-proc {row['inproc_single_qps']:,.0f} q/s | "
                f"http {row['http_single_qps']:,.0f} q/s "
                f"(p50/p95/p99 {latency.get('p50_ms', float('nan')):.2f}/"
                f"{latency.get('p95_ms', float('nan')):.2f}/"
                f"{latency.get('p99_ms', float('nan')):.2f} ms, "
                f"{row['wire_overhead_x']:.1f}x overhead) | "
                f"unix {row['unix_single_qps']:,.0f} q/s | "
                f"http batch {row['http_batch_qps']:,.0f} q/s ({identical})"
            )
        for count, row in frontend["shards"].items():
            identical = "bit-identical" if row["bit_identical"] else "MISMATCH"
            lines.append(
                f"  shards={count}: warm {row['warm_s']:.2f}s | fan-out "
                f"{row['fanout_batch_qps']:,.0f} q/s "
                f"({row['scaling_x']:.2f}x vs 1 worker, {identical})"
            )
    frontend_async = report.get("frontend_async")
    if frontend_async:
        lines.append("")
        lines.append(
            f"asyncio front-end ({len(frontend_async['sites'])} site(s), "
            f"pipeline depth {frontend_async['depth']}, closed-loop "
            f"{frontend_async['singles']} singles/connection):"
        )
        for site, row in frontend_async["per_site"].items():
            identical = (
                "bit-identical" if row.get("bit_identical") else "MISMATCH"
            )
            lines.append(
                f"  {site:<12} in-proc {row['inproc_single_qps']:,.0f} q/s | "
                f"http {row['http_single_qps']:,.0f} q/s | "
                f"aio sync {row['aio_sync_single_qps']:,.0f} q/s | "
                f"aio best {row['aio_best_qps']:,.0f} q/s "
                f"({row['speedup_vs_http_x']:.1f}x vs http, "
                f"{row['wire_vs_inproc_x']:.1f}x off in-proc, {identical})"
            )
            for count, pipe in row["pipelined"].items():
                latency = pipe["latency"]
                lines.append(
                    f"    conns={count}: {pipe['sustained_qps']:,.0f} q/s | "
                    f"p50/p95/p99 {latency.get('p50_ms', float('nan')):.2f}/"
                    f"{latency.get('p95_ms', float('nan')):.2f}/"
                    f"{latency.get('p99_ms', float('nan')):.2f} ms"
                )
        streaming = frontend_async.get("trace_streaming")
        if streaming:
            parts = " | ".join(
                f"{row['frames']} frames: peak {row['peak_message_bytes']} B, "
                f"{'ok' if row['bit_identical'] else 'MISMATCH'}"
                for row in streaming["lengths"].values()
            )
            flat = "FLAT" if streaming["buffering_flat"] else "GROWING"
            lines.append(
                f"  streamed trace ({streaming['site']}, chunk "
                f"{streaming['chunk']}): {parts} -> buffering {flat}"
            )
    resilience = report.get("resilience")
    if resilience:
        lines.append("")
        lines.append(
            f"resilience ({resilience['shards']} shards, "
            f"R={resilience['replicas']}, kill -9 of shard "
            f"{resilience.get('victim_shard', '?')} under load):"
        )
        for phase in ("before", "during", "after"):
            row = resilience[phase]
            latency = row["latency"]
            lines.append(
                f"  {phase:<7} failed {row['failed_queries']} | "
                f"mismatched {row['mismatched_queries']} | "
                f"p50 {latency.get('p50_ms', float('nan')):.1f} ms | "
                f"p99 {latency.get('p99_ms', float('nan')):.1f} ms"
            )
        restored = resilience.get("snapshots_restored", 0)
        lines.append(
            f"  recovery {resilience['recovery_s']:.2f}s "
            f"({restored} site(s) snapshot-restored) | warm cold "
            f"{resilience['cold_warm_s']:.2f}s vs snapshot "
            f"{resilience['snapshot_warm_s']:.2f}s "
            f"({resilience['restore_speedup']:.1f}x) | "
            f"{'ZERO LOSS' if resilience['zero_loss'] else 'QUERIES LOST'}"
        )
    trust = report.get("trust")
    if trust:
        lines.append("")
        lines.append(
            f"trust ({trust['shards']} shards, R={trust['replicas']}, "
            "anti-entropy):"
        )
        for mode in ("failover", "quorum"):
            latency = trust[mode]["latency"]
            lines.append(
                f"  {mode:<8} p50 "
                f"{latency.get('p50_ms', float('nan')):.1f} ms | p99 "
                f"{latency.get('p99_ms', float('nan')):.1f} ms | "
                f"mismatched {trust[mode]['mismatched_queries']}"
            )
        episode = trust["corruption_episode"]
        lines.append(
            f"  corrupt   quorum overhead {trust['quorum_overhead_x']:.2f}x"
            f" | episode {episode['detect_and_repair_s']:.2f}s | "
            f"{episode['read_divergences']} divergence(s), "
            f"{episode['repairs']} repair(s) | mismatched "
            f"{episode['mismatched_queries']}"
        )
        soak = trust["snapshot_soak"]
        lines.append(
            f"  soak      {soak['days']} d, keep {soak['keep_last']}: "
            f"max {soak['max_files_on_disk']} file(s), "
            f"{soak['files_pruned']} pruned, "
            f"{soak['final_bytes']} B final | "
            f"{'BOUNDED' if soak['bounded'] else 'UNBOUNDED'}"
        )
        probes = ", ".join(
            f"{site} {row['degradation_m']:.2f} m in {row['probe_s']:.2f}s"
            for site, row in trust["drift"].items()
        )
        lines.append(f"  drift     {probes}")
    return "\n".join(lines)
