"""Compatibility facade over the bench-section registry.

The 1600-line monolith this module used to be now lives in
:mod:`repro.eval.bench` as one module per registered section (``solve``,
``engine``, ``serving``, ``frontend``, ``frontend_async``,
``resilience``, ``trust``, ``loadgen``) over a shared
:class:`~repro.eval.bench.registry.BenchSection` registry.
Every public name keeps its historical import path —
``from repro.eval.benchmark import run_perf_bench`` et al. work
unchanged, and :func:`run_perf_bench`'s keyword surface (including the
``None``-skips contract) is preserved verbatim. New code should import
from :mod:`repro.eval.bench` directly.
"""

from __future__ import annotations

from repro.eval.bench import (
    BENCH_SEED,
    DEFAULT_SIZES,
    LEGACY_SOLVER,
    StageTiming,
    bench_engine,
    bench_frontend,
    bench_frontend_async,
    bench_loadgen,
    bench_resilience,
    bench_serving,
    bench_size,
    bench_spec,
    bench_trust,
    build_bench_deployment,
    format_bench_report,
    run_perf_bench,
)

__all__ = [
    "BENCH_SEED",
    "DEFAULT_SIZES",
    "LEGACY_SOLVER",
    "StageTiming",
    "bench_engine",
    "bench_frontend",
    "bench_frontend_async",
    "bench_loadgen",
    "bench_resilience",
    "bench_serving",
    "bench_size",
    "bench_spec",
    "bench_trust",
    "build_bench_deployment",
    "format_bench_report",
    "run_perf_bench",
]
