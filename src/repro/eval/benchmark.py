"""Performance benchmark harness for the batched hot paths.

Times the three production-critical operations — commissioning survey
(simulation), LoLi-IR solve (reconstruction), and trace-level matching
(serving) — on several deployment sizes, comparing the vectorized batch
implementations against their per-frame/per-cell loop references. The
results feed ``BENCH_PR1.json`` (committed trajectory point; see
``EXPERIMENTS.md``) and the ``tafloc-repro bench`` CLI command.

Run via ``make bench`` or ``python benchmarks/bench_perf.py``.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.fingerprint import FingerprintMatrix
from repro.core.matching import KnnMatcher
from repro.core.pipeline import TafLoc, TafLocConfig
from repro.core.reconstruction import ReconstructionConfig
from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.deployment import (
    Deployment,
    build_paper_deployment,
    build_square_deployment,
)
from repro.sim.scenario import build_paper_scenario
from repro.util.rng import counter_stream

#: Deployment sizes benchmarked by default; the 6 m square is the 100-cell
#: grid of the PR-1 acceptance criterion.
DEFAULT_SIZES = ("paper", "square-6m", "square-12m")

_BENCH_SEED = 2016


@dataclass(frozen=True)
class StageTiming:
    """Batch-vs-loop wall time of one benchmark stage."""

    batch_s: float
    loop_s: float

    @property
    def speedup(self) -> float:
        if self.batch_s <= 0:
            return float("inf")
        return self.loop_s / self.batch_s

    def as_dict(self) -> Dict[str, float]:
        return {
            "batch_s": self.batch_s,
            "loop_s": self.loop_s,
            "speedup": self.speedup,
        }


def build_bench_deployment(size: str) -> Deployment:
    """Deployment for a named benchmark size."""
    if size == "paper":
        return build_paper_deployment()
    if size.startswith("square-") and size.endswith("m"):
        edge = float(size[len("square-") : -1])
        return build_square_deployment(edge)
    raise ValueError(
        f"unknown benchmark size {size!r}; use 'paper' or 'square-<edge>m'"
    )


def _best_of(fn: Callable[[], object], repeat: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_size(
    size: str,
    *,
    frames: int = 500,
    samples_per_cell: int = 10,
    repeat: int = 3,
    seed: int = _BENCH_SEED,
) -> Dict[str, object]:
    """Benchmark one deployment size; returns a plain-data record."""
    deployment = build_bench_deployment(size)
    scenario = build_paper_scenario(seed=seed, deployment=deployment)
    protocol = CollectionProtocol(
        samples_per_cell=samples_per_cell, empty_room_samples=10
    )

    # --- simulation: full commissioning survey, batch vs per-cell loop ---
    # Both sides get the same best-of treatment so warm-up noise cannot
    # inflate the reported speedup.
    survey = StageTiming(
        batch_s=_best_of(
            lambda: RssCollector(
                scenario, protocol, seed=1, vectorized=True
            ).collect_full_survey(0.0),
            repeat,
        ),
        loop_s=_best_of(
            lambda: RssCollector(
                scenario, protocol, seed=1, vectorized=False
            ).collect_full_survey(0.0),
            repeat,
        ),
    )

    # --- reconstruction: LoLi-IR update, cold vs warm-started factors ---
    def updates(warm_start: bool) -> List[int]:
        config = TafLocConfig(
            reconstruction=ReconstructionConfig(warm_start=warm_start)
        )
        system = TafLoc(
            RssCollector(scenario, protocol, seed=2), config, seed=3
        )
        system.commission(0.0)
        iterations = []
        # A high-frequency refresh loop: 6-hourly updates, the regime the
        # warm start is built for.
        for step in range(4):
            report = system.update(30.0 + 0.25 * step)
            iterations.append(report.reconstruction.solver_result.iterations)
        return iterations

    start = time.perf_counter()
    cold_iterations = updates(False)
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    warm_iterations = updates(True)
    warm_s = time.perf_counter() - start

    # --- serving: trace-level matching, batch vs per-frame loop ---------
    workload_rng = counter_stream(seed, 1)
    cells = workload_rng.integers(0, deployment.cell_count, size=frames)
    collector = RssCollector(scenario, protocol, seed=4)
    result = collector.collect_full_survey(0.0)
    fingerprint = FingerprintMatrix(
        values=result.survey.matrix, empty_rss=result.survey.empty_rss
    )
    trace = collector.live_trace(0.0, cells)
    matcher = KnnMatcher(fingerprint, deployment.grid)
    batch_out = matcher.match_batch(trace.rss)
    loop_out = [matcher.match(frame) for frame in trace.rss]
    for index, single in enumerate(loop_out):
        if int(batch_out.cells[index]) == single.cell:
            continue
        # Quantized RSS makes exact distance ties possible; batch-of-N and
        # batch-of-1 BLAS rounding may break such a tie differently. Either
        # winner is correct — only a genuine score gap is a disagreement.
        gap = abs(
            batch_out.scores[index][int(batch_out.cells[index])]
            - batch_out.scores[index][single.cell]
        )
        if gap > 1e-6:
            raise AssertionError(
                f"batch and per-frame matching disagree on frame {index}"
            )
    matching = StageTiming(
        batch_s=_best_of(lambda: matcher.match_batch(trace.rss), repeat),
        loop_s=_best_of(
            lambda: [matcher.match(frame) for frame in trace.rss], repeat
        ),
    )

    return {
        "links": deployment.link_count,
        "cells": deployment.cell_count,
        "frames": int(frames),
        "samples_per_cell": int(samples_per_cell),
        "survey": survey.as_dict(),
        "solve": {
            "cold_s": cold_s,
            "warm_s": warm_s,
            "cold_iterations": cold_iterations,
            "warm_iterations": warm_iterations,
        },
        "match_trace": matching.as_dict(),
    }


def run_perf_bench(
    *,
    sizes: Sequence[str] = DEFAULT_SIZES,
    frames: int = 500,
    samples_per_cell: int = 10,
    repeat: int = 3,
    seed: int = _BENCH_SEED,
    out_path: Optional[Union[str, Path]] = None,
) -> Dict[str, object]:
    """Run the benchmark over ``sizes``; optionally write the JSON report."""
    report: Dict[str, object] = {
        "benchmark": "bench_perf",
        "seed": int(seed),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "sizes": {},
    }
    for size in sizes:
        report["sizes"][size] = bench_size(
            size,
            frames=frames,
            samples_per_cell=samples_per_cell,
            repeat=repeat,
            seed=seed,
        )
    if out_path is not None:
        Path(out_path).write_text(json.dumps(report, indent=2) + "\n")
    return report


def format_bench_report(report: Dict[str, object]) -> str:
    """Human-readable summary of a :func:`run_perf_bench` report."""
    lines = ["bench_perf: batch vs loop wall time (best-of runs)"]
    header = (
        f"{'size':<12} {'links':>5} {'cells':>6} "
        f"{'survey x':>9} {'match x':>8} {'solve cold/warm [s]':>20}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for size, record in report["sizes"].items():
        survey = record["survey"]
        match = record["match_trace"]
        solve = record["solve"]
        lines.append(
            f"{size:<12} {record['links']:>5} {record['cells']:>6} "
            f"{survey['speedup']:>9.1f} {match['speedup']:>8.1f} "
            f"{solve['cold_s']:>9.2f}/{solve['warm_s']:.2f}"
        )
    return "\n".join(lines)
