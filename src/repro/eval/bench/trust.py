"""The ``trust`` bench section: quorum reads, corruption repair, soak."""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.eval.bench.common import BENCH_SEED, BenchConfig, bench_spec
from repro.eval.bench.registry import BenchSection, register
from repro.eval.engine import cached_scenario
from repro.serve import LocalizationService, ShardedService
from repro.serve.faults import FaultInjector
from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.specs import build_scenario
from repro.util.rng import counter_stream, task_key
from repro.util.stats import latency_summary

__all__ = ["bench_trust"]


def bench_trust(
    *,
    sites: Sequence[str] = ("square-3m", "square-4m"),
    shards: int = 3,
    replicas: int = 2,
    frames: int = 24,
    operations: int = 20,
    samples_per_cell: int = 2,
    soak_days: int = 8,
    snapshot_keep: int = 2,
    seed: int = BENCH_SEED,
) -> Dict[str, object]:
    """Benchmark the anti-entropy trust layer (the PR-7 sections).

    * **quorum overhead** — the same workload through a failover fleet
      and a quorum fleet over identical snapshots: what cross-checking
      every read against all replicas costs in p50/p99 and q/s.
    * **corruption episode** — a seed-deterministic bit flip in one
      replica's fingerprint state, then the workload: wall time until
      the divergence is detected and the liar repaired, with the
      mismatched-answer count clients saw (the target is zero), plus a
      clean-scrub pass time for scale.
    * **snapshot soak** — ``soak_days`` of daily update + lifecycle
      maintenance under keep-last-``snapshot_keep``: max files on disk,
      prune totals, final directory bytes — the boundedness record the
      PR-7 acceptance criterion points at.
    * **drift sentinel** — one measured-drift probe per site: reading
      and wall time (what a ``policy="drift"`` scheduler tick pays).
    """
    protocol = CollectionProtocol(
        samples_per_cell=samples_per_cell, empty_room_samples=5
    )
    specs = {f"site-{name}": bench_spec(name) for name in sites}
    reference = LocalizationService.from_specs(
        specs, protocol=protocol, seed=seed, share_pipelines=False
    )
    reference.warm()
    workloads: Dict[str, np.ndarray] = {}
    for index, (site, spec) in enumerate(specs.items()):
        scenario = cached_scenario(spec, build_scenario)
        cells = counter_stream(seed, 700 + index).integers(
            0, scenario.deployment.cell_count, size=frames
        )
        workloads[site] = RssCollector(
            scenario,
            protocol,
            seed=task_key(seed, "trust-workload", site),
        ).live_trace(0.0, cells).rss
    expected = {
        site: reference.query_batch(site, rss, 0.0)
        for site, rss in workloads.items()
    }
    site_list = list(specs)

    record: Dict[str, object] = {
        "sites": site_list,
        "shards": int(shards),
        "replicas": int(replicas),
        "frames": int(frames),
        "operations": int(operations),
    }

    def run_phase(fleet: ShardedService, count: int) -> Dict[str, object]:
        latencies: List[float] = []
        failed = 0
        mismatched = 0
        for op in range(count):
            site = site_list[op % len(site_list)]
            rss = workloads[site]
            begin = time.perf_counter()
            try:
                result = fleet.query_batch(site, rss, 0.0)
            except OSError:
                failed += 1
                continue
            latencies.append(time.perf_counter() - begin)
            if not (
                np.array_equal(result.cells, expected[site].cells)
                and np.array_equal(
                    result.positions, expected[site].positions
                )
            ):
                mismatched += 1
        return {
            "failed_queries": failed,
            "mismatched_queries": mismatched,
            "latency": latency_summary(latencies),
        }

    for read_mode in ("failover", "quorum"):
        with tempfile.TemporaryDirectory() as tmp:
            fleet = ShardedService(
                specs,
                shards=shards,
                replicas=replicas,
                snapshot_dir=Path(tmp) / "snapshots",
                read_mode=read_mode,
                call_timeout=60.0,
                protocol=protocol,
                seed=seed,
            )
            try:
                fleet.warm()
                record[read_mode] = run_phase(fleet, operations)
                if read_mode == "quorum":
                    # The corruption episode, on the quorum fleet.
                    injector = FaultInjector(fleet)
                    target = site_list[0]
                    begin = time.perf_counter()
                    injector.corrupt(
                        fleet.replicas[target][0], site=target, seed=seed
                    )
                    episode = run_phase(fleet, operations)
                    record["corruption_episode"] = {
                        **episode,
                        "detect_and_repair_s": time.perf_counter() - begin,
                        "read_divergences": fleet.router_stats.read_divergences,
                        "quarantines": fleet.router_stats.quarantines,
                        "repairs": fleet.router_stats.repairs,
                    }
                    begin = time.perf_counter()
                    scrub = fleet.scrub()
                    record["scrub"] = {
                        "pass_s": time.perf_counter() - begin,
                        "sites_checked": scrub["sites_checked"],
                        "divergent_sites": scrub["divergent_sites"],
                    }
            finally:
                fleet.close()
    failover_p50 = record["failover"]["latency"].get("p50_ms", 0.0)
    quorum_p50 = record["quorum"]["latency"].get("p50_ms", 0.0)
    record["quorum_overhead_x"] = (
        quorum_p50 / failover_p50 if failover_p50 > 0 else float("inf")
    )

    # Snapshot-lifecycle soak: the directory must stay bounded.
    with tempfile.TemporaryDirectory() as tmp:
        soak = LocalizationService.from_specs(
            {site_list[0]: specs[site_list[0]]},
            protocol=protocol,
            seed=seed,
            snapshot_dir=tmp,
            snapshot_keep=snapshot_keep,
        )
        soak.warm()
        store = soak.manager.snapshot_store
        max_files = 0
        for day in range(1, soak_days + 1):
            soak.update(site_list[0], float(day))
            maintenance = soak.manager.snapshot_maintenance()
            max_files = max(max_files, len(store.files()))
        record["snapshot_soak"] = {
            "days": int(soak_days),
            "keep_last": int(snapshot_keep),
            "max_files_on_disk": int(max_files),
            "files_pruned": int(store.pruned_files),
            "bytes_reclaimed": int(store.pruned_bytes),
            "final_bytes": int(maintenance["total_bytes"]),
            "bounded": bool(max_files <= snapshot_keep),
        }

    # Drift sentinel: the cost and reading of one measured-drift probe.
    drift: Dict[str, object] = {}
    for site in site_list:
        begin = time.perf_counter()
        reading = reference.drift(site, 0.0, frames=frames)
        drift[site] = {
            "probe_s": time.perf_counter() - begin,
            "degradation_m": float(reading["degradation_m"]),
        }
    record["drift"] = drift
    return record


def _run(config: BenchConfig) -> Optional[Dict[str, object]]:
    if config.trust_sites is None:
        return None
    return bench_trust(
        sites=config.trust_sites,
        samples_per_cell=config.samples_per_cell,
        seed=config.seed,
    )


def _format(record: Dict[str, object]) -> List[str]:
    lines = [""]
    lines.append(
        f"trust ({record['shards']} shards, R={record['replicas']}, "
        "anti-entropy):"
    )
    for mode in ("failover", "quorum"):
        latency = record[mode]["latency"]
        lines.append(
            f"  {mode:<8} p50 "
            f"{latency.get('p50_ms', float('nan')):.1f} ms | p99 "
            f"{latency.get('p99_ms', float('nan')):.1f} ms | "
            f"mismatched {record[mode]['mismatched_queries']}"
        )
    episode = record["corruption_episode"]
    lines.append(
        f"  corrupt   quorum overhead {record['quorum_overhead_x']:.2f}x"
        f" | episode {episode['detect_and_repair_s']:.2f}s | "
        f"{episode['read_divergences']} divergence(s), "
        f"{episode['repairs']} repair(s) | mismatched "
        f"{episode['mismatched_queries']}"
    )
    soak = record["snapshot_soak"]
    lines.append(
        f"  soak      {soak['days']} d, keep {soak['keep_last']}: "
        f"max {soak['max_files_on_disk']} file(s), "
        f"{soak['files_pruned']} pruned, "
        f"{soak['final_bytes']} B final | "
        f"{'BOUNDED' if soak['bounded'] else 'UNBOUNDED'}"
    )
    probes = ", ".join(
        f"{site} {row['degradation_m']:.2f} m in {row['probe_s']:.2f}s"
        for site, row in record["drift"].items()
    )
    lines.append(f"  drift     {probes}")
    return lines


def _smoke_gates(record: Dict[str, object]) -> List[str]:
    failures: List[str] = []
    episode = record["corruption_episode"]
    if episode["mismatched_queries"] != 0 or episode["failed_queries"] != 0:
        failures.append(
            "trust: corruption episode leaked wrong or failed answers"
        )
    if episode["read_divergences"] < 1 or episode["repairs"] < 1:
        failures.append("trust: corruption was not detected and repaired")
    if not record["snapshot_soak"]["bounded"]:
        failures.append("trust: snapshot directory growth is unbounded")
    return failures


register(
    BenchSection(
        name="trust",
        run=_run,
        format=_format,
        smoke_gates=_smoke_gates,
        report_key="trust",
    )
)
