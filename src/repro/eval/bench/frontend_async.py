"""The ``frontend_async`` bench section: the asyncio pipelined front-end."""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.eval.bench.common import (
    BENCH_SEED,
    BenchConfig,
    bench_spec,
    best_of,
)
from repro.eval.bench.registry import BenchSection, register
from repro.eval.engine import cached_scenario
from repro.serve import (
    AioFrontend,
    AsyncServiceClient,
    HttpFrontend,
    LocalizationService,
    ServiceClient,
)
from repro.sim.collector import CollectionProtocol, LiveTrace, RssCollector
from repro.sim.specs import build_scenario
from repro.util.rng import counter_stream, task_key
from repro.util.stats import latency_summary, timed_singles

__all__ = ["bench_frontend_async"]


async def _aio_closed_loop(
    address: str,
    site: str,
    frames: np.ndarray,
    requests: int,
    connections: int,
    depth: int,
) -> Tuple[List[float], float]:
    """Closed-loop load driver for the asyncio front-end.

    ``connections`` persistent connections each keep up to ``depth``
    single queries in flight and issue ``requests`` requests; returns
    (per-request latencies in seconds, wall seconds). Latency is
    measured send-to-response per request — queueing behind the depth
    window is excluded, pipelined server time is not.
    """
    rows = [row.tolist() for row in np.asarray(frames, dtype=float)]
    latencies: List[float] = []

    async def one_connection(offset: int) -> None:
        async with AsyncServiceClient(address) as client:
            window = asyncio.Semaphore(depth)

            async def one_request(index: int) -> None:
                frame = rows[(offset + index) % len(rows)]
                async with window:
                    start = time.perf_counter()
                    await client.query(site, frame, 0.0)
                    latencies.append(time.perf_counter() - start)

            await asyncio.gather(*(one_request(i) for i in range(requests)))

    start = time.perf_counter()
    await asyncio.gather(
        *(one_connection(k * 37) for k in range(max(1, connections)))
    )
    return latencies, time.perf_counter() - start


async def _aio_pipeline_probe(
    address: str, site: str, frames: np.ndarray, day: float, depth: int
) -> List[object]:
    async with AsyncServiceClient(address) as client:
        return await client.pipeline_queries(site, frames, day, depth=depth)


async def _aio_trace_probe(
    address: str, site: str, frames: np.ndarray, chunk: int
) -> Tuple[object, int, float]:
    """Stream one trace; returns (result, peak message bytes, seconds)."""
    async with AsyncServiceClient(address) as client:
        client.reset_peak()
        start = time.perf_counter()
        result = await client.query_trace(site, frames, 0.0, chunk=chunk)
        return result, client.peak_message_bytes, time.perf_counter() - start


def bench_frontend_async(
    *,
    sites: Sequence[str] = ("paper", "square-6m"),
    frames: int = 500,
    samples_per_cell: int = 10,
    repeat: int = 3,
    seed: int = BENCH_SEED,
    connections: Sequence[int] = (1, 2, 4),
    depth: int = 16,
    singles: int = 200,
    trace_multipliers: Sequence[int] = (1, 8),
    stream_chunk: int = 32,
) -> Dict[str, object]:
    """Benchmark the asyncio front-end (:class:`~repro.serve.aio.AioFrontend`).

    The closed-loop multi-connection driver: for each count ``c`` in
    ``connections``, ``c`` persistent :class:`AsyncServiceClient`
    connections each keep ``depth`` single queries in flight against one
    event-loop server, and every request's send-to-response latency is
    recorded — so each row reports p50/p95/p99/max alongside the
    sustained queries/sec (total requests over wall clock), not just a
    mean round trip. Baselines measured on the same host and workloads:
    in-process singles, the threaded PR-5 HTTP front-end
    (``speedup_vs_http_x`` is the PR-8 acceptance ratio), and the sync
    :class:`ServiceClient` over ``tcp://`` one request at a time (what
    pipelining alone buys over the shared NDJSON protocol).
    ``trace_streaming`` pushes a short and an N×-longer ``query_trace``
    through the chunked NDJSON path, gating bit-identity with the
    in-process answer and that the client's peak per-message bytes stay
    flat in trace length (``buffering_flat``).
    """
    protocol = CollectionProtocol(
        samples_per_cell=samples_per_cell, empty_room_samples=10
    )
    specs = {name: bench_spec(name) for name in sites}
    service = LocalizationService.from_specs(
        specs, protocol=protocol, seed=seed
    )
    service.warm()
    workloads: Dict[str, np.ndarray] = {}
    for index, (site, spec) in enumerate(specs.items()):
        scenario = cached_scenario(spec, build_scenario)
        cells = counter_stream(seed, 300 + index).integers(
            0, scenario.deployment.cell_count, size=frames
        )
        workloads[site] = RssCollector(
            scenario, protocol, seed=task_key(seed, "frontend-workload", site)
        ).live_trace(0.0, cells).rss
    heads = {
        site: rss[: min(frames, singles)] for site, rss in workloads.items()
    }

    record: Dict[str, object] = {
        "sites": list(sites),
        "frames": int(frames),
        "singles": int(singles),
        "depth": int(depth),
        "connections": [int(count) for count in connections],
        "per_site": {},
    }

    # In-process + threaded-HTTP baselines on identical workloads; the
    # HTTP number is the same-host PR-5 figure the aio speedup is
    # measured against.
    for site, head in heads.items():
        single_s = best_of(
            lambda: [service.query(site, frame, 0.0) for frame in head],
            repeat,
        )
        record["per_site"][site] = {
            "inproc_single_qps": (
                len(head) / single_s if single_s > 0 else float("inf")
            ),
        }
    with HttpFrontend(service) as frontend:
        with ServiceClient(frontend.address) as client:
            for site, head in heads.items():
                client.query(site, head[0], 0.0)  # warm up the connection
                single_s = best_of(
                    lambda: [client.query(site, frame, 0.0) for frame in head],
                    repeat,
                )
                row = record["per_site"][site]
                row["http_single_qps"] = (
                    len(head) / single_s if single_s > 0 else float("inf")
                )
                row["http_latency"] = latency_summary(
                    timed_singles(
                        lambda frame: client.query(site, frame, 0.0), head
                    )
                )

    max_sustained = 0.0
    with AioFrontend(service) as frontend:
        address = frontend.address
        # Sync one-at-a-time over the same NDJSON/TCP path: separates
        # protocol cost from what pipelining buys on top.
        with ServiceClient(address) as client:
            for site, head in heads.items():
                client.query(site, head[0], 0.0)  # warm up the connection
                single_s = best_of(
                    lambda: [client.query(site, frame, 0.0) for frame in head],
                    repeat,
                )
                record["per_site"][site]["aio_sync_single_qps"] = (
                    len(head) / single_s if single_s > 0 else float("inf")
                )

        for site, head in heads.items():
            row = record["per_site"][site]
            # Identity gate: pipelined answers (out-of-order completion,
            # matched by request id) equal sequential in-process singles.
            wire = asyncio.run(
                _aio_pipeline_probe(address, site, head, 0.0, depth)
            )
            singles_ref = [service.query(site, frame, 0.0) for frame in head]
            row["bit_identical"] = bool(
                all(
                    one.cell == int(ref.cell)
                    and one.position
                    == (float(ref.position.x), float(ref.position.y))
                    and one.score == float(ref.scores[ref.cell])
                    for one, ref in zip(wire, singles_ref)
                )
            )
            row["pipelined"] = {}
            for count in connections:
                best_qps, best_latencies = 0.0, [0.0]
                for _ in range(max(1, repeat)):
                    latencies, wall = asyncio.run(
                        _aio_closed_loop(
                            address, site, head, len(head), count, depth
                        )
                    )
                    qps = len(latencies) / wall if wall > 0 else float("inf")
                    if qps > best_qps:
                        best_qps, best_latencies = qps, latencies
                row["pipelined"][str(count)] = {
                    "connections": int(count),
                    "depth": int(depth),
                    "sustained_qps": best_qps,
                    "latency": latency_summary(best_latencies),
                }
                max_sustained = max(max_sustained, best_qps)
            best = max(
                pipe["sustained_qps"] for pipe in row["pipelined"].values()
            )
            row["aio_best_qps"] = best
            row["speedup_vs_http_x"] = (
                best / row["http_single_qps"]
                if row["http_single_qps"] > 0
                else float("inf")
            )
            top = row["pipelined"][str(max(connections))]
            row["wire_vs_inproc_x"] = (
                row["inproc_single_qps"] / top["sustained_qps"]
                if top["sustained_qps"] > 0
                else float("inf")
            )

        # Streamed query_trace: bit-identity + flat peak buffering. The
        # trace is localized in ONE backend call (chunking only the JSON
        # encoding), so the answer must match in-process exactly.
        site, rss = next(iter(workloads.items()))
        lengths: Dict[str, object] = {}
        peaks: List[int] = []
        for multiplier in trace_multipliers:
            trace = np.concatenate([rss] * max(1, multiplier), axis=0)
            reference = service.query_trace(
                site, LiveTrace(day=0.0, rss=trace)
            )
            streamed, peak, elapsed = asyncio.run(
                _aio_trace_probe(address, site, trace, stream_chunk)
            )
            identical = bool(
                np.array_equal(streamed.cells, reference.cells)
                and np.array_equal(streamed.positions, reference.positions)
            )
            peaks.append(int(peak))
            lengths[str(trace.shape[0])] = {
                "frames": int(trace.shape[0]),
                "peak_message_bytes": int(peak),
                "bit_identical": identical,
                "stream_s": elapsed,
                "frames_per_s": (
                    trace.shape[0] / elapsed if elapsed > 0 else float("inf")
                ),
            }
        record["trace_streaming"] = {
            "site": site,
            "chunk": int(stream_chunk),
            "lengths": lengths,
            # Flat buffering: peak per-message bytes is set by the chunk
            # size, not the trace length.
            "buffering_flat": bool(max(peaks) <= 2 * min(peaks)),
        }

    record["max_sustained_qps"] = max_sustained
    return record


def _run(config: BenchConfig) -> Optional[Dict[str, object]]:
    if config.frontend_async_sites is None:
        return None
    return bench_frontend_async(
        sites=config.frontend_async_sites,
        frames=config.frames,
        samples_per_cell=config.samples_per_cell,
        repeat=config.repeat,
        seed=config.seed,
        connections=config.frontend_async_connections,
    )


def _format(record: Dict[str, object]) -> List[str]:
    lines = [""]
    lines.append(
        f"asyncio front-end ({len(record['sites'])} site(s), "
        f"pipeline depth {record['depth']}, closed-loop "
        f"{record['singles']} singles/connection):"
    )
    for site, row in record["per_site"].items():
        identical = (
            "bit-identical" if row.get("bit_identical") else "MISMATCH"
        )
        lines.append(
            f"  {site:<12} in-proc {row['inproc_single_qps']:,.0f} q/s | "
            f"http {row['http_single_qps']:,.0f} q/s | "
            f"aio sync {row['aio_sync_single_qps']:,.0f} q/s | "
            f"aio best {row['aio_best_qps']:,.0f} q/s "
            f"({row['speedup_vs_http_x']:.1f}x vs http, "
            f"{row['wire_vs_inproc_x']:.1f}x off in-proc, {identical})"
        )
        for count, pipe in row["pipelined"].items():
            latency = pipe["latency"]
            lines.append(
                f"    conns={count}: {pipe['sustained_qps']:,.0f} q/s | "
                f"p50/p95/p99 {latency.get('p50_ms', float('nan')):.2f}/"
                f"{latency.get('p95_ms', float('nan')):.2f}/"
                f"{latency.get('p99_ms', float('nan')):.2f} ms"
            )
    streaming = record.get("trace_streaming")
    if streaming:
        parts = " | ".join(
            f"{row['frames']} frames: peak {row['peak_message_bytes']} B, "
            f"{'ok' if row['bit_identical'] else 'MISMATCH'}"
            for row in streaming["lengths"].values()
        )
        flat = "FLAT" if streaming["buffering_flat"] else "GROWING"
        lines.append(
            f"  streamed trace ({streaming['site']}, chunk "
            f"{streaming['chunk']}): {parts} -> buffering {flat}"
        )
    return lines


def _smoke_gates(record: Dict[str, object]) -> List[str]:
    failures: List[str] = []
    aio_ok = all(
        row["bit_identical"] for row in record["per_site"].values()
    )
    streaming = record["trace_streaming"]
    stream_ok = all(
        row["bit_identical"] for row in streaming["lengths"].values()
    )
    if not (aio_ok and stream_ok):
        failures.append(
            "asyncio front-end answers differ from in-process service"
        )
    if not streaming["buffering_flat"]:
        failures.append(
            "streamed query_trace peak buffering grows with trace length"
        )
    return failures


register(
    BenchSection(
        name="frontend_async",
        run=_run,
        format=_format,
        smoke_gates=_smoke_gates,
        report_key="frontend_async",
    )
)
