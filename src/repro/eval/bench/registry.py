"""The BenchSection registry: named sections over one shared driver.

Each bench section — ``solve``, ``engine``, ``serving``, ``frontend``,
``frontend_async``, ``resilience``, ``trust``, ``loadgen`` — registers:

* a ``run(config) -> record | None`` callable (``None`` = skipped, the
  historical None-skips keyword contract);
* a ``format(record) -> lines`` callable reproducing its block of the
  human-readable report **byte-for-byte** as the old monolith printed it;
* ``smoke_gates(record) -> failures``, the CI gate conditions that used
  to live inline in ``bench_perf.py --smoke``;
* its ``report_key`` (the JSON key — ``sizes`` for the solve section,
  the section name otherwise) and how host metadata is stamped
  (per-row for ``sizes``, per-section dict otherwise).

:func:`run_perf_bench` and :func:`format_bench_report` are thin drivers
over the insertion-ordered registry; ``only=`` filters by section name
(the ``--only`` CLI flag), and the default run emits every section in
the exact key order committed ``BENCH_PR*.json`` files use.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.eval.bench.common import (
    BENCH_SEED,
    BenchConfig,
    DEFAULT_SIZES,
    ScenarioSpec,
    host_metadata,
)

__all__ = [
    "BenchSection",
    "format_bench_report",
    "get_section",
    "register",
    "run_perf_bench",
    "section_names",
    "sections",
    "smoke_failures",
]


@dataclass(frozen=True)
class BenchSection:
    """One registered benchmark section."""

    name: str
    run: Callable[[BenchConfig], Optional[Dict[str, object]]]
    format: Callable[[Dict[str, object]], List[str]]
    smoke_gates: Callable[[Dict[str, object]], List[str]]
    report_key: str
    host_stamp: str = "section"  # "section" (record dict) or "rows"

    def __post_init__(self) -> None:
        if self.host_stamp not in ("section", "rows"):
            raise ValueError(
                f"host_stamp must be 'section' or 'rows', got {self.host_stamp!r}"
            )


_SECTIONS: Dict[str, BenchSection] = {}


def register(section: BenchSection) -> BenchSection:
    """Add a section; order of registration is report order."""
    if section.name in _SECTIONS:
        raise ValueError(f"bench section {section.name!r} already registered")
    _SECTIONS[section.name] = section
    return section


def sections() -> List[BenchSection]:
    """All registered sections, in registration (= report) order."""
    return list(_SECTIONS.values())


def section_names() -> List[str]:
    return list(_SECTIONS)


def get_section(name: str) -> BenchSection:
    try:
        return _SECTIONS[name]
    except KeyError:
        known = ", ".join(_SECTIONS) or "<none>"
        raise KeyError(
            f"unknown bench section {name!r} (registered: {known})"
        ) from None


def run_perf_bench(
    *,
    sizes: Sequence[str] = DEFAULT_SIZES,
    frames: int = 500,
    samples_per_cell: int = 10,
    repeat: int = 3,
    seed: int = BENCH_SEED,
    out_path: Optional[Union[str, Path]] = None,
    engine_jobs: Optional[int] = None,
    engine_scenario: Union[str, ScenarioSpec] = "paper",
    serving_sites: Optional[Sequence[str]] = None,
    frontend_sites: Optional[Sequence[str]] = None,
    frontend_shards: Sequence[int] = (1, 2),
    frontend_async_sites: Optional[Sequence[str]] = None,
    frontend_async_connections: Sequence[int] = (1, 2, 4),
    resilience_sites: Optional[Sequence[str]] = None,
    resilience_replicas: int = 2,
    resilience_shards: int = 3,
    trust_sites: Optional[Sequence[str]] = None,
    loadgen_sites: Optional[Sequence[str]] = None,
    loadgen_transports: Sequence[str] = ("http", "aio"),
    loadgen_shards: Sequence[int] = (1, 2),
    loadgen_slo_ms: float = 50.0,
    loadgen_requests: int = 240,
    loadgen_start_qps: float = 100.0,
    loadgen_max_qps: float = 50_000.0,
    loadgen_zipf_s: float = 1.1,
    loadgen_soak_sites: int = 0,
    loadgen_perturb: bool = True,
    only: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Run the registered sections; optionally write the JSON report.

    The pre-PR-10 keyword surface is preserved verbatim (``None`` on a
    section's knob skips it), with the ``loadgen_*`` knobs and ``only``
    added. ``only`` narrows the run to the named sections (order still
    comes from the registry); the default ``None`` runs everything, so
    default reports are key-for-key identical to the monolith's. Every
    section carries the host-metadata stamp (``cpu_count``, platform) —
    per size-row for ``sizes``, per section dict otherwise — so
    committed numbers stay attributable to the host that produced them.
    """
    config = BenchConfig(
        sizes=tuple(sizes),
        frames=int(frames),
        samples_per_cell=int(samples_per_cell),
        repeat=int(repeat),
        seed=int(seed),
        engine_jobs=engine_jobs,
        engine_scenario=engine_scenario,
        serving_sites=serving_sites,
        frontend_sites=frontend_sites,
        frontend_shards=tuple(frontend_shards),
        frontend_async_sites=frontend_async_sites,
        frontend_async_connections=tuple(frontend_async_connections),
        resilience_sites=resilience_sites,
        resilience_replicas=int(resilience_replicas),
        resilience_shards=int(resilience_shards),
        trust_sites=trust_sites,
        loadgen_sites=loadgen_sites,
        loadgen_transports=tuple(loadgen_transports),
        loadgen_shards=tuple(loadgen_shards),
        loadgen_slo_ms=float(loadgen_slo_ms),
        loadgen_requests=int(loadgen_requests),
        loadgen_start_qps=float(loadgen_start_qps),
        loadgen_max_qps=float(loadgen_max_qps),
        loadgen_zipf_s=float(loadgen_zipf_s),
        loadgen_soak_sites=int(loadgen_soak_sites),
        loadgen_perturb=bool(loadgen_perturb),
    )
    if only is not None:
        unknown = [name for name in only if name not in _SECTIONS]
        if unknown:
            known = ", ".join(_SECTIONS)
            raise ValueError(
                f"unknown bench section(s) {unknown} (registered: {known})"
            )
    host = host_metadata()
    report: Dict[str, object] = {
        "benchmark": "bench_perf",
        "seed": int(seed),
        "environment": dict(host, numpy=np.__version__),
    }
    for section in _SECTIONS.values():
        if only is not None and section.name not in only:
            continue
        record = section.run(config)
        if record is None:
            continue
        report[section.report_key] = record
    # Stamp host facts into every section (satellite of PR-8): each
    # section may end up compared across machines, so each carries its
    # own provenance, not just the top-level environment.
    for section in _SECTIONS.values():
        record = report.get(section.report_key)
        if record is None:
            continue
        if section.host_stamp == "rows":
            for row in record.values():
                row["host"] = dict(host)
        else:
            record["host"] = dict(host)
    if out_path is not None:
        Path(out_path).write_text(json.dumps(report, indent=2) + "\n")
    return report


def format_bench_report(report: Dict[str, object]) -> str:
    """Human-readable summary of a :func:`run_perf_bench` report."""
    lines = ["bench_perf: fast vs reference wall time (best-of runs)"]
    for section in _SECTIONS.values():
        if section.report_key not in report:
            continue
        record = report[section.report_key]
        # The solve table prints its header even for an empty run; the
        # optional sections print nothing when empty (the monolith's
        # truthiness contract).
        if not record and section.name != "solve":
            continue
        lines.extend(section.format(record))
    return "\n".join(lines)


def smoke_failures(report: Dict[str, object]) -> List[str]:
    """Every registered smoke-gate failure in ``report`` (empty = pass).

    Sections absent from the report are skipped — a smoke run gates only
    what it measured.
    """
    failures: List[str] = []
    for section in _SECTIONS.values():
        record = report.get(section.report_key)
        if not record:
            continue
        failures.extend(section.smoke_gates(record))
    return failures
