"""The ``resilience`` bench section: worker kill / failover / restore."""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.eval.bench.common import BENCH_SEED, BenchConfig, bench_spec
from repro.eval.bench.registry import BenchSection, register
from repro.eval.engine import cached_scenario
from repro.serve import LocalizationService, ShardedService
from repro.serve.faults import FaultInjector, FaultSchedule
from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.specs import build_scenario
from repro.util.rng import counter_stream, task_key
from repro.util.stats import latency_summary

__all__ = ["bench_resilience"]


def bench_resilience(
    *,
    sites: Sequence[str] = ("square-3m", "square-4m", "square-5m"),
    shards: int = 3,
    replicas: int = 2,
    frames: int = 24,
    samples_per_cell: int = 2,
    operations: int = 30,
    seed: int = BENCH_SEED,
    recovery_timeout_s: float = 120.0,
) -> Dict[str, object]:
    """Benchmark the fleet's fault tolerance: kill a worker, count losses.

    The measurement behind the PR-6 acceptance claims, all on one
    snapshot-backed :class:`~repro.serve.shard.ShardedService` fleet
    (``shards`` workers, R = ``replicas``):

    * **failed / mismatched queries** — a round-robin ``query_batch``
      workload runs before, immediately after a seed-scheduled
      (:class:`~repro.serve.faults.FaultSchedule`) ``kill -9`` of a
      worker, and again after recovery; every answer is checked
      bit-for-bit against an undisturbed in-process service. With
      R >= 2 the target is zero failures and zero mismatches in every
      phase.
    * **recovery** — wall time from the SIGKILL to the victim answering
      again, plus how many of its sites the respawn restored from
      snapshots (vs re-surveying).
    * **tail latency** — p50/p99 per phase, so the perturbation the
      failover + background respawn causes is a number, not a vibe.
    * **warm paths** — ``cold_warm_s`` (first fleet warm: full
      commissioning surveys) vs ``snapshot_warm_s`` (a second fleet over
      the same snapshot directory), the restore-vs-rebuild speedup a
      respawn rides.
    """
    protocol = CollectionProtocol(
        samples_per_cell=samples_per_cell, empty_room_samples=5
    )
    specs = {f"site-{name}": bench_spec(name) for name in sites}
    reference = LocalizationService.from_specs(
        specs, protocol=protocol, seed=seed, share_pipelines=False
    )
    reference.warm()
    workloads: Dict[str, np.ndarray] = {}
    for index, (site, spec) in enumerate(specs.items()):
        scenario = cached_scenario(spec, build_scenario)
        cells = counter_stream(seed, 500 + index).integers(
            0, scenario.deployment.cell_count, size=frames
        )
        workloads[site] = RssCollector(
            scenario,
            protocol,
            seed=task_key(seed, "resilience-workload", site),
        ).live_trace(0.0, cells).rss
    expected = {
        site: reference.query_batch(site, rss, 0.0)
        for site, rss in workloads.items()
    }
    site_list = list(specs)

    record: Dict[str, object] = {
        "sites": site_list,
        "shards": int(shards),
        "replicas": int(replicas),
        "frames": int(frames),
        "operations": int(operations),
    }

    with tempfile.TemporaryDirectory() as tmp:
        snapshot_dir = Path(tmp) / "snapshots"
        fleet = ShardedService(
            specs,
            shards=shards,
            replicas=replicas,
            snapshot_dir=snapshot_dir,
            call_timeout=60.0,
            protocol=protocol,
            seed=seed,
        )
        try:
            start = time.perf_counter()
            fleet.warm()
            record["cold_warm_s"] = time.perf_counter() - start

            def run_phase(count: int) -> Dict[str, object]:
                latencies: List[float] = []
                failed = 0
                mismatched = 0
                for op in range(count):
                    site = site_list[op % len(site_list)]
                    rss = workloads[site]
                    begin = time.perf_counter()
                    try:
                        result = fleet.query_batch(site, rss, 0.0)
                    except OSError:
                        failed += 1
                        continue
                    latencies.append(time.perf_counter() - begin)
                    if not (
                        np.array_equal(result.cells, expected[site].cells)
                        and np.array_equal(
                            result.positions, expected[site].positions
                        )
                    ):
                        mismatched += 1
                return {
                    "failed_queries": failed,
                    "mismatched_queries": mismatched,
                    "latency": latency_summary(latencies),
                }

            record["before"] = run_phase(operations)

            schedule = FaultSchedule.generate(
                seed=seed, operations=operations, shards=shards, faults=1
            )
            victim = schedule.events[0].target
            injector = FaultInjector(fleet)
            killed_at = time.perf_counter()
            injector.kill(victim)
            record["victim_shard"] = int(victim)
            # Under load straight through the outage: with R >= 2 every
            # query fails over to a live replica and still answers.
            record["during"] = run_phase(operations)

            recovered = False
            deadline = time.monotonic() + recovery_timeout_s
            while time.monotonic() < deadline:
                fleet.health()  # the monitoring poll drives the respawn
                if fleet._shards[victim].alive():
                    recovered = True
                    break
                time.sleep(0.02)
            record["recovery_s"] = time.perf_counter() - killed_at
            record["recovered"] = bool(recovered)
            if recovered:
                worker_health = fleet._shards[victim].call("health")
                record["snapshots_restored"] = int(
                    worker_health["snapshots_restored"]
                )
            record["after"] = run_phase(operations)
            record["router_stats"] = {
                "failovers": fleet.router_stats.failovers,
                "timeouts": fleet.router_stats.timeouts,
                "respawns": fleet.router_stats.respawns,
                "respawn_failures": fleet.router_stats.respawn_failures,
            }
        finally:
            fleet.close()

        # A second fleet over the same snapshot directory: the warm that a
        # respawn rides, vs the cold commissioning surveys above.
        revived = ShardedService(
            specs,
            shards=shards,
            replicas=replicas,
            snapshot_dir=snapshot_dir,
            call_timeout=60.0,
            protocol=protocol,
            seed=seed,
        )
        try:
            start = time.perf_counter()
            revived.warm()
            record["snapshot_warm_s"] = time.perf_counter() - start
            record["snapshot_warm_restored"] = int(
                sum(
                    shard.call("health")["snapshots_restored"]
                    for shard in revived._shards
                )
            )
            record["snapshot_warm_bit_identical"] = bool(
                all(
                    np.array_equal(
                        revived.query_batch(site, rss, 0.0).cells,
                        expected[site].cells,
                    )
                    for site, rss in workloads.items()
                )
            )
        finally:
            revived.close()

    cold = record["cold_warm_s"]
    warm = record["snapshot_warm_s"]
    record["restore_speedup"] = cold / warm if warm > 0 else float("inf")
    record["zero_loss"] = bool(
        all(
            record[phase]["failed_queries"] == 0
            and record[phase]["mismatched_queries"] == 0
            for phase in ("before", "during", "after")
        )
    )
    return record


def _run(config: BenchConfig) -> Optional[Dict[str, object]]:
    if config.resilience_sites is None:
        return None
    return bench_resilience(
        sites=config.resilience_sites,
        shards=config.resilience_shards,
        replicas=config.resilience_replicas,
        samples_per_cell=config.samples_per_cell,
        seed=config.seed,
    )


def _format(record: Dict[str, object]) -> List[str]:
    lines = [""]
    lines.append(
        f"resilience ({record['shards']} shards, "
        f"R={record['replicas']}, kill -9 of shard "
        f"{record.get('victim_shard', '?')} under load):"
    )
    for phase in ("before", "during", "after"):
        row = record[phase]
        latency = row["latency"]
        lines.append(
            f"  {phase:<7} failed {row['failed_queries']} | "
            f"mismatched {row['mismatched_queries']} | "
            f"p50 {latency.get('p50_ms', float('nan')):.1f} ms | "
            f"p99 {latency.get('p99_ms', float('nan')):.1f} ms"
        )
    restored = record.get("snapshots_restored", 0)
    lines.append(
        f"  recovery {record['recovery_s']:.2f}s "
        f"({restored} site(s) snapshot-restored) | warm cold "
        f"{record['cold_warm_s']:.2f}s vs snapshot "
        f"{record['snapshot_warm_s']:.2f}s "
        f"({record['restore_speedup']:.1f}x) | "
        f"{'ZERO LOSS' if record['zero_loss'] else 'QUERIES LOST'}"
    )
    return lines


def _smoke_gates(record: Dict[str, object]) -> List[str]:
    failures: List[str] = []
    if not record["zero_loss"]:
        failures.append("resilience: queries lost or mismatched across kill")
    if not record["recovered"]:
        failures.append("resilience: killed worker did not recover")
    if not record["snapshot_warm_bit_identical"]:
        failures.append("resilience: snapshot-warmed fleet answers differ")
    return failures


register(
    BenchSection(
        name="resilience",
        run=_run,
        format=_format,
        smoke_gates=_smoke_gates,
        report_key="resilience",
    )
)
