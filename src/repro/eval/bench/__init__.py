"""The bench-section registry package (the PR-10 API redesign).

Importing this package registers every section in canonical report
order — ``solve``, ``engine``, ``serving``, ``frontend``,
``frontend_async``, ``resilience``, ``trust``, ``loadgen`` — and
re-exports the registry drivers plus each section's public benchmark
function. ``repro.eval.benchmark`` remains a thin compatibility facade
over this package; new code should import from here.
"""

from __future__ import annotations

from repro.eval.bench.common import (
    BENCH_SEED,
    BenchConfig,
    DEFAULT_SIZES,
    LEGACY_SOLVER,
    StageTiming,
    bench_spec,
    best_of,
    build_bench_deployment,
    host_metadata,
)
from repro.eval.bench.registry import (
    BenchSection,
    format_bench_report,
    get_section,
    register,
    run_perf_bench,
    section_names,
    sections,
    smoke_failures,
)

# Importing each module registers its section; the import order here IS
# the report order (the key order committed BENCH_PR*.json files use).
from repro.eval.bench.solve import bench_size
from repro.eval.bench.engine import bench_engine
from repro.eval.bench.serving import bench_serving
from repro.eval.bench.frontend import bench_frontend
from repro.eval.bench.frontend_async import bench_frontend_async
from repro.eval.bench.resilience import bench_resilience
from repro.eval.bench.trust import bench_trust
from repro.eval.bench.loadgen import bench_loadgen

__all__ = [
    "BENCH_SEED",
    "BenchConfig",
    "BenchSection",
    "DEFAULT_SIZES",
    "LEGACY_SOLVER",
    "StageTiming",
    "bench_engine",
    "bench_frontend",
    "bench_frontend_async",
    "bench_loadgen",
    "bench_resilience",
    "bench_serving",
    "bench_size",
    "bench_spec",
    "bench_trust",
    "best_of",
    "build_bench_deployment",
    "format_bench_report",
    "get_section",
    "host_metadata",
    "register",
    "run_perf_bench",
    "section_names",
    "sections",
    "smoke_failures",
]
