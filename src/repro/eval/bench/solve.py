"""The ``solve`` bench section: survey / LoLi-IR solve / trace matching.

Times the three production-critical operations on every configured
deployment size, comparing the fast implementations against their
reference counterparts (per-frame/per-cell loops; the matrix-free CG
solver; the cached-splu coupled backend). Report key ``sizes`` (one row
per scenario, host-stamped per row) — the shape the very first committed
``BENCH_PR*.json`` used.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.core.fingerprint import FingerprintMatrix
from repro.core.loli_ir import LoliIrConfig
from repro.core.matching import KnnMatcher
from repro.core.pipeline import TafLoc, TafLocConfig
from repro.core.reconstruction import ReconstructionConfig
from repro.eval.bench.common import (
    BENCH_SEED,
    BenchConfig,
    LEGACY_SOLVER,
    StageTiming,
    bench_spec,
    best_of,
)
from repro.eval.bench.registry import BenchSection, register
from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.scenario import Scenario
from repro.sim.specs import build_scenario
from repro.util.rng import counter_stream

__all__ = ["bench_size"]


def bench_size(
    size: str,
    *,
    frames: int = 500,
    samples_per_cell: int = 10,
    repeat: int = 3,
    seed: int = BENCH_SEED,
) -> Dict[str, object]:
    """Benchmark one scenario/size; returns a plain-data record."""
    spec = bench_spec(size)
    scenario: Scenario = build_scenario(spec.with_seed(seed))
    deployment = scenario.deployment
    protocol = CollectionProtocol(
        samples_per_cell=samples_per_cell, empty_room_samples=10
    )

    # --- simulation: full commissioning survey, batch vs per-cell loop ---
    # Both sides get the same best-of treatment so warm-up noise cannot
    # inflate the reported speedup.
    survey = StageTiming(
        batch_s=best_of(
            lambda: RssCollector(
                scenario, protocol, seed=1, vectorized=True
            ).collect_full_survey(0.0),
            repeat,
        ),
        loop_s=best_of(
            lambda: RssCollector(
                scenario, protocol, seed=1, vectorized=False
            ).collect_full_survey(0.0),
            repeat,
        ),
    )

    # --- reconstruction: LoLi-IR update, legacy vs fast, cold vs warm ---
    def updates(warm_start: bool, solver: Optional[LoliIrConfig] = None) -> List[int]:
        config = TafLocConfig(
            reconstruction=ReconstructionConfig(
                warm_start=warm_start,
                solver=solver if solver is not None else LoliIrConfig(),
            )
        )
        system = TafLoc(
            RssCollector(scenario, protocol, seed=2), config, seed=3
        )
        system.commission(0.0)
        iterations = []
        # A high-frequency refresh loop: 6-hourly updates, the regime the
        # warm start is built for.
        for step in range(4):
            report = system.update(30.0 + 0.25 * step)
            iterations.append(report.reconstruction.solver_result.iterations)
        return iterations

    start = time.perf_counter()
    legacy_iterations = updates(False, LEGACY_SOLVER)
    legacy_cold_s = time.perf_counter() - start
    start = time.perf_counter()
    cold_iterations = updates(False)
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    warm_iterations = updates(True)
    warm_s = time.perf_counter() - start
    # Coupled-solver cross-check: the cached-splu direct backend vs the
    # default PCG on the same refresh loop (the PR-3 measurement that
    # settled "auto" on PCG — keep recording both so a future structural
    # change that flips the balance shows up in the committed numbers).
    start = time.perf_counter()
    updates(False, LoliIrConfig(coupled_solver="direct"))
    direct_cold_s = time.perf_counter() - start

    # --- serving: trace-level matching, batch vs per-frame loop ---------
    workload_rng = counter_stream(seed, 1)
    cells = workload_rng.integers(0, deployment.cell_count, size=frames)
    collector = RssCollector(scenario, protocol, seed=4)
    result = collector.collect_full_survey(0.0)
    fingerprint = FingerprintMatrix(
        values=result.survey.matrix, empty_rss=result.survey.empty_rss
    )
    trace = collector.live_trace(0.0, cells)
    matcher = KnnMatcher(fingerprint, deployment.grid)
    batch_out = matcher.match_batch(trace.rss)
    loop_out = [matcher.match(frame) for frame in trace.rss]
    for index, single in enumerate(loop_out):
        if int(batch_out.cells[index]) == single.cell:
            continue
        # Quantized RSS makes exact distance ties possible; batch-of-N and
        # batch-of-1 BLAS rounding may break such a tie differently. Either
        # winner is correct — only a genuine score gap is a disagreement.
        gap = abs(
            batch_out.scores[index][int(batch_out.cells[index])]
            - batch_out.scores[index][single.cell]
        )
        if gap > 1e-6:
            raise AssertionError(
                f"batch and per-frame matching disagree on frame {index}"
            )
    matching = StageTiming(
        batch_s=best_of(lambda: matcher.match_batch(trace.rss), repeat),
        loop_s=best_of(
            lambda: [matcher.match(frame) for frame in trace.rss], repeat
        ),
    )

    return {
        "scenario": spec.name,
        "links": deployment.link_count,
        "cells": deployment.cell_count,
        "frames": int(frames),
        "samples_per_cell": int(samples_per_cell),
        "survey": survey.as_dict(),
        "solve": {
            "cold_s": cold_s,
            "warm_s": warm_s,
            "legacy_cold_s": legacy_cold_s,
            "coupled_direct_s": direct_cold_s,
            "speedup": legacy_cold_s / cold_s if cold_s > 0 else float("inf"),
            "cold_iterations": cold_iterations,
            "warm_iterations": warm_iterations,
            "legacy_iterations": legacy_iterations,
            "warm_le_cold": all(
                w <= c for w, c in zip(warm_iterations, cold_iterations)
            ),
        },
        "match_trace": matching.as_dict(),
    }


def _run(config: BenchConfig) -> Dict[str, object]:
    record: Dict[str, object] = {}
    for size in config.sizes:
        record[size] = bench_size(
            size,
            frames=config.frames,
            samples_per_cell=config.samples_per_cell,
            repeat=config.repeat,
            seed=config.seed,
        )
    return record


def _format(record: Dict[str, object]) -> List[str]:
    lines: List[str] = []
    header = (
        f"{'size':<12} {'links':>5} {'cells':>6} "
        f"{'survey x':>9} {'match x':>8} {'solve x':>8} "
        f"{'cold/warm [s]':>14}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for size, row in record.items():
        survey = row["survey"]
        match = row["match_trace"]
        solve = row["solve"]
        lines.append(
            f"{size:<12} {row['links']:>5} {row['cells']:>6} "
            f"{survey['speedup']:>9.1f} {match['speedup']:>8.1f} "
            f"{solve.get('speedup', float('nan')):>8.1f} "
            f"{solve['cold_s']:>7.2f}/{solve['warm_s']:.2f}"
        )
    return lines


def _smoke_gates(record: Dict[str, object]) -> List[str]:
    failures: List[str] = []
    for size, row in record.items():
        if not row["solve"]["warm_le_cold"]:
            failures.append(
                f"solve: warm-start iterations exceed cold on {size}"
            )
    return failures


register(
    BenchSection(
        name="solve",
        run=_run,
        format=_format,
        smoke_gates=_smoke_gates,
        report_key="sizes",
        host_stamp="rows",
    )
)
