"""The ``serving`` bench section: the multi-site in-process service."""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.pipeline import TafLoc
from repro.eval.bench.common import (
    BENCH_SEED,
    BenchConfig,
    DEFAULT_SIZES,
    bench_spec,
    best_of,
)
from repro.eval.bench.registry import BenchSection, register
from repro.eval.engine import cached_scenario
from repro.serve import (
    LocalizationService,
    pipeline_seed,
    reconstructor_seed,
)
from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.specs import build_scenario
from repro.util.rng import counter_stream, task_key

__all__ = ["bench_serving"]


def bench_serving(
    *,
    sites: Sequence[str] = DEFAULT_SIZES,
    frames: int = 500,
    samples_per_cell: int = 10,
    repeat: int = 3,
    seed: int = BENCH_SEED,
) -> Dict[str, object]:
    """Benchmark the multi-site serving layer (queries/sec).

    One :class:`~repro.serve.service.LocalizationService` holds every site.
    Per site:

    * ``cold_first_query_s`` — a fresh service answering its first query:
      pipeline materialization + commissioning survey + matcher build.
    * ``warm_batch_qps`` / ``warm_single_qps`` — steady-state throughput of
      the batch entry point and of the per-query path (which rides the
      epoch-keyed matcher cache).
    * ``rebuild_single_qps`` — the per-query path with
      ``matcher_for_day(refresh=True)``, i.e. the pre-PR4 behavior of
      rebuilding the matcher on every call; ``matcher_cache_speedup`` is
      what the cache bugfix buys on the warm single-query path.
    * ``bit_identical`` — service answers equal a standalone
      :class:`~repro.core.pipeline.TafLoc` built with the same derived
      seeds (:func:`repro.serve.manager.pipeline_seed` /
      :func:`~repro.serve.manager.reconstructor_seed`).

    ``multi_site`` then measures one process serving *all* sites: a
    round-robin single-query mix and per-site batches back to back.
    """
    protocol = CollectionProtocol(
        samples_per_cell=samples_per_cell, empty_room_samples=10
    )
    specs = {name: bench_spec(name) for name in sites}
    service = LocalizationService.from_specs(
        specs, protocol=protocol, seed=seed
    )
    record: Dict[str, object] = {
        "sites": list(sites),
        "frames": int(frames),
        "samples_per_cell": int(samples_per_cell),
        "per_site": {},
    }
    traces = {}
    for index, (site, spec) in enumerate(specs.items()):
        # Cold start: a fresh single-site service timed through its first
        # query (materialize + commission + matcher build).
        fresh = LocalizationService.from_specs(
            {site: spec}, protocol=protocol, seed=seed
        )
        scenario = cached_scenario(spec, build_scenario)
        workload_cells = counter_stream(seed, 100 + index).integers(
            0, scenario.deployment.cell_count, size=frames
        )
        trace = RssCollector(
            scenario, protocol, seed=task_key(seed, "serving-workload", site)
        ).live_trace(0.0, workload_cells)
        traces[site] = trace
        start = time.perf_counter()
        fresh.query(site, trace.rss[0], 0.0)
        cold_first_query_s = time.perf_counter() - start

        service.warm([site])
        system = service.pipeline(site)
        direct = TafLoc(
            RssCollector(
                cached_scenario(spec, build_scenario),
                protocol,
                seed=pipeline_seed(spec, seed),
            ),
            seed=reconstructor_seed(spec, seed),
        )
        direct.commission(0.0)
        served = service.query_batch(site, trace.rss, 0.0)
        reference = direct.localize_trace(trace)
        bit_identical = bool(
            np.array_equal(served.cells, reference.cells)
            and np.array_equal(served.positions, reference.positions)
        )

        batch_s = best_of(
            lambda: service.query_batch(site, trace.rss, 0.0), repeat
        )
        singles = trace.rss[: min(frames, 200)]
        single_s = best_of(
            lambda: [service.query(site, frame, 0.0) for frame in singles],
            repeat,
        )
        rebuild_s = best_of(
            lambda: [
                system.matcher_for_day(0.0, refresh=True).match(frame)
                for frame in singles
            ],
            repeat,
        )
        record["per_site"][site] = {
            "scenario": spec.name,
            "links": scenario.deployment.link_count,
            "cells": scenario.deployment.cell_count,
            "cold_first_query_s": cold_first_query_s,
            "warm_batch_qps": frames / batch_s if batch_s > 0 else float("inf"),
            "warm_single_qps": (
                len(singles) / single_s if single_s > 0 else float("inf")
            ),
            "rebuild_single_qps": (
                len(singles) / rebuild_s if rebuild_s > 0 else float("inf")
            ),
            "matcher_cache_speedup": (
                rebuild_s / single_s if single_s > 0 else float("inf")
            ),
            "bit_identical": bit_identical,
        }

    # One process, every site: round-robin singles and back-to-back batches.
    site_list = list(specs)
    mix = []
    for index in range(min(frames, 200)):
        site = site_list[index % len(site_list)]
        trace = traces[site]
        mix.append((site, trace.rss[index % trace.frame_count]))
    mixed_s = best_of(
        lambda: [service.query(site, frame, 0.0) for site, frame in mix],
        repeat,
    )
    batches_s = best_of(
        lambda: [
            service.query_batch(site, traces[site].rss, 0.0)
            for site in site_list
        ],
        repeat,
    )
    total_frames = sum(traces[site].frame_count for site in site_list)
    record["multi_site"] = {
        "interleaved_single_qps": (
            len(mix) / mixed_s if mixed_s > 0 else float("inf")
        ),
        "batch_qps": total_frames / batches_s if batches_s > 0 else float("inf"),
        "pipelines_built": service.manager.stats.pipelines_built,
    }
    return record


def _run(config: BenchConfig) -> Optional[Dict[str, object]]:
    if config.serving_sites is None:
        return None
    return bench_serving(
        sites=config.serving_sites,
        frames=config.frames,
        samples_per_cell=config.samples_per_cell,
        repeat=config.repeat,
        seed=config.seed,
    )


def _format(record: Dict[str, object]) -> List[str]:
    lines = [""]
    lines.append(
        f"serving layer ({len(record['sites'])} site(s), "
        f"{record['frames']} frames/site, warm queries/sec):"
    )
    for site, row in record["per_site"].items():
        identical = "bit-identical" if row["bit_identical"] else "MISMATCH"
        lines.append(
            f"  {site:<12} cold {row['cold_first_query_s']:.2f}s | "
            f"batch {row['warm_batch_qps']:,.0f} q/s | "
            f"single {row['warm_single_qps']:,.0f} q/s "
            f"(rebuild {row['rebuild_single_qps']:,.0f} q/s, "
            f"cache {row['matcher_cache_speedup']:.1f}x, {identical})"
        )
    multi = record["multi_site"]
    lines.append(
        f"  all sites, one process: interleaved "
        f"{multi['interleaved_single_qps']:,.0f} q/s | batch "
        f"{multi['batch_qps']:,.0f} q/s "
        f"({multi['pipelines_built']} pipeline(s) built)"
    )
    return lines


def _smoke_gates(record: Dict[str, object]) -> List[str]:
    if not all(row["bit_identical"] for row in record["per_site"].values()):
        return ["serving answers differ from direct TafLoc calls"]
    return []


register(
    BenchSection(
        name="serving",
        run=_run,
        format=_format,
        smoke_gates=_smoke_gates,
        report_key="serving",
    )
)
