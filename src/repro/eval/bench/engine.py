"""The ``engine`` bench section: figure experiments through the engine."""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.pipeline import TafLocConfig
from repro.core.reconstruction import ReconstructionConfig
from repro.eval.bench.common import (
    BENCH_SEED,
    BenchConfig,
    LEGACY_SOLVER,
)
from repro.eval.bench.registry import BenchSection, register
from repro.eval.engine import ExperimentEngine
from repro.eval.experiments import (
    run_fig3_reconstruction_error,
    run_fig5_localization,
)
from repro.sim.specs import ScenarioSpec

__all__ = ["bench_engine"]


def _fig3_identical(a, b) -> bool:
    return all(
        x.day == y.day
        and np.array_equal(x.errors, y.errors)
        and x.mean_error == y.mean_error
        and x.stale_mean_error == y.stale_mean_error
        and x.oracle_mean_error == y.oracle_mean_error
        for x, y in zip(a, b)
    )


def _fig5_identical(a, b) -> bool:
    return set(a.errors) == set(b.errors) and all(
        np.array_equal(a.errors[name], b.errors[name]) for name in a.errors
    )


def bench_engine(
    *,
    jobs: int = 2,
    seed: int = BENCH_SEED,
    fig3_days: Sequence[float] = (3.0, 15.0, 45.0, 90.0),
    fig5_day: float = 90.0,
    scenario: Union[str, ScenarioSpec] = "paper",
) -> Dict[str, object]:
    """Benchmark the figure experiments end-to-end through the engine.

    Three configurations per figure, on ``scenario`` (a registry name or a
    :class:`~repro.sim.specs.ScenarioSpec`, e.g. one loaded from a user's
    ``--scenario-file``):

    * ``legacy_s`` — the PR-1 code path: matrix-free CG solver, serial loop.
    * ``serial_s`` — fast solver, engine with ``jobs=1``.
    * ``parallel_s`` — fast solver, engine with ``jobs`` workers. One
      persistent engine serves *both* figures, so the pool starts once and
      the second figure measures the amortized regime; on a single-core
      host this is serial time plus residual overhead, on a multi-core
      host it scales with the core count.

    ``speedup`` is what a PR-1 user gains by upgrading and passing
    ``--jobs``: ``legacy_s / parallel_s``. ``bit_identical`` asserts the
    acceptance contract that parallel results equal serial results exactly.
    Caching is disabled so every configuration does full work.
    """
    legacy_config = TafLocConfig(
        reconstruction=ReconstructionConfig(solver=LEGACY_SOLVER)
    )

    def run_fig3(engine, config=None):
        return run_fig3_reconstruction_error(
            days=fig3_days, seed=seed, config=config, engine=engine,
            scenario_spec=scenario,
        )

    def run_fig5(engine, config=None):
        return run_fig5_localization(
            day=fig5_day, seed=seed, config=config, engine=engine,
            scenario_spec=scenario,
        )

    scenario_name = (
        scenario if isinstance(scenario, str) else scenario.name
    )
    record: Dict[str, object] = {"jobs": int(jobs), "scenario": scenario_name}
    with ExperimentEngine(jobs=jobs, cache=False) as parallel_engine:
        for name, runner, legacy_kwargs, identical in (
            ("fig3", run_fig3, {"config": legacy_config}, _fig3_identical),
            ("fig5", run_fig5, {"config": legacy_config}, _fig5_identical),
        ):
            start = time.perf_counter()
            runner(ExperimentEngine(jobs=1, cache=False), **legacy_kwargs)
            legacy_s = time.perf_counter() - start
            start = time.perf_counter()
            serial = runner(ExperimentEngine(jobs=1, cache=False))
            serial_s = time.perf_counter() - start
            start = time.perf_counter()
            parallel = runner(parallel_engine)
            parallel_s = time.perf_counter() - start
            record[name] = {
                "legacy_s": legacy_s,
                "serial_s": serial_s,
                "parallel_s": parallel_s,
                "speedup": legacy_s / parallel_s if parallel_s > 0 else float("inf"),
                "bit_identical": bool(identical(serial, parallel)),
            }
        record["pools_created"] = parallel_engine.stats.pools_created
    return record


def _run(config: BenchConfig) -> Optional[Dict[str, object]]:
    if config.engine_jobs is None:
        return None
    return bench_engine(
        jobs=config.engine_jobs,
        seed=config.seed,
        scenario=config.engine_scenario,
    )


def _format(record: Dict[str, object]) -> List[str]:
    lines = [""]
    lines.append(
        f"figure experiments through the engine (jobs={record['jobs']}, "
        f"scenario={record.get('scenario', 'paper')}, one shared pool):"
    )
    for name in ("fig3", "fig5"):
        row = record[name]
        identical = "bit-identical" if row["bit_identical"] else "MISMATCH"
        lines.append(
            f"  {name}: legacy {row['legacy_s']:.2f}s -> serial "
            f"{row['serial_s']:.2f}s -> parallel {row['parallel_s']:.2f}s "
            f"({row['speedup']:.1f}x vs legacy, {identical})"
        )
    return lines


def _smoke_gates(record: Dict[str, object]) -> List[str]:
    if not all(record[f]["bit_identical"] for f in ("fig3", "fig5")):
        return ["parallel results differ from serial"]
    return []


register(
    BenchSection(
        name="engine",
        run=_run,
        format=_format,
        smoke_gates=_smoke_gates,
        report_key="engine",
    )
)
