"""The ``loadgen`` bench section: SLO saturation search + many-site soak.

The PR-10 headline measurement: for each (transport, shard count) the
open-loop driver finds the maximum offered rate the serving stack
sustains under the latency SLO (``max_sustained_qps`` — zero failed,
zero mismatched, tail percentile within bound, achieved rate keeping up
with offered). Alongside it: a closed-loop comparison run (the classic
self-limiting client model, reported next to the open loop, never
instead of it), a scheduler-perturbation A/B (background refresh under
load vs tail latency, answers still bit-identical at the queried day),
and the 1k–10k registered-site soak (memory + routing-table stats).
Every block is schema-validated by :mod:`repro.loadgen.schema` — the
``loadgen-smoke`` CI gate rides these records.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.eval.bench.common import BENCH_SEED, BenchConfig, bench_spec
from repro.eval.bench.registry import BenchSection, register
from repro.eval.engine import cached_scenario
from repro.loadgen.driver import (
    DriverResult,
    expected_answers,
    run_closed_loop,
    run_open_loop,
    run_open_loop_aio,
)
from repro.loadgen.plan import closed_loop_plan, open_loop_plan
from repro.loadgen.schema import validate_loadgen_section
from repro.loadgen.slo import find_max_sustained_qps
from repro.loadgen.soak import run_site_soak
from repro.serve import (
    AioFrontend,
    HttpFrontend,
    LocalizationService,
    SchedulerConfig,
    ServiceClient,
    ShardedService,
    SimClock,
    UnixFrontend,
    UpdateScheduler,
)
from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.specs import build_scenario
from repro.util.rng import counter_stream, task_key

__all__ = ["bench_loadgen"]


def bench_loadgen(
    *,
    sites: Sequence[str] = ("square-3m", "square-4m"),
    seed: int = BENCH_SEED,
    transports: Sequence[str] = ("http", "aio"),
    shard_counts: Sequence[int] = (1, 2),
    slo_ms: float = 50.0,
    percentile: str = "p99_ms",
    requests: int = 240,
    start_qps: float = 100.0,
    max_qps: float = 50_000.0,
    zipf_s: float = 1.1,
    process: str = "poisson",
    clients: int = 4,
    frames: int = 16,
    samples_per_cell: int = 2,
    soak_sites: int = 0,
    perturb: bool = True,
) -> Dict[str, object]:
    """Find max-sustained-q/s under the SLO per (transport, shards).

    For every transport in ``transports`` (``http`` — the threaded PR-5
    front-end; ``aio`` — the PR-8 pipelined event loop; ``unix`` — the
    unix-socket transport) crossed with every count in ``shard_counts``
    (1 = the in-process service backs the front-end directly, n > 1 = a
    :class:`~repro.serve.shard.ShardedService` fleet backs it), an
    open-loop saturation search (:func:`~repro.loadgen.slo.find_max_sustained_qps`)
    probes seeded-``process``-arrival plans of ``requests`` queries,
    Zipf(``zipf_s``)-skewed over ``sites``, rebuilding the plan per
    offered rate — every answer checked bit-for-bit against the
    in-process service. All latency is recorded from *planned* send
    times (coordinated-omission-free), so an overloaded probe fails the
    SLO with queue delay in its tail instead of quietly throttling.
    """
    protocol = CollectionProtocol(
        samples_per_cell=samples_per_cell, empty_room_samples=5
    )
    specs = {name: bench_spec(name) for name in sites}
    site_list = list(specs)
    reference = LocalizationService.from_specs(
        specs, protocol=protocol, seed=seed
    )
    reference.warm()
    workloads: Dict[str, np.ndarray] = {}
    for index, (site, spec) in enumerate(specs.items()):
        scenario = cached_scenario(spec, build_scenario)
        cells = counter_stream(seed, 900 + index).integers(
            0, scenario.deployment.cell_count, size=frames
        )
        workloads[site] = RssCollector(
            scenario,
            protocol,
            seed=task_key(seed, "loadgen-workload", site),
        ).live_trace(0.0, cells).rss
    expected = expected_answers(reference, workloads, 0.0)

    def plan_at(rate: float):
        return open_loop_plan(
            sites=site_list,
            seed=seed,
            rate_qps=rate,
            requests=requests,
            process=process,
            zipf_s=zipf_s,
            clients=clients,
        )

    canonical = plan_at(start_qps)
    record: Dict[str, object] = {
        "sites": site_list,
        "plan": canonical.describe(),
        # The determinism gate: the same (seed, knobs) must rebuild the
        # exact same schedule, byte for byte.
        "plan_bit_identical": bool(
            canonical.fingerprint() == plan_at(start_qps).fingerprint()
        ),
        "slo_ms": float(slo_ms),
        "percentile": percentile,
        "requests": int(requests),
        "zipf_s": float(zipf_s),
        "process": process,
        "saturation": {},
    }

    def search_with(
        run_at: Callable[[float], Dict[str, object]],
    ) -> Dict[str, object]:
        return find_max_sustained_qps(
            run_at,
            slo_ms=slo_ms,
            percentile=percentile,
            start_qps=start_qps,
            max_qps=max_qps,
        ).as_dict()

    def drive_http(address: str, rate: float) -> DriverResult:
        return run_open_loop(
            plan_at(rate),
            lambda: ServiceClient(address, retries=0),
            workloads,
            expected=expected,
            transport="http",
        )

    def drive_unix(address: str, rate: float) -> DriverResult:
        return run_open_loop(
            plan_at(rate),
            lambda: ServiceClient(address, retries=0),
            workloads,
            expected=expected,
            transport="unix",
        )

    def drive_aio(address: str, rate: float) -> DriverResult:
        return run_open_loop_aio(
            plan_at(rate),
            address,
            workloads,
            expected=expected,
            connections=2,
        )

    for shards in shard_counts:
        if shards == 1:
            backend = reference
        else:
            backend = ShardedService(
                specs, shards=shards, protocol=protocol, seed=seed
            )
            backend.warm()
        try:
            for transport in transports:
                key = f"{transport}-shards{shards}"
                if transport == "http":
                    with HttpFrontend(backend) as frontend:
                        address = frontend.address
                        result = search_with(
                            lambda rate: drive_http(address, rate).summary()
                        )
                elif transport == "aio":
                    with AioFrontend(backend) as frontend:
                        address = frontend.address
                        result = search_with(
                            lambda rate: drive_aio(address, rate).summary()
                        )
                elif transport == "unix":
                    with tempfile.TemporaryDirectory() as tmp:
                        path = str(Path(tmp) / "loadgen.sock")
                        with UnixFrontend(backend, path) as frontend:
                            address = frontend.address
                            result = search_with(
                                lambda rate: drive_unix(
                                    address, rate
                                ).summary()
                            )
                else:
                    raise ValueError(
                        f"unknown loadgen transport {transport!r} "
                        "(known: http, aio, unix)"
                    )
                record["saturation"][key] = dict(
                    result, transport=transport, shards=int(shards)
                )
        finally:
            if backend is not reference:
                backend.close()

    # Closed-loop comparison on the plain http/1-shard path: the classic
    # self-limiting client model, reported alongside the open loop.
    closed = closed_loop_plan(
        sites=site_list,
        seed=seed,
        clients=clients,
        requests_per_client=max(1, requests // clients),
        zipf_s=zipf_s,
    )
    with HttpFrontend(reference) as frontend:
        address = frontend.address
        record["closed_loop"] = run_closed_loop(
            closed,
            lambda: ServiceClient(address, retries=0),
            workloads,
            expected=expected,
            transport="http",
        ).summary()

    # Scheduler perturbation: the same fixed-rate open-loop run with and
    # without background refresh ticking against the same service. The
    # queries stay pinned at day 0.0, so epoch selection ignores the
    # later-day updates the scheduler appends — answers must stay
    # bit-identical; only the tail is allowed to move.
    if perturb:
        quiet = run_open_loop(
            plan_at(start_qps),
            lambda: reference,
            workloads,
            expected=expected,
            transport="inproc",
        ).summary()
        scheduler = UpdateScheduler(
            reference,
            SchedulerConfig(policy="interval", interval_days=1.0, cold="skip"),
        )
        scheduler.start(
            SimClock(0.0, days_per_second=100.0), period_seconds=0.05
        )
        try:
            perturbed = run_open_loop(
                plan_at(start_qps),
                lambda: reference,
                workloads,
                expected=expected,
                transport="inproc",
            ).summary()
        finally:
            scheduler.stop()
        quiet_p99 = float(quiet["latency"].get(percentile, 0.0))
        loud_p99 = float(perturbed["latency"].get(percentile, 0.0))
        record["perturbation"] = {
            "rate_qps": float(start_qps),
            "quiet": quiet,
            "refresh": perturbed,
            "refresh_ticks": int(scheduler.stats.ticks),
            "refresh_updates": int(scheduler.stats.updates),
            "tail_ratio_x": (
                loud_p99 / quiet_p99 if quiet_p99 > 0 else float("inf")
            ),
        }
    else:
        record["perturbation"] = None

    if soak_sites > 0:
        record["soak"] = run_site_soak(
            sites=soak_sites,
            seed=seed,
            queries=max(200, min(soak_sites, 1000)),
            zipf_s=zipf_s,
            frames=frames,
            samples_per_cell=samples_per_cell,
        )
    else:
        record["soak"] = None
    return record


def _run(config: BenchConfig) -> Optional[Dict[str, object]]:
    if config.loadgen_sites is None:
        return None
    return bench_loadgen(
        sites=config.loadgen_sites,
        seed=config.seed,
        transports=config.loadgen_transports,
        shard_counts=config.loadgen_shards,
        slo_ms=config.loadgen_slo_ms,
        percentile=config.loadgen_percentile,
        requests=config.loadgen_requests,
        start_qps=config.loadgen_start_qps,
        max_qps=config.loadgen_max_qps,
        zipf_s=config.loadgen_zipf_s,
        process=config.loadgen_process,
        clients=config.loadgen_clients,
        samples_per_cell=config.samples_per_cell,
        soak_sites=config.loadgen_soak_sites,
        perturb=config.loadgen_perturb,
    )


def _latency_cell(latency: Dict[str, object]) -> str:
    return (
        f"p50/p95/p99 {latency.get('p50_ms', float('nan')):.2f}/"
        f"{latency.get('p95_ms', float('nan')):.2f}/"
        f"{latency.get('p99_ms', float('nan')):.2f} ms"
    )


def _format(record: Dict[str, object]) -> List[str]:
    lines = [""]
    plan = record["plan"]
    identical = "bit-identical" if record["plan_bit_identical"] else "MISMATCH"
    lines.append(
        f"load generator (open-loop {record['process']}, "
        f"{len(record['sites'])} site(s), zipf_s={record['zipf_s']:g}, "
        f"{record['requests']} req/probe, plan {identical}, "
        f"SLO {record['percentile']} <= {record['slo_ms']:g} ms):"
    )
    for key, result in record["saturation"].items():
        sustained = result.get("sustained")
        if sustained:
            detail = (
                f"{_latency_cell(sustained['latency'])} | "
                f"failed {sustained['failed_queries']}, "
                f"mismatched {sustained['mismatched_queries']}"
            )
        else:
            detail = "no rate sustained"
        lines.append(
            f"  {key:<16} max sustained "
            f"{result['max_sustained_qps']:,.0f} q/s "
            f"({len(result['probes'])} probe(s)) | {detail}"
        )
    closed = record.get("closed_loop")
    if closed:
        lines.append(
            f"  closed loop ({plan['clients']} clients): "
            f"{closed['achieved_qps']:,.0f} q/s | "
            f"{_latency_cell(closed['latency'])} | "
            f"failed {closed['failed_queries']}, "
            f"mismatched {closed['mismatched_queries']}"
        )
    perturbation = record.get("perturbation")
    if perturbation:
        quiet = perturbation["quiet"]["latency"]
        loud = perturbation["refresh"]["latency"]
        lines.append(
            f"  refresh perturbation @ {perturbation['rate_qps']:g} q/s: "
            f"quiet p99 {quiet.get('p99_ms', float('nan')):.2f} ms -> "
            f"refresh p99 {loud.get('p99_ms', float('nan')):.2f} ms "
            f"({perturbation['tail_ratio_x']:.2f}x, "
            f"{perturbation['refresh_updates']} update(s) over "
            f"{perturbation['refresh_ticks']} tick(s), mismatched "
            f"{perturbation['refresh']['mismatched_queries']})"
        )
    soak = record.get("soak")
    if soak:
        per_site = soak.get("rss_per_site_kb")
        rss = (
            f"{per_site:.1f} kB/site"
            if isinstance(per_site, (int, float))
            else "rss n/a"
        )
        routing = soak["routing"]
        widest = routing[max(routing, key=int)]
        lines.append(
            f"  soak: {soak['sites']} sites ({soak['spec']}), "
            f"{soak['pipelines_built']} pipeline(s) built, "
            f"register {soak['register_s']:.2f}s, warm {soak['warm_s']:.2f}s, "
            f"{rss} | query {soak['query_phase']['qps']:,.0f} q/s over "
            f"{soak['query_phase']['distinct_sites_hit']} site(s), "
            f"failed {soak['query_phase']['failed_queries']} | "
            f"routing imbalance {widest['imbalance_x']:.2f}x @ "
            f"{widest['shards']} shards"
        )
    return lines


def _smoke_gates(record: Dict[str, object]) -> List[str]:
    failures: List[str] = []
    if not record["plan_bit_identical"]:
        failures.append("loadgen: same-seed load plans are not bit-identical")
    for key, result in record["saturation"].items():
        if result["max_sustained_qps"] <= 0:
            failures.append(f"loadgen: {key} sustained no rate under the SLO")
            continue
        sustained = result.get("sustained") or {}
        if (
            sustained.get("failed_queries", 0) != 0
            or sustained.get("mismatched_queries", 0) != 0
        ):
            failures.append(
                f"loadgen: {key} sustained run had failed/mismatched queries"
            )
    closed = record.get("closed_loop")
    if closed and (
        closed["failed_queries"] != 0 or closed["mismatched_queries"] != 0
    ):
        failures.append("loadgen: closed-loop run had failed/mismatched queries")
    perturbation = record.get("perturbation")
    if perturbation:
        for phase in ("quiet", "refresh"):
            row = perturbation[phase]
            if row["failed_queries"] != 0 or row["mismatched_queries"] != 0:
                failures.append(
                    f"loadgen: {phase} perturbation phase had "
                    "failed/mismatched queries"
                )
    soak = record.get("soak")
    if soak:
        if soak["pipelines_built"] != 1:
            failures.append(
                "loadgen: soak built more than one pipeline "
                "(spec dedupe regressed)"
            )
        if soak["query_phase"]["failed_queries"] != 0:
            failures.append("loadgen: soak query phase had failures")
    failures.extend(validate_loadgen_section(record))
    return failures


register(
    BenchSection(
        name="loadgen",
        run=_run,
        format=_format,
        smoke_gates=_smoke_gates,
        report_key="loadgen",
    )
)
