"""The ``frontend`` bench section: threaded wire front-ends + shards."""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.eval.bench.common import (
    BENCH_SEED,
    BenchConfig,
    bench_spec,
    best_of,
)
from repro.eval.bench.registry import BenchSection, register
from repro.eval.engine import cached_scenario
from repro.serve import (
    HttpFrontend,
    LocalizationService,
    ServiceClient,
    ShardedService,
    UnixFrontend,
)
from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.specs import build_scenario
from repro.util.rng import counter_stream, task_key
from repro.util.stats import latency_summary, timed_singles

__all__ = ["bench_frontend"]


def bench_frontend(
    *,
    sites: Sequence[str] = ("paper", "square-6m"),
    frames: int = 500,
    samples_per_cell: int = 10,
    repeat: int = 3,
    seed: int = BENCH_SEED,
    shard_counts: Sequence[int] = (1, 2),
    singles: int = 100,
) -> Dict[str, object]:
    """Benchmark the wire front-end and the shard layer.

    Three comparisons, all on the same per-site workloads:

    * **wire vs in-process** — the HTTP and unix-socket transports answer
      the same single queries and batches as direct
      :class:`~repro.serve.service.LocalizationService` calls;
      ``wire_overhead_x`` is in-process single-query throughput over HTTP
      single-query throughput (i.e. what one JSON round trip costs), and
      ``http_roundtrip_ms`` is the measured per-query wire latency.
    * **shard scaling** — a :class:`~repro.serve.shard.ShardedService`
      fans per-site batches out to ``n`` worker processes
      (:meth:`~repro.serve.shard.ShardedService.map_query_batch`);
      ``scaling_x`` is the fan-out throughput of ``n`` workers over 1
      worker (≈1 on a single core, → min(shards, cores, sites) on a
      multi-core host because workers own disjoint site sets).
    * **bit-identity** — every transport and every shard count must
      reproduce the in-process answers exactly; the smoke run gates CI
      on these flags.
    """
    protocol = CollectionProtocol(
        samples_per_cell=samples_per_cell, empty_room_samples=10
    )
    specs = {name: bench_spec(name) for name in sites}
    service = LocalizationService.from_specs(
        specs, protocol=protocol, seed=seed
    )
    service.warm()
    workloads: Dict[str, np.ndarray] = {}
    for index, (site, spec) in enumerate(specs.items()):
        scenario = cached_scenario(spec, build_scenario)
        cells = counter_stream(seed, 300 + index).integers(
            0, scenario.deployment.cell_count, size=frames
        )
        workloads[site] = RssCollector(
            scenario, protocol, seed=task_key(seed, "frontend-workload", site)
        ).live_trace(0.0, cells).rss
    reference = {
        site: service.query_batch(site, rss, 0.0)
        for site, rss in workloads.items()
    }

    record: Dict[str, object] = {
        "sites": list(sites),
        "frames": int(frames),
        "singles": int(singles),
        "per_site": {},
        "shards": {},
    }

    def wire_rates(client) -> Dict[str, Dict[str, float]]:
        rates: Dict[str, Dict[str, float]] = {}
        for site, rss in workloads.items():
            wire = client.query_batch(site, rss, 0.0)  # warm-up + identity
            identical = bool(
                np.array_equal(wire.cells, reference[site].cells)
                and np.array_equal(wire.positions, reference[site].positions)
            )
            batch_s = best_of(
                lambda: client.query_batch(site, rss, 0.0), repeat
            )
            head = rss[: min(frames, singles)]
            single_s = best_of(
                lambda: [client.query(site, frame, 0.0) for frame in head],
                repeat,
            )
            latencies = timed_singles(
                lambda frame: client.query(site, frame, 0.0), head
            )
            rates[site] = {
                "batch_qps": frames / batch_s if batch_s > 0 else float("inf"),
                "single_qps": (
                    len(head) / single_s if single_s > 0 else float("inf")
                ),
                "roundtrip_ms": 1000.0 * single_s / len(head),
                "latency": latency_summary(latencies),
                "bit_identical": identical,
            }
        return rates

    # In-process baseline on identical workloads.
    for site, rss in workloads.items():
        batch_s = best_of(lambda: service.query_batch(site, rss, 0.0), repeat)
        head = rss[: min(frames, singles)]
        single_s = best_of(
            lambda: [service.query(site, frame, 0.0) for frame in head],
            repeat,
        )
        record["per_site"][site] = {
            "inproc_batch_qps": (
                frames / batch_s if batch_s > 0 else float("inf")
            ),
            "inproc_single_qps": (
                len(head) / single_s if single_s > 0 else float("inf")
            ),
            "inproc_latency": latency_summary(
                timed_singles(
                    lambda frame: service.query(site, frame, 0.0), head
                )
            ),
        }

    with HttpFrontend(service) as frontend:
        with ServiceClient(frontend.address) as client:
            for site, rates in wire_rates(client).items():
                row = record["per_site"][site]
                row["http_batch_qps"] = rates["batch_qps"]
                row["http_single_qps"] = rates["single_qps"]
                row["http_roundtrip_ms"] = rates["roundtrip_ms"]
                row["http_latency"] = rates["latency"]
                row["http_bit_identical"] = rates["bit_identical"]
                row["wire_overhead_x"] = (
                    row["inproc_single_qps"] / rates["single_qps"]
                    if rates["single_qps"] > 0
                    else float("inf")
                )

    with tempfile.TemporaryDirectory() as tmp:
        with UnixFrontend(service, str(Path(tmp) / "bench.sock")) as frontend:
            with ServiceClient(frontend.address) as client:
                for site, rates in wire_rates(client).items():
                    row = record["per_site"][site]
                    row["unix_batch_qps"] = rates["batch_qps"]
                    row["unix_single_qps"] = rates["single_qps"]
                    row["unix_roundtrip_ms"] = rates["roundtrip_ms"]
                    row["unix_latency"] = rates["latency"]
                    row["unix_bit_identical"] = rates["bit_identical"]

    # Shard scaling: fan the per-site batches out to n worker processes.
    requests = [(site, rss, 0.0) for site, rss in workloads.items()]
    total_frames = frames * len(workloads)
    base_qps: Optional[float] = None
    for count in shard_counts:
        with ShardedService(
            specs, shards=count, protocol=protocol, seed=seed
        ) as sharded:
            start = time.perf_counter()
            sharded.warm()
            warm_s = time.perf_counter() - start
            results = sharded.map_query_batch(requests)  # warm-up + identity
            identical = all(
                np.array_equal(result.cells, reference[site].cells)
                and np.array_equal(result.positions, reference[site].positions)
                for (site, _, _), result in zip(requests, results)
            )
            fanout_s = best_of(
                lambda: sharded.map_query_batch(requests), repeat
            )
            qps = total_frames / fanout_s if fanout_s > 0 else float("inf")
            if base_qps is None:
                base_qps = qps
            record["shards"][str(count)] = {
                "warm_s": warm_s,
                "fanout_batch_qps": qps,
                "scaling_x": qps / base_qps if base_qps > 0 else float("inf"),
                "bit_identical": bool(identical),
            }
    return record


def _run(config: BenchConfig) -> Optional[Dict[str, object]]:
    if config.frontend_sites is None:
        return None
    return bench_frontend(
        sites=config.frontend_sites,
        frames=config.frames,
        samples_per_cell=config.samples_per_cell,
        repeat=config.repeat,
        seed=config.seed,
        shard_counts=config.frontend_shards,
    )


def _format(record: Dict[str, object]) -> List[str]:
    lines = [""]
    lines.append(
        f"wire front-end ({len(record['sites'])} site(s), "
        f"{record['frames']} frames/batch, "
        f"{record['singles']} single round trips):"
    )
    for site, row in record["per_site"].items():
        identical = (
            "bit-identical"
            if row.get("http_bit_identical")
            and row.get("unix_bit_identical")
            else "MISMATCH"
        )
        latency = row.get("http_latency", {})
        lines.append(
            f"  {site:<12} in-proc {row['inproc_single_qps']:,.0f} q/s | "
            f"http {row['http_single_qps']:,.0f} q/s "
            f"(p50/p95/p99 {latency.get('p50_ms', float('nan')):.2f}/"
            f"{latency.get('p95_ms', float('nan')):.2f}/"
            f"{latency.get('p99_ms', float('nan')):.2f} ms, "
            f"{row['wire_overhead_x']:.1f}x overhead) | "
            f"unix {row['unix_single_qps']:,.0f} q/s | "
            f"http batch {row['http_batch_qps']:,.0f} q/s ({identical})"
        )
    for count, row in record["shards"].items():
        identical = "bit-identical" if row["bit_identical"] else "MISMATCH"
        lines.append(
            f"  shards={count}: warm {row['warm_s']:.2f}s | fan-out "
            f"{row['fanout_batch_qps']:,.0f} q/s "
            f"({row['scaling_x']:.2f}x vs 1 worker, {identical})"
        )
    return lines


def _smoke_gates(record: Dict[str, object]) -> List[str]:
    wire_ok = all(
        row["http_bit_identical"] and row["unix_bit_identical"]
        for row in record["per_site"].values()
    )
    shard_ok = all(
        row["bit_identical"] for row in record["shards"].values()
    )
    if not (wire_ok and shard_ok):
        return ["wire/shard answers differ from in-process service"]
    return []


register(
    BenchSection(
        name="frontend",
        run=_run,
        format=_format,
        smoke_gates=_smoke_gates,
        report_key="frontend",
    )
)
