"""Shared vocabulary of the bench-section registry.

:class:`BenchConfig` is the one immutable config object every section's
``run`` receives — the union of all section knobs, with ``None`` meaning
"skip this section" for the optional ones (the historical
``run_perf_bench`` contract). The helpers here (spec resolution, best-of
timing, host metadata) are the pieces the old 1657-line monolith
duplicated across sections; they live in one place now so a new section
is *only* its measurement logic plus a ``register()`` call.
"""

from __future__ import annotations

import os
import platform
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Union

from repro.core.loli_ir import LoliIrConfig
from repro.sim.deployment import Deployment
from repro.sim.specs import ScenarioSpec, build_deployment, get_scenario_spec

__all__ = [
    "BENCH_SEED",
    "BenchConfig",
    "DEFAULT_SIZES",
    "LEGACY_SOLVER",
    "StageTiming",
    "bench_spec",
    "best_of",
    "build_bench_deployment",
    "host_metadata",
]

#: The PR-1 solver configuration: matrix-free CG half-steps, no outer
#: extrapolation, tight inner tolerance — the baseline every fast-path
#: speedup in the committed benchmarks is measured against.
LEGACY_SOLVER = LoliIrConfig(
    method="cg", accelerate=False, cg_tol=1e-9, tol=1e-7
)

#: Deployment sizes benchmarked by default; the 6 m square is the 100-cell
#: grid of the PR-1 acceptance criterion.
DEFAULT_SIZES = ("paper", "square-6m", "square-12m")

BENCH_SEED = 2016


@dataclass(frozen=True)
class BenchConfig:
    """Every knob of every registered section, in one frozen object.

    Sections read only their own fields; ``None`` on a ``*_sites`` /
    ``engine_jobs`` field means that section is skipped (the historical
    ``run_perf_bench`` keyword contract, preserved verbatim so committed
    ``BENCH_PR*.json`` files stay comparable).
    """

    sizes: Sequence[str] = DEFAULT_SIZES
    frames: int = 500
    samples_per_cell: int = 10
    repeat: int = 3
    seed: int = BENCH_SEED
    engine_jobs: Optional[int] = None
    engine_scenario: Union[str, ScenarioSpec] = "paper"
    serving_sites: Optional[Sequence[str]] = None
    frontend_sites: Optional[Sequence[str]] = None
    frontend_shards: Sequence[int] = (1, 2)
    frontend_async_sites: Optional[Sequence[str]] = None
    frontend_async_connections: Sequence[int] = (1, 2, 4)
    resilience_sites: Optional[Sequence[str]] = None
    resilience_replicas: int = 2
    resilience_shards: int = 3
    trust_sites: Optional[Sequence[str]] = None
    # --- loadgen section (PR-10) -------------------------------------
    loadgen_sites: Optional[Sequence[str]] = None
    loadgen_transports: Sequence[str] = ("http", "aio")
    loadgen_shards: Sequence[int] = (1, 2)
    loadgen_slo_ms: float = 50.0
    loadgen_percentile: str = "p99_ms"
    loadgen_requests: int = 240
    loadgen_start_qps: float = 100.0
    loadgen_max_qps: float = 50_000.0
    loadgen_zipf_s: float = 1.1
    loadgen_arrival: str = "open"
    loadgen_process: str = "poisson"
    loadgen_clients: int = 4
    loadgen_soak_sites: int = 0
    loadgen_perturb: bool = True

    extras: Dict[str, object] = field(default_factory=dict)


def bench_spec(size: str) -> ScenarioSpec:
    """Scenario spec for a named benchmark size.

    Any registered scenario name works (``warehouse``, ``atrium``, …), plus
    the generic ``square-<edge>m`` pattern — the bench rows carry the
    resolved scenario name so cross-environment runs stay attributable.
    """
    try:
        return get_scenario_spec(size)
    except KeyError as error:
        raise ValueError(str(error)) from None


def build_bench_deployment(size: str) -> Deployment:
    """Deployment for a named benchmark size."""
    return build_deployment(bench_spec(size).geometry)


def best_of(fn: Callable[[], object], repeat: int) -> float:
    """Best (minimum) wall time of ``repeat`` runs of ``fn``."""
    best = float("inf")
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def host_metadata() -> Dict[str, object]:
    """Host facts stamped into every benchmark section.

    Throughput numbers from a 1-core CI container and a 16-core
    workstation are not comparable; recording ``cpu_count`` and the
    platform string next to every section keeps the committed
    ``BENCH_*`` trajectory attributable to the host that produced it.
    """
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
    }


@dataclass(frozen=True)
class StageTiming:
    """Batch-vs-loop wall time of one benchmark stage."""

    batch_s: float
    loop_s: float

    @property
    def speedup(self) -> float:
        if self.batch_s <= 0:
            return float("inf")
        return self.loop_s / self.batch_s

    def as_dict(self) -> Dict[str, float]:
        return {
            "batch_s": self.batch_s,
            "loop_s": self.loop_s,
            "speedup": self.speedup,
        }
