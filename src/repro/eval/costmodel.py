"""Fingerprint-update labor cost model (the paper's Fig. 4).

The paper accounts survey cost as pure sampling time: "for each grid, 100
continuous RSS are collected one per second", so an area of edge ``E`` meters
with ``0.6 m`` cells costs ``100 * (E/0.6)^2 / 3600`` hours to survey from
scratch (its example: 6 m x 6 m → ≈2.78 h), while TafLoc re-measures only
``n`` reference cells (10 in the testbed → ≈0.28 h). :func:`sweep_update_cost`
reproduces the figure's sweep over edge lengths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from repro.util.validation import check_positive


@dataclass(frozen=True)
class CostModel:
    """Sampling-time cost model.

    Attributes:
        samples_per_cell: RSS samples collected per surveyed cell.
        sample_period_s: Seconds per sample (paper: 1 Hz).
        cell_size_m: Grid cell edge length (paper: 0.6 m).
    """

    samples_per_cell: int = 100
    sample_period_s: float = 1.0
    cell_size_m: float = 0.6

    def __post_init__(self) -> None:
        if self.samples_per_cell < 1:
            raise ValueError(
                f"samples_per_cell must be >= 1, got {self.samples_per_cell}"
            )
        check_positive("sample_period_s", self.sample_period_s)
        check_positive("cell_size_m", self.cell_size_m)

    def cells_in_square(self, edge_length_m: float) -> int:
        """Number of grid cells in a square area of the given edge."""
        check_positive("edge_length_m", edge_length_m)
        per_side = int(edge_length_m / self.cell_size_m)
        return per_side * per_side

    def survey_hours(self, cell_count: int) -> float:
        """Hours to survey ``cell_count`` cells under the protocol."""
        if cell_count < 0:
            raise ValueError(f"cell_count must be >= 0, got {cell_count}")
        return cell_count * self.samples_per_cell * self.sample_period_s / 3600.0

    def full_survey_hours(self, edge_length_m: float) -> float:
        """Hours to survey a full square area — the "existing systems" cost."""
        return self.survey_hours(self.cells_in_square(edge_length_m))

    def tafloc_update_hours(self, reference_count: int) -> float:
        """Hours for a TafLoc update: only the reference cells are visited."""
        return self.survey_hours(reference_count)


@dataclass(frozen=True)
class UpdateCostRow:
    """One row of the Fig. 4 sweep.

    ``solver_seconds`` optionally carries the *measured* LoLi-IR compute time
    at this size (e.g. from ``LoliIrResult.solve_seconds`` or the perf
    benchmark), making :attr:`total_update_hours` the true update cost —
    labor plus compute — rather than the paper's labor-only account.
    """

    edge_length_m: float
    cell_count: int
    reference_count: int
    existing_hours: float
    tafloc_hours: float
    solver_seconds: float = 0.0

    @property
    def savings_factor(self) -> float:
        if self.tafloc_hours == 0:
            return float("inf")
        return self.existing_hours / self.tafloc_hours

    @property
    def total_update_hours(self) -> float:
        """Labor plus measured reconstruction compute."""
        return self.tafloc_hours + self.solver_seconds / 3600.0


def reference_count_for_area(
    cell_count: int, *, base_references: int = 10, base_cells: int = 96
) -> int:
    """Reference-location budget as the area grows.

    The testbed used 10 references for 96 cells. The LRR rank — hence the
    number of references needed — grows with the diversity of fingerprint
    columns, which grows far slower than the cell count; we scale with the
    square root of the relative area (so 4x the cells needs only 2x the
    references), floored at the paper's 10.
    """
    if cell_count < 1:
        raise ValueError(f"cell_count must be >= 1, got {cell_count}")
    scale = (cell_count / base_cells) ** 0.5
    return max(base_references, int(round(base_references * scale)))


def sweep_update_cost(
    edge_lengths_m: Sequence[float],
    *,
    model: Optional[CostModel] = None,
    base_references: int = 10,
    solver_seconds_by_edge: Optional[Mapping[float, float]] = None,
) -> List[UpdateCostRow]:
    """Reproduce the Fig. 4 sweep: update cost vs area edge length.

    ``solver_seconds_by_edge`` optionally attaches measured LoLi-IR compute
    time per edge length (see :attr:`UpdateCostRow.solver_seconds`).
    """
    model = model or CostModel()
    measured = solver_seconds_by_edge or {}
    rows: List[UpdateCostRow] = []
    for edge in edge_lengths_m:
        cells = model.cells_in_square(edge)
        references = reference_count_for_area(
            cells, base_references=base_references
        )
        rows.append(
            UpdateCostRow(
                edge_length_m=float(edge),
                cell_count=cells,
                reference_count=references,
                existing_hours=model.survey_hours(cells),
                tafloc_hours=model.survey_hours(references),
                solver_seconds=float(measured.get(float(edge), 0.0)),
            )
        )
    return rows
