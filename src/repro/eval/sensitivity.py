"""Sensitivity analysis: how robust are the paper's results to the
environment?

The poster evaluates one room. A reproduction should ask how the headline
result — cheap reconstruction keeps localization accurate — holds up as
deployment conditions vary. This module sweeps one environmental knob at a
time (measurement noise, link count, reference budget) and measures the
45-day reconstruction error and localization accuracy at each setting.

Each sweep setting is one :class:`~repro.eval.engine.ExperimentEngine` task
(pass ``engine=`` to parallelize and to share the scenario/result caches
across sweeps); settings are independent and fully keyed by plain data, so
results are identical for any job count and cached across repeated runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

import numpy as np

from repro.core.pipeline import TafLoc, TafLocConfig
from repro.core.reconstruction import ReconstructionConfig
from repro.eval.engine import ExperimentEngine, cached_scenario
from repro.eval.experiments import SpecLike
from repro.sim.collector import RssCollector
from repro.sim.scenario import Scenario
from repro.sim.specs import ScenarioSpec, as_scenario_spec, build_scenario
from repro.util.rng import RandomState, spawn_children, stream_key


@dataclass(frozen=True)
class SensitivityPoint:
    """Outcome of one sweep setting.

    Attributes:
        knob: Which parameter was swept.
        value: The setting.
        reconstruction_error_db: Mean |reconstruction - truth| at 45 days.
        localization_median_m: Median localization error at 45 days using
            the reconstructed fingerprints.
    """

    knob: str
    value: float
    reconstruction_error_db: float
    localization_median_m: float


def _sweep_spec(
    base: Optional[SpecLike],
    seed: int,
    *,
    noise_sigma_db: Optional[float] = None,
    link_count: Optional[int] = None,
) -> ScenarioSpec:
    """The base spec (default: paper) with one environmental knob replaced."""
    spec = as_scenario_spec(base) if base is not None else as_scenario_spec("paper")
    if noise_sigma_db is not None:
        spec = replace(
            spec, channel=spec.channel.with_noise_sigma(float(noise_sigma_db))
        )
    if link_count is not None:
        spec = replace(
            spec, geometry=replace(spec.geometry, link_count=int(link_count))
        )
    return spec.with_seed(seed)


def _measure(
    scenario: Scenario,
    seed: RandomState,
    *,
    day: float = 45.0,
    reference_count: int = 10,
) -> tuple:
    collector_rng, system_rng, trace_rng = spawn_children(seed, 3)
    config = TafLocConfig(
        reconstruction=ReconstructionConfig(reference_count=reference_count)
    )
    system = TafLoc(RssCollector(scenario, seed=collector_rng), config,
                    seed=system_rng)
    system.commission(0.0)
    report = system.update(day)
    truth = scenario.true_fingerprint_matrix(day)
    recon_err = float(
        np.abs(report.reconstruction.fingerprint.values - truth).mean()
    )
    cells = list(range(0, scenario.deployment.cell_count, 4))
    trace = RssCollector(scenario, seed=trace_rng).live_trace(day, cells)
    loc_median = float(np.median(system.localization_errors(trace)))
    return recon_err, loc_median


def _sensitivity_task(payload: dict) -> SensitivityPoint:
    spec = payload["scenario_spec"]
    scenario = cached_scenario(spec, build_scenario)
    recon, loc = _measure(
        scenario, spec.seed, reference_count=payload["reference_count"]
    )
    return SensitivityPoint(
        knob=payload["knob"],
        value=payload["value"],
        reconstruction_error_db=recon,
        localization_median_m=loc,
    )


def _as_int_seed(seed: RandomState) -> int:
    """Sweep seeds must be plain data (task payloads cross processes)."""
    if seed is None:
        return 0
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    return stream_key(seed)


def _run_sweep(
    payloads: Sequence[dict], engine: Optional[ExperimentEngine]
) -> List[SensitivityPoint]:
    engine = engine or ExperimentEngine()
    return engine.map(_sensitivity_task, list(payloads), label="sensitivity")


def sweep_noise(
    sigmas_db: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    *,
    seed: RandomState = 0,
    scenario_spec: Optional[SpecLike] = None,
    engine: Optional[ExperimentEngine] = None,
) -> List[SensitivityPoint]:
    """Sweep the per-sample measurement noise level."""
    seed = _as_int_seed(seed)
    return _run_sweep(
        [
            {
                "knob": "noise_sigma_db",
                "value": float(sigma),
                "scenario_spec": _sweep_spec(
                    scenario_spec, seed, noise_sigma_db=float(sigma)
                ),
                "reference_count": 10,
            }
            for sigma in sigmas_db
        ],
        engine,
    )


def sweep_link_count(
    link_counts: Sequence[int] = (6, 10, 16),
    *,
    seed: RandomState = 0,
    scenario_spec: Optional[SpecLike] = None,
    engine: Optional[ExperimentEngine] = None,
) -> List[SensitivityPoint]:
    """Sweep the number of deployed links."""
    seed = _as_int_seed(seed)
    return _run_sweep(
        [
            {
                "knob": "link_count",
                "value": float(links),
                "scenario_spec": _sweep_spec(
                    scenario_spec, seed, link_count=int(links)
                ),
                "reference_count": 10,
            }
            for links in link_counts
        ],
        engine,
    )


def sweep_reference_budget(
    budgets: Sequence[int] = (5, 10, 20, 40),
    *,
    seed: RandomState = 0,
    scenario_spec: Optional[SpecLike] = None,
    engine: Optional[ExperimentEngine] = None,
) -> List[SensitivityPoint]:
    """Sweep the reference-location budget n (cost vs accuracy knob)."""
    seed = _as_int_seed(seed)
    return _run_sweep(
        [
            {
                "knob": "reference_count",
                "value": float(budget),
                "scenario_spec": _sweep_spec(scenario_spec, seed),
                "reference_count": int(budget),
            }
            for budget in budgets
        ],
        engine,
    )


def as_rows(points: Sequence[SensitivityPoint]) -> List[List[float]]:
    """Rows for :func:`repro.eval.reporting.format_table`."""
    return [
        [p.value, p.reconstruction_error_db, p.localization_median_m]
        for p in points
    ]
