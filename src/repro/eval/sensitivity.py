"""Sensitivity analysis: how robust are the paper's results to the
environment?

The poster evaluates one room. A reproduction should ask how the headline
result — cheap reconstruction keeps localization accurate — holds up as
deployment conditions vary. This module sweeps one environmental knob at a
time (measurement noise, link count, reference budget) and measures the
45-day reconstruction error and localization accuracy at each setting.

Each sweep setting is one :class:`~repro.eval.engine.ExperimentEngine` task
(pass ``engine=`` to parallelize and to share the scenario/result caches
across sweeps); settings are independent and fully keyed by plain data, so
results are identical for any job count and cached across repeated runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.pipeline import TafLoc, TafLocConfig
from repro.core.reconstruction import ReconstructionConfig
from repro.eval.engine import ExperimentEngine, cached_scenario
from repro.sim.channel import ChannelModel, ChannelParams
from repro.sim.collector import RssCollector
from repro.sim.deployment import build_paper_deployment
from repro.sim.drift import EntryFieldDrift, calibrated_paper_drift
from repro.sim.scenario import Scenario
from repro.sim.shadowing import (
    CompositeShadowingModel,
    HeterogeneousBlockingModel,
    ScatteringModel,
)
from repro.util.rng import RandomState, spawn_children, stream_key


@dataclass(frozen=True)
class SensitivityPoint:
    """Outcome of one sweep setting.

    Attributes:
        knob: Which parameter was swept.
        value: The setting.
        reconstruction_error_db: Mean |reconstruction - truth| at 45 days.
        localization_median_m: Median localization error at 45 days using
            the reconstructed fingerprints.
    """

    knob: str
    value: float
    reconstruction_error_db: float
    localization_median_m: float


def _scenario_with(
    seed: RandomState,
    *,
    noise_sigma_db: float = 1.0,
    link_count: int = 10,
) -> Scenario:
    deployment = build_paper_deployment(link_count=link_count)
    channel_rng, drift_rng, entry_rng, scatter_rng = spawn_children(seed, 4)
    blocking_rng, field_rng = spawn_children(scatter_rng, 2)
    shadowing = CompositeShadowingModel(
        components=(
            HeterogeneousBlockingModel(deployment.links, seed=blocking_rng),
            ScatteringModel(
                deployment.links,
                amplitude_db=3.0,
                decay_m=1.0,
                wavelength_m=3.0,
                seed=field_rng,
            ),
        )
    )
    return Scenario(
        deployment=deployment,
        channel=ChannelModel(
            deployment.links,
            ChannelParams(noise_sigma_db=noise_sigma_db),
            seed=channel_rng,
        ),
        shadowing=shadowing,
        drift=calibrated_paper_drift(deployment.link_count, seed=drift_rng),
        entry_drift=EntryFieldDrift(
            links=deployment.link_count,
            cells=deployment.cell_count,
            grid_rows=deployment.grid.rows,
            grid_columns=deployment.grid.columns,
            seed=entry_rng,
        ),
    )


def _measure(
    scenario: Scenario,
    seed: RandomState,
    *,
    day: float = 45.0,
    reference_count: int = 10,
) -> tuple:
    collector_rng, system_rng, trace_rng = spawn_children(seed, 3)
    config = TafLocConfig(
        reconstruction=ReconstructionConfig(reference_count=reference_count)
    )
    system = TafLoc(RssCollector(scenario, seed=collector_rng), config,
                    seed=system_rng)
    system.commission(0.0)
    report = system.update(day)
    truth = scenario.true_fingerprint_matrix(day)
    recon_err = float(
        np.abs(report.reconstruction.fingerprint.values - truth).mean()
    )
    cells = list(range(0, scenario.deployment.cell_count, 4))
    trace = RssCollector(scenario, seed=trace_rng).live_trace(day, cells)
    loc_median = float(np.median(system.localization_errors(trace)))
    return recon_err, loc_median


def _build_sweep_scenario(spec: dict) -> Scenario:
    return _scenario_with(
        spec["seed"],
        noise_sigma_db=spec["noise_sigma_db"],
        link_count=spec["link_count"],
    )


def _sensitivity_task(payload: dict) -> SensitivityPoint:
    scenario = cached_scenario(payload["scenario"], _build_sweep_scenario)
    recon, loc = _measure(
        scenario,
        payload["scenario"]["seed"],
        reference_count=payload["reference_count"],
    )
    return SensitivityPoint(
        knob=payload["knob"],
        value=payload["value"],
        reconstruction_error_db=recon,
        localization_median_m=loc,
    )


def _as_int_seed(seed: RandomState) -> int:
    """Sweep seeds must be plain data (task payloads cross processes)."""
    if seed is None:
        return 0
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    return stream_key(seed)


def _run_sweep(
    payloads: Sequence[dict], engine: Optional[ExperimentEngine]
) -> List[SensitivityPoint]:
    engine = engine or ExperimentEngine()
    return engine.map(_sensitivity_task, list(payloads), label="sensitivity")


def sweep_noise(
    sigmas_db: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    *,
    seed: RandomState = 0,
    engine: Optional[ExperimentEngine] = None,
) -> List[SensitivityPoint]:
    """Sweep the per-sample measurement noise level."""
    seed = _as_int_seed(seed)
    return _run_sweep(
        [
            {
                "knob": "noise_sigma_db",
                "value": float(sigma),
                "scenario": {
                    "seed": seed,
                    "noise_sigma_db": float(sigma),
                    "link_count": 10,
                },
                "reference_count": 10,
            }
            for sigma in sigmas_db
        ],
        engine,
    )


def sweep_link_count(
    link_counts: Sequence[int] = (6, 10, 16),
    *,
    seed: RandomState = 0,
    engine: Optional[ExperimentEngine] = None,
) -> List[SensitivityPoint]:
    """Sweep the number of deployed links."""
    seed = _as_int_seed(seed)
    return _run_sweep(
        [
            {
                "knob": "link_count",
                "value": float(links),
                "scenario": {
                    "seed": seed,
                    "noise_sigma_db": 1.0,
                    "link_count": int(links),
                },
                "reference_count": 10,
            }
            for links in link_counts
        ],
        engine,
    )


def sweep_reference_budget(
    budgets: Sequence[int] = (5, 10, 20, 40),
    *,
    seed: RandomState = 0,
    engine: Optional[ExperimentEngine] = None,
) -> List[SensitivityPoint]:
    """Sweep the reference-location budget n (cost vs accuracy knob)."""
    seed = _as_int_seed(seed)
    return _run_sweep(
        [
            {
                "knob": "reference_count",
                "value": float(budget),
                "scenario": {
                    "seed": seed,
                    "noise_sigma_db": 1.0,
                    "link_count": 10,
                },
                "reference_count": int(budget),
            }
            for budget in budgets
        ],
        engine,
    )


def as_rows(points: Sequence[SensitivityPoint]) -> List[List[float]]:
    """Rows for :func:`repro.eval.reporting.format_table`."""
    return [
        [p.value, p.reconstruction_error_db, p.localization_median_m]
        for p in points
    ]
