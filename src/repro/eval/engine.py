"""Parallel deterministic experiment engine.

The figure/sensitivity experiments all share one shape: a sweep over
independent settings (days, seeds, systems, knob values), each of which runs
the same simulate→reconstruct→score pipeline. This module turns that shape
into an explicit contract so the sweeps can run on worker processes without
changing a single bit of the results:

* **Tasks are pure.** A task is a module-level function applied to a
  plain-data payload. It must derive *all* of its randomness from the integer
  Philox keys embedded in the payload (:func:`repro.util.rng.task_key` +
  :func:`repro.util.rng.counter_stream`) and must not mutate shared objects.
  Under that contract the same payload produces the same bits whether the
  task runs in-process (``jobs=1``) or on any worker — so parallel results
  are bit-identical to serial ones by construction, which the test suite
  asserts on the Fig. 3 / Fig. 5 workloads.

* **Results are cached.** Each (function, payload) pair is fingerprinted
  with a canonical structural hash (:func:`task_fingerprint`); repeated
  figure runs against the same engine return the cached result objects
  without recomputing. Payloads carrying live objects (e.g. a caller-supplied
  :class:`~repro.sim.scenario.Scenario`) are not fingerprintable and simply
  bypass the cache.

* **Scenarios are cached per process.** Building a scenario realization is
  pure given its spec, so workers memoize scenarios by spec fingerprint
  (:func:`cached_scenario`) — each worker pays the construction cost once
  per spec, not once per task.

* **Scheduling is chunked.** Tasks are shipped to workers in contiguous
  chunks (default: ~4 chunks per worker) to amortize pickling overhead while
  keeping the pool load-balanced.
"""

from __future__ import annotations

import hashlib
import math
import sys
import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, fields, is_dataclass
from multiprocessing import get_all_start_methods, get_context
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "ExperimentEngine",
    "EngineStats",
    "cached_scenario",
    "task_fingerprint",
    "worker_context",
]


def worker_context():
    """The multiprocessing context for long-lived worker processes.

    On Linux, fork keeps workers importing nothing: they inherit the
    parent's modules (and its scenario cache), which matters both for
    startup latency and for running under pytest, whose ``__main__`` must
    not be re-executed by a spawn. Elsewhere (notably macOS, where forking
    a process with live BLAS/Obj-C state is unsafe) the platform default
    start method is used; worker entry points are module-level functions,
    so they survive a spawn. Shared by the engine's process pool and the
    serving layer's shard workers (:mod:`repro.serve.shard`).
    """
    if sys.platform.startswith("linux") and "fork" in get_all_start_methods():
        return get_context("fork")
    return get_context()


# ----------------------------------------------------------------------
# canonical fingerprints
# ----------------------------------------------------------------------
def task_fingerprint(value: Any) -> Optional[str]:
    """Canonical structural hash of a plain-data value, or ``None``.

    Covers the payload vocabulary of the experiment runners: primitives,
    (nested) sequences and string-keyed mappings, numpy scalars/arrays, and
    frozen config dataclasses. Anything else (live simulator objects, open
    generators) makes the value unhashable and returns ``None`` — callers
    treat that as "run it, don't cache it".
    """
    digest = hashlib.blake2b(digest_size=16)
    if not _feed(value, digest):
        return None
    return digest.hexdigest()


def _feed(value: Any, digest) -> bool:
    """Serialize ``value`` into ``digest`` canonically; False if unhashable."""
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        digest.update(f"{type(value).__name__}:{value!r};".encode())
        return True
    if isinstance(value, (np.bool_, np.integer, np.floating)):
        digest.update(f"np:{value!r};".encode())
        return True
    if isinstance(value, np.ndarray):
        digest.update(f"ndarray:{value.dtype}:{value.shape};".encode())
        digest.update(np.ascontiguousarray(value).tobytes())
        return True
    if isinstance(value, (tuple, list)):
        digest.update(f"{type(value).__name__}[{len(value)}](".encode())
        for item in value:
            if not _feed(item, digest):
                return False
        digest.update(b");")
        return True
    if isinstance(value, dict):
        try:
            items = sorted(value.items())
        except TypeError:
            return False
        digest.update(f"dict[{len(items)}](".encode())
        for key, item in items:
            if not isinstance(key, str):
                return False
            digest.update(f"{key}=".encode())
            if not _feed(item, digest):
                return False
        digest.update(b");")
        return True
    if is_dataclass(value) and not isinstance(value, type):
        # Only frozen dataclasses (configs) are safe to hash by field
        # values: an unfrozen one (e.g. a mobility model) may carry live
        # state outside its fields, and two field-equal instances are not
        # interchangeable results.
        if not type(value).__dataclass_params__.frozen:
            return False
        digest.update(
            f"{type(value).__module__}.{type(value).__qualname__}(".encode()
        )
        for field in fields(value):
            digest.update(f"{field.name}=".encode())
            if not _feed(getattr(value, field.name), digest):
                return False
        digest.update(b");")
        return True
    return False


# ----------------------------------------------------------------------
# process-local scenario cache
# ----------------------------------------------------------------------
_SCENARIO_CACHE: Dict[str, Any] = {}


def cached_scenario(spec: Any, builder: Callable[[Any], Any]) -> Any:
    """Build-or-reuse a scenario realization for ``spec``.

    ``builder(spec)`` must be pure (all randomness derived from the spec), so
    memoizing by the spec's fingerprint returns an object bit-identical to a
    fresh build. The cache is per process: the parent and every pool worker
    each materialize a spec at most once, no matter how many tasks share it.
    Specs that cannot be fingerprinted are built fresh each call.
    """
    key = task_fingerprint(spec)
    if key is None:
        return builder(spec)
    if key not in _SCENARIO_CACHE:
        _SCENARIO_CACHE[key] = builder(spec)
    return _SCENARIO_CACHE[key]


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
@dataclass
class EngineStats:
    """Counters for one engine's lifetime (all map() calls)."""

    tasks_run: int = 0
    cache_hits: int = 0
    parallel_batches: int = 0
    pools_created: int = 0


def _shutdown_executor(executor: ProcessPoolExecutor) -> None:
    executor.shutdown(wait=False, cancel_futures=True)


class ExperimentEngine:
    """Runs experiment tasks serially or on a process pool.

    The pool is **persistent**: it is created lazily on the first parallel
    ``map()`` and reused by every later one, so a CLI invocation (or a
    benchmark) that runs several figure experiments through one engine pays
    worker startup once, not once per figure. Call :meth:`shutdown` (or use
    the engine as a context manager) to release the workers eagerly; a
    garbage-collected engine tears its pool down via a finalizer.

    Args:
        jobs: Worker processes; ``1`` (default) runs everything in-process.
        cache: Memoize task results by payload fingerprint. Cached payloads
            return the *same* result objects on repeated runs.
        chunk_size: Tasks per scheduled chunk; defaults to
            ``ceil(pending / (4 * jobs))`` so each worker sees ~4 chunks.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        cache: bool = True,
        chunk_size: Optional[int] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.jobs = jobs
        self.cache_enabled = cache
        self.chunk_size = chunk_size
        self.stats = EngineStats()
        self._cache: Dict[str, Any] = {}
        self._executor: Optional[ProcessPoolExecutor] = None
        self._finalizer: Optional[weakref.finalize] = None

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Release the persistent worker pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None

    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable[[dict], Any],
        payloads: Sequence[dict],
        *,
        label: str = "",
    ) -> List[Any]:
        """Apply ``fn`` to every payload; results in payload order.

        ``fn`` must be a module-level (picklable) function obeying the purity
        contract in the module docstring. ``label`` namespaces the cache so
        two runners sharing a payload shape cannot collide.
        """
        payloads = list(payloads)
        results: List[Any] = [None] * len(payloads)
        keys = [self._cache_key(fn, label, payload) for payload in payloads]

        to_run: List[int] = []
        owner: Dict[str, int] = {}  # key -> payload index that computes it
        duplicate_of: Dict[int, int] = {}
        for index, key in enumerate(keys):
            if key is not None and key in self._cache:
                results[index] = self._cache[key]
                self.stats.cache_hits += 1
            elif key is not None and key in owner:
                # Duplicate payload within this batch: compute once, share.
                duplicate_of[index] = owner[key]
            else:
                if key is not None:
                    owner[key] = index
                to_run.append(index)

        if self.jobs == 1 or len(to_run) <= 1:
            outputs = [fn(payloads[index]) for index in to_run]
        else:
            outputs = self._map_parallel(fn, [payloads[i] for i in to_run])
        self.stats.tasks_run += len(to_run)

        for index, output in zip(to_run, outputs):
            results[index] = output
            if keys[index] is not None and self.cache_enabled:
                self._cache[keys[index]] = output
        for index, source in duplicate_of.items():
            results[index] = results[source]
        return results

    def clear_cache(self) -> None:
        self._cache.clear()

    # ------------------------------------------------------------------
    def _cache_key(
        self, fn: Callable, label: str, payload: dict
    ) -> Optional[str]:
        if not self.cache_enabled:
            return None
        body = task_fingerprint(payload)
        if body is None:
            return None
        return f"{fn.__module__}.{fn.__qualname__}:{label}:{body}"

    def _map_parallel(
        self, fn: Callable[[dict], Any], payloads: List[dict]
    ) -> List[Any]:
        workers = min(self.jobs, len(payloads))
        chunk = self.chunk_size or max(
            1, math.ceil(len(payloads) / (4 * workers))
        )
        self.stats.parallel_batches += 1
        return list(
            self._ensure_executor().map(fn, payloads, chunksize=chunk)
        )

    def _ensure_executor(self) -> ProcessPoolExecutor:
        """The persistent pool, created on first parallel use."""
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=worker_context()
            )
            self.stats.pools_created += 1
            self._finalizer = weakref.finalize(
                self, _shutdown_executor, self._executor
            )
        return self._executor
