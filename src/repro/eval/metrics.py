"""Error metrics and CDF helpers shared by tests and benchmarks."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.util.validation import check_matrix


def reconstruction_error_matrix(
    reconstructed: np.ndarray, truth: np.ndarray
) -> np.ndarray:
    """Per-entry absolute error (dB) between a reconstruction and truth."""
    reconstructed = check_matrix("reconstructed", reconstructed)
    truth = check_matrix("truth", truth)
    if reconstructed.shape != truth.shape:
        raise ValueError(
            f"shape mismatch: reconstructed {reconstructed.shape} vs truth "
            f"{truth.shape}"
        )
    return np.abs(reconstructed - truth)


def mean_absolute_error(estimate: np.ndarray, truth: np.ndarray) -> float:
    """Mean |error| over all entries."""
    return float(np.mean(np.abs(np.asarray(estimate) - np.asarray(truth))))


def rms_error(estimate: np.ndarray, truth: np.ndarray) -> float:
    """Root-mean-square error over all entries."""
    diff = np.asarray(estimate, dtype=float) - np.asarray(truth, dtype=float)
    return float(np.sqrt(np.mean(diff**2)))


def percentile(values: Sequence[float], q: float) -> float:
    """q-th percentile (q in [0, 100]) of a sample."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must lie in [0, 100], got {q}")
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("cannot take a percentile of an empty sample")
    return float(np.percentile(array, q))


def median(values: Sequence[float]) -> float:
    """Median of a sample."""
    return percentile(values, 50.0)


def cdf_points(
    values: Sequence[float], *, grid: Sequence[float] = ()
) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of a sample.

    Args:
        values: The sample.
        grid: Evaluation abscissae; when empty, the sorted sample itself is
            used (the standard staircase CDF).

    Returns:
        ``(x, F(x))`` arrays; ``F`` is the fraction of samples <= x.
    """
    array = np.sort(np.asarray(values, dtype=float))
    if array.size == 0:
        raise ValueError("cannot build a CDF from an empty sample")
    if len(grid):
        xs = np.asarray(grid, dtype=float)
        fractions = np.searchsorted(array, xs, side="right") / array.size
        return xs, fractions
    fractions = np.arange(1, array.size + 1) / array.size
    return array, fractions


def fraction_below(values: Sequence[float], threshold: float) -> float:
    """Fraction of the sample at or below ``threshold`` (one CDF point)."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("empty sample")
    return float(np.mean(array <= threshold))
