"""Evaluation harness: metrics, cost model, figure experiments, reporting."""

from repro.eval.costmodel import CostModel, UpdateCostRow, sweep_update_cost
from repro.eval.engine import EngineStats, ExperimentEngine
from repro.eval.experiments import (
    Fig3Result,
    Fig5Result,
    run_fig3_reconstruction_error,
    run_fig5_localization,
    run_intext_drift,
)
from repro.eval.sensitivity import (
    SensitivityPoint,
    sweep_link_count,
    sweep_noise,
    sweep_reference_budget,
)
from repro.eval.tracking_experiments import (
    TrackingResult,
    run_tracking_experiment,
    summarize_tracking,
)
from repro.eval.metrics import (
    cdf_points,
    mean_absolute_error,
    median,
    percentile,
    reconstruction_error_matrix,
    rms_error,
)
from repro.eval.reporting import format_cdf_table, format_series, format_table

__all__ = [
    "CostModel",
    "EngineStats",
    "ExperimentEngine",
    "Fig3Result",
    "Fig5Result",
    "SensitivityPoint",
    "TrackingResult",
    "UpdateCostRow",
    "cdf_points",
    "format_cdf_table",
    "format_series",
    "format_table",
    "mean_absolute_error",
    "median",
    "percentile",
    "reconstruction_error_matrix",
    "rms_error",
    "run_fig3_reconstruction_error",
    "run_fig5_localization",
    "run_intext_drift",
    "run_tracking_experiment",
    "summarize_tracking",
    "sweep_link_count",
    "sweep_noise",
    "sweep_reference_budget",
    "sweep_update_cost",
]
