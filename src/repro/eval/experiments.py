"""Experiment runners for the paper's quantitative figures.

Each runner builds its workload from a seeded scenario, executes the systems
under test, and returns a plain-data result object that both the benchmark
suite (which prints the paper-style rows) and the tests (which assert the
qualitative shape) consume. Keeping the runners in the library — rather than
inside the benchmarks — makes the experiments callable from user code and
from the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.rass import RassConfig, RassLocalizer
from repro.baselines.rti import RtiConfig, RtiLocalizer
from repro.core.pipeline import TafLoc, TafLocConfig
from repro.eval.metrics import cdf_points, mean_absolute_error, median, percentile
from repro.sim.collector import CollectionProtocol, RssCollector
from repro.sim.scenario import Scenario, build_paper_scenario
from repro.util.rng import RandomState, spawn_children


# ----------------------------------------------------------------------
# In-text drift measurement
# ----------------------------------------------------------------------
def run_intext_drift(
    *,
    days: Sequence[float] = (3.0, 5.0, 15.0, 45.0, 90.0),
    seeds: Sequence[int] = tuple(range(8)),
) -> Dict[float, float]:
    """Mean absolute empty-room RSS change after each time gap.

    Reproduces the paper's in-text anchor: "the RSS values change 2.5 dBm and
    6 dBm respectively after 5 and 45 days". Averages over independent
    scenario realizations (the paper reports one room; we report the
    ensemble mean so the number is seed-stable).
    """
    totals = {float(day): 0.0 for day in days}
    for seed in seeds:
        scenario = build_paper_scenario(seed=seed)
        base = scenario.true_rss(0.0)
        for day in days:
            drifted = scenario.true_rss(float(day))
            totals[float(day)] += mean_absolute_error(drifted, base)
    return {day: total / len(seeds) for day, total in totals.items()}


# ----------------------------------------------------------------------
# Fig. 3: reconstruction error vs time gap
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig3Result:
    """Reconstruction errors for one time gap.

    Attributes:
        day: Time gap (days since the full survey).
        errors: Per-entry |reconstructed - measured| in dB, flattened. The
            reference is a freshly *measured* full survey at ``day`` — the
            paper's methodology (the authors have no noise-free oracle), so
            the numbers carry the survey-vs-survey floor (intra-cell stance
            jitter, residual noise) on top of the drift-induced part.
        mean_error: Mean of ``errors`` (the number the paper quotes).
        stale_mean_error: Error of *not* updating (keep the day-0 survey) —
            the cost of doing nothing, for context.
        oracle_mean_error: Mean |reconstructed - noise-free truth|; available
            in simulation only, isolates the reconstruction's structural
            error from the measurement floor.
    """

    day: float
    errors: np.ndarray
    mean_error: float
    stale_mean_error: float
    oracle_mean_error: float

    def cdf(self, grid: Sequence[float] = ()):
        return cdf_points(self.errors, grid=grid)


def run_fig3_reconstruction_error(
    *,
    days: Sequence[float] = (3.0, 5.0, 15.0, 45.0, 90.0),
    seed: RandomState = 0,
    scenario: Optional[Scenario] = None,
    config: Optional[TafLocConfig] = None,
) -> List[Fig3Result]:
    """Fig. 3 workload: survey at day 0, reconstruct at each later day.

    For every gap, the TafLoc update collects only the empty room and the
    reference cells, reconstructs the matrix, and is scored entry-wise
    against an independently *measured* full survey of the same day (plus a
    noise-free oracle comparison that only a simulator can provide).
    """
    scenario = scenario or build_paper_scenario(seed=seed)
    collector_rng, system_rng, scoring_rng = spawn_children(seed, 3)
    collector = RssCollector(scenario, seed=collector_rng)
    system = TafLoc(collector, config or TafLocConfig(), seed=system_rng)
    initial = system.commission(day=0.0)
    scoring_collector = RssCollector(scenario, seed=scoring_rng)

    results: List[Fig3Result] = []
    for day in days:
        report = system.update(float(day))
        measured = scoring_collector.collect_full_survey(float(day)).survey.matrix
        truth = scenario.true_fingerprint_matrix(float(day))
        reconstructed = report.reconstruction.fingerprint.values
        errors = np.abs(reconstructed - measured)
        results.append(
            Fig3Result(
                day=float(day),
                errors=errors.ravel(),
                mean_error=float(errors.mean()),
                stale_mean_error=mean_absolute_error(initial.values, measured),
                oracle_mean_error=mean_absolute_error(reconstructed, truth),
            )
        )
    return results


# ----------------------------------------------------------------------
# Fig. 5: localization accuracy at 3 months
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig5Result:
    """Localization error samples per system.

    Attributes:
        day: Evaluation day (the paper: 3 months ≈ 90 days).
        errors: Mapping from system name to per-frame error array (m).
    """

    day: float
    errors: Dict[str, np.ndarray] = field(default_factory=dict)

    def median_errors(self) -> Dict[str, float]:
        return {name: median(errs) for name, errs in self.errors.items()}

    def percentile_errors(self, q: float) -> Dict[str, float]:
        return {name: percentile(errs, q) for name, errs in self.errors.items()}

    def cdf(self, system: str, grid: Sequence[float] = ()):
        return cdf_points(self.errors[system], grid=grid)


def run_fig5_localization(
    *,
    day: float = 90.0,
    test_cells: Optional[Sequence[int]] = None,
    frames_per_cell: int = 3,
    seed: RandomState = 0,
    scenario: Optional[Scenario] = None,
) -> Fig5Result:
    """Fig. 5 workload: four systems localize the same targets at ``day``.

    Systems:
        * ``TafLoc`` — fingerprints reconstructed at ``day`` by LoLi-IR.
        * ``RTI`` — model-based tomography with a fresh calibration.
        * ``RASS w/ rec.`` — RASS consuming the reconstructed fingerprints.
        * ``RASS w/o rec.`` — RASS consuming the stale day-0 fingerprints.
    """
    scenario = scenario or build_paper_scenario(seed=seed)
    collector_rng, system_rng, trace_rng = spawn_children(seed, 3)
    collector = RssCollector(scenario, seed=collector_rng)

    system = TafLoc(collector, TafLocConfig(), seed=system_rng)
    stale = system.commission(day=0.0)
    report = system.update(day)
    reconstructed = report.reconstruction.fingerprint
    fresh_empty = reconstructed.empty_rss

    deployment = scenario.deployment
    if test_cells is None:
        # Every 2nd cell: dense coverage of the room without re-testing the
        # identical frame many times.
        test_cells = list(range(0, deployment.cell_count, 2))
    cells = [c for c in test_cells for _ in range(frames_per_cell)]
    trace = RssCollector(scenario, seed=trace_rng).live_trace(day, cells)

    rti = RtiLocalizer(deployment, fresh_empty, RtiConfig())
    rass_fresh = RassLocalizer(
        deployment, reconstructed, live_empty_rss=fresh_empty, config=RassConfig()
    )
    rass_stale = RassLocalizer(deployment, stale, config=RassConfig())

    errors: Dict[str, np.ndarray] = {}
    errors["TafLoc"] = system.localization_errors(trace)
    errors["RTI"] = rti.errors(trace)
    errors["RASS w/ rec."] = rass_fresh.errors(trace)
    errors["RASS w/o rec."] = rass_stale.errors(trace)
    return Fig5Result(day=day, errors=errors)
