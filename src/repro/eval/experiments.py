"""Experiment runners for the paper's quantitative figures.

Each runner builds its workload from a seeded scenario, executes the systems
under test, and returns a plain-data result object that both the benchmark
suite (which prints the paper-style rows) and the tests (which assert the
qualitative shape) consume. Keeping the runners in the library — rather than
inside the benchmarks — makes the experiments callable from user code and
from the examples.

Every runner decomposes into self-contained *tasks* executed through the
:class:`~repro.eval.engine.ExperimentEngine` (pass ``engine=`` to share a
pool and its result cache across figure runs; the default is an in-process
engine). Tasks address all randomness with deterministic Philox keys derived
from the runner seed (:func:`repro.util.rng.task_key`), so results do not
depend on execution order or worker count: ``jobs=8`` is bit-identical to
serial — asserted by the engine tests. Streams shared by design (e.g. the
day-0 commissioning survey that all Fig. 3 gaps reconstruct against) use the
same key in every task and replay identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.baselines.rass import RassConfig, RassLocalizer
from repro.baselines.rti import RtiConfig, RtiLocalizer
from repro.core.pipeline import TafLoc, TafLocConfig
from repro.eval.engine import ExperimentEngine, cached_scenario
from repro.eval.metrics import cdf_points, mean_absolute_error, median, percentile
from repro.sim.collector import RssCollector
from repro.sim.scenario import Scenario
from repro.sim.specs import ScenarioSpec, as_scenario_spec, build_scenario
from repro.util.rng import RandomState, counter_stream, task_key

#: Anything a runner accepts as its environment: a spec object, a registry
#: name, or a plain spec dict (e.g. parsed from ``--scenario-file`` JSON).
SpecLike = Union[ScenarioSpec, str, dict]

#: Stream slots within one task key (never renumber: results are pinned by
#: the committed figure numbers and the bit-identity tests).
_STREAM_COMMISSION = 0
_STREAM_SYSTEM = 1
_STREAM_UPDATE = 2
_STREAM_SCORE = 3
_STREAM_TRACE = 4
_STREAM_WALK = 5
_STREAM_TRACKER = 6


def _day_token(day: float) -> int:
    """Stable integer label for a day stamp (ms resolution)."""
    return int(round(float(day) * 1000.0))


def _scenario_payload(
    scenario: Optional[Scenario],
    seed: RandomState,
    spec: Optional[SpecLike] = None,
) -> dict:
    """Payload fragment naming the scenario, by spec when possible.

    ``spec`` selects the environment (default: the ``paper`` registry
    entry); the runner ``seed`` pins the realization (overriding the spec's
    own ``seed`` field, so one knob seeds measurement streams and world
    alike). Integer (or absent) seeds travel as frozen specs — hashable,
    rebuilt and memoized inside each worker. A caller-supplied scenario
    object (or a stateful generator seed) is materialized here and shipped
    by value; it bypasses the result cache but parallelizes fine because
    scenarios are read-only after construction.
    """
    if scenario is not None:
        return {"scenario_obj": scenario}
    resolved = as_scenario_spec(spec) if spec is not None else as_scenario_spec("paper")
    if seed is None or isinstance(seed, (int, np.integer)):
        return {"scenario_spec": resolved.with_seed(int(seed or 0))}
    # A live-generator seed cannot travel as plain data; ship the realized
    # world by value but keep the spec alongside it, so spec-declared
    # behavior (e.g. the tracking mobility regime) does not depend on the
    # seed's type. _resolve_scenario prefers the object.
    return {
        "scenario_obj": build_scenario(resolved, seed=seed),
        "scenario_spec": resolved,
    }


def _resolve_scenario(payload: dict) -> Scenario:
    if "scenario_obj" in payload:
        return payload["scenario_obj"]
    return cached_scenario(payload["scenario_spec"], build_scenario)


# ----------------------------------------------------------------------
# In-text drift measurement
# ----------------------------------------------------------------------
def _drift_task(payload: dict) -> Dict[float, float]:
    scenario = _resolve_scenario(payload)
    base = scenario.true_rss(0.0)
    return {
        float(day): mean_absolute_error(scenario.true_rss(float(day)), base)
        for day in payload["days"]
    }


def run_intext_drift(
    *,
    days: Sequence[float] = (3.0, 5.0, 15.0, 45.0, 90.0),
    seeds: Sequence[int] = tuple(range(8)),
    scenario_spec: Optional[SpecLike] = None,
    engine: Optional[ExperimentEngine] = None,
) -> Dict[float, float]:
    """Mean absolute empty-room RSS change after each time gap.

    Reproduces the paper's in-text anchor: "the RSS values change 2.5 dBm and
    6 dBm respectively after 5 and 45 days". Averages over independent
    realizations of ``scenario_spec`` (default: the paper room; the paper
    reports one room, we report the ensemble mean so the number is
    seed-stable). One task per room.
    """
    engine = engine or ExperimentEngine()
    payloads = [
        {
            **_scenario_payload(None, int(seed), scenario_spec),
            "days": tuple(float(day) for day in days),
        }
        for seed in seeds
    ]
    per_room = engine.map(_drift_task, payloads, label="drift")
    totals = {float(day): 0.0 for day in days}
    for room in per_room:
        for day, value in room.items():
            totals[day] += value
    return {day: total / len(seeds) for day, total in totals.items()}


# ----------------------------------------------------------------------
# Fig. 3: reconstruction error vs time gap
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig3Result:
    """Reconstruction errors for one time gap.

    Attributes:
        day: Time gap (days since the full survey).
        errors: Per-entry |reconstructed - measured| in dB, flattened. The
            reference is a freshly *measured* full survey at ``day`` — the
            paper's methodology (the authors have no noise-free oracle), so
            the numbers carry the survey-vs-survey floor (intra-cell stance
            jitter, residual noise) on top of the drift-induced part.
        mean_error: Mean of ``errors`` (the number the paper quotes).
        stale_mean_error: Error of *not* updating (keep the day-0 survey) —
            the cost of doing nothing, for context.
        oracle_mean_error: Mean |reconstructed - noise-free truth|; available
            in simulation only, isolates the reconstruction's structural
            error from the measurement floor.
    """

    day: float
    errors: np.ndarray
    mean_error: float
    stale_mean_error: float
    oracle_mean_error: float

    def cdf(self, grid: Sequence[float] = ()):
        return cdf_points(self.errors, grid=grid)


def _fig3_task(payload: dict) -> Fig3Result:
    """One Fig. 3 gap: commission at day 0 (shared stream), update, score."""
    scenario = _resolve_scenario(payload)
    config = payload["config"] or TafLocConfig()
    base = payload["base_key"]
    day = payload["day"]
    day_key = task_key(base, "day", _day_token(day))

    system = TafLoc(
        RssCollector(scenario, seed=counter_stream(base, _STREAM_COMMISSION)),
        config,
        seed=counter_stream(base, _STREAM_SYSTEM),
    )
    initial = system.commission(day=0.0)
    # Fresh per-day measurement stream: the update draws must not depend on
    # which other gaps ran (or on what core they ran on).
    system.collector = RssCollector(
        scenario, seed=counter_stream(day_key, _STREAM_UPDATE)
    )
    report = system.update(day)
    measured = (
        RssCollector(scenario, seed=counter_stream(day_key, _STREAM_SCORE))
        .collect_full_survey(day)
        .survey.matrix
    )
    truth = scenario.true_fingerprint_matrix(day)
    reconstructed = report.reconstruction.fingerprint.values
    errors = np.abs(reconstructed - measured)
    return Fig3Result(
        day=day,
        errors=errors.ravel(),
        mean_error=float(errors.mean()),
        stale_mean_error=mean_absolute_error(initial.values, measured),
        oracle_mean_error=mean_absolute_error(reconstructed, truth),
    )


def run_fig3_reconstruction_error(
    *,
    days: Sequence[float] = (3.0, 5.0, 15.0, 45.0, 90.0),
    seed: RandomState = 0,
    scenario: Optional[Scenario] = None,
    scenario_spec: Optional[SpecLike] = None,
    config: Optional[TafLocConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> List[Fig3Result]:
    """Fig. 3 workload: survey at day 0, reconstruct at each later day.

    For every gap, the TafLoc update collects only the empty room and the
    reference cells, reconstructs the matrix, and is scored entry-wise
    against an independently *measured* full survey of the same day (plus a
    noise-free oracle comparison that only a simulator can provide). One
    task per gap; the day-0 commissioning stream is shared, so every gap
    reconstructs against the same initial survey. ``scenario_spec`` selects
    the environment (registry name, spec object, or spec dict; default the
    paper room).
    """
    engine = engine or ExperimentEngine()
    base = task_key(seed, "fig3")
    scenario_part = _scenario_payload(scenario, seed, scenario_spec)
    payloads = [
        {
            **scenario_part,
            "config": config,
            "day": float(day),
            "base_key": base,
        }
        for day in days
    ]
    return engine.map(_fig3_task, payloads, label="fig3")


# ----------------------------------------------------------------------
# Fig. 5: localization accuracy at 3 months
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig5Result:
    """Localization error samples per system.

    Attributes:
        day: Evaluation day (the paper: 3 months ≈ 90 days).
        errors: Mapping from system name to per-frame error array (m).
    """

    day: float
    errors: Dict[str, np.ndarray] = field(default_factory=dict)

    def median_errors(self) -> Dict[str, float]:
        return {name: median(errs) for name, errs in self.errors.items()}

    def percentile_errors(self, q: float) -> Dict[str, float]:
        return {name: percentile(errs, q) for name, errs in self.errors.items()}

    def cdf(self, system: str, grid: Sequence[float] = ()):
        return cdf_points(self.errors[system], grid=grid)


#: Fig. 5 systems, in presentation order.
FIG5_SYSTEMS = ("TafLoc", "RTI", "RASS w/ rec.", "RASS w/o rec.")


def _fig5_task(payload: dict) -> np.ndarray:
    """Score one Fig. 5 system.

    Every system task replays the same commissioning/update/trace streams
    (same keys), so all four systems face the identical world state and the
    identical live trace — the figure's controlled comparison — while each
    task stays independently schedulable.
    """
    scenario = _resolve_scenario(payload)
    base = payload["base_key"]
    day = payload["day"]
    name = payload["system"]

    system = TafLoc(
        RssCollector(scenario, seed=counter_stream(base, _STREAM_COMMISSION)),
        payload["config"] or TafLocConfig(),
        seed=counter_stream(base, _STREAM_SYSTEM),
    )
    stale = system.commission(day=0.0)

    cells = [
        cell
        for cell in payload["test_cells"]
        for _ in range(payload["frames_per_cell"])
    ]
    trace = RssCollector(
        scenario, seed=counter_stream(base, _STREAM_TRACE)
    ).live_trace(day, cells)

    if name == "RASS w/o rec.":
        # The stale arm never updates — that is the point of the arm.
        return RassLocalizer(
            scenario.deployment, stale, config=RassConfig()
        ).errors(trace)

    system.collector = RssCollector(
        scenario, seed=counter_stream(base, _STREAM_UPDATE)
    )
    report = system.update(day)
    reconstructed = report.reconstruction.fingerprint
    fresh_empty = reconstructed.empty_rss
    if name == "TafLoc":
        return system.localization_errors(trace)
    if name == "RTI":
        return RtiLocalizer(scenario.deployment, fresh_empty, RtiConfig()).errors(
            trace
        )
    if name == "RASS w/ rec.":
        return RassLocalizer(
            scenario.deployment,
            reconstructed,
            live_empty_rss=fresh_empty,
            config=RassConfig(),
        ).errors(trace)
    raise ValueError(f"unknown Fig. 5 system {name!r}")


def run_fig5_localization(
    *,
    day: float = 90.0,
    test_cells: Optional[Sequence[int]] = None,
    frames_per_cell: int = 3,
    seed: RandomState = 0,
    scenario: Optional[Scenario] = None,
    scenario_spec: Optional[SpecLike] = None,
    config: Optional[TafLocConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> Fig5Result:
    """Fig. 5 workload: four systems localize the same targets at ``day``.

    Systems:
        * ``TafLoc`` — fingerprints reconstructed at ``day`` by LoLi-IR.
        * ``RTI`` — model-based tomography with a fresh calibration.
        * ``RASS w/ rec.`` — RASS consuming the reconstructed fingerprints.
        * ``RASS w/o rec.`` — RASS consuming the stale day-0 fingerprints.

    One task per system; all four share the same measurement streams.
    ``scenario_spec`` selects the environment (default: the paper room).
    """
    engine = engine or ExperimentEngine()
    base = task_key(seed, "fig5", _day_token(day))
    scenario_part = _scenario_payload(scenario, seed, scenario_spec)
    if test_cells is None:
        deployment_cells = _resolve_scenario(
            {**scenario_part}
        ).deployment.cell_count
        # Every 2nd cell: dense coverage of the room without re-testing the
        # identical frame many times.
        test_cells = list(range(0, deployment_cells, 2))
    payloads = [
        {
            **scenario_part,
            "day": float(day),
            "base_key": base,
            "system": name,
            "config": config,
            "test_cells": tuple(int(cell) for cell in test_cells),
            "frames_per_cell": int(frames_per_cell),
        }
        for name in FIG5_SYSTEMS
    ]
    outputs = engine.map(_fig5_task, payloads, label="fig5")
    return Fig5Result(
        day=float(day), errors=dict(zip(FIG5_SYSTEMS, outputs))
    )
