"""Shared utilities: linear algebra helpers, RNG plumbing, validation."""

from repro.util.linalg import (
    conjugate_gradient,
    nuclear_norm,
    soft_threshold,
    stable_rank,
    svd_shrink,
    truncated_svd,
)
from repro.util.rng import RandomState, as_generator, spawn_children
from repro.util.validation import (
    check_finite,
    check_matrix,
    check_positive,
    check_probability,
    check_shape,
)

__all__ = [
    "RandomState",
    "as_generator",
    "check_finite",
    "check_matrix",
    "check_positive",
    "check_probability",
    "check_shape",
    "conjugate_gradient",
    "nuclear_norm",
    "soft_threshold",
    "spawn_children",
    "stable_rank",
    "svd_shrink",
    "truncated_svd",
]
