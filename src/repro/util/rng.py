"""Seeded random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None``; :func:`as_generator` normalizes
all three into a generator so call sites never touch global numpy state.
Experiments spawn independent child streams with :func:`spawn_children` so
that adding a new consumer of randomness does not perturb existing results.

For vectorized batch code paths, :func:`counter_stream` provides
*counter-based* streams (Philox keyed by a seed plus integer counters): the
stream for ``(seed, op, cell)`` is the same whether its draws are taken one
at a time in a loop or as one big array op, and distinct counters yield
statistically independent streams. The batched collector currently keeps
its sequential per-seed draw order (pre-drawing each operation's randomness
in a canonical layout); counter streams are used by the benchmark workload
generator and are the addressing scheme a future sharded/multi-worker
collector should adopt, since they make streams independent of call
interleaving.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

#: Anything accepted as a source of randomness by the public API.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: RandomState = None) -> np.random.Generator:
    """Normalize ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (shared stream);
    passing an int or ``None`` creates a fresh PCG64 generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_children(seed: RandomState, count: int) -> Sequence[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    Deterministic in ``seed``: the same seed always yields the same children,
    and child ``i`` does not change when ``count`` grows.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's bit stream deterministically.
        root = np.random.SeedSequence(seed.integers(0, 2**63 - 1, size=4).tolist())
    elif isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]


def derive_seed(seed: RandomState, *labels: Union[int, str]) -> np.random.SeedSequence:
    """Derive a named sub-seed, stable across runs and label order-sensitive.

    Useful when a component must hand independent, reproducible streams to
    sub-components identified by name (e.g. per-link noise processes).
    """
    tokens: list[int] = []
    for label in labels:
        if isinstance(label, int):
            tokens.append(label & 0xFFFFFFFF)
        else:
            tokens.append(abs(hash_label(label)) & 0xFFFFFFFF)
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**32 - 1))
    elif isinstance(seed, np.random.SeedSequence):
        base = seed.entropy if isinstance(seed.entropy, int) else 0
    elif seed is None:
        base = 0
    else:
        base = int(seed)
    return np.random.SeedSequence([base & 0xFFFFFFFF, *tokens])


def hash_label(label: str) -> int:
    """Stable (process-independent) 32-bit FNV-1a hash of a string label."""
    value = 2166136261
    for byte in label.encode("utf-8"):
        value ^= byte
        value = (value * 16777619) & 0xFFFFFFFF
    return value


def stream_key(seed: RandomState) -> int:
    """Collapse ``seed`` into a stable 64-bit key for counter-based streams.

    Generators are keyed by one draw from their own bit stream (advancing
    them, like :func:`spawn_children` does); ints/None map deterministically.
    """
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**63 - 1))
    if isinstance(seed, np.random.SeedSequence):
        # Fold the full entropy (which may be a list) and the spawn key so
        # spawned children map to distinct stream keys.
        mixed = 0
        entropy = seed.entropy
        words = entropy if isinstance(entropy, (list, tuple)) else [entropy or 0]
        for word in [*words, *seed.spawn_key]:
            mixed = _splitmix64(mixed ^ (int(word) & 0xFFFFFFFFFFFFFFFF))
        return mixed
    if seed is None:
        return 0
    return int(seed) & 0xFFFFFFFFFFFFFFFF


def task_key(seed: RandomState, *labels: Union[int, str]) -> int:
    """Deterministic 64-bit Philox key for one experiment task.

    Collapses ``seed`` through :func:`stream_key` and folds each label
    (string labels via the stable FNV-1a hash, ints directly) with splitmix64
    rounds, so ``task_key(seed, "fig3", 2)`` names the same stream in every
    process and on every run — the addressing scheme the parallel experiment
    engine uses to make worker results bit-identical to serial execution.
    Pass the result to :func:`counter_stream` (optionally with further
    counters) to obtain the actual generator.
    """
    mixed = stream_key(seed)
    for label in labels:
        if isinstance(label, (int, np.integer)):
            token = int(label)
        else:
            token = hash_label(str(label))
        mixed = _splitmix64(mixed ^ (token & 0xFFFFFFFFFFFFFFFF))
    return mixed


def counter_stream(key: int, *counters: int) -> np.random.Generator:
    """A counter-based random stream: Philox keyed by ``(key, *counters)``.

    The returned generator depends only on the integer tuple — not on how
    many draws any other stream has taken — so batched and looped
    implementations that address their randomness by the same counters
    produce bit-identical values. Distinct counter tuples give independent
    streams (distinct Philox keys).
    """
    mixed = _splitmix64(key & 0xFFFFFFFFFFFFFFFF)
    for counter in counters:
        mixed = _splitmix64(mixed ^ (int(counter) & 0xFFFFFFFFFFFFFFFF))
    return np.random.Generator(np.random.Philox(key=mixed))


def _splitmix64(value: int) -> int:
    """One splitmix64 mixing round (the standard 64-bit finalizer)."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalized Zipf(s) probabilities over ranks ``1..n``.

    ``weights[k] ∝ (k + 1) ** -s``; ``s = 0`` degenerates to uniform.
    Pure function of ``(n, s)`` — no randomness — so popularity layouts
    are identical across processes and runs.
    """
    if n < 1:
        raise ValueError(f"population must be >= 1, got {n}")
    if s < 0.0:
        raise ValueError(f"zipf exponent must be >= 0, got {s}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-s
    return weights / weights.sum()


def zipf_sample(
    rng: np.random.Generator, n: int, s: float, size: int
) -> np.ndarray:
    """Draw ``size`` Zipf(s)-distributed ranks in ``[0, n)``.

    Inverse-CDF sampling: one uniform draw per sample searched against
    the cumulative :func:`zipf_weights`, so the output is a pure function
    of the generator's stream position — pass a :func:`counter_stream`
    generator to make site-popularity sequences addressable by task key.
    Rank 0 is the most popular.
    """
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    cdf = np.cumsum(zipf_weights(n, s))
    cdf[-1] = 1.0
    uniforms = rng.random(size)
    return np.searchsorted(cdf, uniforms, side="right").astype(np.int64)


def permutation_without_replacement(
    rng: np.random.Generator, population: int, size: Optional[int] = None
) -> np.ndarray:
    """Sample ``size`` distinct indices from ``range(population)``."""
    if size is None:
        size = population
    if size > population:
        raise ValueError(
            f"cannot sample {size} distinct items from a population of {population}"
        )
    return rng.permutation(population)[:size]
