"""Seeded random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None``; :func:`as_generator` normalizes
all three into a generator so call sites never touch global numpy state.
Experiments spawn independent child streams with :func:`spawn_children` so
that adding a new consumer of randomness does not perturb existing results.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

#: Anything accepted as a source of randomness by the public API.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: RandomState = None) -> np.random.Generator:
    """Normalize ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (shared stream);
    passing an int or ``None`` creates a fresh PCG64 generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_children(seed: RandomState, count: int) -> Sequence[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    Deterministic in ``seed``: the same seed always yields the same children,
    and child ``i`` does not change when ``count`` grows.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's bit stream deterministically.
        root = np.random.SeedSequence(seed.integers(0, 2**63 - 1, size=4).tolist())
    elif isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]


def derive_seed(seed: RandomState, *labels: Union[int, str]) -> np.random.SeedSequence:
    """Derive a named sub-seed, stable across runs and label order-sensitive.

    Useful when a component must hand independent, reproducible streams to
    sub-components identified by name (e.g. per-link noise processes).
    """
    tokens: list[int] = []
    for label in labels:
        if isinstance(label, int):
            tokens.append(label & 0xFFFFFFFF)
        else:
            tokens.append(abs(hash_label(label)) & 0xFFFFFFFF)
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**32 - 1))
    elif isinstance(seed, np.random.SeedSequence):
        base = seed.entropy if isinstance(seed.entropy, int) else 0
    elif seed is None:
        base = 0
    else:
        base = int(seed)
    return np.random.SeedSequence([base & 0xFFFFFFFF, *tokens])


def hash_label(label: str) -> int:
    """Stable (process-independent) 32-bit FNV-1a hash of a string label."""
    value = 2166136261
    for byte in label.encode("utf-8"):
        value ^= byte
        value = (value * 16777619) & 0xFFFFFFFF
    return value


def permutation_without_replacement(
    rng: np.random.Generator, population: int, size: Optional[int] = None
) -> np.ndarray:
    """Sample ``size`` distinct indices from ``range(population)``."""
    if size is None:
        size = population
    if size > population:
        raise ValueError(
            f"cannot sample {size} distinct items from a population of {population}"
        )
    return rng.permutation(population)[:size]
