"""Dense linear-algebra helpers used by the reconstruction solvers.

Everything here is deliberately dependency-light: plain numpy plus a
hand-rolled conjugate-gradient loop that works on *any* symmetric
positive-semidefinite linear operator expressed as a Python callable, so the
LoLi-IR sub-problems never need to materialize their (huge) normal matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.util.validation import check_matrix, check_positive

#: A symmetric positive-semidefinite operator acting on arrays of fixed shape.
LinearOperator = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class CgResult:
    """Outcome of a conjugate-gradient solve.

    Attributes:
        solution: The approximate minimizer ``x`` of ``0.5 x'Ax - b'x``.
        iterations: Number of CG iterations actually performed.
        residual_norm: Final residual norm ``||b - Ax||``.
        converged: Whether the residual tolerance was reached.
    """

    solution: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool


def conjugate_gradient(
    operator: LinearOperator,
    rhs: np.ndarray,
    *,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    max_iter: int = 200,
    preconditioner: Optional[LinearOperator] = None,
) -> CgResult:
    """Solve ``A x = rhs`` for a symmetric PSD operator ``A``.

    ``operator`` and ``rhs`` may be matrices (the Frobenius inner product is
    used), which lets callers solve matrix-valued normal equations without
    vectorizing.

    Args:
        operator: Callable evaluating ``A @ x`` for an array shaped like
            ``rhs``. Must be symmetric positive semidefinite.
        rhs: Right-hand side.
        x0: Optional warm start (defaults to zeros).
        tol: Relative residual tolerance ``||r|| <= tol * ||rhs||``.
        max_iter: Iteration cap.
        preconditioner: Optional callable applying an SPD approximation of
            ``A⁻¹`` (e.g. inverted block-diagonal Cholesky factors). A good
            preconditioner collapses the iteration count when ``A`` is a
            strongly diagonal-dominant block system — the shape of the
            LoLi-IR half-step normal equations, where the per-row ``k×k``
            blocks carry most of the curvature and only weak smoothness
            terms couple rows. ``None`` is plain CG.

    Returns:
        A :class:`CgResult`; ``converged`` is False if the cap was hit first.
    """
    rhs = np.asarray(rhs)
    if not np.issubdtype(rhs.dtype, np.floating):
        rhs = rhs.astype(float)
    x = (
        np.zeros_like(rhs)
        if x0 is None
        else np.array(x0, dtype=rhs.dtype, copy=True)
    )
    if x.shape != rhs.shape:
        raise ValueError(f"x0 shape {x.shape} does not match rhs shape {rhs.shape}")
    check_positive("tol", tol)

    residual = rhs - operator(x)
    z = residual if preconditioner is None else preconditioner(residual)
    direction = z.copy()
    rz_old = float(np.vdot(residual, z))
    rs = float(np.vdot(residual, residual))
    rhs_norm = float(np.linalg.norm(rhs))
    threshold = tol * max(rhs_norm, 1e-30)

    iterations = 0
    for iterations in range(1, max_iter + 1):
        if np.sqrt(rs) <= threshold:
            iterations -= 1
            break
        a_direction = operator(direction)
        curvature = float(np.vdot(direction, a_direction))
        if curvature <= 0:
            # Operator is only PSD; the current direction has hit its null
            # space, so the iterate cannot improve along it.
            break
        step = rz_old / curvature
        x += step * direction
        residual -= step * a_direction
        rs = float(np.vdot(residual, residual))
        z = residual if preconditioner is None else preconditioner(residual)
        rz_new = float(np.vdot(residual, z))
        direction = z + (rz_new / rz_old) * direction
        rz_old = rz_new

    residual_norm = float(np.sqrt(rs))
    return CgResult(
        solution=x,
        iterations=iterations,
        residual_norm=residual_norm,
        converged=residual_norm <= threshold,
    )


def preconditioned_conjugate_gradient(
    operator: LinearOperator,
    rhs: np.ndarray,
    *,
    preconditioner: LinearOperator,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    max_iter: int = 200,
) -> CgResult:
    """:func:`conjugate_gradient` with the preconditioner required."""
    return conjugate_gradient(
        operator,
        rhs,
        x0=x0,
        tol=tol,
        max_iter=max_iter,
        preconditioner=preconditioner,
    )


def soft_threshold(values: np.ndarray, threshold: float) -> np.ndarray:
    """Elementwise soft-thresholding operator ``sign(v) * max(|v| - t, 0)``."""
    check_positive("threshold", threshold, strict=False)
    return np.sign(values) * np.maximum(np.abs(values) - threshold, 0.0)


def svd_shrink(matrix: np.ndarray, threshold: float) -> Tuple[np.ndarray, int]:
    """Singular-value soft-thresholding (the proximal operator of the
    nuclear norm).

    Returns the shrunk matrix and the number of singular values that survive.
    """
    matrix = check_matrix("matrix", matrix)
    u, sigma, vt = np.linalg.svd(matrix, full_matrices=False)
    shrunk = np.maximum(sigma - threshold, 0.0)
    rank = int(np.count_nonzero(shrunk))
    if rank == 0:
        return np.zeros_like(matrix), 0
    return (u[:, :rank] * shrunk[:rank]) @ vt[:rank], rank


def truncated_svd(matrix: np.ndarray, rank: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Best rank-``rank`` factors ``(U, s, Vt)`` of ``matrix``.

    ``rank`` is clipped to ``min(matrix.shape)``; singular values are returned
    unsquared so ``U * s @ Vt`` reconstructs the truncation.
    """
    matrix = check_matrix("matrix", matrix)
    if rank < 1:
        raise ValueError(f"rank must be >= 1, got {rank}")
    rank = min(rank, min(matrix.shape))
    u, sigma, vt = np.linalg.svd(matrix, full_matrices=False)
    return u[:, :rank], sigma[:rank], vt[:rank]


def balanced_factors(matrix: np.ndarray, rank: int) -> Tuple[np.ndarray, np.ndarray]:
    """Split ``matrix ~= L @ R.T`` with the singular weight shared evenly.

    The balanced split (both factors scaled by ``sqrt(sigma)``) is the
    stationary point of the Frobenius regularizer ``||L||^2 + ||R||^2`` and is
    the standard initialization for bi-factor matrix completion.
    """
    u, sigma, vt = truncated_svd(matrix, rank)
    root = np.sqrt(sigma)
    return u * root, vt.T * root


def nuclear_norm(matrix: np.ndarray) -> float:
    """Sum of singular values."""
    return float(np.linalg.svd(np.asarray(matrix, dtype=float), compute_uv=False).sum())


def stable_rank(matrix: np.ndarray) -> float:
    """``||A||_F^2 / ||A||_2^2`` — a smooth proxy for numerical rank."""
    matrix = np.asarray(matrix, dtype=float)
    spectral = float(np.linalg.norm(matrix, 2))
    if spectral == 0.0:
        return 0.0
    return float(np.linalg.norm(matrix, "fro") ** 2 / spectral**2)


def effective_rank(matrix: np.ndarray, energy: float = 0.99) -> int:
    """Smallest ``k`` whose top-``k`` singular values hold ``energy`` of the
    squared spectral mass. Used to report the paper's "approximately low
    rank" property quantitatively."""
    if not 0.0 < energy <= 1.0:
        raise ValueError(f"energy must lie in (0, 1], got {energy}")
    sigma = np.linalg.svd(np.asarray(matrix, dtype=float), compute_uv=False)
    total = float(np.sum(sigma**2))
    if total == 0.0:
        return 0
    cumulative = np.cumsum(sigma**2) / total
    return int(np.searchsorted(cumulative, energy) + 1)


def first_difference_matrix(size: int) -> np.ndarray:
    """The ``(size-1) x size`` forward-difference operator ``D``.

    ``(D @ x)[i] = x[i+1] - x[i]``; used to build the continuity/similarity
    regularizers G and H of the TafLoc objective.
    """
    if size < 2:
        raise ValueError(f"need size >= 2 to difference, got {size}")
    matrix = np.zeros((size - 1, size))
    idx = np.arange(size - 1)
    matrix[idx, idx] = -1.0
    matrix[idx, idx + 1] = 1.0
    return matrix
